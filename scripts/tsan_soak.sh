#!/usr/bin/env bash
# Runs the chaos-soak suite under ThreadSanitizer: the worker pool, the
# session-reuse cache and the streaming sink are the only concurrent code
# in the workspace, and the soak drives all of them through hundreds of
# good/faulty runs per pool width — exactly the workload a data race
# would hide in.
#
# Usage:
#   scripts/tsan_soak.sh
#
# TSan needs the nightly toolchain (-Zsanitizer is unstable) plus the
# rust-src component (-Zbuild-std instruments std itself; without that,
# std's allocator/locks are uninstrumented and TSan false-positives).
# When either is missing the script explains how to get them and exits 0,
# so the CI job is advisory on runners without nightly rather than red.
set -euo pipefail
cd "$(dirname "$0")/.."

if ! cargo +nightly --version >/dev/null 2>&1; then
    echo "tsan_soak: no nightly toolchain; ThreadSanitizer needs -Zsanitizer (unstable)." >&2
    echo "  Install one with: rustup toolchain install nightly" >&2
    echo "  Skipping the TSan soak (the plain chaos_soak suite still runs in CI)." >&2
    exit 0
fi

if ! rustup component list --toolchain nightly 2>/dev/null | grep -q '^rust-src.*(installed)'; then
    echo "tsan_soak: nightly is missing the rust-src component (-Zbuild-std needs it)." >&2
    echo "  Install it with: rustup component add rust-src --toolchain nightly" >&2
    echo "  Skipping the TSan soak (the plain chaos_soak suite still runs in CI)." >&2
    exit 0
fi

HOST="$(rustc -vV | sed -n 's/^host: //p')"

echo "tsan_soak: running chaos_soak under ThreadSanitizer on $HOST (nightly, build-std)"
RUSTFLAGS="-Zsanitizer=thread" \
    cargo +nightly test -Zbuild-std --target "$HOST" --release \
    -p dcra-smt --test chaos_soak
echo "tsan_soak: clean — no data races reported."
