#!/usr/bin/env bash
# Records simulator throughput (simulated cycles per second, per policy)
# into BENCH_core.json at the repo root, so the perf trajectory of the
# simulator core is measured PR over PR.
#
# Usage:
#   scripts/bench_snapshot.sh [label]          # full measurement (default label: current)
#   SMOKE=1 scripts/bench_snapshot.sh [label]  # quick CI smoke run (does not overwrite
#                                              # BENCH_core.json; writes a temp file)
set -euo pipefail
cd "$(dirname "$0")/.."

LABEL="${1:-current}"
ARGS=(--label "$LABEL")
OUT="BENCH_core.json"
if [[ "${SMOKE:-0}" != 0 ]]; then
    OUT="$(mktemp)"
    trap 'rm -f "$OUT"' EXIT
    ARGS+=(--smoke)
fi
ARGS+=(--out "$OUT")

cargo build --release -p smt-experiments --bin bench_snapshot

# Refuse to append to a corrupt trajectory file: the snapshot binary
# carries a strict JSON validator, so a damaged BENCH_core.json fails the
# run loudly here instead of being silently clobbered.
if [[ -s "$OUT" ]]; then
    ./target/release/bench_snapshot --check "$OUT"
fi

./target/release/bench_snapshot "${ARGS[@]}"
echo
cat "$OUT"
