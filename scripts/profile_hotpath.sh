#!/usr/bin/env bash
# Samples the simulator hot path with `perf` and prints the top symbols,
# so perf hunts can work from real profile data instead of the coarse
# per-stage wall-clock attribution in BENCH_core.json.
#
# Usage:
#   scripts/profile_hotpath.sh [top-N]        # default: top 25 symbols
#
# Requires Linux `perf` (linux-tools). When perf is unavailable — not
# installed, or the kernel forbids sampling (perf_event_paranoid) — the
# script says so and exits non-zero rather than silently printing nothing;
# fall back to `scripts/bench_snapshot.sh`'s stage_pct attribution.
set -euo pipefail
cd "$(dirname "$0")/.."

TOP="${1:-25}"

if ! command -v perf >/dev/null 2>&1; then
    echo "profile_hotpath: \`perf\` is not installed on this host." >&2
    echo "  Install linux-tools (e.g. apt install linux-perf) to sample the hot path." >&2
    echo "  Until then, the stage-level attribution in BENCH_core.json" >&2
    echo "  (scripts/bench_snapshot.sh, stage_pct) is the available signal." >&2
    exit 2
fi

PARANOID="$(cat /proc/sys/kernel/perf_event_paranoid 2>/dev/null || echo '?')"
if [[ "$PARANOID" != "?" && "$PARANOID" -gt 2 ]]; then
    echo "profile_hotpath: kernel.perf_event_paranoid=$PARANOID forbids sampling." >&2
    echo "  Lower it (sysctl kernel.perf_event_paranoid=1) or run with CAP_PERFMON." >&2
    exit 2
fi

# Debug symbols without losing optimisation: the release profile plus
# debuginfo, so perf resolves inlined hot-path symbols.
export CARGO_PROFILE_RELEASE_DEBUG=true
cargo build --release -p smt-experiments --bin bench_snapshot

DATA="$(mktemp --suffix=.perf.data)"
trap 'rm -f "$DATA"' EXIT

# The smoke run exercises every policy plus the MEM mix and the stage
# breakdown — a few seconds of representative hot-path work.
perf record -o "$DATA" --call-graph dwarf -F 997 -- \
    ./target/release/bench_snapshot --smoke --out "$(mktemp)" >/dev/null

echo
echo "== top $TOP symbols (self time) =="
perf report -i "$DATA" --stdio --no-children --percent-limit 0.5 2>/dev/null \
    | grep -v '^#' | grep -v '^$' | head -n "$TOP"
