//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides exactly the subset of `rand` 0.8's API that the workspace uses:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! methods `gen`, `gen_range`, and `gen_bool`. The generator is
//! xoshiro256++ (the same family the real `SmallRng` uses on 64-bit
//! targets), seeded through SplitMix64, so streams are deterministic,
//! well distributed, and fast.

#![forbid(unsafe_code)]

use core::ops::Range;

/// A random number generator producing 64-bit output.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be created from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from their "standard" distribution
/// (for floats: uniform in `[0, 1)`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Types that can be drawn uniformly from a half-open range.
pub trait SampleUniform: Sized {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<$t>) -> $t {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = (range.end as u128).wrapping_sub(range.start as u128) as u64;
                // Multiply-shift range reduction (Lemire); bias is < 2^-64
                // per draw, far below anything the simulator can observe.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                range.start.wrapping_add(hi as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i32, i64);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<f64>) -> f64 {
        assert!(range.start < range.end, "gen_range: empty range");
        let u = f64::sample(rng);
        range.start + u * (range.end - range.start)
    }
}

/// The user-facing sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from the half-open `range`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range: {p}");
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Non-cryptographic generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and statistically strong enough for
    /// workload synthesis.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // An all-zero state would be a fixed point; SplitMix64 cannot
            // produce four zero outputs from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn uniform_f64_mean_is_half() {
        let mut r = SmallRng::seed_from_u64(1);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = SmallRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac}");
    }

    use super::RngCore;
}
