//! Offline stand-in for the `fxhash` crate.
//!
//! The simulator's hot maps (MSHR line lookups, PDG's in-flight load
//! multiset) are keyed by small integers; `std`'s default SipHash spends
//! more time hashing than the map spends probing. This crate provides the
//! FxHash function used by the Firefox and rustc codebases — one wrapping
//! multiply and one rotate per word — which is not DoS-resistant but is
//! several times faster on integer keys. Only deterministic simulator
//! state goes through these maps, so hash-flooding resistance buys
//! nothing here.
//!
//! API subset of the real `fxhash` crate: [`FxHasher`],
//! [`FxBuildHasher`], [`FxHashMap`], [`FxHashSet`], and [`hash64`].

#![forbid(unsafe_code)]

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the golden ratio (same as rustc's FxHash).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The Fx multiply-rotate hasher.
///
/// # Examples
///
/// ```ignore
/// use fxhash::FxHashMap;
/// let mut m: FxHashMap<u64, &str> = FxHashMap::default();
/// m.insert(42, "line");
/// assert_eq!(m.get(&42), Some(&"line"));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// Hashes one hashable value to 64 bits.
pub fn hash64<T: std::hash::Hash + ?Sized>(v: &T) -> u64 {
    let mut h = FxHasher::default();
    v.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_spread() {
        assert_eq!(hash64(&42u64), hash64(&42u64));
        assert_ne!(hash64(&1u64), hash64(&2u64));
        // Sequential keys must not collapse into few buckets.
        let hashes: FxHashSet<u64> = (0u64..1024).map(|i| hash64(&i)).collect();
        assert_eq!(hashes.len(), 1024);
    }

    #[test]
    fn map_and_set_round_trip() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        for i in 0..100 {
            m.insert(i, (i * 7) as u32);
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m.get(&13), Some(&91));
        m.remove(&13);
        assert_eq!(m.get(&13), None);
    }

    #[test]
    fn byte_streams_hash_consistently() {
        assert_eq!(hash64("abcdefghij"), hash64("abcdefghij"));
        assert_ne!(hash64("abcdefghij"), hash64("abcdefghik"));
    }
}
