//! Offline stand-in for `proptest`.
//!
//! The build environment cannot reach crates.io, so this vendored crate
//! implements the subset of proptest the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//!   supporting both `name in strategy` and `name: Type` parameters;
//! * [`strategy::Strategy`] with `prop_map`, plus strategies for integer
//!   and float ranges, tuples, [`strategy::Just`], and `prop_oneof!`;
//! * [`arbitrary::any`] for `bool`, the primitive integers, and
//!   `Option<T>`;
//! * [`collection::vec`] with fixed or ranged lengths;
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`.
//!
//! Failing cases are **not shrunk** — the failure message reports the case
//! number and the seed is deterministic (derived from the test name), so
//! failures reproduce exactly on re-run.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// One-stop imports for property tests, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Skips the current case when its inputs don't satisfy a precondition.
/// (Real proptest rejects and redraws; here the case simply passes, which
/// is equivalent for uniform input spaces.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Ok(());
        }
    };
}

/// Defines property tests. Each case draws fresh inputs from the given
/// strategies; the body runs once per case and may bail out early through
/// the `prop_assert*` macros.
#[macro_export]
macro_rules! proptest {
    // Entry: optional config header.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    (@funcs ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                for case in 0..config.cases {
                    let outcome: ::core::result::Result<(), ::std::string::String> = (|| {
                        $crate::proptest!(@bind rng $($params)*);
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(msg) = outcome {
                        panic!(
                            "proptest `{}` failed at case {}/{}: {}",
                            stringify!($name), case + 1, config.cases, msg
                        );
                    }
                }
            }
        )*
    };
    // Parameter binders: `name in strategy` and `name: Type`, in any order.
    (@bind $rng:ident) => {};
    (@bind $rng:ident $name:ident in $strat:expr) => {
        let $name = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
    };
    (@bind $rng:ident $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $crate::proptest!(@bind $rng $($rest)*);
    };
    (@bind $rng:ident $name:ident : $ty:ty) => {
        let $name = $crate::strategy::Strategy::generate(
            &$crate::arbitrary::any::<$ty>(), &mut $rng);
    };
    (@bind $rng:ident $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name = $crate::strategy::Strategy::generate(
            &$crate::arbitrary::any::<$ty>(), &mut $rng);
        $crate::proptest!(@bind $rng $($rest)*);
    };
    // No config header: delegate with the default.
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err(format!(
                "{}\n  left: {:?}\n right: {:?}", format!($($fmt)+), l, r));
        }
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left), stringify!($right), l));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err(format!(
                "{}\n  both: {:?}", format!($($fmt)+), l));
        }
    }};
}

/// Picks uniformly among the listed strategies (all must share one value
/// type). Weighted arms are not supported.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
