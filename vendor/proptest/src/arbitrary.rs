//! `any::<T>()` — default strategies per type.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use core::marker::PhantomData;

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: Arbitrary> Arbitrary for Option<T> {
    fn arbitrary(rng: &mut TestRng) -> Option<T> {
        if rng.next_u64() & 1 == 1 {
            Some(T::arbitrary(rng))
        } else {
            None
        }
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
