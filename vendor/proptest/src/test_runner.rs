//! Deterministic RNG and per-test configuration.

/// SplitMix64 generator seeded from the test's name, so every run of a
/// given test draws the identical case sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream from an arbitrary string (FNV-1a hash).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Mirror of `proptest::test_runner::Config` — only `cases` matters here.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the heavier simulator
        // properties fast while still exploring the input space.
        ProptestConfig { cases: 64 }
    }
}
