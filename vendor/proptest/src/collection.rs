//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use core::ops::Range;

/// Length specification for [`vec()`]: a fixed `usize` or a `Range<usize>`.
pub trait IntoSizeRange {
    /// Lower bound (inclusive) and upper bound (exclusive).
    fn bounds(&self) -> (usize, usize);
}

impl IntoSizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self + 1)
    }
}

impl IntoSizeRange for Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        (self.start, self.end)
    }
}

/// Strategy producing `Vec`s whose elements come from `element`.
pub struct VecStrategy<S> {
    element: S,
    min: usize,
    max_exclusive: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.max_exclusive - self.min).max(1) as u64;
        let len = self.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Vector strategy with the given element strategy and length.
pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
    let (min, max_exclusive) = size.bounds();
    assert!(min < max_exclusive, "empty size range for collection::vec");
    VecStrategy {
        element,
        min,
        max_exclusive,
    }
}
