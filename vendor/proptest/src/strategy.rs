//! Value-generation strategies.

use crate::test_runner::TestRng;
use core::ops::Range;

/// A recipe for generating random values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy simply draws a value from the RNG.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(pub Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among several strategies of one value type.
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}
