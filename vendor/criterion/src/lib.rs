//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the `bench` crate uses — `Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::{iter, iter_batched}`,
//! `Throughput`, `BatchSize`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — with a simple median-of-samples wall-clock
//! measurement and plain-text output instead of statistical analysis and
//! HTML reports. Good enough to rank policies and catch order-of-magnitude
//! regressions; swap in real criterion when registry access exists.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are grouped between measurements (accepted for
/// compatibility; batching is per-iteration here regardless).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Units processed per iteration, used to report a rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements (e.g. cycles, instructions) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: None,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&id.into(), self.sample_size, None, f);
        self
    }
}

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Declares how many units one iteration processes.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        let n = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_one(&full, n, self.throughput, f);
        self
    }

    /// Ends the group (no-op; exists for API parity).
    pub fn finish(&mut self) {}
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Sizes an inner loop so one sample spans at least ~1 ms; timing a
    /// single nanosecond-scale call would measure `Instant` overhead,
    /// not the routine.
    fn iters_for(est: Duration) -> u32 {
        let est = est.max(Duration::from_nanos(1));
        (Duration::from_millis(1).as_nanos() / est.as_nanos()).clamp(1, 10_000_000) as u32
    }

    /// Times `routine`, reporting the per-invocation duration.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let t0 = Instant::now();
        black_box(routine());
        let iters = Self::iters_for(t0.elapsed());
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.samples.push(start.elapsed() / iters);
    }

    /// Times `routine` on fresh inputs from `setup`, reporting the
    /// per-invocation duration; setup time is excluded.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let input = setup();
        let t0 = Instant::now();
        black_box(routine(input));
        let iters = Self::iters_for(t0.elapsed());
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.samples.push(total / iters);
    }
}

fn run_one(
    id: &str,
    samples: usize,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        samples: Vec::with_capacity(samples + 1),
    };
    // One warm-up invocation, then the timed samples.
    f(&mut b);
    b.samples.clear();
    for _ in 0..samples {
        f(&mut b);
    }
    b.samples.sort();
    let median = b
        .samples
        .get(b.samples.len() / 2)
        .copied()
        .unwrap_or_default();
    let rate = match throughput {
        Some(Throughput::Elements(n)) if median > Duration::ZERO => {
            format!(" ({:.3} Melem/s)", n as f64 / median.as_secs_f64() / 1e6)
        }
        Some(Throughput::Bytes(n)) if median > Duration::ZERO => {
            format!(
                " ({:.3} MiB/s)",
                n as f64 / median.as_secs_f64() / (1 << 20) as f64
            )
        }
        _ => String::new(),
    };
    println!("bench {id:<48} median {median:>12.3?}{rate}");
}

/// Collects benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
