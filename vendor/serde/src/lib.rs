//! Offline stand-in for `serde`.
//!
//! The build environment has no registry access, so this crate supplies
//! just enough of serde's face for the workspace to compile: the
//! `Serialize`/`Deserialize` trait names (blanket-implemented for every
//! type, so generic bounds always hold) and no-op derive macros. Swapping
//! in real serde later is a one-line change in the workspace manifest.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`. Blanket-implemented.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait mirroring `serde::Deserialize`. Blanket-implemented.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
