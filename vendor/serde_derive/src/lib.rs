//! Offline stand-in for `serde_derive`.
//!
//! The workspace marks its config and stats types `#[derive(Serialize,
//! Deserialize)]` so that real serde can be dropped in once the build
//! environment has registry access, but nothing actually serializes yet.
//! These derives therefore expand to nothing; the blanket impls in the
//! vendored `serde` crate satisfy any trait bounds. `attributes(serde)`
//! is declared so `#[serde(...)]` field/container attributes stay legal.

#![forbid(unsafe_code)]

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
