//! Memory-latency tuning: a miniature of the paper's Section 5.3. Shows
//! why DCRA's sharing factor `C` must shrink as memory latency grows —
//! slow threads hold borrowed resources for longer, so lending must be
//! more conservative.
//!
//! Run with: `cargo run --release --example latency_tuning`

use dcra_smt::dcra::{DcraConfig, SharingConfig, SharingFactor};
use dcra_smt::experiments::{PolicyKind, RunSpec, Runner};
use dcra_smt::metrics::hmean;
use dcra_smt::sim::SimConfig;

fn main() {
    let benches = ["swim", "mcf"];
    let runner = Runner::new();

    println!(
        "workload: {} — Hmean under DCRA with different sharing factors",
        benches.join("+")
    );
    println!(
        "{:>8}  {:>10}  {:>12}  {:>8}  {:>10}",
        "latency", "C = 1/A", "C = 1/(A+4)", "C = 0", "paper's C"
    );

    for (mem_lat, l2_lat) in [(100u32, 10u32), (300, 20), (500, 25)] {
        let mut config = SimConfig::baseline(2);
        config.mem.memory_latency = mem_lat;
        config.mem.l2.latency = l2_lat;

        let lengths = RunSpec::new(&benches, PolicyKind::Icount).with_config(config.clone());
        let singles: Vec<f64> = benches
            .iter()
            .map(|b| {
                runner
                    .single_ipc(b, &config, &lengths)
                    .expect("known bench")
            })
            .collect();

        let run_with = |sharing: SharingConfig| {
            let spec = RunSpec::new(
                &benches,
                PolicyKind::Dcra(DcraConfig {
                    sharing,
                    ..DcraConfig::default()
                }),
            )
            .with_config(config.clone());
            let out = runner.run(&spec).expect("known bench");
            hmean(&out.ipcs(), &singles)
        };

        let uniform = |f: SharingFactor| SharingConfig {
            queue_factor: f,
            reg_factor: f,
        };
        let generous = run_with(uniform(SharingFactor::Inverse));
        let moderate = run_with(uniform(SharingFactor::InversePlus4));
        let none = run_with(uniform(SharingFactor::Zero));
        let papers = run_with(SharingConfig::for_memory_latency(mem_lat));
        println!("{mem_lat:>8}  {generous:>10.3}  {moderate:>12.3}  {none:>8.3}  {papers:>10.3}");
    }
    println!("\n(paper's choice per Section 5.3: 100cy -> 1/A; 300cy -> 1/(A+4); 500cy -> queues 0, registers 1/(A+4))");
}
