//! Resource monopolization, observed: run a MIX workload under ICOUNT and
//! under DCRA and compare who holds the shared resources — the paper's
//! central argument (Sections 1–2) made visible.
//!
//! Run with: `cargo run --release --example monopolization`

use dcra_smt::dcra::Dcra;
use dcra_smt::isa::{ResourceKind, ThreadId};
use dcra_smt::policies::Icount;
use dcra_smt::sim::watch::OccupancyRecorder;
use dcra_smt::sim::{policy::AnyPolicy, SimConfig, Simulator};
use dcra_smt::workloads::spec;

fn measure(policy: AnyPolicy, label: &str) {
    let benches = ["art", "gzip"];
    let profiles: Vec<_> = benches
        .iter()
        .map(|b| spec::profile(b).expect("built-in profile"))
        .collect();
    let mut sim = Simulator::new(SimConfig::baseline(2), &profiles, policy, 42);
    sim.prewarm(400_000);
    sim.run_cycles(30_000);
    sim.reset_stats();

    let mut rec = OccupancyRecorder::new(2);
    for _ in 0..150_000 {
        sim.step();
        rec.sample(&sim);
    }
    let report = rec.report();
    let result = sim.result();

    println!("== {label}");
    println!("   throughput {:.3} IPC", result.throughput());
    for (i, b) in benches.iter().enumerate() {
        let t = ThreadId::new(i);
        println!(
            "   {b:5} ipc={:.2}  mean share of LSQ {:>5.1}%  int-regs {:>5.1}%  peak LSQ {:>2}",
            result.threads[i].ipc(result.cycles),
            report.share(t, ResourceKind::LsQueue, 80) * 100.0,
            report.share(t, ResourceKind::IntRegs, 288) * 100.0,
            report.peak[i][ResourceKind::LsQueue],
        );
    }
}

fn main() {
    println!("art (memory-bound) + gzip (high ILP) on the baseline machine\n");
    measure(Icount.into(), "ICOUNT — no direct resource control");
    measure(Dcra::default().into(), "DCRA — usage-capped slow threads");
    println!("\nUnder ICOUNT the missing thread piles entries up in the shared");
    println!("queues; DCRA bounds it to its computed entitlement and returns the");
    println!("slack to the fast thread.");
}
