//! Quickstart: simulate a 2-thread SMT machine running a high-ILP and a
//! memory-bound benchmark under DCRA, and print the headline statistics.
//!
//! Run with: `cargo run --release --example quickstart`

use dcra_smt::dcra::Dcra;
use dcra_smt::isa::ThreadId;
use dcra_smt::sim::{SimConfig, Simulator};
use dcra_smt::workloads::spec;

fn main() {
    // The machine of the paper's Table 2, with two hardware contexts.
    let config = SimConfig::baseline(2);

    // gzip is a high-ILP integer benchmark; mcf is the SPEC2000 poster
    // child for pointer-chasing memory boundedness (29.6% L2 miss rate).
    let gzip = spec::profile("gzip").expect("built-in profile");
    let mcf = spec::profile("mcf").expect("built-in profile");

    let mut sim = Simulator::new(config, &[gzip, mcf], Dcra::default(), 42);

    // Warm the caches functionally, let the pipeline settle, then measure.
    sim.prewarm(400_000);
    sim.run_cycles(30_000);
    sim.reset_stats();
    sim.run_cycles(200_000);

    let result = sim.result();
    println!("policy            : {}", result.policy);
    println!("cycles measured   : {}", result.cycles);
    println!("IPC throughput    : {:.3}", result.throughput());
    for (i, name) in ["gzip", "mcf"].iter().enumerate() {
        let t = &result.threads[i];
        let mem = sim.memory().thread_stats(ThreadId::new(i));
        println!(
            "  {name:6} IPC {:.3}  L1d miss {:.1}%  L2 miss {:.1}%  MLP {:.2}",
            t.ipc(result.cycles),
            mem.l1_miss_rate() * 100.0,
            mem.l2_miss_rate() * 100.0,
            t.mlp(),
        );
    }
    println!(
        "branch direction accuracy: {:.1}%",
        (1.0 - sim.predictor().stats().mispredict_rate()) * 100.0
    );
}
