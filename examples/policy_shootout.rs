//! Policy shoot-out: run one workload under every policy the paper
//! evaluates and compare throughput and fairness — a miniature of the
//! paper's Figure 5 on a single workload.
//!
//! Run with: `cargo run --release --example policy_shootout [bench bench ...]`

use dcra_smt::experiments::{PolicyKind, RunSpec, Runner};
use dcra_smt::metrics::hmean;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let benches: Vec<&str> = if args.is_empty() {
        vec!["gzip", "mcf"]
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };

    let runner = Runner::new();
    let lengths = RunSpec::new(&benches, PolicyKind::Icount);

    // Single-thread baselines for the fairness metric. Benchmark names
    // come from the command line, so surface the typed error cleanly.
    let singles: Vec<f64> = benches
        .iter()
        .map(|b| {
            runner
                .single_ipc(b, &lengths.config, &lengths)
                .unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2);
                })
        })
        .collect();
    println!("workload: {}", benches.join("+"));
    println!(
        "single-thread IPCs: {}",
        singles
            .iter()
            .map(|s| format!("{s:.2}"))
            .collect::<Vec<_>>()
            .join(" ")
    );
    println!();
    println!(
        "{:<8} {:>6} {:>6}  per-thread IPC",
        "policy", "tput", "hmean"
    );

    let policies = [
        PolicyKind::RoundRobin,
        PolicyKind::Icount,
        PolicyKind::Stall,
        PolicyKind::Flush,
        PolicyKind::FlushPlusPlus,
        PolicyKind::DataGating,
        PolicyKind::PredictiveDataGating,
        PolicyKind::Sra,
        PolicyKind::dcra_for_latency(300),
    ];
    for policy in policies {
        let spec = RunSpec::new(&benches, policy.clone());
        let out = runner.run(&spec).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        });
        let ipcs = out.ipcs();
        println!(
            "{:<8} {:>6.3} {:>6.3}  {}",
            policy.name(),
            out.throughput(),
            hmean(&ipcs, &singles),
            ipcs.iter()
                .map(|i| format!("{i:.2}"))
                .collect::<Vec<_>>()
                .join(" ")
        );
    }
}
