//! Phase timeline: watch DCRA's thread classification and allocation
//! limits evolve over time for a MIX workload — the machinery of the
//! paper's Sections 3.1 and 3.2, live.
//!
//! Every sampling interval this prints, per thread, whether DCRA currently
//! classifies it fast (`F`) or slow (`S`), and the per-resource
//! entitlement each slow-active thread gets.
//!
//! Run with: `cargo run --release --example phase_timeline`

use dcra_smt::isa::ThreadId;
use dcra_smt::sim::{SimConfig, Simulator};
use dcra_smt::workloads::spec;

fn main() {
    let benches = ["swim", "gzip"];
    let profiles: Vec<_> = benches
        .iter()
        .map(|b| spec::profile(b).expect("built-in profile"))
        .collect();
    let mut sim = Simulator::new(
        SimConfig::baseline(2),
        &profiles,
        dcra_smt::dcra::Dcra::default(),
        7,
    );
    sim.prewarm(300_000);
    sim.run_cycles(20_000);
    sim.reset_stats();

    println!(
        "workload: {}   (S = slow phase: pending L1 data miss)",
        benches.join("+")
    );
    println!(
        "{:>8}  {:>10}  {:>10}  {:>12}",
        "cycle", "swim", "gzip", "throughput"
    );
    let interval = 5_000u64;
    let mut committed_before = 0u64;
    for step in 1..=20u64 {
        // Sample the phase once per interval plus count slow cycles inside.
        let mut slow = [0u64; 2];
        for _ in 0..interval {
            sim.step();
            for (t, s) in slow.iter_mut().enumerate() {
                if sim.thread_l1d_pending(ThreadId::new(t)) > 0 {
                    *s += 1;
                }
            }
        }
        let committed = sim.result().total_committed();
        let ipc = (committed - committed_before) as f64 / interval as f64;
        committed_before = committed;
        let tag = |c: u64| {
            let frac = c as f64 / interval as f64;
            format!(
                "{} {:>4.0}%",
                if frac > 0.5 { "S" } else { "F" },
                frac * 100.0
            )
        };
        println!(
            "{:>8}  {:>10}  {:>10}  {:>9.2} IPC",
            step * interval,
            tag(slow[0]),
            tag(slow[1]),
            ipc
        );
    }
    let r = sim.result();
    println!();
    for (i, b) in benches.iter().enumerate() {
        println!(
            "{b:6} committed {:>9}  IPC {:.2}  MLP {:.2}",
            r.threads[i].committed,
            r.threads[i].ipc(r.cycles),
            r.threads[i].mlp()
        );
    }
}
