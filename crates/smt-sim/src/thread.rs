//! Per-hardware-thread simulator state.

use crate::core::rings::SeqRing;
use crate::inst::{DynInst, Stage};
use smt_isa::PackedInst;
use smt_workloads::ThreadTrace;

/// Sentinel for "no waiter node" in the per-thread wakeup pool.
pub(crate) const NO_WAITER: u32 = u32::MAX;

/// One node of a producer's consumer wait-list: a consumer instruction
/// (identified by `seq` + `uid`, so squashed incarnations are recognised
/// as stale) and the next node of the same producer's list.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Waiter {
    pub seq: u64,
    pub uid: u64,
    pub next: u32,
}

/// State of one hardware context: its replayable trace store (squashed
/// instructions are re-fetched, and must decode identically — the store
/// serves any seq within the window span of the newest one fetched), the
/// in-flight instruction window and the thread's blocking conditions.
///
/// The instruction window and its struct-of-arrays stage/deps lanes are
/// power-of-two *sequence-indexed rings* ([`SeqRing`]): element `seq`
/// lives at slot `seq & mask`, so every hot lookup is one mask and one
/// indexed load. Capacities are fixed at construction from the machine's
/// ROB and fetch-queue bounds (the window can never hold more than
/// `rob_entries + fetch_queue` instructions), so the rings never grow.
///
/// The hottest per-instruction fields live in lanes beside the window
/// instead of inside [`DynInst`]: `stages` (read by every pipeline stage;
/// the commit stage scans contiguous `Done` runs over it) and `deps` (read
/// once per instruction at dispatch). Every lane access is bounds-guarded
/// by the live `[win_base, next_fetch)` range exactly like the window
/// itself.
#[derive(Debug)]
pub(crate) struct ThreadState {
    /// Block-buffered replayable trace: packed records pre-generated off
    /// the fetch critical path, retained across same-workload resets.
    trace: ThreadTrace,
    /// Next sequence number to fetch (rewinds on squash). The in-flight
    /// window spans `[win_base, next_fetch)`.
    pub next_fetch: u64,
    /// Next sequence number to dispatch, always ≥ the window base.
    pub next_dispatch: u64,
    /// Ring of in-flight instructions for seqs `[win_base, next_fetch)`.
    window: SeqRing<DynInst>,
    /// Stage lane of the window (struct-of-arrays: one byte-sized entry
    /// per in-flight instruction, scanned in bursts by commit).
    stages: SeqRing<Stage>,
    /// Producer-dependency lane of the window.
    deps: SeqRing<[u64; 2]>,
    /// Oldest in-flight seq (the commit point).
    win_base: u64,
    /// I-cache miss or fetch-redirect bubble: no fetch until this cycle.
    pub icache_stall_until: u64,
    /// Line address of an in-flight instruction-cache fill. When the stall
    /// expires, the arriving line is consumed directly by the fetch unit —
    /// without this, a line conflict-evicted during the stall would force
    /// a re-miss, and three threads sharing a 2-way I-cache set could
    /// livelock evicting each other's fills forever.
    pub pending_inst_fill: Option<u64>,
    /// Fetch stalled until this load commits its miss (STALL/FLUSH action).
    pub stall_on_load: Option<u64>,
    /// Incrementally maintained per-thread counters.
    pub pre_issue: u32,
    pub l1d_pending: u32,
    pub l2_pending: u32,
    /// Slab of wakeup wait-list nodes; freed nodes are recycled through
    /// `free_waiter_head`, so steady-state wakeup is allocation-free.
    waiter_pool: Vec<Waiter>,
    free_waiter_head: u32,
}

impl ThreadState {
    /// Builds a thread whose window can hold `window_span` in-flight
    /// instructions (`rob_entries + fetch_queue` for the machine at hand).
    /// The trace store must have been built with a `max_lookback` of at
    /// least `window_span` (fetch and squash only ever read seqs within
    /// the live window range).
    pub fn new(trace: ThreadTrace, window_span: usize) -> Self {
        let cap = window_span + 1;
        ThreadState {
            trace,
            next_fetch: 0,
            next_dispatch: 0,
            window: SeqRing::new(cap, DynInst::placeholder()),
            stages: SeqRing::new(cap, Stage::Done),
            deps: SeqRing::new(cap, [crate::inst::NO_DEP; 2]),
            win_base: 0,
            icache_stall_until: 0,
            pending_inst_fill: None,
            stall_on_load: None,
            pre_issue: 0,
            l1d_pending: 0,
            l2_pending: 0,
            waiter_pool: Vec::new(),
            free_waiter_head: NO_WAITER,
        }
    }

    /// Re-initialises the thread for a fresh run, keeping the ring and
    /// waiter-pool allocations. The trace store rebinds to the given
    /// workload key and *reuses* its retained blocks when the key is
    /// unchanged (the sweep case: nine policies replaying one workload
    /// regenerate nothing). State after the call is indistinguishable from
    /// [`ThreadState::new`] over a fresh store with the same key (stale
    /// ring slots are unreachable: every lookup is bounds-guarded by
    /// `[base, tip)`, and slots are always written before re-entering the
    /// live range).
    pub fn reset(&mut self, profile: &smt_workloads::BenchmarkProfile, seed: u64, slot: u64) {
        self.trace.rebind(profile, seed, slot);
        self.next_fetch = 0;
        self.next_dispatch = 0;
        self.win_base = 0;
        self.icache_stall_until = 0;
        self.pending_inst_fill = None;
        self.stall_on_load = None;
        self.pre_issue = 0;
        self.l1d_pending = 0;
        self.l2_pending = 0;
        self.waiter_pool.clear();
        self.free_waiter_head = NO_WAITER;
    }

    // -------------------------------------------------------------- window

    /// Sequence number of the oldest in-flight instruction.
    #[inline]
    pub fn window_base(&self) -> Option<u64> {
        (self.win_base < self.next_fetch).then_some(self.win_base)
    }

    /// `true` when no instructions are in flight.
    #[inline]
    pub fn window_is_empty(&self) -> bool {
        self.win_base == self.next_fetch
    }

    /// Number of in-flight instructions.
    #[inline]
    pub fn window_len(&self) -> usize {
        (self.next_fetch - self.win_base) as usize
    }

    /// `true` while `seq` is in the live window range.
    #[inline]
    fn in_window(&self, seq: u64) -> bool {
        self.win_base <= seq && seq < self.next_fetch
    }

    /// Direct slot access for a seq known to be in flight.
    #[inline]
    pub fn at(&self, seq: u64) -> &DynInst {
        debug_assert!(self.in_window(seq));
        self.window.at(seq)
    }

    /// Mutable direct slot access for a seq known to be in flight.
    #[inline]
    pub fn at_mut(&mut self, seq: u64) -> &mut DynInst {
        debug_assert!(self.in_window(seq));
        self.window.at_mut(seq)
    }

    /// Looks up an in-flight instruction by sequence number.
    #[inline]
    pub fn get(&self, seq: u64) -> Option<&DynInst> {
        self.in_window(seq).then(|| self.window.at(seq))
    }

    /// Mutable lookup by sequence number (test-only; the pipeline mutates
    /// through [`Self::at_mut`] after validating liveness).
    #[cfg(test)]
    pub fn get_mut(&mut self, seq: u64) -> Option<&mut DynInst> {
        self.in_window(seq).then(|| self.window.at_mut(seq))
    }

    /// Pipeline stage of an in-flight instruction (stage lane).
    #[inline]
    pub fn stage_of(&self, seq: u64) -> Stage {
        debug_assert!(self.in_window(seq));
        *self.stages.at(seq)
    }

    /// Updates the stage lane for an in-flight instruction.
    #[inline]
    pub fn set_stage(&mut self, seq: u64, stage: Stage) {
        debug_assert!(self.in_window(seq));
        self.stages.set(seq, stage);
    }

    /// Producer seqs of an in-flight instruction (deps lane).
    #[inline]
    pub fn deps_of(&self, seq: u64) -> [u64; 2] {
        debug_assert!(self.in_window(seq));
        *self.deps.at(seq)
    }

    /// Length of the contiguous run of `Done` instructions at the window
    /// base, capped at `max` — the thread's committable burst this cycle.
    /// Scans the byte-sized stage lane only.
    #[inline]
    pub fn done_run_len(&self, max: u32) -> u32 {
        let end = self.next_fetch.min(self.win_base + u64::from(max));
        let mut seq = self.win_base;
        while seq < end && *self.stages.at(seq) == Stage::Done {
            seq += 1;
        }
        (seq - self.win_base) as u32
    }

    /// Appends a freshly fetched instruction at the fetch tip with its
    /// resolved dependency lane entry, and advances the tip. The stage
    /// lane starts at [`Stage::Fetched`].
    #[inline]
    pub fn push_fetched(&mut self, inst: DynInst, deps: [u64; 2]) {
        debug_assert!(
            self.window_len() < self.window.capacity(),
            "window ring full"
        );
        let seq = self.next_fetch;
        self.window.set(seq, inst);
        self.stages.set(seq, Stage::Fetched);
        self.deps.set(seq, deps);
        self.next_fetch += 1;
    }

    /// Advances the commit point past the oldest `n` in-flight
    /// instructions (which the caller has just retired as a burst).
    #[inline]
    pub fn advance_base_by(&mut self, n: u64) {
        debug_assert!(u64::from(self.window_len() as u32) >= n);
        self.win_base += n;
    }

    /// Iterates the live window's sequence numbers oldest-first
    /// (diagnostics).
    pub fn window_seqs(&self) -> std::ops::Range<u64> {
        self.win_base..self.next_fetch
    }

    /// Drops the youngest in-flight instruction (squash path) and returns
    /// `(its seq, a copy of it, its stage)`. The fetch tip moves down; the
    /// caller rewinds `next_dispatch` bookkeeping itself.
    #[inline]
    pub fn pop_youngest(&mut self) -> (u64, DynInst, Stage) {
        debug_assert!(!self.window_is_empty());
        self.next_fetch -= 1;
        let seq = self.next_fetch;
        (seq, self.window.at(seq).clone(), *self.stages.at(seq))
    }

    // ------------------------------------------------------- wakeup waiters

    /// Registers `(consumer_seq, consumer_uid)` on the wait-list of the
    /// in-flight producer `producer_seq`. The producer's completion (or
    /// squash) releases the node.
    pub fn register_waiter(&mut self, producer_seq: u64, consumer_seq: u64, consumer_uid: u64) {
        let head = self.at(producer_seq).waiters_head;
        let node = Waiter {
            seq: consumer_seq,
            uid: consumer_uid,
            next: head,
        };
        let idx = if self.free_waiter_head != NO_WAITER {
            let idx = self.free_waiter_head;
            self.free_waiter_head = self.waiter_pool[idx as usize].next;
            self.waiter_pool[idx as usize] = node;
            idx
        } else {
            let idx = u32::try_from(self.waiter_pool.len()).expect("waiter pool overflow");
            self.waiter_pool.push(node);
            idx
        };
        self.at_mut(producer_seq).waiters_head = idx;
    }

    /// Detaches and returns the wait-list head of the in-flight producer
    /// `seq` (leaving the producer's list empty). Walk it with
    /// [`Self::take_waiter`].
    pub fn detach_waiters(&mut self, seq: u64) -> u32 {
        std::mem::replace(&mut self.at_mut(seq).waiters_head, NO_WAITER)
    }

    /// Consumes one node of a detached wait-list: recycles it into the
    /// free list and returns `(waiter, next_node)`.
    pub fn take_waiter(&mut self, node: u32) -> (Waiter, u32) {
        let w = self.waiter_pool[node as usize];
        self.waiter_pool[node as usize].next = self.free_waiter_head;
        self.free_waiter_head = node;
        (w, w.next)
    }

    /// Frees an entire detached wait-list (used when a producer is
    /// squashed before completing).
    pub fn free_waiters(&mut self, mut node: u32) {
        while node != NO_WAITER {
            let (_, next) = self.take_waiter(node);
            node = next;
        }
    }

    // ---------------------------------------------------------- trace store

    /// The fetch stage's hot read at `seq`: the 16-byte packed record plus
    /// the effective address for loads/stores (0 otherwise), generating
    /// forward block-at-a-time as needed. Re-fetching a squashed sequence
    /// number returns the identical record.
    #[inline]
    pub fn fetch_entry(&mut self, seq: u64) -> (PackedInst, u64) {
        self.trace.entry(seq)
    }

    /// The branch payload of the record at `seq`, addressed by the sidecar
    /// index the caller read from the packed record. Only records with
    /// [`PackedInst::has_branch`] carry one.
    #[inline]
    pub fn branch_at(&self, seq: u64, aux: u16) -> smt_isa::BranchInfo {
        self.trace.branch_payload(seq, aux)
    }

    /// The full trace record (packed core + cold payloads) at `seq`
    /// (test-only; the pipeline reads the split views above).
    #[cfg(test)]
    pub fn record_at(&mut self, seq: u64) -> smt_workloads::TraceRecord {
        self.trace.record(seq)
    }

    /// The packed core alone at `seq` (squash notifications don't need the
    /// cold payloads).
    #[inline]
    pub fn packed_at(&mut self, seq: u64) -> PackedInst {
        self.trace.packed(seq)
    }

    /// Number of instructions currently in the fetch queue (stage Fetched).
    #[inline]
    pub fn fetch_queue_len(&self) -> usize {
        // Fetched instructions are always the window's tail.
        (self.next_fetch - self.next_dispatch) as usize
    }

    /// The trace store, for phase/profile/decorrelation queries.
    pub fn trace(&self) -> &ThreadTrace {
        &self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::resolve_deps;

    fn thread() -> ThreadState {
        let p = smt_workloads::spec::profile("gzip").unwrap();
        let span = 512 + 16;
        ThreadState::new(ThreadTrace::new(p, 1, 0, span as u64), span)
    }

    /// Fetches seq `s` into the window with uid `uid`.
    fn push(t: &mut ThreadState, s: u64, uid: u64) {
        let (p, addr) = t.fetch_entry(s);
        let deps = resolve_deps(&p, s);
        t.push_fetched(crate::inst::DynInst::fetched(uid, &p, addr, 0, 0), deps);
    }

    #[test]
    fn replay_is_identical() {
        let mut t = thread();
        let a: Vec<_> = (0..50).map(|s| t.record_at(s)).collect();
        let b: Vec<_> = (0..50).map(|s| t.record_at(s)).collect();
        assert_eq!(a, b, "replayed instructions must be bit-identical");
    }

    #[test]
    fn reset_replays_the_same_workload_from_seq_zero() {
        let p = smt_workloads::spec::profile("gzip").unwrap();
        let mut t = thread();
        let a: Vec<_> = (0..100).map(|s| t.record_at(s)).collect();
        t.reset(p, 1, 0);
        assert!(t.window_is_empty());
        let b: Vec<_> = (0..100).map(|s| t.record_at(s)).collect();
        assert_eq!(a, b, "same-key reset must replay identically");
        // A different seed restarts the stream.
        t.reset(p, 2, 0);
        let c: Vec<_> = (0..100).map(|s| t.record_at(s)).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn waiter_pool_recycles_nodes() {
        let mut t = thread();
        for s in 0..3u64 {
            push(&mut t, s, s + 1);
        }
        // Two consumers wait on producer 0, one on producer 1.
        t.register_waiter(0, 1, 2);
        t.register_waiter(0, 2, 3);
        t.register_waiter(1, 2, 3);
        assert_eq!(t.waiter_pool.len(), 3);

        // Walking producer 0's list yields its waiters (LIFO) and recycles.
        let mut node = t.detach_waiters(0);
        let mut seen = Vec::new();
        while node != NO_WAITER {
            let (w, next) = t.take_waiter(node);
            seen.push(w.seq);
            node = next;
        }
        assert_eq!(seen, vec![2, 1]);
        assert_eq!(t.get(0).unwrap().waiters_head, NO_WAITER);

        // New registrations reuse the freed slots instead of growing.
        t.register_waiter(1, 2, 3);
        t.register_waiter(1, 2, 3);
        assert_eq!(t.waiter_pool.len(), 3);
        let head = t.detach_waiters(1);
        t.free_waiters(head);
        assert_eq!(t.waiter_pool.len(), 3);
    }

    #[test]
    fn window_lookup_by_seq() {
        let mut t = thread();
        // Advance the window base to 10 by fetching and retiring 10 insts.
        for s in 0..15u64 {
            push(&mut t, s, s);
        }
        t.advance_base_by(10);
        assert_eq!(t.window_base(), Some(10));
        assert_eq!(t.get(12).unwrap().uid, 12, "uids track the pushed seqs");
        assert!(t.get(9).is_none());
        assert!(t.get(15).is_none());
        t.get_mut(14).unwrap().set_mispredicted();
        assert!(t.get(14).unwrap().mispredicted());
    }

    #[test]
    fn stage_and_deps_lanes_track_the_window() {
        let mut t = thread();
        for s in 0..4u64 {
            push(&mut t, s, s + 1);
        }
        assert_eq!(t.stage_of(2), Stage::Fetched);
        t.set_stage(2, Stage::Dispatched);
        assert_eq!(t.stage_of(2), Stage::Dispatched);
        assert_eq!(t.stage_of(3), Stage::Fetched, "other lanes untouched");
        // The deps lane holds what resolve_deps computed at push time.
        let p = t.record_at(2).packed;
        assert_eq!(t.deps_of(2), resolve_deps(&p, 2));
        // A committable run requires Done stages from the base.
        assert_eq!(t.done_run_len(8), 0);
        t.set_stage(0, Stage::Done);
        t.set_stage(1, Stage::Done);
        assert_eq!(t.done_run_len(8), 2);
        assert_eq!(t.done_run_len(1), 1, "run is capped at the budget");
    }

    #[test]
    fn ring_wraps_without_aliasing() {
        let mut t = thread();
        // Push and retire far past the ring capacity; lookups must always
        // resolve to the live incarnation.
        for s in 0..5_000u64 {
            push(&mut t, s, s + 7);
            if s >= 100 {
                t.advance_base_by(1);
            }
        }
        assert_eq!(t.window_len(), 100);
        assert_eq!(t.window_base(), Some(4900));
        assert_eq!(t.at(4950).uid, 4957);
        assert!(t.get(4899).is_none(), "retired seq must be out of range");
    }
}
