//! Per-hardware-thread simulator state.

use crate::inst::DynInst;
use smt_isa::DecodedInst;
use smt_workloads::TraceGenerator;

/// Sentinel for "no waiter node" in the per-thread wakeup pool.
pub(crate) const NO_WAITER: u32 = u32::MAX;

/// One node of a producer's consumer wait-list: a consumer instruction
/// (identified by `seq` + `uid`, so squashed incarnations are recognised
/// as stale) and the next node of the same producer's list.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Waiter {
    pub seq: u64,
    pub uid: u64,
    pub next: u32,
}

/// State of one hardware context: its trace generator with a replay buffer
/// (squashed instructions are re-fetched, and must decode identically), the
/// in-flight instruction window and the thread's blocking conditions.
///
/// Both the instruction window and the replay buffer are power-of-two
/// *sequence-indexed rings*: element `seq` lives at slot `seq & mask`,
/// so every hot-path lookup is one mask and one indexed load — no
/// front-pointer chasing, no base subtraction, no `VecDeque` two-slice
/// arithmetic. Capacities are fixed at construction from the machine's
/// ROB and fetch-queue bounds (the window can never hold more than
/// `rob_entries + fetch_queue` instructions, and the replay buffer never
/// retains more than the window span), so the rings never grow.
#[derive(Debug)]
pub(crate) struct ThreadState {
    gen: TraceGenerator,
    /// Ring of decoded records for seqs `[buffer_base, buffer_tip)`.
    buffer: Vec<DecodedInst>,
    buf_mask: u64,
    /// Oldest retained decoded seq.
    buffer_base: u64,
    /// One past the newest generated seq.
    buffer_tip: u64,
    /// Next sequence number to fetch (rewinds on squash). The in-flight
    /// window spans `[win_base, next_fetch)`.
    pub next_fetch: u64,
    /// Next sequence number to dispatch, always ≥ the window base.
    pub next_dispatch: u64,
    /// Ring of in-flight instructions for seqs `[win_base, next_fetch)`.
    window: Vec<DynInst>,
    win_mask: u64,
    /// Oldest in-flight seq (the commit point).
    win_base: u64,
    /// I-cache miss or fetch-redirect bubble: no fetch until this cycle.
    pub icache_stall_until: u64,
    /// Line address of an in-flight instruction-cache fill. When the stall
    /// expires, the arriving line is consumed directly by the fetch unit —
    /// without this, a line conflict-evicted during the stall would force
    /// a re-miss, and three threads sharing a 2-way I-cache set could
    /// livelock evicting each other's fills forever.
    pub pending_inst_fill: Option<u64>,
    /// Fetch stalled until this load commits its miss (STALL/FLUSH action).
    pub stall_on_load: Option<u64>,
    /// Incrementally maintained per-thread counters.
    pub pre_issue: u32,
    pub l1d_pending: u32,
    pub l2_pending: u32,
    /// Slab of wakeup wait-list nodes; freed nodes are recycled through
    /// `free_waiter_head`, so steady-state wakeup is allocation-free.
    waiter_pool: Vec<Waiter>,
    free_waiter_head: u32,
}

impl ThreadState {
    /// Builds a thread whose window can hold `window_span` in-flight
    /// instructions (`rob_entries + fetch_queue` for the machine at hand).
    pub fn new(gen: TraceGenerator, window_span: usize) -> Self {
        let cap = (window_span + 1).next_power_of_two();
        ThreadState {
            gen,
            buffer: vec![DecodedInst::placeholder(); cap],
            buf_mask: cap as u64 - 1,
            buffer_base: 0,
            buffer_tip: 0,
            next_fetch: 0,
            next_dispatch: 0,
            window: vec![DynInst::placeholder(); cap],
            win_mask: cap as u64 - 1,
            win_base: 0,
            icache_stall_until: 0,
            pending_inst_fill: None,
            stall_on_load: None,
            pre_issue: 0,
            l1d_pending: 0,
            l2_pending: 0,
            waiter_pool: Vec::new(),
            free_waiter_head: NO_WAITER,
        }
    }

    /// Re-initialises the thread for a fresh run on a new trace, keeping
    /// the ring and waiter-pool allocations. State after the call is
    /// indistinguishable from [`ThreadState::new`] with the same generator
    /// (stale ring slots are unreachable: every lookup is bounds-guarded
    /// by `[base, tip)`, and slots are always written before re-entering
    /// the live range).
    pub fn reset(&mut self, gen: TraceGenerator) {
        self.gen = gen;
        self.buffer_base = 0;
        self.buffer_tip = 0;
        self.next_fetch = 0;
        self.next_dispatch = 0;
        self.win_base = 0;
        self.icache_stall_until = 0;
        self.pending_inst_fill = None;
        self.stall_on_load = None;
        self.pre_issue = 0;
        self.l1d_pending = 0;
        self.l2_pending = 0;
        self.waiter_pool.clear();
        self.free_waiter_head = NO_WAITER;
    }

    // -------------------------------------------------------------- window

    /// Sequence number of the oldest in-flight instruction.
    #[inline]
    pub fn window_base(&self) -> Option<u64> {
        (self.win_base < self.next_fetch).then_some(self.win_base)
    }

    /// `true` when no instructions are in flight.
    #[inline]
    pub fn window_is_empty(&self) -> bool {
        self.win_base == self.next_fetch
    }

    /// Number of in-flight instructions.
    #[inline]
    pub fn window_len(&self) -> usize {
        (self.next_fetch - self.win_base) as usize
    }

    /// Direct slot access for a seq known to be in flight.
    #[inline]
    pub fn at(&self, seq: u64) -> &DynInst {
        debug_assert!(self.win_base <= seq && seq < self.next_fetch);
        &self.window[(seq & self.win_mask) as usize]
    }

    /// Mutable direct slot access for a seq known to be in flight.
    #[inline]
    pub fn at_mut(&mut self, seq: u64) -> &mut DynInst {
        debug_assert!(self.win_base <= seq && seq < self.next_fetch);
        &mut self.window[(seq & self.win_mask) as usize]
    }

    /// Looks up an in-flight instruction by sequence number.
    #[inline]
    pub fn get(&self, seq: u64) -> Option<&DynInst> {
        (self.win_base <= seq && seq < self.next_fetch)
            .then(|| &self.window[(seq & self.win_mask) as usize])
    }

    /// Mutable lookup by sequence number.
    #[inline]
    pub fn get_mut(&mut self, seq: u64) -> Option<&mut DynInst> {
        (self.win_base <= seq && seq < self.next_fetch)
            .then(|| &mut self.window[(seq & self.win_mask) as usize])
    }

    /// Appends a freshly fetched instruction (its `seq` must be
    /// `next_fetch`) and advances the fetch tip.
    #[inline]
    pub fn push_fetched(&mut self, inst: DynInst) {
        debug_assert_eq!(inst.seq, self.next_fetch);
        debug_assert!(self.window_len() < self.window.len(), "window ring full");
        let slot = (inst.seq & self.win_mask) as usize;
        self.window[slot] = inst;
        self.next_fetch += 1;
    }

    /// Advances the commit point past the oldest in-flight instruction
    /// (which the caller has just retired).
    #[inline]
    pub fn advance_base(&mut self) {
        debug_assert!(!self.window_is_empty());
        self.win_base += 1;
    }

    /// Iterates the in-flight instructions oldest-first (diagnostics).
    pub fn window_iter(&self) -> impl Iterator<Item = &DynInst> {
        (self.win_base..self.next_fetch).map(|s| &self.window[(s & self.win_mask) as usize])
    }

    /// Drops the youngest in-flight instruction (squash path) and returns
    /// a copy of it. The fetch tip moves down; the caller rewinds
    /// `next_fetch`/`next_dispatch` bookkeeping itself.
    #[inline]
    pub fn pop_youngest(&mut self) -> DynInst {
        debug_assert!(!self.window_is_empty());
        self.next_fetch -= 1;
        self.window[(self.next_fetch & self.win_mask) as usize].clone()
    }

    // ------------------------------------------------------- wakeup waiters

    /// Registers `(consumer_seq, consumer_uid)` on the wait-list of the
    /// in-flight producer `producer_seq`. The producer's completion (or
    /// squash) releases the node.
    pub fn register_waiter(&mut self, producer_seq: u64, consumer_seq: u64, consumer_uid: u64) {
        let head = self.at(producer_seq).waiters_head;
        let node = Waiter {
            seq: consumer_seq,
            uid: consumer_uid,
            next: head,
        };
        let idx = if self.free_waiter_head != NO_WAITER {
            let idx = self.free_waiter_head;
            self.free_waiter_head = self.waiter_pool[idx as usize].next;
            self.waiter_pool[idx as usize] = node;
            idx
        } else {
            let idx = u32::try_from(self.waiter_pool.len()).expect("waiter pool overflow");
            self.waiter_pool.push(node);
            idx
        };
        self.at_mut(producer_seq).waiters_head = idx;
    }

    /// Detaches and returns the wait-list head of the in-flight producer
    /// `seq` (leaving the producer's list empty). Walk it with
    /// [`Self::take_waiter`].
    pub fn detach_waiters(&mut self, seq: u64) -> u32 {
        std::mem::replace(&mut self.at_mut(seq).waiters_head, NO_WAITER)
    }

    /// Consumes one node of a detached wait-list: recycles it into the
    /// free list and returns `(waiter, next_node)`.
    pub fn take_waiter(&mut self, node: u32) -> (Waiter, u32) {
        let w = self.waiter_pool[node as usize];
        self.waiter_pool[node as usize].next = self.free_waiter_head;
        self.free_waiter_head = node;
        (w, w.next)
    }

    /// Frees an entire detached wait-list (used when a producer is
    /// squashed before completing).
    pub fn free_waiters(&mut self, mut node: u32) {
        while node != NO_WAITER {
            let (_, next) = self.take_waiter(node);
            node = next;
        }
    }

    // -------------------------------------------------------- replay buffer

    /// The decoded instruction at `seq`, generating forward as needed.
    /// Re-fetching a squashed sequence number returns the identical record.
    #[inline]
    pub fn inst_at(&mut self, seq: u64) -> DecodedInst {
        debug_assert!(seq >= self.buffer_base, "instruction already retired");
        while self.buffer_tip <= seq {
            debug_assert!(
                self.buffer_tip - self.buffer_base <= self.buf_mask,
                "replay ring full"
            );
            let inst = self.gen.next_inst();
            self.buffer[(self.buffer_tip & self.buf_mask) as usize] = inst;
            self.buffer_tip += 1;
        }
        self.buffer[(seq & self.buf_mask) as usize]
    }

    /// The decoded record of an instruction still in the replay buffer
    /// (anything at or above the commit point — in particular every
    /// in-flight or just-squashed instruction).
    #[inline]
    pub fn decoded_at(&self, seq: u64) -> DecodedInst {
        debug_assert!(
            seq >= self.buffer_base && seq < self.buffer_tip,
            "decoded record not resident (seq {seq}, [{}, {}))",
            self.buffer_base,
            self.buffer_tip
        );
        self.buffer[(seq & self.buf_mask) as usize]
    }

    /// Drops replay entries up to and including `seq` (called at commit).
    /// Retiring past the generated range (a gap) simply empties the
    /// buffer; the stream continues from the generation tip.
    #[inline]
    pub fn retire_buffer(&mut self, seq: u64) {
        if seq < self.buffer_base {
            return;
        }
        self.buffer_base = (seq + 1).min(self.buffer_tip);
    }

    /// Number of instructions currently in the fetch queue (stage Fetched).
    #[inline]
    pub fn fetch_queue_len(&self) -> usize {
        // Fetched instructions are always the window's tail.
        (self.next_fetch - self.next_dispatch) as usize
    }

    /// The generator, for phase/profile queries.
    pub fn generator(&self) -> &TraceGenerator {
        &self.gen
    }

    /// Test hook: number of live replay-buffer entries.
    #[cfg(test)]
    fn buffer_len(&self) -> usize {
        (self.buffer_tip - self.buffer_base) as usize
    }

    /// Test hook: oldest retained decoded seq.
    #[cfg(test)]
    fn buffer_base(&self) -> u64 {
        self.buffer_base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn thread() -> ThreadState {
        let p = smt_workloads::spec::profile("gzip").unwrap();
        ThreadState::new(TraceGenerator::new(p, 1, 0), 512 + 16)
    }

    #[test]
    fn replay_is_identical() {
        let mut t = thread();
        let a: Vec<_> = (0..50).map(|s| t.inst_at(s)).collect();
        let b: Vec<_> = (0..50).map(|s| t.inst_at(s)).collect();
        assert_eq!(a, b, "replayed instructions must be bit-identical");
    }

    #[test]
    fn retire_frees_buffer() {
        let mut t = thread();
        let _ = t.inst_at(99);
        assert_eq!(t.buffer_len(), 100);
        t.retire_buffer(49);
        assert_eq!(t.buffer_base(), 50);
        assert_eq!(t.buffer_len(), 50);
        // Still replayable beyond the retired point.
        let _ = t.inst_at(75);
    }

    #[test]
    fn retire_past_a_gap_empties_the_buffer() {
        let mut t = thread();
        let _ = t.inst_at(9); // buffer holds seqs 0..=9
        assert_eq!(t.buffer_len(), 10);
        // Retire far beyond the buffered range: everything buffered goes,
        // and the base lands just past the last buffered entry (not at the
        // retired seq), so the next fetch regenerates from there.
        t.retire_buffer(1_000);
        assert_eq!(t.buffer_len(), 0);
        assert_eq!(t.buffer_base(), 10);
        // Retiring below the base is a no-op.
        t.retire_buffer(3);
        assert_eq!(t.buffer_base(), 10);
        // The stream continues identically after the jump.
        let a = t.inst_at(10);
        let b = t.inst_at(10);
        assert_eq!(a, b);
    }

    #[test]
    fn waiter_pool_recycles_nodes() {
        let mut t = thread();
        for s in 0..3u64 {
            let d = t.inst_at(s);
            t.push_fetched(crate::inst::DynInst::fetched(s, s + 1, &d, 0, 0));
        }
        // Two consumers wait on producer 0, one on producer 1.
        t.register_waiter(0, 1, 2);
        t.register_waiter(0, 2, 3);
        t.register_waiter(1, 2, 3);
        assert_eq!(t.waiter_pool.len(), 3);

        // Walking producer 0's list yields its waiters (LIFO) and recycles.
        let mut node = t.detach_waiters(0);
        let mut seen = Vec::new();
        while node != NO_WAITER {
            let (w, next) = t.take_waiter(node);
            seen.push(w.seq);
            node = next;
        }
        assert_eq!(seen, vec![2, 1]);
        assert_eq!(t.get(0).unwrap().waiters_head, NO_WAITER);

        // New registrations reuse the freed slots instead of growing.
        t.register_waiter(1, 2, 3);
        t.register_waiter(1, 2, 3);
        assert_eq!(t.waiter_pool.len(), 3);
        let head = t.detach_waiters(1);
        t.free_waiters(head);
        assert_eq!(t.waiter_pool.len(), 3);
    }

    #[test]
    fn window_lookup_by_seq() {
        let mut t = thread();
        // Advance the window base to 10 by fetching and retiring 10 insts.
        for s in 0..15u64 {
            let d = t.inst_at(s);
            t.push_fetched(crate::inst::DynInst::fetched(s, s, &d, 0, 0));
        }
        for _ in 0..10 {
            t.advance_base();
        }
        assert_eq!(t.window_base(), Some(10));
        assert_eq!(t.get(12).unwrap().seq, 12);
        assert!(t.get(9).is_none());
        assert!(t.get(15).is_none());
        t.get_mut(14).unwrap().mispredicted = true;
        assert!(t.get(14).unwrap().mispredicted);
    }

    #[test]
    fn ring_wraps_without_aliasing() {
        let mut t = thread();
        // Push and retire far past the ring capacity; lookups must always
        // resolve to the live incarnation.
        for s in 0..5_000u64 {
            let d = t.inst_at(s);
            t.push_fetched(crate::inst::DynInst::fetched(s, s + 7, &d, 0, 0));
            if s >= 100 {
                t.retire_buffer(s - 100);
                t.advance_base();
            }
        }
        assert_eq!(t.window_len(), 100);
        assert_eq!(t.window_base(), Some(4900));
        assert_eq!(t.at(4950).seq, 4950);
        assert_eq!(t.at(4950).uid, 4957);
        assert!(t.get(4899).is_none(), "retired seq must be out of range");
    }
}
