//! Per-hardware-thread simulator state.

use crate::inst::DynInst;
use smt_isa::DecodedInst;
use smt_workloads::TraceGenerator;
use std::collections::VecDeque;

/// State of one hardware context: its trace generator with a replay buffer
/// (squashed instructions are re-fetched, and must decode identically), the
/// in-flight instruction window and the thread's blocking conditions.
#[derive(Debug)]
pub(crate) struct ThreadState {
    gen: TraceGenerator,
    /// Decoded instructions for sequence numbers `buffer_base ..`.
    buffer: VecDeque<DecodedInst>,
    buffer_base: u64,
    /// Next sequence number to fetch (rewinds on squash).
    pub next_fetch: u64,
    /// Next sequence number to dispatch, always ≥ the window base.
    pub next_dispatch: u64,
    /// In-flight instructions, contiguous by `seq`.
    pub window: VecDeque<DynInst>,
    /// I-cache miss or fetch-redirect bubble: no fetch until this cycle.
    pub icache_stall_until: u64,
    /// Line address of an in-flight instruction-cache fill. When the stall
    /// expires, the arriving line is consumed directly by the fetch unit —
    /// without this, a line conflict-evicted during the stall would force
    /// a re-miss, and three threads sharing a 2-way I-cache set could
    /// livelock evicting each other's fills forever.
    pub pending_inst_fill: Option<u64>,
    /// Fetch stalled until this load commits its miss (STALL/FLUSH action).
    pub stall_on_load: Option<u64>,
    /// Incrementally maintained per-thread counters.
    pub pre_issue: u32,
    pub l1d_pending: u32,
    pub l2_pending: u32,
}

impl ThreadState {
    pub fn new(gen: TraceGenerator) -> Self {
        ThreadState {
            gen,
            buffer: VecDeque::new(),
            buffer_base: 0,
            next_fetch: 0,
            next_dispatch: 0,
            window: VecDeque::new(),
            icache_stall_until: 0,
            pending_inst_fill: None,
            stall_on_load: None,
            pre_issue: 0,
            l1d_pending: 0,
            l2_pending: 0,
        }
    }

    /// The decoded instruction at `seq`, generating forward as needed.
    /// Re-fetching a squashed sequence number returns the identical record.
    pub fn inst_at(&mut self, seq: u64) -> DecodedInst {
        debug_assert!(seq >= self.buffer_base, "instruction already retired");
        while self.buffer_base + self.buffer.len() as u64 <= seq {
            let inst = self.gen.next_inst();
            self.buffer.push_back(inst);
        }
        self.buffer[(seq - self.buffer_base) as usize]
    }

    /// Drops replay entries up to and including `seq` (called at commit).
    pub fn retire_buffer(&mut self, seq: u64) {
        while self.buffer_base <= seq && !self.buffer.is_empty() {
            self.buffer.pop_front();
            self.buffer_base += 1;
        }
    }

    /// Sequence number of the oldest in-flight instruction.
    pub fn window_base(&self) -> Option<u64> {
        self.window.front().map(|i| i.seq)
    }

    /// Looks up an in-flight instruction by sequence number.
    pub fn get(&self, seq: u64) -> Option<&DynInst> {
        let base = self.window_base()?;
        if seq < base {
            return None;
        }
        self.window.get((seq - base) as usize)
    }

    /// Mutable lookup by sequence number.
    pub fn get_mut(&mut self, seq: u64) -> Option<&mut DynInst> {
        let base = self.window_base()?;
        if seq < base {
            return None;
        }
        self.window.get_mut((seq - base) as usize)
    }

    /// Number of instructions currently in the fetch queue (stage Fetched).
    pub fn fetch_queue_len(&self) -> usize {
        // Fetched instructions are always the window's tail.
        (self.next_fetch - self.next_dispatch) as usize
    }

    /// The generator, for phase/profile queries.
    pub fn generator(&self) -> &TraceGenerator {
        &self.gen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_workloads::{spec, TraceGenerator};

    fn thread() -> ThreadState {
        let p = spec::profile("gzip").unwrap();
        ThreadState::new(TraceGenerator::new(p, 1, 0))
    }

    #[test]
    fn replay_is_identical() {
        let mut t = thread();
        let a: Vec<_> = (0..50).map(|s| t.inst_at(s)).collect();
        let b: Vec<_> = (0..50).map(|s| t.inst_at(s)).collect();
        assert_eq!(a, b, "replayed instructions must be bit-identical");
    }

    #[test]
    fn retire_frees_buffer() {
        let mut t = thread();
        let _ = t.inst_at(99);
        assert_eq!(t.buffer.len(), 100);
        t.retire_buffer(49);
        assert_eq!(t.buffer_base, 50);
        assert_eq!(t.buffer.len(), 50);
        // Still replayable beyond the retired point.
        let _ = t.inst_at(75);
    }

    #[test]
    fn window_lookup_by_seq() {
        let mut t = thread();
        for s in 10..15u64 {
            let d = t.inst_at(s);
            t.window
                .push_back(crate::inst::DynInst::fetched(s, s, d, 0, 0));
        }
        assert_eq!(t.window_base(), Some(10));
        assert_eq!(t.get(12).unwrap().seq, 12);
        assert!(t.get(9).is_none());
        assert!(t.get(15).is_none());
        t.get_mut(14).unwrap().mispredicted = true;
        assert!(t.get(14).unwrap().mispredicted);
    }
}
