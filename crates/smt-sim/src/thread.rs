//! Per-hardware-thread simulator state.

use crate::inst::DynInst;
use smt_isa::DecodedInst;
use smt_workloads::TraceGenerator;
use std::collections::VecDeque;

/// Sentinel for "no waiter node" in the per-thread wakeup pool.
pub(crate) const NO_WAITER: u32 = u32::MAX;

/// One node of a producer's consumer wait-list: a consumer instruction
/// (identified by `seq` + `uid`, so squashed incarnations are recognised
/// as stale) and the next node of the same producer's list.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Waiter {
    pub seq: u64,
    pub uid: u64,
    pub next: u32,
}

/// State of one hardware context: its trace generator with a replay buffer
/// (squashed instructions are re-fetched, and must decode identically), the
/// in-flight instruction window and the thread's blocking conditions.
#[derive(Debug)]
pub(crate) struct ThreadState {
    gen: TraceGenerator,
    /// Decoded instructions for sequence numbers `buffer_base ..`.
    buffer: VecDeque<DecodedInst>,
    buffer_base: u64,
    /// Next sequence number to fetch (rewinds on squash).
    pub next_fetch: u64,
    /// Next sequence number to dispatch, always ≥ the window base.
    pub next_dispatch: u64,
    /// In-flight instructions, contiguous by `seq`.
    pub window: VecDeque<DynInst>,
    /// I-cache miss or fetch-redirect bubble: no fetch until this cycle.
    pub icache_stall_until: u64,
    /// Line address of an in-flight instruction-cache fill. When the stall
    /// expires, the arriving line is consumed directly by the fetch unit —
    /// without this, a line conflict-evicted during the stall would force
    /// a re-miss, and three threads sharing a 2-way I-cache set could
    /// livelock evicting each other's fills forever.
    pub pending_inst_fill: Option<u64>,
    /// Fetch stalled until this load commits its miss (STALL/FLUSH action).
    pub stall_on_load: Option<u64>,
    /// Incrementally maintained per-thread counters.
    pub pre_issue: u32,
    pub l1d_pending: u32,
    pub l2_pending: u32,
    /// Slab of wakeup wait-list nodes; freed nodes are recycled through
    /// `free_waiter_head`, so steady-state wakeup is allocation-free.
    waiter_pool: Vec<Waiter>,
    free_waiter_head: u32,
}

impl ThreadState {
    pub fn new(gen: TraceGenerator) -> Self {
        ThreadState {
            gen,
            buffer: VecDeque::new(),
            buffer_base: 0,
            next_fetch: 0,
            next_dispatch: 0,
            window: VecDeque::new(),
            icache_stall_until: 0,
            pending_inst_fill: None,
            stall_on_load: None,
            pre_issue: 0,
            l1d_pending: 0,
            l2_pending: 0,
            waiter_pool: Vec::new(),
            free_waiter_head: NO_WAITER,
        }
    }

    // ------------------------------------------------------- wakeup waiters

    /// Registers `(consumer_seq, consumer_uid)` on the wait-list of the
    /// in-flight producer in window slot `producer_idx` (the dispatch loop
    /// resolves the window base once per instruction). The producer's
    /// completion (or squash) releases the node.
    pub fn register_waiter_at(
        &mut self,
        producer_idx: usize,
        consumer_seq: u64,
        consumer_uid: u64,
    ) {
        let node = Waiter {
            seq: consumer_seq,
            uid: consumer_uid,
            next: self.window[producer_idx].waiters_head,
        };
        let idx = if self.free_waiter_head != NO_WAITER {
            let idx = self.free_waiter_head;
            self.free_waiter_head = self.waiter_pool[idx as usize].next;
            self.waiter_pool[idx as usize] = node;
            idx
        } else {
            let idx = u32::try_from(self.waiter_pool.len()).expect("waiter pool overflow");
            self.waiter_pool.push(node);
            idx
        };
        self.window[producer_idx].waiters_head = idx;
    }

    /// Detaches and returns the wait-list head of the producer in window
    /// slot `idx` (leaving the producer's list empty). Walk it with
    /// [`Self::take_waiter`].
    pub fn detach_waiters_at(&mut self, idx: usize) -> u32 {
        std::mem::replace(&mut self.window[idx].waiters_head, NO_WAITER)
    }

    /// Consumes one node of a detached wait-list: recycles it into the
    /// free list and returns `(waiter, next_node)`.
    pub fn take_waiter(&mut self, node: u32) -> (Waiter, u32) {
        let w = self.waiter_pool[node as usize];
        self.waiter_pool[node as usize].next = self.free_waiter_head;
        self.free_waiter_head = node;
        (w, w.next)
    }

    /// Frees an entire detached wait-list (used when a producer is
    /// squashed before completing).
    pub fn free_waiters(&mut self, mut node: u32) {
        while node != NO_WAITER {
            let (_, next) = self.take_waiter(node);
            node = next;
        }
    }

    /// The decoded instruction at `seq`, generating forward as needed.
    /// Re-fetching a squashed sequence number returns the identical record.
    #[inline]
    pub fn inst_at(&mut self, seq: u64) -> DecodedInst {
        debug_assert!(seq >= self.buffer_base, "instruction already retired");
        while self.buffer_base + self.buffer.len() as u64 <= seq {
            let inst = self.gen.next_inst();
            self.buffer.push_back(inst);
        }
        self.buffer[(seq - self.buffer_base) as usize]
    }

    /// Drops replay entries up to and including `seq` (called at commit):
    /// one bulk `drain` plus a `buffer_base` jump, not an entry-at-a-time
    /// pop loop. Retiring past the buffered range (a gap) simply empties
    /// the buffer.
    pub fn retire_buffer(&mut self, seq: u64) {
        if seq < self.buffer_base {
            return;
        }
        let n = usize::try_from(seq + 1 - self.buffer_base)
            .unwrap_or(usize::MAX)
            .min(self.buffer.len());
        if n == 1 {
            // In-order commit retires one entry at a time; skip the
            // drain-iterator machinery on that hot path.
            self.buffer.pop_front();
        } else {
            self.buffer.drain(..n);
        }
        self.buffer_base += n as u64;
    }

    /// Sequence number of the oldest in-flight instruction.
    #[inline]
    pub fn window_base(&self) -> Option<u64> {
        self.window.front().map(|i| i.seq)
    }

    /// Looks up an in-flight instruction by sequence number.
    #[inline]
    pub fn get(&self, seq: u64) -> Option<&DynInst> {
        let base = self.window_base()?;
        if seq < base {
            return None;
        }
        self.window.get((seq - base) as usize)
    }

    /// Mutable lookup by sequence number.
    #[inline]
    pub fn get_mut(&mut self, seq: u64) -> Option<&mut DynInst> {
        let base = self.window_base()?;
        if seq < base {
            return None;
        }
        self.window.get_mut((seq - base) as usize)
    }

    /// Number of instructions currently in the fetch queue (stage Fetched).
    #[inline]
    pub fn fetch_queue_len(&self) -> usize {
        // Fetched instructions are always the window's tail.
        (self.next_fetch - self.next_dispatch) as usize
    }

    /// The generator, for phase/profile queries.
    pub fn generator(&self) -> &TraceGenerator {
        &self.gen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_workloads::{spec, TraceGenerator};

    fn thread() -> ThreadState {
        let p = spec::profile("gzip").unwrap();
        ThreadState::new(TraceGenerator::new(p, 1, 0))
    }

    #[test]
    fn replay_is_identical() {
        let mut t = thread();
        let a: Vec<_> = (0..50).map(|s| t.inst_at(s)).collect();
        let b: Vec<_> = (0..50).map(|s| t.inst_at(s)).collect();
        assert_eq!(a, b, "replayed instructions must be bit-identical");
    }

    #[test]
    fn retire_frees_buffer() {
        let mut t = thread();
        let _ = t.inst_at(99);
        assert_eq!(t.buffer.len(), 100);
        t.retire_buffer(49);
        assert_eq!(t.buffer_base, 50);
        assert_eq!(t.buffer.len(), 50);
        // Still replayable beyond the retired point.
        let _ = t.inst_at(75);
    }

    #[test]
    fn retire_past_a_gap_empties_the_buffer() {
        let mut t = thread();
        let _ = t.inst_at(9); // buffer holds seqs 0..=9
        assert_eq!(t.buffer.len(), 10);
        // Retire far beyond the buffered range: everything buffered goes,
        // and the base lands just past the last buffered entry (not at the
        // retired seq), so the next fetch regenerates from there.
        t.retire_buffer(1_000);
        assert!(t.buffer.is_empty());
        assert_eq!(t.buffer_base, 10);
        // Retiring below the base is a no-op.
        t.retire_buffer(3);
        assert_eq!(t.buffer_base, 10);
        // The stream continues identically after the jump.
        let a = t.inst_at(10);
        let b = t.inst_at(10);
        assert_eq!(a, b);
    }

    #[test]
    fn waiter_pool_recycles_nodes() {
        let mut t = thread();
        for s in 0..3u64 {
            let d = t.inst_at(s);
            t.window
                .push_back(crate::inst::DynInst::fetched(s, s + 1, d, 0, 0));
        }
        // Two consumers wait on producer 0, one on producer 1 (the window
        // base is 0, so slots coincide with sequence numbers here).
        t.register_waiter_at(0, 1, 2);
        t.register_waiter_at(0, 2, 3);
        t.register_waiter_at(1, 2, 3);
        assert_eq!(t.waiter_pool.len(), 3);

        // Walking producer 0's list yields its waiters (LIFO) and recycles.
        let mut node = t.detach_waiters_at(0);
        let mut seen = Vec::new();
        while node != NO_WAITER {
            let (w, next) = t.take_waiter(node);
            seen.push(w.seq);
            node = next;
        }
        assert_eq!(seen, vec![2, 1]);
        assert_eq!(t.get(0).unwrap().waiters_head, NO_WAITER);

        // New registrations reuse the freed slots instead of growing.
        t.register_waiter_at(1, 2, 3);
        t.register_waiter_at(1, 2, 3);
        assert_eq!(t.waiter_pool.len(), 3);
        let head = t.detach_waiters_at(1);
        t.free_waiters(head);
        assert_eq!(t.waiter_pool.len(), 3);
    }

    #[test]
    fn window_lookup_by_seq() {
        let mut t = thread();
        for s in 10..15u64 {
            let d = t.inst_at(s);
            t.window
                .push_back(crate::inst::DynInst::fetched(s, s, d, 0, 0));
        }
        assert_eq!(t.window_base(), Some(10));
        assert_eq!(t.get(12).unwrap().seq, 12);
        assert!(t.get(9).is_none());
        assert!(t.get(15).is_none());
        t.get_mut(14).unwrap().mispredicted = true;
        assert!(t.get(14).unwrap().mispredicted);
    }
}
