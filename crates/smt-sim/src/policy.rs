//! The policy interface re-exported from `smt-policy-core`, plus the
//! statically-dispatched [`AnyPolicy`] the simulator's cycle loop runs.
//!
//! The trait and the per-cycle views live in the `smt-policy-core` crate
//! (below the concrete policy crates in the dependency graph); this module
//! remains the canonical import path. The simulator itself stores an
//! [`AnyPolicy`]: an enum over the nine concrete policies of the paper's
//! evaluation, so the ~20 policy callbacks per cycle are direct (inlineable)
//! calls instead of virtual dispatch through a `Box<dyn Policy>`. Policies
//! outside the canonical nine still plug in through the
//! [`AnyPolicy::Boxed`] escape hatch.

pub use smt_policy_core::{CycleView, MissResponse, Policy, RoundRobin, ThreadView};

use smt_isa::{PackedInst, QueueKind, RegClass, ThreadId};
use smt_mem::HitLevel;

/// The nine canonical policies of the paper's evaluation, dispatched
/// statically, plus a boxed escape hatch for external [`Policy`]
/// implementations.
///
/// Every [`Policy`] callback fans out through a single `match`, so in the
/// release build the concrete policy code inlines straight into the
/// simulator's cycle loop — no virtual calls on the hot path.
///
/// # Examples
///
/// ```
/// use smt_sim::policy::{AnyPolicy, Policy};
///
/// let p = AnyPolicy::from(smt_policies::Icount);
/// assert_eq!(p.name(), "ICOUNT");
/// // External policies use the boxed escape hatch.
/// let boxed: Box<dyn Policy> = Box::new(smt_sim::policy::RoundRobin::default());
/// assert_eq!(AnyPolicy::from(boxed).name(), "RR");
/// ```
pub enum AnyPolicy {
    /// ROUND-ROBIN fetch.
    RoundRobin(RoundRobin),
    /// ICOUNT fetch (Tullsen et al.).
    Icount(smt_policies::Icount),
    /// STALL (ICOUNT + stall on detected L2 miss).
    Stall(smt_policies::Stall),
    /// FLUSH (ICOUNT + flush on detected L2 miss).
    Flush(smt_policies::Flush),
    /// FLUSH++ (adaptive STALL/FLUSH).
    FlushPlusPlus(smt_policies::FlushPlusPlus),
    /// Data Gating (stall on pending L1 data miss).
    DataGating(smt_policies::DataGating),
    /// Predictive Data Gating.
    PredictiveDataGating(smt_policies::PredictiveDataGating),
    /// Static even partitioning (SRA), capped or not.
    Sra(smt_policies::StaticAllocation),
    /// The paper's proposal.
    Dcra(dcra::Dcra),
    /// Escape hatch: any other [`Policy`] implementation, dynamically
    /// dispatched as before.
    Boxed(Box<dyn Policy>),
}

/// Fans a callback out to the concrete policy. The `Boxed` arm auto-derefs,
/// so the same expression serves all ten variants.
macro_rules! fan_out {
    ($self:ident, $p:ident => $call:expr) => {
        match $self {
            AnyPolicy::RoundRobin($p) => $call,
            AnyPolicy::Icount($p) => $call,
            AnyPolicy::Stall($p) => $call,
            AnyPolicy::Flush($p) => $call,
            AnyPolicy::FlushPlusPlus($p) => $call,
            AnyPolicy::DataGating($p) => $call,
            AnyPolicy::PredictiveDataGating($p) => $call,
            AnyPolicy::Sra($p) => $call,
            AnyPolicy::Dcra($p) => $call,
            AnyPolicy::Boxed($p) => $call,
        }
    };
}

impl Policy for AnyPolicy {
    #[inline]
    fn name(&self) -> &str {
        fan_out!(self, p => p.name())
    }

    #[inline]
    fn begin_cycle(&mut self, view: &CycleView) {
        fan_out!(self, p => p.begin_cycle(view))
    }

    #[inline]
    fn fetch_order(&mut self, view: &CycleView, order: &mut Vec<ThreadId>) {
        fan_out!(self, p => p.fetch_order(view, order))
    }

    #[inline]
    fn fetch_gate(&mut self, t: ThreadId, view: &CycleView) -> bool {
        fan_out!(self, p => p.fetch_gate(t, view))
    }

    #[inline]
    fn may_dispatch(
        &self,
        t: ThreadId,
        queue: QueueKind,
        dest: Option<RegClass>,
        view: &CycleView,
    ) -> bool {
        fan_out!(self, p => p.may_dispatch(t, queue, dest, view))
    }

    #[inline]
    fn on_fetch_inst(&mut self, t: ThreadId, inst: &PackedInst) {
        fan_out!(self, p => p.on_fetch_inst(t, inst))
    }

    #[inline]
    fn on_dispatch(&mut self, t: ThreadId, queue: QueueKind, dest: Option<RegClass>) {
        fan_out!(self, p => p.on_dispatch(t, queue, dest))
    }

    #[inline]
    fn on_l1d_miss(&mut self, t: ThreadId, pc: u64) {
        fan_out!(self, p => p.on_l1d_miss(t, pc))
    }

    #[inline]
    fn on_l2_miss_detected(&mut self, t: ThreadId, view: &CycleView) -> MissResponse {
        fan_out!(self, p => p.on_l2_miss_detected(t, view))
    }

    #[inline]
    fn on_miss_resolved(&mut self, t: ThreadId, pc: u64, level: HitLevel) {
        fan_out!(self, p => p.on_miss_resolved(t, pc, level))
    }

    #[inline]
    fn on_load_complete(&mut self, t: ThreadId, pc: u64, l1_missed: bool) {
        fan_out!(self, p => p.on_load_complete(t, pc, l1_missed))
    }

    #[inline]
    fn on_squash_inst(&mut self, t: ThreadId, inst: &PackedInst) {
        fan_out!(self, p => p.on_squash_inst(t, inst))
    }

    #[inline]
    fn on_idle_cycles(&mut self, n: u64, view: &CycleView) -> u64 {
        // Forwarded verbatim, including for `Boxed`: an external policy
        // that has not overridden the hook inherits the safe default (0 —
        // never fast-forward), so unknown per-cycle state is never skipped.
        fan_out!(self, p => p.on_idle_cycles(n, view))
    }

    #[inline]
    fn wants_fast_forward(&self) -> bool {
        fan_out!(self, p => p.wants_fast_forward())
    }

    #[inline]
    fn wants_squash_inst(&self) -> bool {
        match self {
            // External policies may consume the notification without
            // having overridden the hint; always deliver for them.
            AnyPolicy::Boxed(_) => true,
            _ => fan_out!(self, p => p.wants_squash_inst()),
        }
    }

    #[inline]
    fn wants_dispatch_view(&self) -> bool {
        match self {
            // External policies may read the view without having
            // overridden the hint; always refresh for them.
            AnyPolicy::Boxed(_) => true,
            _ => fan_out!(self, p => p.wants_dispatch_view()),
        }
    }

    #[inline]
    fn wants_dispatch_gate(&self) -> bool {
        match self {
            // External policies may gate dispatch without having
            // overridden the hint; always consult them.
            AnyPolicy::Boxed(_) => true,
            _ => fan_out!(self, p => p.wants_dispatch_gate()),
        }
    }

    #[inline]
    fn wants_progress_counters(&self) -> bool {
        match self {
            // External policies may read the progress lanes without having
            // overridden the hint; always refresh for them.
            AnyPolicy::Boxed(_) => true,
            _ => fan_out!(self, p => p.wants_progress_counters()),
        }
    }
}

impl std::fmt::Debug for AnyPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AnyPolicy({})", self.name())
    }
}

impl From<RoundRobin> for AnyPolicy {
    fn from(p: RoundRobin) -> Self {
        AnyPolicy::RoundRobin(p)
    }
}

impl From<smt_policies::Icount> for AnyPolicy {
    fn from(p: smt_policies::Icount) -> Self {
        AnyPolicy::Icount(p)
    }
}

impl From<smt_policies::Stall> for AnyPolicy {
    fn from(p: smt_policies::Stall) -> Self {
        AnyPolicy::Stall(p)
    }
}

impl From<smt_policies::Flush> for AnyPolicy {
    fn from(p: smt_policies::Flush) -> Self {
        AnyPolicy::Flush(p)
    }
}

impl From<smt_policies::FlushPlusPlus> for AnyPolicy {
    fn from(p: smt_policies::FlushPlusPlus) -> Self {
        AnyPolicy::FlushPlusPlus(p)
    }
}

impl From<smt_policies::DataGating> for AnyPolicy {
    fn from(p: smt_policies::DataGating) -> Self {
        AnyPolicy::DataGating(p)
    }
}

impl From<smt_policies::PredictiveDataGating> for AnyPolicy {
    fn from(p: smt_policies::PredictiveDataGating) -> Self {
        AnyPolicy::PredictiveDataGating(p)
    }
}

impl From<smt_policies::StaticAllocation> for AnyPolicy {
    fn from(p: smt_policies::StaticAllocation) -> Self {
        AnyPolicy::Sra(p)
    }
}

impl From<dcra::Dcra> for AnyPolicy {
    fn from(p: dcra::Dcra) -> Self {
        AnyPolicy::Dcra(p)
    }
}

impl From<Box<dyn Policy>> for AnyPolicy {
    fn from(p: Box<dyn Policy>) -> Self {
        AnyPolicy::Boxed(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_isa::PerResource;

    fn view(n: usize) -> CycleView {
        CycleView::new(0, PerResource::filled(80), &vec![ThreadView::default(); n])
    }

    #[test]
    fn variants_report_their_policy_name() {
        let cases: Vec<(AnyPolicy, &str)> = vec![
            (RoundRobin::default().into(), "RR"),
            (smt_policies::Icount.into(), "ICOUNT"),
            (smt_policies::Stall.into(), "STALL"),
            (smt_policies::Flush.into(), "FLUSH"),
            (smt_policies::FlushPlusPlus::default().into(), "FLUSH++"),
            (smt_policies::DataGating.into(), "DG"),
            (smt_policies::PredictiveDataGating::default().into(), "PDG"),
            (smt_policies::StaticAllocation::new().into(), "SRA"),
            (dcra::Dcra::default().into(), "DCRA"),
        ];
        for (p, name) in cases {
            assert_eq!(p.name(), name);
        }
    }

    #[test]
    fn enum_dispatch_matches_boxed_dispatch() {
        // The same policy driven through the static and the boxed paths
        // must order threads identically.
        let v = view(3);
        let mut fast: AnyPolicy = smt_policies::Icount.into();
        let mut slow: AnyPolicy = AnyPolicy::Boxed(Box::new(smt_policies::Icount));
        let (mut a, mut b) = (Vec::new(), Vec::new());
        fast.fetch_order(&v, &mut a);
        slow.fetch_order(&v, &mut b);
        assert_eq!(a, b);
        assert_eq!(fast.name(), slow.name());
    }

    #[test]
    fn boxed_escape_hatch_runs_external_policies() {
        struct Greedy;
        impl Policy for Greedy {
            fn name(&self) -> &str {
                "GREEDY"
            }
            fn fetch_order(&mut self, view: &CycleView, order: &mut Vec<ThreadId>) {
                order.extend((0..view.thread_count()).map(ThreadId::new));
            }
        }
        let mut p = AnyPolicy::from(Box::new(Greedy) as Box<dyn Policy>);
        assert_eq!(p.name(), "GREEDY");
        let mut order = Vec::new();
        p.fetch_order(&view(2), &mut order);
        assert_eq!(order.len(), 2);
    }
}
