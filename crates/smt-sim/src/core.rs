//! The cycle-level SMT simulator core.

use crate::config::SimConfig;
use crate::inst::{DynInst, Stage, NO_DEP};
use crate::policy::{AnyPolicy, CycleView, MissResponse, Policy, ThreadView};
use crate::stats::{SimResult, ThreadStats};
use crate::thread::{ThreadState, NO_WAITER};
use smt_bpred::BranchPredictor;
use smt_isa::{InstClass, PerResource, QueueKind, ThreadId};
use smt_mem::MemoryHierarchy;
use smt_workloads::{BenchmarkProfile, TraceGenerator};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A timing event scheduled on the simulator's event queue. Field order
/// is the comparison order (and the per-cycle drain order): `(at, uid,
/// tid, kind, seq)` — drain-order-equivalent to the original `(at, uid,
/// tid, seq, kind)` because `uid` is globally unique per incarnation, so
/// two distinct events can only tie through `kind`. `tid` is narrowed to
/// `u32` and `kind` packed before `seq` purely to keep the struct at 32
/// bytes — the wheel sorts one bucket of these every cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Event {
    at: u64,
    uid: u64,
    tid: u32,
    kind: EventKind,
    seq: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EventKind {
    /// An executing instruction's result becomes available.
    Complete,
    /// An outstanding load is recognised as an L2 miss (one L2 latency
    /// after issue — the "detected too late" effect of Section 2).
    DetectL2,
}

/// Ready-list entry: ordered by `(dispatched_at, seq·8 + tid)` — exactly
/// the `(dispatched_at, seq, tid)` age order the scan-based issue stage
/// used (`tid < ThreadId::MAX_THREADS = 8`, so the packing is
/// order-preserving). `uid` identifies the incarnation so entries left
/// behind by a squash are recognised as stale when popped; it is excluded
/// from the ordering (and equality) because at most one entry per
/// `(dispatched_at, seq, tid)` can ever be live — a squashed incarnation
/// is re-dispatched at a strictly later cycle.
#[derive(Clone, Copy)]
struct ReadyEntry {
    at: u64,
    seq_tid: u64,
    uid: u64,
}

impl PartialEq for ReadyEntry {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq_tid) == (other.at, other.seq_tid)
    }
}

impl Eq for ReadyEntry {}

impl ReadyEntry {
    #[inline]
    fn new(at: u64, seq: u64, tid: usize, uid: u64) -> Self {
        debug_assert!(tid < smt_isa::ThreadId::MAX_THREADS);
        ReadyEntry {
            at,
            seq_tid: (seq << 3) | tid as u64,
            uid,
        }
    }

    #[inline]
    fn seq(&self) -> u64 {
        self.seq_tid >> 3
    }

    #[inline]
    fn tid(&self) -> usize {
        (self.seq_tid & 7) as usize
    }
}

impl Ord for ReadyEntry {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq_tid).cmp(&(other.at, other.seq_tid))
    }
}

impl PartialOrd for ReadyEntry {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Timing wheel for the simulator's completion/detection events.
///
/// Event latencies are bounded by the memory system (worst case: L1 + L2 +
/// memory + TLB penalty), so events land in a power-of-two ring of per-cycle
/// buckets: O(1) scheduling and draining instead of a binary heap's
/// `O(log n)` tuple comparisons. Each cycle's bucket is sorted before
/// processing, which reproduces the heap's global `(at, uid, tid, seq,
/// kind)` drain order exactly — every event in the bucket shares the same
/// `at`. Events beyond the wheel horizon (odd configurations only) spill
/// into a small overflow heap that is merged on drain.
#[derive(Debug)]
struct EventWheel {
    slots: Vec<Vec<Event>>,
    mask: u64,
    overflow: BinaryHeap<Reverse<Event>>,
    /// Drain scratch, reused every cycle.
    due: Vec<Event>,
}

impl EventWheel {
    /// Builds a wheel covering at least `max_delay` cycles of look-ahead.
    fn new(max_delay: u64) -> Self {
        let size = (max_delay + 2).max(16).next_power_of_two();
        EventWheel {
            slots: (0..size).map(|_| Vec::new()).collect(),
            mask: size - 1,
            overflow: BinaryHeap::new(),
            due: Vec::new(),
        }
    }

    /// Schedules `ev`. All real latencies are at least one cycle; should a
    /// degenerate configuration produce `at <= now`, the event lands in the
    /// next cycle's bucket (this cycle's drain has already run), which is
    /// exactly when the replaced binary-heap drain would have delivered it.
    fn push(&mut self, now: u64, ev: Event) {
        let deliver_at = ev.at.max(now + 1);
        if deliver_at - now <= self.mask {
            self.slots[(deliver_at & self.mask) as usize].push(ev);
        } else {
            self.overflow.push(Reverse(ev));
        }
    }

    /// Moves every event due at `now` into the `due` scratch buffer,
    /// sorted in the canonical event order, and returns the buffer by
    /// value for borrow-free iteration (return it via [`Self::restore`]).
    fn take_due(&mut self, now: u64) -> Vec<Event> {
        let mut due = std::mem::take(&mut self.due);
        due.clear();
        due.append(&mut self.slots[(now & self.mask) as usize]);
        while let Some(&Reverse(ev)) = self.overflow.peek() {
            if ev.at > now {
                break;
            }
            self.overflow.pop();
            due.push(ev);
        }
        debug_assert!(due.iter().all(|e| e.at <= now), "stale bucket entry");
        if due.len() > 1 {
            due.sort_unstable();
        }
        due
    }

    /// Hands the drain buffer back for reuse.
    fn restore(&mut self, due: Vec<Event>) {
        self.due = due;
    }

    /// Discards every scheduled event, retaining all allocations. Used by
    /// [`Simulator::reset`] when a session is reused for a new run.
    fn clear(&mut self) {
        for slot in &mut self.slots {
            slot.clear();
        }
        self.overflow.clear();
        self.due.clear();
    }
}

/// The cycle-level SMT processor simulator.
///
/// One instance simulates one multiprogrammed run: a set of per-thread
/// trace generators executing on the shared pipeline described by
/// [`SimConfig`], arbitrated by a [`Policy`].
///
/// # Examples
///
/// ```
/// use smt_sim::{SimConfig, Simulator};
/// use smt_sim::policy::RoundRobin;
/// use smt_workloads::spec;
///
/// let cfg = SimConfig::baseline(2);
/// let profiles = [spec::profile("gzip").unwrap(), spec::profile("gcc").unwrap()];
/// let mut sim = Simulator::new(cfg, &profiles, RoundRobin::default(), 42);
/// sim.run_cycles(1_000);
/// let result = sim.result();
/// assert!(result.total_committed() > 0);
/// ```
pub struct Simulator {
    config: SimConfig,
    threads: Vec<ThreadState>,
    policy: AnyPolicy,
    bpred: BranchPredictor,
    mem: MemoryHierarchy,
    now: u64,
    measure_start: u64,
    uid_counter: u64,
    // Shared-resource occupancy.
    rob_used: u32,
    iq_used: [u32; 3],
    regs_used: [u32; 2],
    usage: Vec<PerResource<u32>>,
    events: EventWheel,
    stats: Vec<ThreadStats>,
    commit_rr: usize,
    /// Event-driven wakeup scoreboard: one ready list per issue queue,
    /// ordered oldest-first by [`ReadyEntry`]. `issue()` pops from these
    /// instead of rescanning every in-flight instruction.
    ready: [BinaryHeap<Reverse<ReadyEntry>>; 3],
    /// Reusable per-cycle policy view (refreshed in place at the start of
    /// every cycle; also used by `fetch`, which sees pre-commit state).
    cycle_view: CycleView,
    /// Reusable mid-cycle policy view for `dispatch` / `detect_l2`, which
    /// need post-commit/issue state.
    scratch_view: CycleView,
    /// Reusable fetch-order buffer handed to the policy each cycle.
    order_scratch: Vec<ThreadId>,
    /// Reusable per-thread MLP sample buffer.
    mlp_scratch: Vec<u32>,
    /// `config.resource_totals()`, computed once — the configuration is
    /// immutable after construction and the view is refreshed every cycle.
    totals: PerResource<u32>,
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("policy", &self.policy.name())
            .field("now", &self.now)
            .field("threads", &self.threads.len())
            .finish()
    }
}

impl Simulator {
    /// Builds a simulator running one thread per profile under `policy`.
    ///
    /// # Panics
    ///
    /// Panics if `profiles.len() != config.threads` or the configuration is
    /// invalid.
    pub fn new(
        config: SimConfig,
        profiles: &[&BenchmarkProfile],
        policy: impl Into<AnyPolicy>,
        seed: u64,
    ) -> Self {
        config.validate().expect("invalid simulator configuration");
        assert_eq!(
            profiles.len(),
            config.threads,
            "need exactly one benchmark per hardware thread"
        );
        let window_span = (config.rob_entries + config.fetch_queue) as usize;
        let threads: Vec<ThreadState> = profiles
            .iter()
            .enumerate()
            .map(|(i, p)| {
                ThreadState::new(
                    TraceGenerator::new(
                        p,
                        seed.wrapping_mul(0x9e37_79b9).wrapping_add(i as u64),
                        i as u64,
                    ),
                    window_span,
                )
            })
            .collect();
        let n = threads.len();
        let totals = config.resource_totals();
        Simulator {
            bpred: BranchPredictor::new(&config.bpred, n),
            mem: MemoryHierarchy::new(&config.mem, n),
            threads,
            policy: policy.into(),
            now: 0,
            measure_start: 0,
            uid_counter: 0,
            rob_used: 0,
            iq_used: [0; 3],
            regs_used: [0; 2],
            usage: vec![PerResource::default(); n],
            events: EventWheel::new(
                u64::from(config.regread_delay)
                    + u64::from(config.mem.dl1.latency)
                    + u64::from(config.mem.l2.latency)
                    + u64::from(config.mem.memory_latency)
                    + u64::from(config.mem.tlb_miss_penalty)
                    + 64,
            ),
            stats: vec![ThreadStats::default(); n],
            config,
            commit_rr: 0,
            ready: [BinaryHeap::new(), BinaryHeap::new(), BinaryHeap::new()],
            cycle_view: CycleView::default(),
            scratch_view: CycleView::default(),
            order_scratch: Vec::new(),
            mlp_scratch: vec![0; n],
            totals,
        }
    }

    /// Re-initialises the simulator in place for a fresh run on the same
    /// machine configuration: new trace generators, a new policy, cold
    /// caches/predictors, zeroed counters and an empty window — exactly the
    /// state [`Simulator::new`] would produce, but with every long-lived
    /// allocation (instruction windows, cache tag arrays, event wheel,
    /// ready lists, waiter pools) retained. This is what makes sweep
    /// sessions cheap: hundreds of short runs reuse one simulator instead
    /// of reallocating the whole machine per run.
    ///
    /// # Panics
    ///
    /// Panics if `profiles.len() != config.threads` (the thread count is
    /// fixed at construction).
    pub fn reset(
        &mut self,
        profiles: &[&BenchmarkProfile],
        policy: impl Into<AnyPolicy>,
        seed: u64,
    ) {
        assert_eq!(
            profiles.len(),
            self.threads.len(),
            "need exactly one benchmark per hardware thread"
        );
        for (i, (th, p)) in self.threads.iter_mut().zip(profiles).enumerate() {
            th.reset(TraceGenerator::new(
                p,
                seed.wrapping_mul(0x9e37_79b9).wrapping_add(i as u64),
                i as u64,
            ));
        }
        self.policy = policy.into();
        self.bpred.reset_cold();
        self.mem.reset_cold();
        self.now = 0;
        self.measure_start = 0;
        self.uid_counter = 0;
        self.rob_used = 0;
        self.iq_used = [0; 3];
        self.regs_used = [0; 2];
        for u in &mut self.usage {
            *u = PerResource::default();
        }
        self.events.clear();
        for s in &mut self.stats {
            *s = ThreadStats::default();
        }
        self.commit_rr = 0;
        for r in &mut self.ready {
            r.clear();
        }
    }

    /// Current cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The configuration of this machine.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The memory hierarchy (for cache statistics).
    pub fn memory(&self) -> &MemoryHierarchy {
        &self.mem
    }

    /// Raw cache statistics `(il1, dl1, l2)` of the hierarchy.
    pub fn cache_stats_helper(
        &self,
    ) -> (
        smt_mem::CacheStats,
        smt_mem::CacheStats,
        smt_mem::CacheStats,
    ) {
        self.mem.cache_stats()
    }

    /// The branch predictor (for misprediction statistics).
    pub fn predictor(&self) -> &BranchPredictor {
        &self.bpred
    }

    /// Name of the active policy.
    pub fn policy_name(&self) -> &str {
        self.policy.name()
    }

    /// Clears measured statistics; subsequent results count from this
    /// cycle. Use after a warm-up period.
    pub fn reset_stats(&mut self) {
        self.measure_start = self.now;
        for s in &mut self.stats {
            *s = ThreadStats::default();
        }
        self.mem.reset_stats();
        self.bpred.reset_stats();
    }

    /// Functionally warms the caches and TLBs: streams the first
    /// `insts_per_thread` instructions of every thread's trace through the
    /// memory hierarchy without simulating timing, then clears the
    /// statistics. Equivalent to the "functional warm-up" phase of
    /// checkpoint-based simulators; it removes cold-start effects that
    /// would otherwise need millions of timed cycles (and would bias
    /// policies that throttle on cold misses).
    ///
    /// The generators are cloned, so the timed simulation still replays the
    /// same instruction stream from the beginning — every prewarmed line is
    /// revisited warm.
    pub fn prewarm(&mut self, insts_per_thread: u64) {
        for tid in 0..self.threads.len() {
            let t = ThreadId::new(tid);
            let mut gen = self.threads[tid].generator().decorrelated(0xCAFE);
            for _ in 0..insts_per_thread {
                let inst = gen.next_inst();
                self.mem.access_inst(t, inst.pc, 0);
                if let Some(m) = inst.mem {
                    let is_write = inst.class == InstClass::Store;
                    self.mem.access_data(t, m.addr, is_write, 0);
                }
            }
        }
        self.mem.reset_stats();
    }

    /// Runs `n` cycles.
    pub fn run_cycles(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Runs until every thread has committed at least `insts` instructions
    /// since the last [`Self::reset_stats`], or `max_cycles` elapse.
    pub fn run_until_committed(&mut self, insts: u64, max_cycles: u64) {
        let limit = self.now + max_cycles;
        while self.now < limit && self.stats.iter().any(|s| s.committed < insts) {
            self.step();
        }
    }

    /// Snapshot of the measured statistics.
    pub fn result(&self) -> SimResult {
        SimResult {
            cycles: self.now - self.measure_start,
            policy: self.policy.name().to_string(),
            threads: self.stats.clone(),
        }
    }

    /// Refreshes a reusable per-cycle view in place — the allocation-free
    /// replacement for building a fresh `CycleView` every call.
    fn fill_view(&self, view: &mut CycleView) {
        view.now = self.now;
        view.totals = self.totals;
        view.threads
            .resize_with(self.threads.len(), ThreadView::default);
        for (i, (tv, th)) in view.threads.iter_mut().zip(&self.threads).enumerate() {
            tv.icount = th.pre_issue;
            tv.usage = self.usage[i];
            tv.l1d_pending = th.l1d_pending;
            tv.l2_pending = th.l2_pending;
            tv.committed = self.stats[i].committed;
            tv.l2_misses = self.stats[i].l2_misses;
            tv.loads = self.stats[i].loads;
        }
    }

    /// Public alias of [`Self::step`] for instrumentation binaries.
    #[doc(hidden)]
    pub fn step_public(&mut self) {
        self.step();
    }

    /// Advances the machine one cycle. Steady-state allocation-free: the
    /// policy view, fetch order, ready lists and MLP sample buffer are all
    /// long-lived buffers reused across cycles.
    pub fn step(&mut self) {
        let mut view = std::mem::take(&mut self.cycle_view);
        let mut order = std::mem::take(&mut self.order_scratch);
        self.fill_view(&mut view);
        self.policy.begin_cycle(&view);
        order.clear();
        self.policy.fetch_order(&view, &mut order);

        self.drain_events();
        self.commit();
        self.issue();
        self.dispatch(&order);
        self.fetch(&order, &view);
        self.sample_mlp();
        self.now += 1;
        self.cycle_view = view;
        self.order_scratch = order;
    }

    // ----------------------------------------------------------------- events

    fn drain_events(&mut self) {
        let due = self.events.take_due(self.now);
        for ev in &due {
            // The instruction may have been squashed (uid mismatch) or even
            // re-fetched under the same seq; both are stale.
            let tid = ev.tid as usize;
            let valid = self.threads[tid]
                .get(ev.seq)
                .map(|i| i.uid == ev.uid)
                .unwrap_or(false);
            if !valid {
                continue;
            }
            match ev.kind {
                EventKind::Complete => self.complete_inst(tid, ev.seq),
                EventKind::DetectL2 => self.detect_l2(tid, ev.seq),
            }
        }
        self.events.restore(due);
    }

    fn complete_inst(&mut self, tid: usize, seq: u64) {
        let t = ThreadId::new(tid);
        let th = &mut self.threads[tid];
        let inst = th.at_mut(seq);
        debug_assert_eq!(inst.stage, Stage::Executing);
        inst.stage = Stage::Done;
        let mispredicted = inst.mispredicted;
        let l1_miss = inst.l1_miss;
        let l2_miss = inst.l2_miss;
        let l2_detected = inst.l2_detected;
        let pc = inst.pc;
        let is_load = inst.class == InstClass::Load;

        if l1_miss {
            th.l1d_pending -= 1;
        }
        if l2_miss && l2_detected {
            th.l2_pending -= 1;
        }
        if th.stall_on_load == Some(seq) {
            th.stall_on_load = None;
        }

        // Event-driven wakeup: this result is now available, so walk the
        // completed instruction's consumer wait-list, decrement each live
        // consumer's outstanding-operand count, and move the newly-ready
        // ones onto their queue's ready list. Nodes whose uid no longer
        // matches belong to squashed incarnations and are just recycled.
        let mut node = th.detach_waiters(seq);
        while node != NO_WAITER {
            let (w, next) = th.take_waiter(node);
            node = next;
            debug_assert!(w.seq > seq, "consumers are younger than their producer");
            if let Some(consumer) = th.get_mut(w.seq) {
                if consumer.uid == w.uid && consumer.stage == Stage::Dispatched {
                    consumer.pending_ops -= 1;
                    if consumer.pending_ops == 0 {
                        let entry =
                            ReadyEntry::new(consumer.dispatched_at, w.seq, tid, consumer.uid);
                        let q = consumer.class.queue();
                        self.ready[q.index()].push(Reverse(entry));
                    }
                }
            }
        }

        if is_load {
            self.policy.on_load_complete(t, pc, l1_miss);
        }
        if l1_miss {
            let level = if l2_miss {
                smt_mem::HitLevel::Memory
            } else {
                smt_mem::HitLevel::L2
            };
            self.policy.on_miss_resolved(t, pc, level);
        }
        if mispredicted {
            // The thread kept fetching past the unresolved branch (the
            // trace-driven stand-in for wrong-path execution): those
            // instructions held fetch slots and shared resources exactly
            // like wrong-path work would, and are discarded now. Fetch
            // redirects with a short bubble; the refetched instructions
            // additionally pay the front-end depth before renaming again.
            self.squash_after(tid, seq);
            let th = &mut self.threads[tid];
            th.icache_stall_until = th.icache_stall_until.max(self.now + 2);
        }
    }

    fn detect_l2(&mut self, tid: usize, seq: u64) {
        let t = ThreadId::new(tid);
        {
            let th = &mut self.threads[tid];
            let inst = th.get_mut(seq).expect("detecting unknown instruction");
            if inst.stage != Stage::Executing || inst.l2_detected {
                return;
            }
            inst.l2_detected = true;
            th.l2_pending += 1;
        }
        let mut view = std::mem::take(&mut self.scratch_view);
        self.fill_view(&mut view);
        let response = self.policy.on_l2_miss_detected(t, &view);
        self.scratch_view = view;
        match response {
            MissResponse::Continue => {}
            MissResponse::Stall => {
                self.threads[tid].stall_on_load = Some(seq);
            }
            MissResponse::Flush => {
                self.squash_after(tid, seq);
                self.threads[tid].stall_on_load = Some(seq);
            }
        }
    }

    // ----------------------------------------------------------------- commit

    fn commit(&mut self) {
        let n = self.threads.len();
        let mut budget = self.config.commit_width;
        let start = self.commit_rr;
        self.commit_rr = (self.commit_rr + 1) % n;
        // Round-robin over threads, in-order within each thread.
        let mut progressed = true;
        while budget > 0 && progressed {
            progressed = false;
            for k in 0..n {
                if budget == 0 {
                    break;
                }
                let tid = (start + k) % n;
                let th = &mut self.threads[tid];
                let Some(base) = th.window_base() else {
                    continue;
                };
                let inst = th.at(base);
                if inst.stage != Stage::Done {
                    continue;
                }
                let dest = inst.dest;
                th.advance_base();
                th.retire_buffer(base);
                self.rob_used -= 1;
                if let Some(dest) = dest {
                    self.regs_used[dest.index()] -= 1;
                    self.usage[tid][dest.resource()] -= 1;
                }
                self.stats[tid].committed += 1;
                budget -= 1;
                progressed = true;
            }
        }
    }

    // ------------------------------------------------------------------ issue

    fn issue(&mut self) {
        let mut global_budget = self.config.decode_width; // issue width = 8
        for q in QueueKind::ALL {
            let mut unit_budget = self.config.units(q).min(global_budget);
            // Pop ready instructions oldest-first. No window scan: the
            // wakeup scoreboard moved every issuable instruction onto this
            // queue's ready list when its last operand completed. Entries
            // whose uid no longer matches (or whose instruction is no
            // longer Dispatched) were squashed after being woken; they are
            // discarded without consuming issue bandwidth, exactly as the
            // scan never saw them.
            while unit_budget > 0 && global_budget > 0 {
                let Some(Reverse(entry)) = self.ready[q.index()].pop() else {
                    break;
                };
                let (seq, tid, uid) = (entry.seq(), entry.tid(), entry.uid);
                let live = self.threads[tid]
                    .get(seq)
                    .map(|i| i.uid == uid && i.stage == Stage::Dispatched)
                    .unwrap_or(false);
                if !live {
                    continue;
                }
                #[cfg(debug_assertions)]
                {
                    let inst = self.threads[tid].get(seq).expect("validated above");
                    debug_assert!(
                        self.operands_ready(tid, inst),
                        "wakeup scoreboard woke T{tid} seq {seq} before its operands"
                    );
                }
                self.issue_one(tid, seq);
                unit_budget -= 1;
                global_budget -= 1;
            }
        }
    }

    fn operands_ready(&self, tid: usize, inst: &DynInst) -> bool {
        inst.deps.iter().all(|&p| {
            if p == NO_DEP {
                return true;
            }
            match self.threads[tid].get(p) {
                Some(producer) => producer.stage == Stage::Done,
                None => true, // already committed
            }
        })
    }

    fn issue_one(&mut self, tid: usize, seq: u64) {
        let t = ThreadId::new(tid);
        let now = self.now;
        let regread = u64::from(self.config.regread_delay);
        let th = &mut self.threads[tid];
        let inst = th.at_mut(seq);
        let class = inst.class;
        let q = class.queue();
        let uid = inst.uid;
        let mem_addr = inst.mem_addr;
        let pc = inst.pc;

        inst.stage = Stage::Executing;
        th.pre_issue -= 1;
        self.iq_used[q.index()] -= 1;
        self.usage[tid][q.resource()] -= 1;

        let ready_at = match class {
            InstClass::Load => {
                let outcome = self.mem.access_data(t, mem_addr, false, now);
                self.stats[tid].loads += 1;
                if outcome.l1_miss() {
                    let th = &mut self.threads[tid];
                    th.at_mut(seq).l1_miss = true;
                    th.l1d_pending += 1;
                    self.stats[tid].l1d_misses += 1;
                    self.policy.on_l1d_miss(t, pc);
                }
                if outcome.l2_miss() {
                    self.threads[tid].at_mut(seq).l2_miss = true;
                    self.stats[tid].l2_misses += 1;
                    self.events.push(
                        now,
                        Event {
                            at: now + u64::from(self.config.mem.l2.latency),
                            uid,
                            tid: tid as u32,
                            seq,
                            kind: EventKind::DetectL2,
                        },
                    );
                }
                now + regread + u64::from(outcome.latency)
            }
            InstClass::Store => {
                // Stores write at commit through a store buffer; the access
                // warms the caches but does not block the pipeline.
                let _ = self.mem.access_data(t, mem_addr, true, now);
                now + regread + u64::from(class.exec_latency())
            }
            c => now + regread + u64::from(c.exec_latency()),
        };
        self.events.push(
            now,
            Event {
                at: ready_at,
                uid,
                tid: tid as u32,
                seq,
                kind: EventKind::Complete,
            },
        );
    }

    // --------------------------------------------------------------- dispatch

    fn dispatch(&mut self, order: &[ThreadId]) {
        let mut budget = self.config.decode_width;
        // The view's usage is kept live across this cycle's dispatches so
        // hard-partition policies (SRA) see every allocation immediately —
        // otherwise several same-cycle dispatches could overshoot a cap.
        // Policies whose `may_dispatch` ignores the view (everything but
        // the allocation policies) skip the refresh and the per-dispatch
        // usage mirroring entirely.
        let needs_view = self.policy.wants_dispatch_view();
        let mut view = std::mem::take(&mut self.scratch_view);
        if needs_view {
            self.fill_view(&mut view);
        }
        for &t in order {
            let tid = t.index();
            while budget > 0 {
                let th = &self.threads[tid];
                if th.next_dispatch >= th.next_fetch {
                    break; // nothing fetched to dispatch
                }
                let seq = th.next_dispatch;
                let Some(inst) = th.get(seq) else { break };
                debug_assert_eq!(inst.stage, Stage::Fetched);
                if inst.dispatch_eligible_at > self.now {
                    break;
                }
                let q = inst.class.queue();
                let dest = inst.dest;
                // Shared structural limits.
                if self.rob_used >= self.config.rob_entries {
                    self.stats[tid].blocked_rob += 1;
                    break;
                }
                if self.iq_used[q.index()] >= self.config.iq_entries {
                    self.stats[tid].blocked_iq += 1;
                    break;
                }
                if let Some(d) = dest {
                    if self.regs_used[d.index()] >= self.config.pool_of(d) {
                        self.stats[tid].blocked_regs += 1;
                        break;
                    }
                }
                // Policy gate (hard-partition policies).
                if !self.policy.may_dispatch(t, q, dest, &view) {
                    self.stats[tid].blocked_policy += 1;
                    break;
                }
                // Allocate.
                let th = &mut self.threads[tid];
                let inst = th.at_mut(seq);
                inst.stage = Stage::Dispatched;
                inst.dispatched_at = self.now;
                let uid = inst.uid;
                let deps = inst.deps;
                th.next_dispatch += 1;
                self.rob_used += 1;
                self.iq_used[q.index()] += 1;
                self.usage[tid][q.resource()] += 1;
                if let Some(d) = dest {
                    self.regs_used[d.index()] += 1;
                    self.usage[tid][d.resource()] += 1;
                    if needs_view {
                        view.threads[tid].usage[d.resource()] += 1;
                    }
                }
                if needs_view {
                    view.threads[tid].usage[q.resource()] += 1;
                }

                // Wakeup scoreboard entry: count the operands still in
                // flight and subscribe to their producers. Producers below
                // the window base have committed and producers already
                // `Done` have their results — neither is outstanding.
                let th = &mut self.threads[tid];
                let mut pending = 0u8;
                for p in deps {
                    if p == NO_DEP {
                        continue;
                    }
                    let outstanding = th.get(p).is_some_and(|prod| prod.stage != Stage::Done);
                    if outstanding {
                        pending += 1;
                        th.register_waiter(p, seq, uid);
                    }
                }
                th.at_mut(seq).pending_ops = pending;
                if pending == 0 {
                    self.ready[q.index()].push(Reverse(ReadyEntry::new(self.now, seq, tid, uid)));
                }

                self.policy.on_dispatch(t, q, dest);
                budget -= 1;
            }
        }
        self.scratch_view = view;
    }

    // ------------------------------------------------------------------ fetch

    fn fetch(&mut self, order: &[ThreadId], view: &CycleView) {
        let mut budget = self.config.fetch_width;
        let mut threads_used = 0;
        for &t in order {
            if budget == 0 || threads_used >= self.config.fetch_threads {
                break;
            }
            let tid = t.index();
            if !self.thread_can_fetch(tid) {
                continue;
            }
            if !self.policy.fetch_gate(t, view) {
                self.stats[tid].gated_cycles += 1;
                continue;
            }
            threads_used += 1;
            budget = self.fetch_thread(tid, budget);
        }
    }

    fn thread_can_fetch(&self, tid: usize) -> bool {
        let th = &self.threads[tid];
        if th.icache_stall_until > self.now {
            return false;
        }
        if let Some(load) = th.stall_on_load {
            // Stalled until the missing load completes (STALL/FLUSH action).
            if th
                .get(load)
                .map(|i| i.stage != Stage::Done)
                .unwrap_or(false)
            {
                return false;
            }
        }
        th.fetch_queue_len() < self.config.fetch_queue as usize
    }

    fn fetch_thread(&mut self, tid: usize, mut budget: u32) -> u32 {
        let t = ThreadId::new(tid);
        // One I-cache access per fetch block. The block head's decoded
        // record is kept for the first loop iteration below instead of
        // being looked up twice.
        let head_seq = self.threads[tid].next_fetch;
        let head_decoded = self.threads[tid].inst_at(head_seq);
        let first_pc = head_decoded.pc;
        let line = first_pc >> 6;
        if self.threads[tid].pending_inst_fill == Some(line) {
            // The fill requested when this block missed arrives now and is
            // consumed directly by the fetch unit, even if the line was
            // conflict-evicted from the I-cache during the stall.
            self.threads[tid].pending_inst_fill = None;
        } else {
            let ic = self.mem.access_inst(t, first_pc, self.now);
            if ic.level != smt_mem::HitLevel::L1 {
                let th = &mut self.threads[tid];
                th.icache_stall_until = ic.ready_at();
                th.pending_inst_fill = Some(line);
                return budget.saturating_sub(1);
            }
        }

        while budget > 0 {
            let th = &self.threads[tid];
            if th.fetch_queue_len() >= self.config.fetch_queue as usize {
                break;
            }
            let seq = self.threads[tid].next_fetch;
            let decoded = if seq == head_seq {
                head_decoded
            } else {
                self.threads[tid].inst_at(seq)
            };
            self.uid_counter += 1;
            let mut inst = DynInst::fetched(
                seq,
                self.uid_counter,
                &decoded,
                self.now,
                self.config.frontend_delay,
            );
            self.policy.on_fetch_inst(t, &decoded);

            let mut stop_block = false;
            if let Some(bi) = decoded.branch {
                let pred = self.bpred.predict(t, decoded.pc, bi.kind);
                self.bpred.update(t, decoded.pc, bi, pred);
                if pred.mispredicted(bi) {
                    inst.mispredicted = true;
                    self.stats[tid].mispredicts += 1;
                    // Fetch continues next cycle: the machine follows the
                    // (wrong) prediction and keeps allocating resources
                    // until the branch resolves and squashes.
                    stop_block = true;
                } else if bi.taken {
                    stop_block = true; // fetch block ends at a taken branch
                }
            }

            let th = &mut self.threads[tid];
            th.push_fetched(inst);
            th.pre_issue += 1;
            self.stats[tid].fetched += 1;
            budget -= 1;
            if stop_block {
                break;
            }
        }
        budget
    }

    // ----------------------------------------------------------------- squash

    /// Squashes every instruction of `tid` younger than `cut`, refunding
    /// all resources they hold, and rewinds fetch to `cut + 1`.
    fn squash_after(&mut self, tid: usize, cut: u64) {
        let mut squashed_ras_activity = false;
        let notify_squashes = self.policy.wants_squash_inst();
        loop {
            let th = &mut self.threads[tid];
            if th.window_is_empty() || th.next_fetch - 1 <= cut {
                break;
            }
            let inst = th.pop_youngest();
            // Recycle the squashed instruction's consumer wait-list (its
            // consumers are younger, so they are being squashed too; ready
            // entries and wait-list nodes that still name this incarnation
            // elsewhere are recognised as stale by uid).
            th.free_waiters(inst.waiters_head);
            match inst.stage {
                Stage::Fetched => {
                    th.pre_issue -= 1;
                }
                Stage::Dispatched => {
                    th.pre_issue -= 1;
                    self.rob_used -= 1;
                    let q = inst.class.queue();
                    self.iq_used[q.index()] -= 1;
                    self.usage[tid][q.resource()] -= 1;
                    if let Some(d) = inst.dest {
                        self.regs_used[d.index()] -= 1;
                        self.usage[tid][d.resource()] -= 1;
                    }
                }
                Stage::Executing => {
                    self.rob_used -= 1;
                    if let Some(d) = inst.dest {
                        self.regs_used[d.index()] -= 1;
                        self.usage[tid][d.resource()] -= 1;
                    }
                    let th = &mut self.threads[tid];
                    if inst.l1_miss {
                        th.l1d_pending -= 1;
                    }
                    if inst.l2_miss && inst.l2_detected {
                        th.l2_pending -= 1;
                    }
                }
                Stage::Done => {
                    self.rob_used -= 1;
                    if let Some(d) = inst.dest {
                        self.regs_used[d.index()] -= 1;
                        self.usage[tid][d.resource()] -= 1;
                    }
                }
            }
            if inst.pushes_ras {
                squashed_ras_activity = true;
            }
            // The decoded record outlives the in-flight instruction in the
            // replay buffer (squashed instructions sit above the commit
            // point), so the squash notification reads it from there —
            // skipped entirely for the policies that ignore it.
            if notify_squashes {
                let decoded = self.threads[tid].decoded_at(inst.seq);
                self.policy.on_squash_inst(ThreadId::new(tid), &decoded);
            }
            self.stats[tid].squashed += 1;
        }
        let th = &mut self.threads[tid];
        debug_assert_eq!(th.next_fetch, cut + 1, "squash rewound past the cut");
        th.next_dispatch = th.next_dispatch.min(cut + 1);
        if th.stall_on_load.map(|l| l > cut).unwrap_or(false) {
            th.stall_on_load = None;
        }
        if squashed_ras_activity {
            self.bpred.flush_thread(ThreadId::new(tid));
        }
    }

    // ------------------------------------------------------------------- misc

    fn sample_mlp(&mut self) {
        self.mem
            .outstanding_l2_misses_into(self.now, &mut self.mlp_scratch);
        for (tid, &c) in self.mlp_scratch.iter().enumerate() {
            if c > 0 {
                self.stats[tid].mlp_sum += u64::from(c);
                self.stats[tid].mlp_cycles += 1;
            }
        }
    }

    /// Expensive consistency check used by tests: recomputes every
    /// incrementally-maintained counter from the instruction windows and
    /// asserts they match.
    #[doc(hidden)]
    pub fn assert_consistent(&self) {
        let mut rob = 0u32;
        let mut iq = [0u32; 3];
        let mut regs = [0u32; 2];
        for (tid, th) in self.threads.iter().enumerate() {
            let mut usage = PerResource::<u32>::default();
            let mut pre_issue = 0u32;
            let mut l1p = 0u32;
            let mut l2p = 0u32;
            for inst in th.window_iter() {
                let q = inst.class.queue();
                match inst.stage {
                    Stage::Fetched => pre_issue += 1,
                    Stage::Dispatched => {
                        pre_issue += 1;
                        rob += 1;
                        iq[q.index()] += 1;
                        usage[q.resource()] += 1;
                        if let Some(d) = inst.dest {
                            regs[d.index()] += 1;
                            usage[d.resource()] += 1;
                        }
                    }
                    Stage::Executing => {
                        rob += 1;
                        if let Some(d) = inst.dest {
                            regs[d.index()] += 1;
                            usage[d.resource()] += 1;
                        }
                        if inst.l1_miss {
                            l1p += 1;
                        }
                        if inst.l2_miss && inst.l2_detected {
                            l2p += 1;
                        }
                    }
                    Stage::Done => {
                        rob += 1;
                        if let Some(d) = inst.dest {
                            regs[d.index()] += 1;
                            usage[d.resource()] += 1;
                        }
                    }
                }
            }
            assert_eq!(th.pre_issue, pre_issue, "T{tid} pre_issue drift");
            assert_eq!(th.l1d_pending, l1p, "T{tid} l1d_pending drift");
            assert_eq!(th.l2_pending, l2p, "T{tid} l2_pending drift");
            assert_eq!(self.usage[tid], usage, "T{tid} usage drift");
        }
        assert_eq!(self.rob_used, rob, "rob drift");
        assert_eq!(self.iq_used, iq, "iq drift");
        assert_eq!(self.regs_used, regs, "regs drift");

        // Wakeup-scoreboard invariants: every waiting instruction's
        // outstanding-operand count matches a fresh scan, and everything
        // the scan would consider issuable sits on its queue's ready list.
        for (tid, th) in self.threads.iter().enumerate() {
            if th.window_is_empty() {
                continue;
            }
            for inst in th.window_iter() {
                if inst.stage != Stage::Dispatched {
                    continue;
                }
                let outstanding = inst
                    .deps
                    .iter()
                    .filter(|&&p| {
                        p != NO_DEP && th.get(p).is_some_and(|prod| prod.stage != Stage::Done)
                    })
                    .count() as u8;
                assert_eq!(
                    inst.pending_ops, outstanding,
                    "T{tid} seq {} pending_ops drift",
                    inst.seq
                );
                assert_eq!(
                    self.operands_ready(tid, inst),
                    outstanding == 0,
                    "T{tid} seq {} scan/scoreboard disagreement",
                    inst.seq
                );
                if outstanding == 0 {
                    let q = inst.class.queue();
                    let listed = self.ready[q.index()].iter().any(|Reverse(e)| {
                        e.seq() == inst.seq && e.tid() == tid && e.uid == inst.uid
                    });
                    assert!(listed, "T{tid} seq {} ready but not listed", inst.seq);
                }
            }
        }
    }

    /// Current pre-issue instruction count of a thread — the quantity the
    /// ICOUNT fetch policy ranks threads by.
    pub fn thread_icount(&self, t: ThreadId) -> u32 {
        self.threads[t.index()].pre_issue
    }

    /// Current per-thread occupancy of each controlled resource — the
    /// hardware usage counters of the paper's Section 3.4. Sampled by
    /// [`crate::watch::OccupancyRecorder`].
    pub fn thread_usage(&self, t: ThreadId) -> PerResource<u32> {
        self.usage[t.index()]
    }

    /// Debug snapshot of why a thread may be unable to fetch:
    /// `(blocked_on_branch, icache_stalled, stalled_on_load, fetch_queue_len)`.
    #[doc(hidden)]
    pub fn thread_fetch_state(&self, t: ThreadId) -> (bool, bool, bool, usize) {
        let th = &self.threads[t.index()];
        (
            false, // fetch no longer blocks on unresolved branches
            th.icache_stall_until > self.now,
            th.stall_on_load
                .and_then(|l| th.get(l))
                .map(|i| i.stage != Stage::Done)
                .unwrap_or(false),
            th.fetch_queue_len(),
        )
    }

    /// `true` while the given thread's generator reports a memory phase
    /// (ground truth for the Table-5 experiment).
    pub fn thread_in_memory_phase(&self, t: ThreadId) -> bool {
        self.threads[t.index()].generator().in_memory_phase()
    }

    /// The thread's pending L1-data-miss count (the paper's slow/fast phase
    /// signal, Section 3.1.1).
    pub fn thread_l1d_pending(&self, t: ThreadId) -> u32 {
        self.threads[t.index()].l1d_pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::RoundRobin;
    use smt_workloads::spec;

    fn sim(benches: &[&str], policy: impl Into<AnyPolicy>) -> Simulator {
        let cfg = SimConfig::baseline(benches.len());
        let profiles: Vec<_> = benches.iter().map(|b| spec::profile(b).unwrap()).collect();
        Simulator::new(cfg, &profiles, policy, 7)
    }

    #[test]
    fn single_thread_makes_progress() {
        let mut s = sim(&["gzip"], RoundRobin::default());
        s.run_cycles(200_000);
        s.reset_stats();
        s.run_cycles(50_000);
        let r = s.result();
        // gzip reaches ~2.3 IPC in full steady state (after the warm
        // working set's first sweep); this shorter run must at least show
        // healthy sustained progress.
        assert!(
            r.total_committed() > 30_000,
            "IPC too low: {}",
            r.throughput()
        );
        assert!(r.throughput() <= 8.0, "cannot exceed machine width");
    }

    #[test]
    fn high_ilp_thread_beats_memory_bound_thread() {
        let mut fast = sim(&["gzip"], RoundRobin::default());
        fast.run_cycles(150_000);
        let mut slow = sim(&["mcf"], RoundRobin::default());
        slow.run_cycles(150_000);
        let (f, s) = (fast.result().throughput(), slow.result().throughput());
        assert!(f > 1.5 * s, "gzip ({f:.2}) should far outrun mcf ({s:.2})");
    }

    #[test]
    fn counters_stay_consistent() {
        let mut s = sim(&["mcf", "gzip"], RoundRobin::default());
        for _ in 0..200 {
            s.run_cycles(50);
            s.assert_consistent();
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut s = sim(&["twolf", "gcc"], RoundRobin::default());
            s.run_cycles(15_000);
            let r = s.result();
            (r.total_committed(), r.total_fetched())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn reset_stats_starts_a_fresh_measurement() {
        let mut s = sim(&["gzip"], RoundRobin::default());
        s.run_cycles(5_000);
        s.reset_stats();
        assert_eq!(s.result().total_committed(), 0);
        s.run_cycles(5_000);
        let r = s.result();
        assert_eq!(r.cycles, 5_000);
        assert!(r.total_committed() > 0);
    }

    #[test]
    fn memory_bound_thread_records_misses_and_mlp() {
        let mut s = sim(&["art"], RoundRobin::default());
        s.run_cycles(60_000);
        let r = s.result();
        assert!(r.threads[0].l2_misses > 50, "art should miss in L2");
        assert!(r.threads[0].mlp() >= 1.0);
    }

    #[test]
    fn mispredictions_block_fetch_but_do_not_refetch() {
        // Wrong-path instructions are not fetched (the thread stalls until
        // the branch resolves), so mispredictions alone do not inflate the
        // fetch count; policy flushes do (tested in smt-policies).
        let mut s = sim(&["mcf"], RoundRobin::default());
        s.run_cycles(30_000);
        let r = s.result();
        assert!(r.threads[0].mispredicts > 0);
        assert!(r.threads[0].fetched >= r.threads[0].committed);
    }

    #[test]
    fn run_until_committed_stops_early() {
        let mut s = sim(&["gzip"], RoundRobin::default());
        s.run_until_committed(1_000, 1_000_000);
        assert!(s.result().threads[0].committed >= 1_000);
        assert!(s.now() < 1_000_000);
    }

    #[test]
    fn reset_reproduces_a_fresh_simulator_bit_for_bit() {
        let digest = |s: &Simulator| {
            let r = s.result();
            (
                r.cycles,
                r.threads.clone(),
                s.memory().cache_stats(),
                s.predictor().stats(),
            )
        };
        // Run a first (different) workload to dirty every structure, then
        // reset onto the reference workload and compare against a fresh
        // simulator: identical statistics, cycle for cycle.
        let mut reused = sim(&["mcf", "art"], RoundRobin::default());
        reused.run_cycles(20_000);
        let profiles = [
            spec::profile("twolf").unwrap(),
            spec::profile("gcc").unwrap(),
        ];
        reused.reset(&profiles, RoundRobin::default(), 99);
        reused.run_cycles(20_000);
        reused.assert_consistent();

        let mut fresh =
            Simulator::new(SimConfig::baseline(2), &profiles, RoundRobin::default(), 99);
        fresh.run_cycles(20_000);
        assert_eq!(digest(&reused), digest(&fresh));
    }
}
