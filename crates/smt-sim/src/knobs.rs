//! Policy-timing knobs, re-exported for scenario generation.
//!
//! The adversarial scenario generator in `smt-workloads` builds workloads
//! timed against specific policy heuristics — loads stalling just under
//! the STALL/FLUSH trigger latency, phase flips paced at FLUSH++'s
//! pressure window, FP bursts spaced past DCRA's activity window. That
//! crate sits *below* this one in the dependency graph, so it cannot read
//! these constants directly; it mirrors their values, and the
//! `knob_mirrors_stay_in_sync` test here (this crate can see both sides)
//! fails the build the moment either side drifts.

use dcra::ActivityTracker;
use smt_policies::FlushPlusPlus;

/// Cycles DCRA's per-thread FP activity counter decays from after each FP
/// allocation ([`ActivityTracker`]'s reset value): the window within which
/// a thread is considered FP-active.
pub const DCRA_ACTIVITY_WINDOW: u32 = ActivityTracker::DEFAULT_INIT;

/// Cycle period at which FLUSH++ re-evaluates its memory-pressure
/// classification ([`FlushPlusPlus::WINDOW`]).
pub const FLUSHPP_PRESSURE_WINDOW: u64 = FlushPlusPlus::WINDOW;

/// Cycles after issue at which a load that missed the L2 is detected and
/// reported to the policy — the baseline L2 hit latency
/// ([`smt_mem::DEFAULT_L2_LATENCY`]). The sync test below pins it to the
/// live [`SimConfig::baseline`](crate::SimConfig::baseline) value, so a config whose L2 latency
/// drifts from the named constant fails here rather than silently
/// mistiming the STALL/FLUSH adversaries.
pub const L2_DETECT_DELAY: u32 = smt_mem::DEFAULT_L2_LATENCY;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimConfig;

    #[test]
    fn knob_mirrors_stay_in_sync() {
        // smt-workloads mirrors these values for adversarial generation;
        // this is the only place that can compare both sides.
        assert_eq!(
            smt_workloads::family::DCRA_ACTIVITY_WINDOW,
            DCRA_ACTIVITY_WINDOW
        );
        assert_eq!(
            smt_workloads::family::FLUSHPP_PRESSURE_WINDOW,
            FLUSHPP_PRESSURE_WINDOW
        );
        assert_eq!(
            smt_workloads::family::L2_DETECT_DELAY,
            SimConfig::baseline(2).l2_detect_delay()
        );
        assert_eq!(L2_DETECT_DELAY, SimConfig::baseline(2).l2_detect_delay());
        assert_eq!(
            smt_workloads::family::MAX_FAMILY_THREADS,
            smt_isa::ThreadId::MAX_THREADS
        );
    }
}
