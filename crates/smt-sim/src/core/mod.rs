//! The cycle-level SMT simulator core, as a staged pipeline.
//!
//! Each pipeline stage lives in its own module and owns its slice of the
//! machine behind a narrow interface, so the per-cycle loop in
//! [`Simulator::step`] reads as the pipeline diagram:
//!
//! | module      | stage                                                    |
//! |-------------|----------------------------------------------------------|
//! | [`events`]  | timing wheel + wakeup scoreboard (completion, L2 detect) |
//! | [`commit`]  | in-order retirement, round-robin across threads          |
//! | [`issue`]   | ready-list pop, oldest-first, per-queue unit limits      |
//! | [`dispatch`]| rename/allocate against shared structural limits         |
//! | [`fetch`]   | I-cache access, branch prediction, fetch-queue fill      |
//! | [`squash`]  | misprediction/flush recovery (shared by events + policy) |
//! | [`rings`]   | the power-of-two seq-indexed ring storage they share     |
//! | [`profile`] | per-stage wall-clock attribution for `bench_snapshot`    |
//!
//! Every stage is *batched*: it processes per-thread bursts (contiguous
//! sequence-number runs) with thread-invariant state hoisted out of the
//! inner loop, instead of re-deriving it per instruction. The stage lane
//! of the window ring is struct-of-arrays (see [`crate::thread`]), so the
//! burst scans are contiguous byte scans. Batching is pure mechanics —
//! the golden determinism tests pin the output bit-identical to the
//! original one-instruction-at-a-time loop.

pub(crate) mod commit;
pub(crate) mod debug;
pub(crate) mod dispatch;
pub(crate) mod events;
pub(crate) mod fetch;
pub(crate) mod forward;
pub(crate) mod issue;
pub(crate) mod profile;
pub(crate) mod rings;
pub(crate) mod squash;

pub use profile::StageProfile;

use crate::config::SimConfig;
use crate::policy::{AnyPolicy, CycleView, Policy};
use crate::stats::{SimResult, ThreadStats};
use crate::thread::ThreadState;
use events::{EventWheel, ReadyEntry};
use smt_bpred::BranchPredictor;
use smt_isa::{InstClass, PerResource, ThreadId};
use smt_mem::MemoryHierarchy;
use smt_workloads::{BenchmarkProfile, ThreadTrace};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The cycle-level SMT processor simulator.
///
/// One instance simulates one multiprogrammed run: a set of per-thread
/// trace generators executing on the shared pipeline described by
/// [`SimConfig`], arbitrated by a [`Policy`].
///
/// # Examples
///
/// ```
/// use smt_sim::{SimConfig, Simulator};
/// use smt_sim::policy::RoundRobin;
/// use smt_workloads::spec;
///
/// let cfg = SimConfig::baseline(2);
/// let profiles = [spec::profile("gzip").unwrap(), spec::profile("gcc").unwrap()];
/// let mut sim = Simulator::new(cfg, &profiles, RoundRobin::default(), 42);
/// sim.run_cycles(1_000);
/// let result = sim.result();
/// assert!(result.total_committed() > 0);
/// ```
pub struct Simulator {
    pub(crate) config: SimConfig,
    pub(crate) threads: Vec<ThreadState>,
    pub(crate) policy: AnyPolicy,
    pub(crate) bpred: BranchPredictor,
    pub(crate) mem: MemoryHierarchy,
    pub(crate) now: u64,
    pub(crate) measure_start: u64,
    pub(crate) uid_counter: u64,
    // Shared-resource occupancy.
    pub(crate) rob_used: u32,
    pub(crate) iq_used: [u32; 3],
    pub(crate) regs_used: [u32; 2],
    pub(crate) usage: Vec<PerResource<u32>>,
    pub(crate) events: EventWheel,
    pub(crate) stats: Vec<ThreadStats>,
    pub(crate) commit_rr: usize,
    /// Event-driven wakeup scoreboard: one ready list per issue queue,
    /// ordered oldest-first by [`ReadyEntry`]. The issue stage pops from
    /// these instead of rescanning every in-flight instruction.
    pub(crate) ready: [BinaryHeap<Reverse<ReadyEntry>>; 3],
    /// Reusable per-cycle policy view (refreshed in place at the start of
    /// every cycle; also used by `fetch`, which sees pre-commit state).
    pub(crate) cycle_view: CycleView,
    /// Reusable mid-cycle policy view for `dispatch` / `detect_l2`, which
    /// need post-commit/issue state.
    pub(crate) scratch_view: CycleView,
    /// Reusable fetch-order buffer handed to the policy each cycle.
    pub(crate) order_scratch: Vec<ThreadId>,
    /// Reusable per-thread MLP sample buffer.
    pub(crate) mlp_scratch: Vec<u32>,
    /// `config.resource_totals()`, computed once — the configuration is
    /// immutable after construction and the view is refreshed every cycle.
    pub(crate) totals: PerResource<u32>,
    /// What the last `step` observed: whether any stage changed machine
    /// state, and which per-cycle statistics were charged to which thread.
    /// The fast-forward path ([`forward`]) reads it to decide whether the
    /// machine is skippable and to replay the skipped cycles' statistics.
    pub(crate) idle: IdleTrack,
}

/// Per-cycle activity record, reset at the top of every [`Simulator::step`].
///
/// `active` means "this cycle changed machine state" (an event was
/// delivered, or something committed, issued, dispatched, fetched, or at
/// least touched the I-cache). The bit masks record which threads were
/// charged a per-cycle statistic this cycle — exactly the statistics that
/// keep accruing, unchanged, on every subsequent idle cycle, and therefore
/// the ones the fast-forward replay multiplies out (thread ids fit in `u8`
/// masks because `ThreadId::MAX_THREADS == 8`, enforced by
/// [`SimConfig::validate`]).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct IdleTrack {
    /// Any machine-state change this cycle.
    pub active: bool,
    /// Threads whose `gated_cycles` statistic was charged (fetchable but
    /// refused by the policy's fetch gate).
    pub gated: u8,
    /// Threads whose `blocked_rob` statistic was charged at dispatch.
    pub blocked_rob: u8,
    /// Threads whose `blocked_iq` statistic was charged at dispatch.
    pub blocked_iq: u8,
    /// Threads whose `blocked_regs` statistic was charged at dispatch.
    pub blocked_regs: u8,
    /// Threads whose `blocked_policy` statistic was charged at dispatch.
    pub blocked_policy: u8,
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("policy", &self.policy.name())
            .field("now", &self.now)
            .field("threads", &self.threads.len())
            .finish()
    }
}

/// Derives the per-thread trace seed from the run seed and the thread
/// slot. The single definition is what makes [`Simulator::reset`]'s
/// workload key match [`Simulator::new`]'s — the trace store reuses its
/// retained blocks across a reset exactly when (profile, seed, slot) all
/// compare equal, so `new` and `reset` must derive seeds identically.
fn thread_seed(seed: u64, slot: usize) -> u64 {
    seed.wrapping_mul(0x9e37_79b9).wrapping_add(slot as u64)
}

impl Simulator {
    /// Builds a simulator running one thread per profile under `policy`.
    ///
    /// # Panics
    ///
    /// Panics if `profiles.len() != config.threads` or the configuration is
    /// invalid.
    pub fn new(
        config: SimConfig,
        profiles: &[&BenchmarkProfile],
        policy: impl Into<AnyPolicy>,
        seed: u64,
    ) -> Self {
        config.validate().expect("invalid simulator configuration");
        assert_eq!(
            profiles.len(),
            config.threads,
            "need exactly one benchmark per hardware thread"
        );
        let window_span = (config.rob_entries + config.fetch_queue) as usize;
        let threads: Vec<ThreadState> = profiles
            .iter()
            .enumerate()
            .map(|(i, p)| {
                ThreadState::new(
                    ThreadTrace::new(p, thread_seed(seed, i), i as u64, window_span as u64),
                    window_span,
                )
            })
            .collect();
        let n = threads.len();
        let totals = config.resource_totals();
        Simulator {
            bpred: BranchPredictor::new(&config.bpred, n),
            mem: MemoryHierarchy::new(&config.mem, n),
            threads,
            policy: policy.into(),
            now: 0,
            measure_start: 0,
            uid_counter: 0,
            rob_used: 0,
            iq_used: [0; 3],
            regs_used: [0; 2],
            usage: vec![PerResource::default(); n],
            events: EventWheel::new(
                u64::from(config.regread_delay)
                    + u64::from(config.mem.dl1.latency)
                    + u64::from(config.mem.l2.latency)
                    + u64::from(config.mem.memory_latency)
                    + u64::from(config.mem.tlb_miss_penalty)
                    + 64,
            ),
            stats: vec![ThreadStats::default(); n],
            config,
            commit_rr: 0,
            ready: [BinaryHeap::new(), BinaryHeap::new(), BinaryHeap::new()],
            cycle_view: CycleView::default(),
            scratch_view: CycleView::default(),
            order_scratch: Vec::new(),
            mlp_scratch: vec![0; n],
            totals,
            idle: IdleTrack::default(),
        }
    }

    /// Re-initialises the simulator in place for a fresh run on the same
    /// machine configuration: rebound trace stores (which *reuse* their
    /// pre-generated blocks when the workload key is unchanged — the
    /// policy-sweep case), a new policy, cold
    /// caches/predictors, zeroed counters and an empty window — exactly the
    /// state [`Simulator::new`] would produce, but with every long-lived
    /// allocation (instruction windows, cache tag arrays, event wheel,
    /// ready lists, waiter pools) retained. This is what makes sweep
    /// sessions cheap: hundreds of short runs reuse one simulator instead
    /// of reallocating the whole machine per run.
    ///
    /// # Panics
    ///
    /// Panics if `profiles.len() != config.threads` (the thread count is
    /// fixed at construction).
    pub fn reset(
        &mut self,
        profiles: &[&BenchmarkProfile],
        policy: impl Into<AnyPolicy>,
        seed: u64,
    ) {
        assert_eq!(
            profiles.len(),
            self.threads.len(),
            "need exactly one benchmark per hardware thread"
        );
        for (i, (th, p)) in self.threads.iter_mut().zip(profiles).enumerate() {
            th.reset(p, thread_seed(seed, i), i as u64);
        }
        self.policy = policy.into();
        self.bpred.reset_cold();
        self.mem.reset_cold();
        self.now = 0;
        self.measure_start = 0;
        self.uid_counter = 0;
        self.rob_used = 0;
        self.iq_used = [0; 3];
        self.regs_used = [0; 2];
        for u in &mut self.usage {
            *u = PerResource::default();
        }
        self.events.clear();
        for s in &mut self.stats {
            *s = ThreadStats::default();
        }
        self.commit_rr = 0;
        for r in &mut self.ready {
            r.clear();
        }
        self.idle = IdleTrack::default();
    }

    /// Current cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The configuration of this machine.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The memory hierarchy (for cache statistics).
    pub fn memory(&self) -> &MemoryHierarchy {
        &self.mem
    }

    /// Raw cache statistics `(il1, dl1, l2)` of the hierarchy.
    pub fn cache_stats_helper(
        &self,
    ) -> (
        smt_mem::CacheStats,
        smt_mem::CacheStats,
        smt_mem::CacheStats,
    ) {
        self.mem.cache_stats()
    }

    /// The branch predictor (for misprediction statistics).
    pub fn predictor(&self) -> &BranchPredictor {
        &self.bpred
    }

    /// Name of the active policy.
    pub fn policy_name(&self) -> &str {
        self.policy.name()
    }

    /// Clears measured statistics; subsequent results count from this
    /// cycle. Use after a warm-up period.
    pub fn reset_stats(&mut self) {
        self.measure_start = self.now;
        for s in &mut self.stats {
            *s = ThreadStats::default();
        }
        self.mem.reset_stats();
        self.bpred.reset_stats();
    }

    /// Functionally warms the caches and TLBs: streams the first
    /// `insts_per_thread` instructions of every thread's trace through the
    /// memory hierarchy without simulating timing, then clears the
    /// statistics. Equivalent to the "functional warm-up" phase of
    /// checkpoint-based simulators; it removes cold-start effects that
    /// would otherwise need millions of timed cycles (and would bias
    /// policies that throttle on cold misses).
    ///
    /// The warm-up streams from a decorrelated generator twin, so the
    /// timed simulation still replays the same instruction stream from the
    /// beginning — every prewarmed line is revisited warm.
    pub fn prewarm(&mut self, insts_per_thread: u64) {
        for tid in 0..self.threads.len() {
            let t = ThreadId::new(tid);
            let mut gen = self.threads[tid].trace().decorrelated(0xCAFE);
            for _ in 0..insts_per_thread {
                let inst = gen.next_inst();
                self.mem.access_inst(t, inst.pc, 0);
                if let Some(m) = inst.mem {
                    let is_write = inst.class == InstClass::Store;
                    self.mem.access_data(t, m.addr, is_write, 0);
                }
            }
        }
        self.mem.reset_stats();
    }

    /// Runs `n` cycles, fast-forwarding through spans where every thread
    /// is stalled (the `core/forward` module). Bit-identical to
    /// [`Self::run_cycles_stepped`] — the golden determinism suite and the
    /// stepped-vs-fast-forward property test pin this — but far faster on
    /// memory-bound workloads, where most cycles are empty waits on L2/
    /// memory fills.
    pub fn run_cycles(&mut self, n: u64) {
        let end = self.now + n;
        while self.now < end {
            self.step();
            self.fast_forward(end);
        }
    }

    /// [`Self::run_cycles`] under a
    /// [`CommitWatchdog`](crate::watch::CommitWatchdog): identical stepping
    /// (step + fast-forward, so in-budget runs are bit-identical to
    /// [`Self::run_cycles`] — the budget suite pins this), but every
    /// executed cycle is reported to the watchdog, which converts a cycle
    /// cap or commit-progress violation into an early
    /// [`BudgetBreach`](crate::watch::BudgetBreach) return. On breach the
    /// simulator is left in a consistent mid-run state (the breach is
    /// detected between cycles, never inside one); the caller decides
    /// whether to salvage partial statistics or discard the run.
    ///
    /// # Errors
    ///
    /// Returns the first breach the watchdog detects.
    pub fn run_cycles_budgeted(
        &mut self,
        n: u64,
        watch: &mut crate::watch::CommitWatchdog,
    ) -> Result<(), crate::watch::BudgetBreach> {
        let end = self.now + n;
        while self.now < end {
            self.step();
            self.fast_forward(end);
            watch.observe(self.now, || self.committed_total())?;
        }
        Ok(())
    }

    /// Total instructions committed in the current measurement interval
    /// (since construction, [`Self::reset`] or [`Self::reset_stats`]),
    /// summed over threads. The commit-progress signal the
    /// [`CommitWatchdog`](crate::watch::CommitWatchdog) samples.
    pub fn committed_total(&self) -> u64 {
        self.stats.iter().map(|s| s.committed).sum()
    }

    /// Reference implementation of [`Self::run_cycles`]: one [`Self::step`]
    /// per cycle, never fast-forwarding. The equivalence tests run both
    /// paths and require identical output; keep it around for debugging
    /// suspected fast-forward divergence.
    pub fn run_cycles_stepped(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Runs until every thread has committed at least `insts` instructions
    /// since the last [`Self::reset_stats`], or `max_cycles` elapse.
    /// Fast-forwards like [`Self::run_cycles`]; commits only happen on
    /// stepped cycles, so the stopping cycle is identical to the stepped
    /// loop's.
    pub fn run_until_committed(&mut self, insts: u64, max_cycles: u64) {
        let limit = self.now + max_cycles;
        while self.now < limit && self.stats.iter().any(|s| s.committed < insts) {
            self.step();
            self.fast_forward(limit);
        }
    }

    /// Snapshot of the measured statistics.
    pub fn result(&self) -> SimResult {
        SimResult {
            cycles: self.now - self.measure_start,
            policy: self.policy.name().to_string(),
            threads: self.stats.clone(),
        }
    }

    /// Refreshes a reusable per-cycle view in place — the allocation-free
    /// replacement for building a fresh `CycleView` every call. The view's
    /// struct-of-arrays lanes are scattered directly from the simulator's
    /// state; policies read them back as contiguous batch slices. The
    /// cumulative progress lanes are refreshed only for policies that
    /// declared they read them.
    pub(crate) fn fill_view(&self, view: &mut CycleView) {
        view.now = self.now;
        view.totals = self.totals;
        let n = self.threads.len();
        view.resize(n);
        for (i, th) in self.threads.iter().enumerate() {
            view.set_hot(
                i,
                th.pre_issue,
                self.usage[i],
                th.l1d_pending,
                th.l2_pending,
            );
        }
        if self.policy.wants_progress_counters() {
            for (i, s) in self.stats.iter().enumerate() {
                view.set_progress(i, s.committed, s.l2_misses, s.loads);
            }
        }
    }

    /// Public alias of [`Self::step`] for instrumentation binaries.
    #[doc(hidden)]
    pub fn step_public(&mut self) {
        self.step();
    }

    /// Advances the machine one cycle. Steady-state allocation-free: the
    /// policy view, fetch order, ready lists and MLP sample buffer are all
    /// long-lived buffers reused across cycles.
    pub fn step(&mut self) {
        let mut view = std::mem::take(&mut self.cycle_view);
        let mut order = std::mem::take(&mut self.order_scratch);
        self.idle = IdleTrack::default();
        self.fill_view(&mut view);
        self.policy.begin_cycle(&view);
        order.clear();
        self.policy.fetch_order(&view, &mut order);

        self.drain_events();
        self.commit();
        self.issue();
        self.dispatch(&order);
        self.fetch(&order, &view);
        self.sample_mlp();
        self.now += 1;
        self.cycle_view = view;
        self.order_scratch = order;
    }

    pub(crate) fn sample_mlp(&mut self) {
        self.mem
            .outstanding_l2_misses_into(self.now, &mut self.mlp_scratch);
        for (tid, &c) in self.mlp_scratch.iter().enumerate() {
            if c > 0 {
                self.stats[tid].mlp_sum += u64::from(c);
                self.stats[tid].mlp_cycles += 1;
            }
        }
    }

    /// Current pre-issue instruction count of a thread — the quantity the
    /// ICOUNT fetch policy ranks threads by.
    pub fn thread_icount(&self, t: ThreadId) -> u32 {
        self.threads[t.index()].pre_issue
    }

    /// Current per-thread occupancy of each controlled resource — the
    /// hardware usage counters of the paper's Section 3.4. Sampled by
    /// [`crate::watch::OccupancyRecorder`].
    pub fn thread_usage(&self, t: ThreadId) -> PerResource<u32> {
        self.usage[t.index()]
    }

    /// Debug snapshot of why a thread may be unable to fetch:
    /// `(blocked_on_branch, icache_stalled, stalled_on_load, fetch_queue_len)`.
    #[doc(hidden)]
    pub fn thread_fetch_state(&self, t: ThreadId) -> (bool, bool, bool, usize) {
        let th = &self.threads[t.index()];
        (
            false, // fetch no longer blocks on unresolved branches
            th.icache_stall_until > self.now,
            th.stall_on_load
                .map(|l| th.get(l).is_some() && th.stage_of(l) != crate::inst::Stage::Done)
                .unwrap_or(false),
            th.fetch_queue_len(),
        )
    }

    /// `true` while the given thread's trace reports a memory phase
    /// (ground truth for the Table-5 experiment).
    pub fn thread_in_memory_phase(&self, t: ThreadId) -> bool {
        self.threads[t.index()].trace().in_memory_phase()
    }

    /// The thread's pending L1-data-miss count (the paper's slow/fast phase
    /// signal, Section 3.1.1).
    pub fn thread_l1d_pending(&self, t: ThreadId) -> u32 {
        self.threads[t.index()].l1d_pending
    }
}

#[cfg(test)]
mod tests;
