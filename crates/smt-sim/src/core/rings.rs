//! Power-of-two, sequence-indexed ring storage.
//!
//! The simulator keys almost all of its per-instruction state by a
//! monotonically increasing per-thread sequence number: the in-flight
//! window, the decoded replay buffer, the struct-of-arrays stage/deps
//! lanes, and (keyed by cycle instead of seq) the timing wheel's buckets.
//! All of them share one storage shape: element `k` lives at slot
//! `k & (capacity - 1)`, so every lookup is one mask and one indexed load —
//! no front pointer, no base subtraction, no `VecDeque` two-slice
//! arithmetic. [`SeqRing`] is that shape, extracted from the previously
//! duplicated mask bookkeeping in the window and replay buffers.
//!
//! A `SeqRing` is *storage only*: it does not know which keys are live.
//! Owners (e.g. [`crate::thread::ThreadState`]) guard every access with
//! their own `[base, tip)` live range, and slots are always written before
//! a key re-enters the live range, so stale slot contents are unreachable
//! by construction.

/// Fixed-capacity ring addressed by monotonically increasing keys.
///
/// The mask is derived from `slots.len()` at every access (`len` is fixed
/// at a power of two by construction): writing the index as
/// `seq & (len - 1)` lets the optimiser *prove* it is in bounds, so the
/// hot-path lookups compile to a mask and a load with no bounds-check
/// branch — without any `unsafe`.
#[derive(Debug, Clone)]
pub(crate) struct SeqRing<T> {
    slots: Vec<T>,
}

impl<T: Clone> SeqRing<T> {
    /// Builds a ring of capacity `at_least.next_power_of_two()`, every
    /// slot initialised to `fill`.
    pub fn new(at_least: usize, fill: T) -> Self {
        let cap = at_least.next_power_of_two().max(1);
        SeqRing {
            slots: vec![fill; cap],
        }
    }
}

impl<T> SeqRing<T> {
    /// Number of slots (a power of two). Keys spanning more than this many
    /// consecutive values alias; the owner's live range must never grow
    /// beyond it.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// The slot for key `seq`.
    #[inline]
    pub fn at(&self, seq: u64) -> &T {
        &self.slots[(seq as usize) & (self.slots.len() - 1)]
    }

    /// The slot for key `seq`, mutably.
    #[inline]
    pub fn at_mut(&mut self, seq: u64) -> &mut T {
        let idx = (seq as usize) & (self.slots.len() - 1);
        &mut self.slots[idx]
    }

    /// Overwrites the slot for key `seq`.
    #[inline]
    pub fn set(&mut self, seq: u64, value: T) {
        let idx = (seq as usize) & (self.slots.len() - 1);
        self.slots[idx] = value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::VecDeque;

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        assert_eq!(SeqRing::new(1, 0u8).capacity(), 1);
        assert_eq!(SeqRing::new(3, 0u8).capacity(), 4);
        assert_eq!(SeqRing::new(512 + 16, 0u8).capacity(), 1024);
        assert_eq!(SeqRing::new(1024, 0u8).capacity(), 1024);
    }

    /// Reference model: a `VecDeque` of `(key, value)` pairs spanning the
    /// live range `[base, tip)`, against which the ring must agree on
    /// every lookup, eviction and refill.
    #[derive(Default)]
    struct Model {
        live: VecDeque<(u64, u64)>,
        base: u64,
        tip: u64,
    }

    impl Model {
        fn push(&mut self, value: u64) -> u64 {
            let key = self.tip;
            self.live.push_back((key, value));
            self.tip += 1;
            key
        }

        fn evict_oldest(&mut self) {
            self.live.pop_front();
            self.base += 1;
        }

        fn get(&self, key: u64) -> Option<u64> {
            if key < self.base || key >= self.tip {
                return None;
            }
            let (k, v) = self.live[(key - self.base) as usize];
            assert_eq!(k, key, "model bookkeeping broken");
            Some(v)
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Lookup/eviction equivalence against the naive `VecDeque` model:
        /// any interleaving of appends and oldest-first evictions that
        /// keeps the live span within capacity yields identical lookups
        /// for every key ever issued (dead keys excluded by the range
        /// guard, exactly as `ThreadState` guards its rings).
        #[test]
        fn matches_vecdeque_model(cap_pow in 1u32..6, ops in proptest::collection::vec(any::<u8>(), 1..200)) {
            let cap = 1usize << cap_pow;
            let mut ring = SeqRing::new(cap, 0u64);
            prop_assert_eq!(ring.capacity(), cap);
            let mut model = Model::default();
            for (i, op) in ops.iter().enumerate() {
                if *op % 3 != 0 || model.live.is_empty() {
                    if model.live.len() == cap {
                        // Full: the owner would never push past capacity.
                        model.evict_oldest();
                    }
                    let value = (i as u64) * 7919 + u64::from(*op);
                    let key = model.push(value);
                    ring.set(key, value);
                } else {
                    model.evict_oldest();
                }
                // Every live key agrees; keys outside [base, tip) are
                // rejected by the model (the ring has no liveness notion).
                for key in model.base..model.tip {
                    prop_assert_eq!(Some(*ring.at(key)), model.get(key));
                }
            }
        }

        /// Wraparound at power-of-two boundaries: keys exactly one
        /// capacity apart alias to the same slot, keys closer than one
        /// capacity never do.
        #[test]
        fn aliasing_is_exactly_capacity_periodic(cap_pow in 0u32..8, seq in any::<u64>()) {
            let cap = 1u64 << cap_pow;
            let mut ring = SeqRing::new(cap as usize, 0u64);
            let seq = seq & (u64::MAX >> 1); // headroom for seq + cap
            ring.set(seq, 41);
            ring.set(seq + cap, 42);
            prop_assert_eq!(*ring.at(seq), 42, "one full turn aliases");
            for delta in 1..cap.min(16) {
                ring.set(seq + delta, 100 + delta);
                prop_assert_eq!(*ring.at(seq), 42, "within-capacity keys are distinct slots");
            }
        }

        /// Reset-then-refill: an owner that rewinds to key 0 (session
        /// reuse) and refills sees only the new values — provided it
        /// rewrites before reading, which is the owner's invariant.
        #[test]
        fn reset_then_refill_shadows_old_values(cap_pow in 1u32..7, len in 1u64..100) {
            let cap = 1u64 << cap_pow;
            let mut ring = SeqRing::new(cap as usize, 0u64);
            for seq in 0..len {
                ring.set(seq, 1_000 + seq);
            }
            // "Reset": the owner rewinds its live range to empty and
            // refills from key 0 with new values, never reading a slot
            // before writing it.
            let live = len.min(cap);
            for seq in 0..live {
                ring.set(seq, 2_000 + seq);
                prop_assert_eq!(*ring.at(seq), 2_000 + seq);
            }
            for seq in 0..live {
                prop_assert_eq!(*ring.at(seq), 2_000 + seq, "refilled values visible");
            }
        }
    }
}
