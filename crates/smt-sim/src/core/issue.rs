//! Issue stage: pop ready instructions oldest-first from the per-queue
//! wakeup scoreboard, bounded by per-queue unit counts and the global
//! issue width.

use super::events::{Event, EventKind};
use super::Simulator;
use crate::inst::{Stage, NO_DEP};
use crate::policy::Policy;
use smt_isa::{InstClass, QueueKind, ThreadId};

impl Simulator {
    pub(crate) fn issue(&mut self) {
        // Any non-empty ready list makes the cycle active: even a
        // stale-only list is drained below, which mutates the heap (the
        // next cycle then starts from empty lists and can fast-forward).
        if self.ready.iter().any(|r| !r.is_empty()) {
            self.idle.active = true;
        }
        let mut global_budget = self.config.decode_width; // issue width = 8
        for q in QueueKind::ALL {
            let mut unit_budget = self.config.units(q).min(global_budget);
            // Pop ready instructions oldest-first. No window scan: the
            // wakeup scoreboard moved every issuable instruction onto this
            // queue's ready list when its last operand completed. Entries
            // whose uid no longer matches (or whose instruction is no
            // longer Dispatched) were squashed after being woken; they are
            // discarded without consuming issue bandwidth, exactly as the
            // scan never saw them.
            while unit_budget > 0 && global_budget > 0 {
                let Some(std::cmp::Reverse(entry)) = self.ready[q.index()].pop() else {
                    break;
                };
                let (seq, tid, uid) = (entry.seq(), entry.tid(), entry.uid);
                let th = &self.threads[tid];
                let live = th.get(seq).map(|i| i.uid == uid).unwrap_or(false)
                    && th.stage_of(seq) == Stage::Dispatched;
                if !live {
                    continue;
                }
                debug_assert!(
                    self.operands_ready(tid, seq),
                    "wakeup scoreboard woke T{tid} seq {seq} before its operands"
                );
                self.issue_one(tid, seq);
                unit_budget -= 1;
                global_budget -= 1;
            }
        }
    }

    /// Scan-based readiness check, used only by debug assertions and the
    /// consistency checker to cross-validate the wakeup scoreboard.
    pub(crate) fn operands_ready(&self, tid: usize, seq: u64) -> bool {
        let th = &self.threads[tid];
        th.deps_of(seq).iter().all(|&p| {
            if p == NO_DEP {
                return true;
            }
            match th.get(p) {
                Some(_) => th.stage_of(p) == Stage::Done,
                None => true, // already committed
            }
        })
    }

    fn issue_one(&mut self, tid: usize, seq: u64) {
        let t = ThreadId::new(tid);
        let now = self.now;
        let regread = u64::from(self.config.regread_delay);
        let th = &mut self.threads[tid];
        th.set_stage(seq, Stage::Executing);
        let inst = th.at(seq);
        let class = inst.class;
        let q = class.queue();
        let uid = inst.uid;
        let mem_addr = inst.mem_addr;
        let pc = inst.pc;

        th.pre_issue -= 1;
        self.iq_used[q.index()] -= 1;
        self.usage[tid][q.resource()] -= 1;

        let ready_at = match class {
            InstClass::Load => {
                let outcome = self.mem.access_data(t, mem_addr, false, now);
                self.stats[tid].loads += 1;
                if outcome.l1_miss() {
                    let th = &mut self.threads[tid];
                    th.at_mut(seq).set_l1_miss();
                    th.l1d_pending += 1;
                    self.stats[tid].l1d_misses += 1;
                    self.policy.on_l1d_miss(t, pc);
                }
                if outcome.l2_miss() {
                    self.threads[tid].at_mut(seq).set_l2_miss();
                    self.stats[tid].l2_misses += 1;
                    self.events.push(
                        now,
                        Event {
                            at: now + u64::from(self.config.mem.l2.latency),
                            uid,
                            tid: tid as u32,
                            seq,
                            kind: EventKind::DetectL2,
                        },
                    );
                }
                now + regread + u64::from(outcome.latency)
            }
            InstClass::Store => {
                // Stores write at commit through a store buffer; the access
                // warms the caches but does not block the pipeline.
                let _ = self.mem.access_data(t, mem_addr, true, now);
                now + regread + u64::from(class.exec_latency())
            }
            c => now + regread + u64::from(c.exec_latency()),
        };
        self.events.push(
            now,
            Event {
                at: ready_at,
                uid,
                tid: tid as u32,
                seq,
                kind: EventKind::Complete,
            },
        );
    }
}
