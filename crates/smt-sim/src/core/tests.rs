use super::*;
use crate::policy::RoundRobin;
use smt_workloads::spec;

fn sim(benches: &[&str], policy: impl Into<AnyPolicy>) -> Simulator {
    let cfg = SimConfig::baseline(benches.len());
    let profiles: Vec<_> = benches.iter().map(|b| spec::profile(b).unwrap()).collect();
    Simulator::new(cfg, &profiles, policy, 7)
}

#[test]
fn single_thread_makes_progress() {
    let mut s = sim(&["gzip"], RoundRobin::default());
    s.run_cycles(200_000);
    s.reset_stats();
    s.run_cycles(50_000);
    let r = s.result();
    // gzip reaches ~2.3 IPC in full steady state (after the warm
    // working set's first sweep); this shorter run must at least show
    // healthy sustained progress.
    assert!(
        r.total_committed() > 30_000,
        "IPC too low: {}",
        r.throughput()
    );
    assert!(r.throughput() <= 8.0, "cannot exceed machine width");
}

#[test]
fn high_ilp_thread_beats_memory_bound_thread() {
    let mut fast = sim(&["gzip"], RoundRobin::default());
    fast.run_cycles(150_000);
    let mut slow = sim(&["mcf"], RoundRobin::default());
    slow.run_cycles(150_000);
    let (f, s) = (fast.result().throughput(), slow.result().throughput());
    assert!(f > 1.5 * s, "gzip ({f:.2}) should far outrun mcf ({s:.2})");
}

#[test]
fn counters_stay_consistent() {
    let mut s = sim(&["mcf", "gzip"], RoundRobin::default());
    for _ in 0..200 {
        s.run_cycles(50);
        s.assert_consistent();
    }
}

#[test]
fn deterministic_across_runs() {
    let run = || {
        let mut s = sim(&["twolf", "gcc"], RoundRobin::default());
        s.run_cycles(15_000);
        let r = s.result();
        (r.total_committed(), r.total_fetched())
    };
    assert_eq!(run(), run());
}

#[test]
fn reset_stats_starts_a_fresh_measurement() {
    let mut s = sim(&["gzip"], RoundRobin::default());
    s.run_cycles(5_000);
    s.reset_stats();
    assert_eq!(s.result().total_committed(), 0);
    s.run_cycles(5_000);
    let r = s.result();
    assert_eq!(r.cycles, 5_000);
    assert!(r.total_committed() > 0);
}

#[test]
fn memory_bound_thread_records_misses_and_mlp() {
    let mut s = sim(&["art"], RoundRobin::default());
    s.run_cycles(60_000);
    let r = s.result();
    assert!(r.threads[0].l2_misses > 50, "art should miss in L2");
    assert!(r.threads[0].mlp() >= 1.0);
}

#[test]
fn mispredictions_block_fetch_but_do_not_refetch() {
    // Wrong-path instructions are not fetched (the thread stalls until
    // the branch resolves), so mispredictions alone do not inflate the
    // fetch count; policy flushes do (tested in smt-policies).
    let mut s = sim(&["mcf"], RoundRobin::default());
    s.run_cycles(30_000);
    let r = s.result();
    assert!(r.threads[0].mispredicts > 0);
    assert!(r.threads[0].fetched >= r.threads[0].committed);
}

#[test]
fn run_until_committed_stops_early() {
    let mut s = sim(&["gzip"], RoundRobin::default());
    s.run_until_committed(1_000, 1_000_000);
    assert!(s.result().threads[0].committed >= 1_000);
    assert!(s.now() < 1_000_000);
}

#[test]
fn profiled_step_is_bit_identical_to_step() {
    let mut plain = sim(&["mcf", "gzip"], RoundRobin::default());
    let mut profiled = sim(&["mcf", "gzip"], RoundRobin::default());
    let mut prof = StageProfile::default();
    for _ in 0..20_000 {
        plain.step();
        profiled.step_profiled(&mut prof);
    }
    assert_eq!(plain.result(), profiled.result());
    assert_eq!(prof.cycles, 20_000);
    assert!(prof.total().as_nanos() > 0);
    let share_sum: f64 = prof.shares().iter().map(|(_, s)| s).sum();
    assert!((share_sum - 1.0).abs() < 1e-9, "shares sum to {share_sum}");
}

#[test]
fn reset_reproduces_a_fresh_simulator_bit_for_bit() {
    let digest = |s: &Simulator| {
        let r = s.result();
        (
            r.cycles,
            r.threads.clone(),
            s.memory().cache_stats(),
            s.predictor().stats(),
        )
    };
    // Run a first (different) workload to dirty every structure, then
    // reset onto the reference workload and compare against a fresh
    // simulator: identical statistics, cycle for cycle.
    let mut reused = sim(&["mcf", "art"], RoundRobin::default());
    reused.run_cycles(20_000);
    let profiles = [
        spec::profile("twolf").unwrap(),
        spec::profile("gcc").unwrap(),
    ];
    reused.reset(&profiles, RoundRobin::default(), 99);
    reused.run_cycles(20_000);
    reused.assert_consistent();

    let mut fresh = Simulator::new(SimConfig::baseline(2), &profiles, RoundRobin::default(), 99);
    fresh.run_cycles(20_000);
    assert_eq!(digest(&reused), digest(&fresh));
}
