use super::*;
use crate::policy::RoundRobin;
use smt_workloads::spec;

fn sim(benches: &[&str], policy: impl Into<AnyPolicy>) -> Simulator {
    let cfg = SimConfig::baseline(benches.len());
    let profiles: Vec<_> = benches.iter().map(|b| spec::profile(b).unwrap()).collect();
    Simulator::new(cfg, &profiles, policy, 7)
}

#[test]
fn single_thread_makes_progress() {
    let mut s = sim(&["gzip"], RoundRobin::default());
    s.run_cycles(200_000);
    s.reset_stats();
    s.run_cycles(50_000);
    let r = s.result();
    // gzip reaches ~2.3 IPC in full steady state (after the warm
    // working set's first sweep); this shorter run must at least show
    // healthy sustained progress.
    assert!(
        r.total_committed() > 30_000,
        "IPC too low: {}",
        r.throughput()
    );
    assert!(r.throughput() <= 8.0, "cannot exceed machine width");
}

#[test]
fn high_ilp_thread_beats_memory_bound_thread() {
    let mut fast = sim(&["gzip"], RoundRobin::default());
    fast.run_cycles(150_000);
    let mut slow = sim(&["mcf"], RoundRobin::default());
    slow.run_cycles(150_000);
    let (f, s) = (fast.result().throughput(), slow.result().throughput());
    assert!(f > 1.5 * s, "gzip ({f:.2}) should far outrun mcf ({s:.2})");
}

#[test]
fn counters_stay_consistent() {
    let mut s = sim(&["mcf", "gzip"], RoundRobin::default());
    for _ in 0..200 {
        s.run_cycles(50);
        s.assert_consistent();
    }
}

#[test]
fn deterministic_across_runs() {
    let run = || {
        let mut s = sim(&["twolf", "gcc"], RoundRobin::default());
        s.run_cycles(15_000);
        let r = s.result();
        (r.total_committed(), r.total_fetched())
    };
    assert_eq!(run(), run());
}

#[test]
fn reset_stats_starts_a_fresh_measurement() {
    let mut s = sim(&["gzip"], RoundRobin::default());
    s.run_cycles(5_000);
    s.reset_stats();
    assert_eq!(s.result().total_committed(), 0);
    s.run_cycles(5_000);
    let r = s.result();
    assert_eq!(r.cycles, 5_000);
    assert!(r.total_committed() > 0);
}

#[test]
fn memory_bound_thread_records_misses_and_mlp() {
    let mut s = sim(&["art"], RoundRobin::default());
    s.run_cycles(60_000);
    let r = s.result();
    assert!(r.threads[0].l2_misses > 50, "art should miss in L2");
    assert!(r.threads[0].mlp() >= 1.0);
}

#[test]
fn mispredictions_block_fetch_but_do_not_refetch() {
    // Wrong-path instructions are not fetched (the thread stalls until
    // the branch resolves), so mispredictions alone do not inflate the
    // fetch count; policy flushes do (tested in smt-policies).
    let mut s = sim(&["mcf"], RoundRobin::default());
    s.run_cycles(30_000);
    let r = s.result();
    assert!(r.threads[0].mispredicts > 0);
    assert!(r.threads[0].fetched >= r.threads[0].committed);
}

#[test]
fn run_until_committed_stops_early() {
    let mut s = sim(&["gzip"], RoundRobin::default());
    s.run_until_committed(1_000, 1_000_000);
    assert!(s.result().threads[0].committed >= 1_000);
    assert!(s.now() < 1_000_000);
}

#[test]
fn profiled_step_is_bit_identical_to_step() {
    let mut plain = sim(&["mcf", "gzip"], RoundRobin::default());
    let mut profiled = sim(&["mcf", "gzip"], RoundRobin::default());
    let mut prof = StageProfile::default();
    for _ in 0..20_000 {
        plain.step();
        profiled.step_profiled(&mut prof);
    }
    assert_eq!(plain.result(), profiled.result());
    assert_eq!(prof.cycles, 20_000);
    assert!(prof.total().as_nanos() > 0);
    let share_sum: f64 = prof.shares().iter().map(|(_, s)| s).sum();
    assert!((share_sum - 1.0).abs() < 1e-9, "shares sum to {share_sum}");
}

#[test]
#[should_panic(expected = "invalid simulator configuration")]
fn oversized_thread_count_is_rejected_at_construction() {
    // A config mutated (or deserialized) past MAX_THREADS must be refused
    // by the hard `SimConfig::validate` call in `Simulator::new` — in
    // release builds too — before the `seq << 3 | tid` ready-key packing
    // could silently corrupt issue ordering.
    let mut cfg = SimConfig::baseline(4);
    cfg.threads = smt_isa::ThreadId::MAX_THREADS + 1;
    cfg.phys_regs = u32::MAX; // keep the register check out of the way
    let profiles: Vec<_> = [
        "gzip", "mcf", "art", "gcc", "twolf", "swim", "eon", "gap", "vpr",
    ]
    .iter()
    .filter_map(|b| spec::profile(b))
    .take(cfg.threads)
    .collect();
    let _ = Simulator::new(cfg, &profiles, RoundRobin::default(), 1);
}

/// Fills `tid`'s fetch queue to its configured capacity with real decoded
/// instructions (mirroring what the fetch stage would do), so the
/// full-queue fetch path can be exercised directly.
fn fill_fetch_queue(s: &mut Simulator, tid: usize) {
    let cap = s.config.fetch_queue as usize;
    while s.threads[tid].fetch_queue_len() < cap {
        let th = &mut s.threads[tid];
        let seq = th.next_fetch;
        let (packed, mem_addr) = th.fetch_entry(seq);
        let deps = crate::inst::resolve_deps(&packed, seq);
        s.uid_counter += 1;
        let inst = crate::inst::DynInst::fetched(s.uid_counter, &packed, mem_addr, s.now, 0);
        let th = &mut s.threads[tid];
        th.push_fetched(inst, deps);
        th.pre_issue += 1;
    }
}

#[test]
fn full_fetch_queue_consumes_no_budget_and_no_icache_access() {
    // The early return in the fetch stage must fire *before* the I-cache:
    // a full-queue thread is skipped silently — no budget spent, no stall
    // charged — and the whole fetch width stays available to the next
    // thread in the order.
    let mut s = sim(&["gzip", "gcc"], RoundRobin::default());
    s.prewarm(50_000); // warm the I-cache so thread 1 hits
    fill_fetch_queue(&mut s, 0);
    let il1_before = s.mem.cache_stats().0.accesses;
    let view = {
        let mut v = crate::policy::CycleView::default();
        s.fill_view(&mut v);
        v
    };
    let order = [smt_isa::ThreadId::new(0), smt_isa::ThreadId::new(1)];
    s.fetch(&order, &view);
    assert_eq!(s.stats[0].fetched, 0, "full-queue thread must not fetch");
    assert_eq!(
        s.threads[0].icache_stall_until, 0,
        "full-queue thread must not be charged an I-cache stall"
    );
    // Thread 1 got the whole width: one full block or until its fetch
    // block ended, but definitely more than zero.
    assert!(
        s.stats[1].fetched > 0,
        "thread 1 should use the freed budget"
    );
    let il1_after = s.mem.cache_stats().0.accesses;
    assert_eq!(
        il1_after - il1_before,
        1,
        "exactly one I-cache access (thread 1's block); none for thread 0"
    );
}

#[test]
fn icache_miss_consumes_exactly_one_fetch_slot() {
    // Cold I-cache: the first access of a width-1 front end misses and
    // must spend the single budget slot (`budget.saturating_sub(1)` is
    // exact here, not an off-by-one), so the second thread is not even
    // attempted. With width 2, the second thread gets the remaining slot
    // and touches the I-cache.
    let mut cfg = SimConfig::baseline(2);
    cfg.fetch_width = 1;
    let profiles = [
        spec::profile("gzip").unwrap(),
        spec::profile("gcc").unwrap(),
    ];
    let mut s = Simulator::new(cfg.clone(), &profiles, RoundRobin::default(), 3);
    let mut view = crate::policy::CycleView::default();
    s.fill_view(&mut view);
    let order = [smt_isa::ThreadId::new(0), smt_isa::ThreadId::new(1)];
    s.fetch(&order, &view);
    let (il1, _, _) = s.mem.cache_stats();
    assert_eq!(
        il1.accesses, 1,
        "width-1 miss leaves no budget for thread 1"
    );
    assert!(s.threads[0].icache_stall_until > s.now, "thread 0 stalled");
    assert_eq!(
        s.threads[1].icache_stall_until, 0,
        "thread 1 never attempted"
    );

    cfg.fetch_width = 2;
    let mut s = Simulator::new(cfg, &profiles, RoundRobin::default(), 3);
    let mut view = crate::policy::CycleView::default();
    s.fill_view(&mut view);
    s.fetch(&order, &view);
    let (il1, _, _) = s.mem.cache_stats();
    assert_eq!(
        il1.accesses, 2,
        "width-2: the miss consumed one slot, thread 1 used the other"
    );
}

#[test]
fn fast_forward_skips_cycles_on_stalled_workloads() {
    // A memory-bound mix under a stalling policy spends most cycles with
    // every thread blocked; the fast-forward path must cover a large
    // share of them (observable through the profiled runner's `skipped`
    // counter) while producing the bit-identical result the equivalence
    // tests pin.
    let profiles = [spec::profile("mcf").unwrap(), spec::profile("art").unwrap()];
    let mut s = Simulator::new(
        SimConfig::baseline(2),
        &profiles,
        crate::policy::AnyPolicy::from(smt_policies::Stall),
        11,
    );
    let mut prof = StageProfile::default();
    s.run_cycles_profiled(60_000, &mut prof);
    assert_eq!(
        prof.cycles, 60_000,
        "profiled cycles count stepped + skipped"
    );
    assert!(
        prof.skipped > 10_000,
        "expected a large skipped share on a MEM mix, got {}",
        prof.skipped
    );
    assert_eq!(s.now(), 60_000);
}

#[test]
fn fast_forward_respects_run_boundaries() {
    // Jumps are capped at the requested run end: chunked runs land on
    // exactly the same cycles as one long run.
    let profiles = [spec::profile("mcf").unwrap()];
    let build = || {
        Simulator::new(
            SimConfig::baseline(1),
            &profiles,
            crate::policy::AnyPolicy::from(smt_policies::Stall),
            5,
        )
    };
    let mut chunked = build();
    for _ in 0..100 {
        chunked.run_cycles(97); // awkward chunk size on purpose
    }
    let mut whole = build();
    whole.run_cycles(9_700);
    assert_eq!(chunked.now(), whole.now());
    assert_eq!(chunked.result(), whole.result());
}

#[test]
fn reset_reproduces_a_fresh_simulator_bit_for_bit() {
    let digest = |s: &Simulator| {
        let r = s.result();
        (
            r.cycles,
            r.threads.clone(),
            s.memory().cache_stats(),
            s.predictor().stats(),
        )
    };
    // Run a first (different) workload to dirty every structure, then
    // reset onto the reference workload and compare against a fresh
    // simulator: identical statistics, cycle for cycle.
    let mut reused = sim(&["mcf", "art"], RoundRobin::default());
    reused.run_cycles(20_000);
    let profiles = [
        spec::profile("twolf").unwrap(),
        spec::profile("gcc").unwrap(),
    ];
    reused.reset(&profiles, RoundRobin::default(), 99);
    reused.run_cycles(20_000);
    reused.assert_consistent();

    let mut fresh = Simulator::new(SimConfig::baseline(2), &profiles, RoundRobin::default(), 99);
    fresh.run_cycles(20_000);
    assert_eq!(digest(&reused), digest(&fresh));
}
