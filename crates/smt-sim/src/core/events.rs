//! Timing events: the wheel, the wakeup scoreboard entries, and the
//! event-drain stage that starts every cycle.
//!
//! This module owns everything that happens *between* cycles: completion
//! and L2-detection events scheduled by the issue stage land on the
//! [`EventWheel`], and the drain at the top of each cycle delivers them —
//! waking consumers onto the per-queue ready lists ([`ReadyEntry`]) and
//! applying policy miss responses.

use super::Simulator;
use crate::core::rings::SeqRing;
use crate::inst::Stage;
use crate::policy::{MissResponse, Policy};
use crate::thread::NO_WAITER;
use smt_isa::{InstClass, ThreadId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A timing event scheduled on the simulator's event queue. Field order
/// is the comparison order (and the per-cycle drain order): `(at, uid,
/// tid, kind, seq)` — drain-order-equivalent to the original `(at, uid,
/// tid, seq, kind)` because `uid` is globally unique per incarnation, so
/// two distinct events can only tie through `kind`. `tid` is narrowed to
/// `u32` and `kind` packed before `seq` purely to keep the struct at 32
/// bytes — the wheel sorts one bucket of these every cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct Event {
    pub at: u64,
    pub uid: u64,
    pub tid: u32,
    pub kind: EventKind,
    pub seq: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum EventKind {
    /// An executing instruction's result becomes available.
    Complete,
    /// An outstanding load is recognised as an L2 miss (one L2 latency
    /// after issue — the "detected too late" effect of Section 2).
    DetectL2,
}

/// Ready-list entry: ordered by `(dispatched_at, seq·8 + tid)` — exactly
/// the `(dispatched_at, seq, tid)` age order the scan-based issue stage
/// used (`tid < ThreadId::MAX_THREADS = 8`, so the packing is
/// order-preserving). `uid` identifies the incarnation so entries left
/// behind by a squash are recognised as stale when popped; it is excluded
/// from the ordering (and equality) because at most one entry per
/// `(dispatched_at, seq, tid)` can ever be live — a squashed incarnation
/// is re-dispatched at a strictly later cycle.
#[derive(Clone, Copy)]
pub(crate) struct ReadyEntry {
    pub at: u64,
    pub seq_tid: u64,
    pub uid: u64,
}

impl PartialEq for ReadyEntry {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq_tid) == (other.at, other.seq_tid)
    }
}

impl Eq for ReadyEntry {}

impl ReadyEntry {
    #[inline]
    pub fn new(at: u64, seq: u64, tid: usize, uid: u64) -> Self {
        // `tid < 8` is a hard invariant of the whole simulator, enforced in
        // release builds by `SimConfig::validate` (rejected before any
        // `ReadyEntry` can exist) and by the `ThreadId::new` assert; the
        // debug_assert here is a local reminder that the `seq << 3 | tid`
        // packing below would corrupt issue ordering if it ever broke.
        debug_assert!(tid < smt_isa::ThreadId::MAX_THREADS);
        ReadyEntry {
            at,
            seq_tid: (seq << 3) | tid as u64,
            uid,
        }
    }

    #[inline]
    pub fn seq(&self) -> u64 {
        self.seq_tid >> 3
    }

    #[inline]
    pub fn tid(&self) -> usize {
        (self.seq_tid & 7) as usize
    }
}

impl Ord for ReadyEntry {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq_tid).cmp(&(other.at, other.seq_tid))
    }
}

impl PartialOrd for ReadyEntry {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Timing wheel for the simulator's completion/detection events.
///
/// Event latencies are bounded by the memory system (worst case: L1 + L2 +
/// memory + TLB penalty), so events land in a power-of-two ring of
/// per-cycle buckets (a [`SeqRing`] keyed by delivery cycle): O(1)
/// scheduling and draining instead of a binary heap's `O(log n)` tuple
/// comparisons. Each cycle's bucket is sorted before processing, which
/// reproduces the heap's global `(at, uid, tid, seq, kind)` drain order
/// exactly — every event in the bucket shares the same `at`. Events beyond
/// the wheel horizon (odd configurations only) spill into a small overflow
/// heap that is merged on drain.
#[derive(Debug)]
pub(crate) struct EventWheel {
    slots: SeqRing<Vec<Event>>,
    overflow: BinaryHeap<Reverse<Event>>,
    /// Drain scratch, reused every cycle.
    due: Vec<Event>,
    /// Scheduled events currently live (wheel + overflow), so the
    /// fast-forward deadline scan can bail out in O(1) on an empty wheel.
    len: usize,
}

impl EventWheel {
    /// Builds a wheel covering at least `max_delay` cycles of look-ahead.
    pub fn new(max_delay: u64) -> Self {
        EventWheel {
            slots: SeqRing::new((max_delay + 2).max(16) as usize, Vec::new()),
            overflow: BinaryHeap::new(),
            due: Vec::new(),
            len: 0,
        }
    }

    /// Schedules `ev`. All real latencies are at least one cycle; should a
    /// degenerate configuration produce `at <= now`, the event lands in the
    /// next cycle's bucket (this cycle's drain has already run), which is
    /// exactly when the replaced binary-heap drain would have delivered it.
    pub fn push(&mut self, now: u64, ev: Event) {
        let deliver_at = ev.at.max(now + 1);
        if ((deliver_at - now) as usize) < self.slots.capacity() {
            self.slots.at_mut(deliver_at).push(ev);
        } else {
            self.overflow.push(Reverse(ev));
        }
        self.len += 1;
    }

    /// Delivery cycle of the earliest scheduled event in
    /// `[now, now + horizon)` (stale events included — delivering a stale
    /// event is a no-op, so treating it as a deadline is merely
    /// conservative), or `None` when nothing is scheduled in that range.
    /// Live wheel entries always sit within `(drain cycle, drain cycle +
    /// capacity)`, so one bounded pass over the buckets visits every
    /// delivery cycle at most once; the fast-forward caller passes its
    /// current best deadline as the horizon, keeping the scan no longer
    /// than the jump it could justify.
    pub fn next_due_at(&self, now: u64, horizon: u64) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        let mut best = self
            .overflow
            .peek()
            .map(|&Reverse(ev)| ev.at.max(now))
            .filter(|&at| at - now < horizon);
        let span = (self.slots.capacity() as u64).min(horizon);
        for dt in 0..span {
            let at = now + dt;
            if !self.slots.at(at).is_empty() {
                best = Some(best.map_or(at, |b| b.min(at)));
                break;
            }
        }
        best
    }

    /// `true` when nothing is due at `now` — lets the drain stage skip the
    /// buffer shuffle entirely on quiet cycles.
    #[inline]
    pub fn is_idle(&self, now: u64) -> bool {
        self.slots.at(now).is_empty()
            && self.overflow.peek().map(|&Reverse(ev)| ev.at > now) != Some(false)
    }

    /// Moves every event due at `now` into the `due` scratch buffer,
    /// sorted in the canonical event order, and returns the buffer by
    /// value for borrow-free iteration (return it via [`Self::restore`]).
    pub fn take_due(&mut self, now: u64) -> Vec<Event> {
        let mut due = std::mem::take(&mut self.due);
        due.clear();
        due.append(self.slots.at_mut(now));
        while let Some(&Reverse(ev)) = self.overflow.peek() {
            if ev.at > now {
                break;
            }
            self.overflow.pop();
            due.push(ev);
        }
        debug_assert!(due.iter().all(|e| e.at <= now), "stale bucket entry");
        self.len -= due.len();
        if due.len() > 1 {
            due.sort_unstable();
        }
        due
    }

    /// Hands the drain buffer back for reuse.
    pub fn restore(&mut self, due: Vec<Event>) {
        self.due = due;
    }

    /// Discards every scheduled event, retaining all allocations. Used by
    /// [`Simulator::reset`] when a session is reused for a new run.
    pub fn clear(&mut self) {
        for at in 0..self.slots.capacity() as u64 {
            self.slots.at_mut(at).clear();
        }
        self.overflow.clear();
        self.due.clear();
        self.len = 0;
    }
}

impl Simulator {
    /// Event-drain stage: delivers every event due this cycle in canonical
    /// order. Runs before any pipeline stage so completions wake consumers
    /// for the same cycle's issue.
    pub(crate) fn drain_events(&mut self) {
        if self.events.is_idle(self.now) {
            return;
        }
        let due = self.events.take_due(self.now);
        for ev in &due {
            // The instruction may have been squashed (uid mismatch) or even
            // re-fetched under the same seq; both are stale. Dropping a
            // stale event only empties its wheel bucket — no thread,
            // resource or statistic moves — so a stale-only drain leaves
            // the cycle eligible for fast-forward (squash-heavy policies
            // like FLUSH would otherwise have their idle spans shredded by
            // the dead completions of every flushed window).
            let tid = ev.tid as usize;
            let valid = self.threads[tid]
                .get(ev.seq)
                .map(|i| i.uid == ev.uid)
                .unwrap_or(false);
            if !valid {
                continue;
            }
            // A delivered event changes machine state (stages, wakeups,
            // pending counters, possibly a squash): the cycle is active.
            self.idle.active = true;
            match ev.kind {
                EventKind::Complete => self.complete_inst(tid, ev.seq),
                EventKind::DetectL2 => self.detect_l2(tid, ev.seq),
            }
        }
        self.events.restore(due);
    }

    fn complete_inst(&mut self, tid: usize, seq: u64) {
        let t = ThreadId::new(tid);
        let th = &mut self.threads[tid];
        debug_assert_eq!(th.stage_of(seq), Stage::Executing);
        th.set_stage(seq, Stage::Done);
        let inst = th.at(seq);
        let mispredicted = inst.mispredicted();
        let l1_miss = inst.l1_miss();
        let l2_miss = inst.l2_miss();
        let l2_detected = inst.l2_detected();
        let pc = inst.pc;
        let is_load = inst.class == InstClass::Load;

        if l1_miss {
            th.l1d_pending -= 1;
        }
        if l2_miss && l2_detected {
            th.l2_pending -= 1;
        }
        if th.stall_on_load == Some(seq) {
            th.stall_on_load = None;
        }

        // Event-driven wakeup: this result is now available, so walk the
        // completed instruction's consumer wait-list, decrement each live
        // consumer's outstanding-operand count, and move the newly-ready
        // ones onto their queue's ready list. Nodes whose uid no longer
        // matches belong to squashed incarnations and are just recycled.
        let mut node = th.detach_waiters(seq);
        while node != NO_WAITER {
            let (w, next) = th.take_waiter(node);
            node = next;
            debug_assert!(w.seq > seq, "consumers are younger than their producer");
            let live = th.get(w.seq).is_some_and(|c| c.uid == w.uid)
                && th.stage_of(w.seq) == Stage::Dispatched;
            if live {
                let consumer = th.at_mut(w.seq);
                consumer.pending_ops -= 1;
                if consumer.pending_ops == 0 {
                    let entry = ReadyEntry::new(consumer.dispatched_at, w.seq, tid, consumer.uid);
                    let q = consumer.class.queue();
                    self.ready[q.index()].push(Reverse(entry));
                }
            }
        }

        if is_load {
            self.policy.on_load_complete(t, pc, l1_miss);
        }
        if l1_miss {
            let level = if l2_miss {
                smt_mem::HitLevel::Memory
            } else {
                smt_mem::HitLevel::L2
            };
            self.policy.on_miss_resolved(t, pc, level);
        }
        if mispredicted {
            // The thread kept fetching past the unresolved branch (the
            // trace-driven stand-in for wrong-path execution): those
            // instructions held fetch slots and shared resources exactly
            // like wrong-path work would, and are discarded now. Fetch
            // redirects with a short bubble; the refetched instructions
            // additionally pay the front-end depth before renaming again.
            self.squash_after(tid, seq);
            let th = &mut self.threads[tid];
            th.icache_stall_until = th.icache_stall_until.max(self.now + 2);
        }
    }

    fn detect_l2(&mut self, tid: usize, seq: u64) {
        let t = ThreadId::new(tid);
        {
            let th = &mut self.threads[tid];
            assert!(th.get(seq).is_some(), "detecting unknown instruction");
            if th.stage_of(seq) != Stage::Executing || th.at(seq).l2_detected() {
                return;
            }
            th.at_mut(seq).set_l2_detected();
            th.l2_pending += 1;
        }
        let mut view = std::mem::take(&mut self.scratch_view);
        self.fill_view(&mut view);
        let response = self.policy.on_l2_miss_detected(t, &view);
        self.scratch_view = view;
        match response {
            MissResponse::Continue => {}
            MissResponse::Stall => {
                self.threads[tid].stall_on_load = Some(seq);
            }
            MissResponse::Flush => {
                self.squash_after(tid, seq);
                self.threads[tid].stall_on_load = Some(seq);
            }
        }
    }
}
