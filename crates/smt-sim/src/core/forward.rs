//! Multi-cycle fast-forward: when a whole cycle goes by with nothing to
//! do — every thread stalled on a miss, gated by the policy, or blocked on
//! a full shared structure — the machine will keep doing nothing until
//! some deadline arrives. This module jumps the clock straight to that
//! deadline instead of grinding through the empty cycles one at a time,
//! replaying the per-cycle side effects (policy rotation/decay/windows via
//! [`Policy::on_idle_cycles`], gated/blocked statistics, MLP samples, the
//! commit round-robin origin) arithmetically.
//!
//! # Why this is bit-identical
//!
//! A cycle whose step reported no activity ([`super::IdleTrack::active`]
//! false) changed nothing but `now`, the per-cycle statistics it charged,
//! and the policy's internal per-cycle state. As long as no *input* to
//! the next cycle changes, that cycle is a fixed point: stepping it again
//! produces the same nothing with the same charges. The inputs that can
//! change on their own (without any stage doing work) are exactly:
//!
//! * an event coming due on the wheel (completion / L2 detection),
//! * an instruction's front-end delay expiring (`dispatch_eligible_at`),
//! * an I-cache stall expiring (`icache_stall_until`),
//! * an MSHR fill completing (which moves the per-cycle MLP sample), and
//! * the policy's own per-cycle dynamics (DCRA activity decay, FLUSH++
//!   window rollovers, RR rotation).
//!
//! [`Simulator::fast_forward`] takes the minimum of the first four
//! deadlines (and the run limit), then asks the policy — via
//! [`Policy::on_idle_cycles`] — to replay up to that many cycles of its
//! own state; the policy returns how many cycles it can vouch for (DCRA
//! caps at the next activity-counter flip). The machine statistics for the
//! accepted span are then replayed in O(threads), and the clock jumps.
//! The stepped-vs-fast-forward property test and the golden determinism
//! suite pin the equivalence for all nine canonical policies.

use super::Simulator;
use crate::policy::Policy;

impl Simulator {
    /// After an idle [`Simulator::step`], jumps `now` forward to just
    /// before the next cycle on which anything can happen (bounded by
    /// `limit`, the end of the current run), replaying the skipped cycles'
    /// statistics and policy state. A no-op after an active step, so the
    /// run loops call it unconditionally.
    pub(crate) fn fast_forward(&mut self, limit: u64) {
        if self.idle.active || self.now >= limit || !self.policy.wants_fast_forward() {
            return;
        }
        let deadline = self.idle_deadline(limit);
        let want = deadline.saturating_sub(self.now);
        if want == 0 {
            return;
        }
        // Ask the policy to replay its per-cycle state for the span. The
        // scratch view carries the (frozen) machine state the skipped
        // cycles would observe; `view.now` is the first skipped cycle.
        let mut view = std::mem::take(&mut self.scratch_view);
        self.fill_view(&mut view);
        let skipped = self.policy.on_idle_cycles(want, &view);
        self.scratch_view = view;
        debug_assert!(
            skipped <= want,
            "policy replayed {skipped} idle cycles, only {want} requested"
        );
        let skipped = skipped.min(want);
        if skipped == 0 {
            return;
        }

        // Replay the machine's per-cycle side effects for `skipped` more
        // cycles of exactly the pattern the idle step just charged.
        let idle = self.idle;
        for (tid, stats) in self.stats.iter_mut().enumerate() {
            let bit = 1u8 << tid;
            if idle.gated & bit != 0 {
                stats.gated_cycles += skipped;
            }
            if idle.blocked_rob & bit != 0 {
                stats.blocked_rob += skipped;
            }
            if idle.blocked_iq & bit != 0 {
                stats.blocked_iq += skipped;
            }
            if idle.blocked_regs & bit != 0 {
                stats.blocked_regs += skipped;
            }
            if idle.blocked_policy & bit != 0 {
                stats.blocked_policy += skipped;
            }
            // The MLP sample is frozen too: the deadline is capped at the
            // next MSHR fill completion, so the outstanding-miss counts of
            // the idle step's sample hold for every skipped cycle.
            let outstanding = self.mlp_scratch[tid];
            if outstanding > 0 {
                stats.mlp_sum += skipped * u64::from(outstanding);
                stats.mlp_cycles += skipped;
            }
        }
        // The commit stage rotates its round-robin origin every cycle,
        // commits or not.
        self.commit_rr = (self.commit_rr + skipped as usize) % self.threads.len();
        self.now += skipped;
        // Replay the skipped cycles' MSHR housekeeping: the stepped core's
        // per-cycle MLP sample purges expired fills as a side effect, and
        // the last purge before the resumed cycle's stages ran at
        // `now - 1`. Without it, an L2-level fill expiring mid-span would
        // leave a dead map entry that blocks re-allocation of its line on
        // the resumed cycle — an observable divergence (coalescing latency,
        // MLP counts) from the stepped run. Memory-level fills cannot
        // expire mid-span (the deadline is capped at their earliest
        // completion), so this purge only ever collects L2-level leftovers.
        self.mem.collect_expired_fills(self.now - 1);
    }

    /// First cycle at which the idle machine's state can change: the
    /// earliest of the next scheduled event, the next dispatch-eligibility
    /// or I-cache-stall expiry, the next MSHR fill completion, and the run
    /// limit. Cycles strictly before the returned deadline are provably
    /// identical to the idle cycle just stepped.
    fn idle_deadline(&mut self, limit: u64) -> u64 {
        let now = self.now;
        let mut deadline = limit;
        // `now` is the *first skippable* cycle; the idle step just ran at
        // `now - 1`. A wake-up whose cycle is `>= now` therefore ends the
        // span, including one landing exactly on `now` (which forces
        // `want == 0`: nothing is skipped and the wake-up cycle is
        // stepped normally). Wake-ups `< now` were already inert during
        // the idle step and stay inert.
        for th in &self.threads {
            // A fetched-but-undispatched head still inside its front-end
            // delay becomes dispatchable at `dispatch_eligible_at`.
            if th.next_dispatch < th.next_fetch {
                let eligible = th.at(th.next_dispatch).dispatch_eligible_at;
                if eligible >= now {
                    deadline = deadline.min(eligible);
                }
            }
            // An I-cache-stalled thread resumes fetching when the fill
            // arrives (and even if it stays gated/unfetchable then, the
            // per-cycle charge pattern may change — end the span there).
            if th.icache_stall_until >= now {
                deadline = deadline.min(th.icache_stall_until);
            }
        }
        // MLP samples count in-flight memory-level MSHR fills per cycle;
        // stop before the earliest such fill completes so the sampled
        // counts stay frozen (L2-level fills are invisible to the samples
        // and do not bound the span).
        if let Some(ready_at) = self.mem.next_fill_ready_at() {
            deadline = deadline.min(ready_at);
        }
        // Event-wheel scan last: the cheap caps above bound its horizon,
        // so the bucket walk never runs longer than the jump it could
        // justify.
        if deadline > now {
            if let Some(at) = self.events.next_due_at(now, deadline - now) {
                deadline = deadline.min(at);
            }
        }
        deadline.max(now)
    }
}
