//! Squash/recovery: unwind a thread's window after a branch misprediction
//! or a policy-initiated flush, refunding every shared resource the
//! squashed instructions held.

use super::Simulator;
use crate::inst::Stage;
use crate::policy::Policy;
use smt_isa::ThreadId;

impl Simulator {
    /// Squashes every instruction of `tid` younger than `cut`, refunding
    /// all resources they hold, and rewinds fetch to `cut + 1`.
    pub(crate) fn squash_after(&mut self, tid: usize, cut: u64) {
        let mut squashed_ras_activity = false;
        let notify_squashes = self.policy.wants_squash_inst();
        loop {
            let th = &mut self.threads[tid];
            if th.window_is_empty() || th.next_fetch - 1 <= cut {
                break;
            }
            let (seq, inst, stage) = th.pop_youngest();
            // Recycle the squashed instruction's consumer wait-list (its
            // consumers are younger, so they are being squashed too; ready
            // entries and wait-list nodes that still name this incarnation
            // elsewhere are recognised as stale by uid).
            th.free_waiters(inst.waiters_head);
            match stage {
                Stage::Fetched => {
                    th.pre_issue -= 1;
                }
                Stage::Dispatched => {
                    th.pre_issue -= 1;
                    self.rob_used -= 1;
                    let q = inst.class.queue();
                    self.iq_used[q.index()] -= 1;
                    self.usage[tid][q.resource()] -= 1;
                    if let Some(d) = inst.dest {
                        self.regs_used[d.index()] -= 1;
                        self.usage[tid][d.resource()] -= 1;
                    }
                }
                Stage::Executing => {
                    self.rob_used -= 1;
                    if let Some(d) = inst.dest {
                        self.regs_used[d.index()] -= 1;
                        self.usage[tid][d.resource()] -= 1;
                    }
                    let th = &mut self.threads[tid];
                    if inst.l1_miss() {
                        th.l1d_pending -= 1;
                    }
                    if inst.l2_miss() && inst.l2_detected() {
                        th.l2_pending -= 1;
                    }
                }
                Stage::Done => {
                    self.rob_used -= 1;
                    if let Some(d) = inst.dest {
                        self.regs_used[d.index()] -= 1;
                        self.usage[tid][d.resource()] -= 1;
                    }
                }
            }
            if inst.pushes_ras() {
                squashed_ras_activity = true;
            }
            // Squashed instructions sit above the commit point, well
            // within the trace store's lookback window, so the squash
            // notification re-reads the packed record from there —
            // skipped entirely for the policies that ignore it.
            if notify_squashes {
                let packed = self.threads[tid].packed_at(seq);
                self.policy.on_squash_inst(ThreadId::new(tid), &packed);
            }
            self.stats[tid].squashed += 1;
        }
        let th = &mut self.threads[tid];
        debug_assert_eq!(th.next_fetch, cut + 1, "squash rewound past the cut");
        th.next_dispatch = th.next_dispatch.min(cut + 1);
        if th.stall_on_load.map(|l| l > cut).unwrap_or(false) {
            th.stall_on_load = None;
        }
        if squashed_ras_activity {
            self.bpred.flush_thread(ThreadId::new(tid));
        }
    }
}
