//! Commit stage: in-order retirement, round-robin across threads, batched.
//!
//! The original stage walked a nested loop — one instruction per thread
//! per round until the width budget ran out — touching every retired
//! instruction's window slot once per round. The batched version exploits
//! an invariant of the cycle loop: nothing becomes `Done` *during* commit
//! (stages only change in the event drain and issue), so each thread's
//! committable set this cycle is exactly the contiguous run of `Done`
//! instructions at its window base, fixed before the stage starts. The
//! stage therefore:
//!
//! 1. measures each thread's run with one contiguous scan of the
//!    byte-sized stage lane ([`crate::thread::ThreadState::done_run_len`]),
//! 2. replays the round-robin budget split arithmetically over those run
//!    lengths (no memory traffic), and
//! 3. retires each thread's allocation as one burst.
//!
//! The per-thread commit counts — and therefore every counter and
//! statistic — are identical to the nested loop's, which the golden
//! determinism tests pin down.

use super::Simulator;
use smt_isa::ThreadId;

impl Simulator {
    pub(crate) fn commit(&mut self) {
        let n = self.threads.len();
        let width = self.config.commit_width;
        let start = self.commit_rr;
        self.commit_rr = (start + 1) % n;

        // 1. Committable run per thread, in round-robin service order.
        let mut runs = [0u32; ThreadId::MAX_THREADS];
        for (k, run) in runs.iter_mut().enumerate().take(n) {
            *run = self.threads[(start + k) % n].done_run_len(width);
        }

        // 2. Round-robin allocation of the width budget over the runs:
        // one instruction per thread per round, threads dropping out as
        // their runs exhaust — the exact schedule of the nested loop,
        // replayed over run lengths instead of window slots.
        let mut alloc = [0u32; ThreadId::MAX_THREADS];
        let mut budget = width;
        let mut progressed = true;
        while budget > 0 && progressed {
            progressed = false;
            for k in 0..n {
                if budget == 0 {
                    break;
                }
                if alloc[k] < runs[k] {
                    alloc[k] += 1;
                    budget -= 1;
                    progressed = true;
                }
            }
        }

        // 3. Burst-retire. Split borrows: each thread's window walk and
        // the shared counters update side by side.
        if budget != width {
            self.idle.active = true; // something retires this cycle
        }
        for (k, &take) in alloc.iter().enumerate().take(n) {
            if take == 0 {
                continue;
            }
            let tid = (start + k) % n;
            let th = &mut self.threads[tid];
            let usage = &mut self.usage[tid];
            let base = th.window_base().expect("non-empty committable run");
            let mut regs_freed = [0u32; 2];
            for seq in base..base + u64::from(take) {
                if let Some(dest) = th.at(seq).dest {
                    regs_freed[dest.index()] += 1;
                    usage[dest.resource()] -= 1;
                }
            }
            th.advance_base_by(u64::from(take));
            self.rob_used -= take;
            self.regs_used[0] -= regs_freed[0];
            self.regs_used[1] -= regs_freed[1];
            self.stats[tid].committed += u64::from(take);
        }
    }
}
