//! Per-stage wall-clock attribution for the cycle loop.
//!
//! [`Simulator::step_profiled`] runs the identical stage sequence as
//! [`Simulator::step`], wrapping each stage in a monotonic-clock pair and
//! accumulating the elapsed time into a [`StageProfile`]. It exists for
//! instrumentation binaries (`bench_snapshot` records the percentage
//! breakdown into `BENCH_core.json` so future optimisation PRs can see
//! where batching paid off); the unprofiled `step` stays free of timer
//! calls.

use super::Simulator;
use crate::policy::Policy;
use std::time::{Duration, Instant};

/// Accumulated wall-clock time per pipeline stage of the cycle loop.
///
/// `policy` covers the per-cycle policy work that precedes the stages
/// (`begin_cycle` + `fetch_order` + the view refresh); `other` is the
/// residue of the loop (MLP sampling, cycle bookkeeping).
#[derive(Debug, Clone, Copy, Default)]
pub struct StageProfile {
    /// Cycles accumulated into this profile — stepped *and* skipped, so
    /// `cycles` always equals simulated time.
    pub cycles: u64,
    /// Cycles covered by fast-forward jumps instead of steps (a subset of
    /// `cycles`; only [`Simulator::run_cycles_profiled`] produces them).
    pub skipped: u64,
    /// View refresh + `begin_cycle` + `fetch_order`.
    pub policy: Duration,
    /// Event drain (timing wheel + wakeup scoreboard).
    pub events: Duration,
    /// Commit stage.
    pub commit: Duration,
    /// Issue stage.
    pub issue: Duration,
    /// Dispatch stage.
    pub dispatch: Duration,
    /// Fetch stage.
    pub fetch: Duration,
    /// Fast-forward: idle-deadline computation + policy/statistics replay.
    pub forward: Duration,
    /// MLP sampling and loop bookkeeping.
    pub other: Duration,
}

impl StageProfile {
    /// Total attributed wall-clock time.
    pub fn total(&self) -> Duration {
        self.policy
            + self.events
            + self.commit
            + self.issue
            + self.dispatch
            + self.fetch
            + self.forward
            + self.other
    }

    /// The stages as `(name, share_of_total)` pairs, in pipeline order.
    /// Shares sum to ~1.0 (all zero when nothing was profiled).
    pub fn shares(&self) -> [(&'static str, f64); 8] {
        let total = self.total().as_secs_f64();
        let of = |d: Duration| {
            if total > 0.0 {
                d.as_secs_f64() / total
            } else {
                0.0
            }
        };
        [
            ("policy", of(self.policy)),
            ("events", of(self.events)),
            ("commit", of(self.commit)),
            ("issue", of(self.issue)),
            ("dispatch", of(self.dispatch)),
            ("fetch", of(self.fetch)),
            ("forward", of(self.forward)),
            ("other", of(self.other)),
        ]
    }
}

impl Simulator {
    /// Advances the machine one cycle exactly like [`Simulator::step`],
    /// attributing each stage's wall-clock cost to `profile`. Simulation
    /// output is bit-identical to `step`; only speed differs (six timer
    /// reads per cycle).
    pub fn step_profiled(&mut self, profile: &mut StageProfile) {
        let mut view = std::mem::take(&mut self.cycle_view);
        let mut order = std::mem::take(&mut self.order_scratch);
        self.idle = super::IdleTrack::default();
        let t0 = Instant::now();
        self.fill_view(&mut view);
        self.policy.begin_cycle(&view);
        order.clear();
        self.policy.fetch_order(&view, &mut order);
        let t1 = Instant::now();
        profile.policy += t1 - t0;

        self.drain_events();
        let t2 = Instant::now();
        profile.events += t2 - t1;

        self.commit();
        let t3 = Instant::now();
        profile.commit += t3 - t2;

        self.issue();
        let t4 = Instant::now();
        profile.issue += t4 - t3;

        self.dispatch(&order);
        let t5 = Instant::now();
        profile.dispatch += t5 - t4;

        self.fetch(&order, &view);
        let t6 = Instant::now();
        profile.fetch += t6 - t5;

        self.sample_mlp();
        self.now += 1;
        self.cycle_view = view;
        self.order_scratch = order;
        profile.other += t6.elapsed();
        profile.cycles += 1;
    }

    /// Profiled equivalent of [`Simulator::run_cycles`]: per-stage
    /// attribution via [`Simulator::step_profiled`], with fast-forward
    /// jumps timed into [`StageProfile::forward`] and the skipped cycles
    /// counted in [`StageProfile::skipped`]. Simulation output is
    /// bit-identical to `run_cycles`.
    pub fn run_cycles_profiled(&mut self, n: u64, profile: &mut StageProfile) {
        let end = self.now + n;
        while self.now < end {
            self.step_profiled(profile);
            let before = self.now;
            let t0 = Instant::now();
            self.fast_forward(end);
            profile.forward += t0.elapsed();
            let jumped = self.now - before;
            profile.cycles += jumped;
            profile.skipped += jumped;
        }
    }
}
