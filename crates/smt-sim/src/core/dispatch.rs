//! Dispatch (rename/allocate) stage, batched per thread.
//!
//! Each thread in the policy's fetch order dispatches a contiguous burst
//! of sequence numbers `[next_dispatch, ...)` until it hits the decode
//! budget, a structural limit, its front-end delay, or the policy's
//! allocation gate. Thread-invariant state — the structural capacities,
//! the policy's gating hints, the shared occupancy counters — is hoisted
//! into locals before the burst; the per-instruction policy call is
//! skipped entirely for policies whose `may_dispatch` can never refuse
//! ([`Policy::wants_dispatch_gate`]), which is all of the canonical nine
//! except SRA.

use super::events::ReadyEntry;
use super::Simulator;
use crate::inst::{Stage, NO_DEP};
use crate::policy::Policy;
use smt_isa::ThreadId;
use std::cmp::Reverse;

impl Simulator {
    pub(crate) fn dispatch(&mut self, order: &[ThreadId]) {
        let mut budget = self.config.decode_width;
        // The view's usage is kept live across this cycle's dispatches so
        // hard-partition policies (SRA) see every allocation immediately —
        // otherwise several same-cycle dispatches could overshoot a cap.
        // Policies whose `may_dispatch` ignores the view (everything but
        // the allocation policies) skip the refresh and the per-dispatch
        // usage mirroring entirely; policies that cannot refuse a dispatch
        // additionally skip the gate call itself.
        let needs_view = self.policy.wants_dispatch_view();
        let gated = self.policy.wants_dispatch_gate();
        let mut view = std::mem::take(&mut self.scratch_view);
        if needs_view {
            self.fill_view(&mut view);
        }
        // Thread-invariant structural limits, hoisted out of the bursts.
        let now = self.now;
        let rob_cap = self.config.rob_entries;
        let iq_cap = self.config.iq_entries;
        let pools = [
            self.config.pool_of(smt_isa::RegClass::Int),
            self.config.pool_of(smt_isa::RegClass::Fp),
        ];
        for &t in order {
            if budget == 0 {
                break;
            }
            let tid = t.index();
            while budget > 0 {
                let th = &self.threads[tid];
                if th.next_dispatch >= th.next_fetch {
                    break; // nothing fetched to dispatch
                }
                // `next_dispatch < next_fetch` (checked above) and
                // `win_base <= next_dispatch` (commit never passes an
                // undispatched instruction), so the slot is live.
                let seq = th.next_dispatch;
                let inst = th.at(seq);
                debug_assert_eq!(th.stage_of(seq), Stage::Fetched);
                if inst.dispatch_eligible_at > now {
                    break;
                }
                let q = inst.class.queue();
                let dest = inst.dest;
                // Shared structural limits. Each charge also records the
                // thread in the cycle's idle track: on an idle cycle the
                // same charge would repeat every cycle until an event
                // frees the structure, so fast-forward replays it.
                if self.rob_used >= rob_cap {
                    self.stats[tid].blocked_rob += 1;
                    self.idle.blocked_rob |= 1 << tid;
                    break;
                }
                if self.iq_used[q.index()] >= iq_cap {
                    self.stats[tid].blocked_iq += 1;
                    self.idle.blocked_iq |= 1 << tid;
                    break;
                }
                if let Some(d) = dest {
                    if self.regs_used[d.index()] >= pools[d.index()] {
                        self.stats[tid].blocked_regs += 1;
                        self.idle.blocked_regs |= 1 << tid;
                        break;
                    }
                }
                // Policy gate (hard-partition policies only; skipped when
                // the policy can never refuse).
                if gated && !self.policy.may_dispatch(t, q, dest, &view) {
                    self.stats[tid].blocked_policy += 1;
                    self.idle.blocked_policy |= 1 << tid;
                    break;
                }
                // Allocate.
                self.idle.active = true;
                let th = &mut self.threads[tid];
                th.set_stage(seq, Stage::Dispatched);
                let inst = th.at_mut(seq);
                inst.dispatched_at = now;
                let uid = inst.uid;
                th.next_dispatch += 1;
                self.rob_used += 1;
                self.iq_used[q.index()] += 1;
                self.usage[tid][q.resource()] += 1;
                if let Some(d) = dest {
                    self.regs_used[d.index()] += 1;
                    self.usage[tid][d.resource()] += 1;
                    if needs_view {
                        view.bump_usage(t, d.resource());
                    }
                }
                if needs_view {
                    view.bump_usage(t, q.resource());
                }

                // Wakeup scoreboard entry: count the operands still in
                // flight and subscribe to their producers. Producers below
                // the window base have committed and producers already
                // `Done` have their results — neither is outstanding.
                let th = &mut self.threads[tid];
                let mut pending = 0u8;
                for p in th.deps_of(seq) {
                    if p == NO_DEP {
                        continue;
                    }
                    let outstanding = th.get(p).is_some() && th.stage_of(p) != Stage::Done;
                    if outstanding {
                        pending += 1;
                        th.register_waiter(p, seq, uid);
                    }
                }
                th.at_mut(seq).pending_ops = pending;
                if pending == 0 {
                    self.ready[q.index()].push(Reverse(ReadyEntry::new(now, seq, tid, uid)));
                }

                self.policy.on_dispatch(t, q, dest);
                budget -= 1;
            }
        }
        self.scratch_view = view;
    }
}
