//! Expensive cross-checks of the incrementally maintained state, used by
//! tests and the property suite.

use super::Simulator;
use crate::inst::{Stage, NO_DEP};
use smt_isa::PerResource;
use std::cmp::Reverse;

impl Simulator {
    /// Expensive consistency check used by tests: recomputes every
    /// incrementally-maintained counter from the instruction windows and
    /// asserts they match.
    #[doc(hidden)]
    pub fn assert_consistent(&self) {
        let mut rob = 0u32;
        let mut iq = [0u32; 3];
        let mut regs = [0u32; 2];
        for (tid, th) in self.threads.iter().enumerate() {
            let mut usage = PerResource::<u32>::default();
            let mut pre_issue = 0u32;
            let mut l1p = 0u32;
            let mut l2p = 0u32;
            for seq in th.window_seqs() {
                let inst = th.at(seq);
                let q = inst.class.queue();
                match th.stage_of(seq) {
                    Stage::Fetched => pre_issue += 1,
                    Stage::Dispatched => {
                        pre_issue += 1;
                        rob += 1;
                        iq[q.index()] += 1;
                        usage[q.resource()] += 1;
                        if let Some(d) = inst.dest {
                            regs[d.index()] += 1;
                            usage[d.resource()] += 1;
                        }
                    }
                    Stage::Executing => {
                        rob += 1;
                        if let Some(d) = inst.dest {
                            regs[d.index()] += 1;
                            usage[d.resource()] += 1;
                        }
                        if inst.l1_miss() {
                            l1p += 1;
                        }
                        if inst.l2_miss() && inst.l2_detected() {
                            l2p += 1;
                        }
                    }
                    Stage::Done => {
                        rob += 1;
                        if let Some(d) = inst.dest {
                            regs[d.index()] += 1;
                            usage[d.resource()] += 1;
                        }
                    }
                }
            }
            assert_eq!(th.pre_issue, pre_issue, "T{tid} pre_issue drift");
            assert_eq!(th.l1d_pending, l1p, "T{tid} l1d_pending drift");
            assert_eq!(th.l2_pending, l2p, "T{tid} l2_pending drift");
            assert_eq!(self.usage[tid], usage, "T{tid} usage drift");
        }
        assert_eq!(self.rob_used, rob, "rob drift");
        assert_eq!(self.iq_used, iq, "iq drift");
        assert_eq!(self.regs_used, regs, "regs drift");

        // Wakeup-scoreboard invariants: every waiting instruction's
        // outstanding-operand count matches a fresh scan, and everything
        // the scan would consider issuable sits on its queue's ready list.
        for (tid, th) in self.threads.iter().enumerate() {
            if th.window_is_empty() {
                continue;
            }
            for seq in th.window_seqs() {
                if th.stage_of(seq) != Stage::Dispatched {
                    continue;
                }
                let inst = th.at(seq);
                let outstanding = th
                    .deps_of(seq)
                    .iter()
                    .filter(|&&p| {
                        p != NO_DEP && th.get(p).is_some() && th.stage_of(p) != Stage::Done
                    })
                    .count() as u8;
                assert_eq!(
                    inst.pending_ops, outstanding,
                    "T{tid} seq {seq} pending_ops drift"
                );
                assert_eq!(
                    self.operands_ready(tid, seq),
                    outstanding == 0,
                    "T{tid} seq {seq} scan/scoreboard disagreement"
                );
                if outstanding == 0 {
                    let q = inst.class.queue();
                    let listed = self.ready[q.index()]
                        .iter()
                        .any(|Reverse(e)| e.seq() == seq && e.tid() == tid && e.uid == inst.uid);
                    assert!(listed, "T{tid} seq {seq} ready but not listed");
                }
            }
        }
    }
}
