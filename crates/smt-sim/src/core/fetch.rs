//! Fetch stage: walk the policy's fetch order, gate, and fetch a block
//! per eligible thread, batched.
//!
//! Each selected thread fetches one I-cache block as a burst: the
//! per-block invariants (head decode, fetch-queue headroom, front-end
//! delay) are computed once, then the burst loop decodes, predicts and
//! enqueues until the block ends at a taken/mispredicted branch, the
//! fetch queue fills, or the width budget runs out.

use super::Simulator;
use crate::inst::{resolve_deps, DynInst, Stage};
use crate::policy::{CycleView, Policy};
use smt_isa::ThreadId;

impl Simulator {
    pub(crate) fn fetch(&mut self, order: &[ThreadId], view: &CycleView) {
        let mut budget = self.config.fetch_width;
        let mut threads_used = 0;
        for &t in order {
            if budget == 0 || threads_used >= self.config.fetch_threads {
                break;
            }
            let tid = t.index();
            if !self.thread_can_fetch(tid) {
                continue;
            }
            if !self.policy.fetch_gate(t, view) {
                self.stats[tid].gated_cycles += 1;
                self.idle.gated |= 1 << tid;
                continue;
            }
            // Past the gate the thread always does work: it either
            // fetches a burst or at least accesses (and possibly stalls
            // on) the I-cache — either way the cycle changed state.
            self.idle.active = true;
            threads_used += 1;
            budget = self.fetch_thread(tid, budget);
        }
    }

    fn thread_can_fetch(&self, tid: usize) -> bool {
        let th = &self.threads[tid];
        if th.icache_stall_until > self.now {
            return false;
        }
        if let Some(load) = th.stall_on_load {
            // Stalled until the missing load completes (STALL/FLUSH action).
            if th.get(load).is_some() && th.stage_of(load) != Stage::Done {
                return false;
            }
        }
        th.fetch_queue_len() < self.config.fetch_queue as usize
    }

    fn fetch_thread(&mut self, tid: usize, mut budget: u32) -> u32 {
        // The caller guarantees `budget > 0` (checked before the gate) and
        // at least one free fetch-queue slot (`thread_can_fetch` returns
        // false on a full queue, so a full-queue thread never reaches the
        // I-cache, consumes no fetch budget and is charged no stall).
        debug_assert!(budget > 0, "fetch_thread called with no budget");
        debug_assert!(
            self.threads[tid].fetch_queue_len() < self.config.fetch_queue as usize,
            "fetch_thread called with a full fetch queue"
        );
        let t = ThreadId::new(tid);
        // One I-cache access per fetch block.
        let head_seq = self.threads[tid].next_fetch;
        let first_pc = self.threads[tid].packed_at(head_seq).pc;
        let line = first_pc >> 6;
        if self.threads[tid].pending_inst_fill == Some(line) {
            // The fill requested when this block missed arrives now and is
            // consumed directly by the fetch unit, even if the line was
            // conflict-evicted from the I-cache during the stall.
            self.threads[tid].pending_inst_fill = None;
        } else {
            let ic = self.mem.access_inst(t, first_pc, self.now);
            if ic.level != smt_mem::HitLevel::L1 {
                let th = &mut self.threads[tid];
                th.icache_stall_until = ic.ready_at();
                th.pending_inst_fill = Some(line);
                // The missed access still occupied one fetch slot this
                // cycle. `budget >= 1` here (asserted above), so the
                // `saturating_sub` is defensive only — there is no
                // off-by-one: a width-1 front end that misses spends its
                // whole budget, and the boundary test in `core/tests.rs`
                // pins both that and the full-queue early return.
                return budget.saturating_sub(1);
            }
        }

        // Burst: block-invariant limits hoisted; each iteration adds
        // exactly one instruction, so the fetch-queue headroom is a local
        // countdown instead of a recomputed length.
        let now = self.now;
        let frontend_delay = self.config.frontend_delay;
        let mut room =
            (self.config.fetch_queue as usize).saturating_sub(self.threads[tid].fetch_queue_len());
        let Simulator {
            threads,
            policy,
            bpred,
            stats,
            uid_counter,
            ..
        } = self;
        let th = &mut threads[tid];
        let stats = &mut stats[tid];
        while budget > 0 && room > 0 {
            let seq = th.next_fetch;
            *uid_counter += 1;
            // One block lookup serves the 16-byte packed core plus (for
            // loads/stores) the effective address; only the minority of
            // records that are branches pay a second sidecar read. The
            // policy sees only the packed view.
            let (packed, mem_addr) = th.fetch_entry(seq);
            let mut inst = DynInst::fetched(*uid_counter, &packed, mem_addr, now, frontend_delay);
            policy.on_fetch_inst(t, &packed);

            let mut stop_block = false;
            if packed.has_branch() {
                let bi = th.branch_at(seq, packed.aux());
                let pred = bpred.predict(t, packed.pc, bi.kind);
                bpred.update(t, packed.pc, bi, pred);
                if pred.mispredicted(bi) {
                    inst.set_mispredicted();
                    stats.mispredicts += 1;
                    // Fetch continues next cycle: the machine follows the
                    // (wrong) prediction and keeps allocating resources
                    // until the branch resolves and squashes.
                    stop_block = true;
                } else if bi.taken {
                    stop_block = true; // fetch block ends at a taken branch
                }
            }

            let deps = resolve_deps(&packed, seq);
            th.push_fetched(inst, deps);
            th.pre_issue += 1;
            stats.fetched += 1;
            budget -= 1;
            room -= 1;
            if stop_block {
                break;
            }
        }
        budget
    }
}
