//! Simulation statistics and results.

use serde::{Deserialize, Serialize};

/// Per-thread outcome of a simulation run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ThreadStats {
    /// Committed (useful) instructions.
    pub committed: u64,
    /// Instructions fetched, including wrong-path refetches after squashes —
    /// the paper's "front-end activity" metric (Section 5.2).
    pub fetched: u64,
    /// Instructions squashed (branch mispredictions + policy flushes).
    pub squashed: u64,
    /// Conditional branch mispredictions observed at fetch.
    pub mispredicts: u64,
    /// Loads executed.
    pub loads: u64,
    /// Loads that missed the L1 data cache.
    pub l1d_misses: u64,
    /// Loads that missed the L2.
    pub l2_misses: u64,
    /// Cycles this thread was fetch-gated by the policy.
    pub gated_cycles: u64,
    /// Σ over cycles of this thread's in-flight L2 misses (MLP numerator).
    pub mlp_sum: u64,
    /// Cycles with at least one in-flight L2 miss (MLP denominator).
    pub mlp_cycles: u64,
    /// Dispatch attempts blocked on a full ROB.
    pub blocked_rob: u64,
    /// Dispatch attempts blocked on a full issue queue.
    pub blocked_iq: u64,
    /// Dispatch attempts blocked on an empty rename pool.
    pub blocked_regs: u64,
    /// Dispatch attempts blocked by the policy's allocation limit.
    pub blocked_policy: u64,
}

impl ThreadStats {
    /// Instructions per cycle given the run length.
    pub fn ipc(&self, cycles: u64) -> f64 {
        if cycles == 0 {
            0.0
        } else {
            self.committed as f64 / cycles as f64
        }
    }

    /// Average number of overlapping L2 misses while at least one is
    /// outstanding — the paper's memory-parallelism metric.
    pub fn mlp(&self) -> f64 {
        if self.mlp_cycles == 0 {
            0.0
        } else {
            self.mlp_sum as f64 / self.mlp_cycles as f64
        }
    }
}

/// Outcome of a complete simulation run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SimResult {
    /// Cycles simulated (after warm-up).
    pub cycles: u64,
    /// Policy that produced this result.
    pub policy: String,
    /// Per-thread statistics.
    pub threads: Vec<ThreadStats>,
}

impl SimResult {
    /// IPC throughput: the sum of per-thread IPCs (the paper's throughput
    /// metric).
    pub fn throughput(&self) -> f64 {
        self.threads.iter().map(|t| t.ipc(self.cycles)).sum()
    }

    /// Per-thread IPC vector.
    pub fn ipcs(&self) -> Vec<f64> {
        self.threads.iter().map(|t| t.ipc(self.cycles)).collect()
    }

    /// Total fetched instructions (front-end activity).
    pub fn total_fetched(&self) -> u64 {
        self.threads.iter().map(|t| t.fetched).sum()
    }

    /// Total committed instructions.
    pub fn total_committed(&self) -> u64 {
        self.threads.iter().map(|t| t.committed).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_and_throughput() {
        let r = SimResult {
            cycles: 1000,
            policy: "TEST".into(),
            threads: vec![
                ThreadStats {
                    committed: 1500,
                    ..Default::default()
                },
                ThreadStats {
                    committed: 500,
                    ..Default::default()
                },
            ],
        };
        assert!((r.throughput() - 2.0).abs() < 1e-12);
        assert_eq!(r.ipcs(), vec![1.5, 0.5]);
    }

    #[test]
    fn mlp_is_average_over_busy_cycles() {
        let t = ThreadStats {
            mlp_sum: 30,
            mlp_cycles: 10,
            ..Default::default()
        };
        assert!((t.mlp() - 3.0).abs() < 1e-12);
        assert_eq!(ThreadStats::default().mlp(), 0.0);
    }

    #[test]
    fn zero_cycles_yield_zero_ipc() {
        let t = ThreadStats {
            committed: 10,
            ..Default::default()
        };
        assert_eq!(t.ipc(0), 0.0);
    }
}
