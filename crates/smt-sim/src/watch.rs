//! Occupancy observation: sample per-thread resource usage over time and
//! summarise it (mean, peak, share of the total). This is the measurement
//! behind the paper's resource-monopolization arguments — e.g. "after an
//! L2 miss the missing thread ends up holding most of the load/store
//! queue" is directly visible in an [`OccupancyReport`].

use crate::Simulator;
use smt_isa::{PerResource, ResourceKind, ThreadId};

/// Accumulates per-cycle occupancy samples.
///
/// # Examples
///
/// ```
/// use smt_sim::{watch::OccupancyRecorder, SimConfig, Simulator};
/// use smt_sim::policy::RoundRobin;
/// use smt_workloads::spec;
///
/// let profiles = [spec::profile("gzip").unwrap()];
/// let mut sim = Simulator::new(SimConfig::baseline(1), &profiles,
///                              RoundRobin::default(), 1);
/// let mut rec = OccupancyRecorder::new(1);
/// for _ in 0..100 {
///     sim.step();
///     rec.sample(&sim);
/// }
/// let report = rec.report();
/// assert_eq!(report.cycles, 100);
/// ```
#[derive(Debug, Clone)]
pub struct OccupancyRecorder {
    cycles: u64,
    sums: Vec<PerResource<u64>>,
    peaks: Vec<PerResource<u32>>,
}

impl OccupancyRecorder {
    /// Creates a recorder for `threads` hardware contexts.
    pub fn new(threads: usize) -> Self {
        OccupancyRecorder {
            cycles: 0,
            sums: vec![PerResource::default(); threads],
            peaks: vec![PerResource::default(); threads],
        }
    }

    /// Records the current cycle's usage.
    ///
    /// # Panics
    ///
    /// Panics if the simulator has more threads than the recorder.
    pub fn sample(&mut self, sim: &Simulator) {
        self.cycles += 1;
        for (tid, (sum, peak)) in self.sums.iter_mut().zip(&mut self.peaks).enumerate() {
            let usage = sim.thread_usage(ThreadId::new(tid));
            for kind in ResourceKind::ALL {
                sum[kind] += u64::from(usage[kind]);
                peak[kind] = peak[kind].max(usage[kind]);
            }
        }
    }

    /// Produces the summary.
    pub fn report(&self) -> OccupancyReport {
        OccupancyReport {
            cycles: self.cycles,
            mean: self
                .sums
                .iter()
                .map(|s| {
                    let mut m = PerResource::<f64>::default();
                    for kind in ResourceKind::ALL {
                        m[kind] = if self.cycles == 0 {
                            0.0
                        } else {
                            s[kind] as f64 / self.cycles as f64
                        };
                    }
                    m
                })
                .collect(),
            peak: self.peaks.clone(),
        }
    }
}

/// Summary of an occupancy recording.
#[derive(Debug, Clone)]
pub struct OccupancyReport {
    /// Number of sampled cycles.
    pub cycles: u64,
    /// Mean occupancy per thread per resource.
    pub mean: Vec<PerResource<f64>>,
    /// Peak occupancy per thread per resource.
    pub peak: Vec<PerResource<u32>>,
}

impl OccupancyReport {
    /// The thread with the highest mean occupancy of `kind` — the
    /// "monopolist" for that resource, if any.
    pub fn top_consumer(&self, kind: ResourceKind) -> Option<(ThreadId, f64)> {
        self.mean
            .iter()
            .enumerate()
            .map(|(i, m)| (ThreadId::new(i), m[kind]))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("occupancies are finite"))
    }

    /// Mean share (0..1) of `total` entries of `kind` held by thread `t`.
    pub fn share(&self, t: ThreadId, kind: ResourceKind, total: u32) -> f64 {
        if total == 0 {
            0.0
        } else {
            self.mean[t.index()][kind] / f64::from(total)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::RoundRobin;
    use crate::SimConfig;
    use smt_workloads::spec;

    fn recorded(benches: &[&str], cycles: u64) -> OccupancyReport {
        let profiles: Vec<_> = benches.iter().map(|b| spec::profile(b).unwrap()).collect();
        let mut sim = Simulator::new(
            SimConfig::baseline(benches.len()),
            &profiles,
            RoundRobin::default(),
            3,
        );
        sim.prewarm(100_000);
        sim.run_cycles(5_000);
        let mut rec = OccupancyRecorder::new(benches.len());
        for _ in 0..cycles {
            sim.step();
            rec.sample(&sim);
        }
        rec.report()
    }

    #[test]
    fn report_counts_cycles() {
        let r = recorded(&["gzip"], 2_000);
        assert_eq!(r.cycles, 2_000);
        assert!(r.mean[0][ResourceKind::IntRegs] > 0.0);
        assert!(r.peak[0][ResourceKind::IntRegs] > 0);
    }

    #[test]
    fn memory_thread_tops_lsq_occupancy() {
        let r = recorded(&["art", "gzip"], 20_000);
        let (top, mean) = r.top_consumer(ResourceKind::LsQueue).expect("two threads");
        assert_eq!(
            top.index(),
            0,
            "art (memory-bound) should hold the most LSQ entries ({mean:.1})"
        );
    }

    #[test]
    fn shares_are_fractions() {
        let r = recorded(&["gzip", "gcc"], 5_000);
        for t in 0..2 {
            let s = r.share(ThreadId::new(t), ResourceKind::IntQueue, 80);
            assert!((0.0..=1.0).contains(&s));
        }
        assert_eq!(r.share(ThreadId::new(0), ResourceKind::IntQueue, 0), 0.0);
    }

    #[test]
    fn mean_never_exceeds_peak() {
        let r = recorded(&["mcf", "gzip"], 10_000);
        for t in 0..2 {
            for kind in ResourceKind::ALL {
                assert!(
                    r.mean[t][kind] <= f64::from(r.peak[t][kind]) + 1e-9,
                    "mean above peak for thread {t} {kind}"
                );
            }
        }
    }
}
