//! Run observation: occupancy sampling for the paper's monopolization
//! arguments, and the commit-progress watchdog behind per-run budgets.
//!
//! [`OccupancyRecorder`] samples per-thread resource usage over time and
//! summarises it (mean, peak, share of the total) — e.g. "after an L2 miss
//! the missing thread ends up holding most of the load/store queue" is
//! directly visible in an [`OccupancyReport`].
//!
//! [`CommitWatchdog`] enforces a [`RunBudget`] over a running simulation:
//! a hard cycle cap plus a commit-progress check that converts a machine
//! advancing cycles without committing anything into a typed
//! [`BudgetBreach`] instead of an unbounded spin.

use crate::config::RunBudget;
use crate::Simulator;
use smt_isa::{PerResource, ResourceKind, ThreadId};

/// Accumulates per-cycle occupancy samples.
///
/// # Examples
///
/// ```
/// use smt_sim::{watch::OccupancyRecorder, SimConfig, Simulator};
/// use smt_sim::policy::RoundRobin;
/// use smt_workloads::spec;
///
/// let profiles = [spec::profile("gzip").unwrap()];
/// let mut sim = Simulator::new(SimConfig::baseline(1), &profiles,
///                              RoundRobin::default(), 1);
/// let mut rec = OccupancyRecorder::new(1);
/// for _ in 0..100 {
///     sim.step();
///     rec.sample(&sim);
/// }
/// let report = rec.report();
/// assert_eq!(report.cycles, 100);
/// ```
#[derive(Debug, Clone)]
pub struct OccupancyRecorder {
    cycles: u64,
    sums: Vec<PerResource<u64>>,
    peaks: Vec<PerResource<u32>>,
}

impl OccupancyRecorder {
    /// Creates a recorder for `threads` hardware contexts.
    pub fn new(threads: usize) -> Self {
        OccupancyRecorder {
            cycles: 0,
            sums: vec![PerResource::default(); threads],
            peaks: vec![PerResource::default(); threads],
        }
    }

    /// Records the current cycle's usage.
    ///
    /// # Panics
    ///
    /// Panics if the simulator has more threads than the recorder.
    pub fn sample(&mut self, sim: &Simulator) {
        self.cycles += 1;
        for (tid, (sum, peak)) in self.sums.iter_mut().zip(&mut self.peaks).enumerate() {
            let usage = sim.thread_usage(ThreadId::new(tid));
            for kind in ResourceKind::ALL {
                sum[kind] += u64::from(usage[kind]);
                peak[kind] = peak[kind].max(usage[kind]);
            }
        }
    }

    /// Produces the summary.
    pub fn report(&self) -> OccupancyReport {
        OccupancyReport {
            cycles: self.cycles,
            mean: self
                .sums
                .iter()
                .map(|s| {
                    let mut m = PerResource::<f64>::default();
                    for kind in ResourceKind::ALL {
                        m[kind] = if self.cycles == 0 {
                            0.0
                        } else {
                            s[kind] as f64 / self.cycles as f64
                        };
                    }
                    m
                })
                .collect(),
            peak: self.peaks.clone(),
        }
    }
}

/// Summary of an occupancy recording.
#[derive(Debug, Clone)]
pub struct OccupancyReport {
    /// Number of sampled cycles.
    pub cycles: u64,
    /// Mean occupancy per thread per resource.
    pub mean: Vec<PerResource<f64>>,
    /// Peak occupancy per thread per resource.
    pub peak: Vec<PerResource<u32>>,
}

impl OccupancyReport {
    /// The thread with the highest mean occupancy of `kind` — the
    /// "monopolist" for that resource, if any.
    pub fn top_consumer(&self, kind: ResourceKind) -> Option<(ThreadId, f64)> {
        self.mean
            .iter()
            .enumerate()
            .map(|(i, m)| (ThreadId::new(i), m[kind]))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("occupancies are finite"))
    }

    /// Mean share (0..1) of `total` entries of `kind` held by thread `t`.
    pub fn share(&self, t: ThreadId, kind: ResourceKind, total: u32) -> f64 {
        if total == 0 {
            0.0
        } else {
            self.mean[t.index()][kind] / f64::from(total)
        }
    }
}

/// A budget limit was exceeded mid-run. Carries enough diagnostic state to
/// report *where* the run died without re-running it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetBreach {
    /// The run reached its hard cycle cap.
    CycleCap {
        /// The configured [`RunBudget::max_cycles`] limit.
        limit: u64,
        /// Cycle at which the breach was observed (may exceed `limit` by
        /// one fast-forward span).
        at_cycle: u64,
        /// Instructions committed in the current measurement interval when
        /// the cap was hit.
        committed: u64,
    },
    /// The machine advanced a full livelock window without committing.
    Livelock {
        /// The configured [`RunBudget::livelock_window`].
        window: u64,
        /// Cycle at which the breach was observed.
        at_cycle: u64,
        /// The last checkpoint at which commit progress was still visible
        /// (checkpoint granularity: progress is sampled once per window,
        /// not per cycle).
        last_progress_cycle: u64,
        /// Committed-instruction count at the breach.
        committed: u64,
    },
}

impl std::fmt::Display for BudgetBreach {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BudgetBreach::CycleCap {
                limit,
                at_cycle,
                committed,
            } => write!(
                f,
                "cycle budget exhausted: limit {limit}, at cycle {at_cycle}, \
                 {committed} instructions committed"
            ),
            BudgetBreach::Livelock {
                window,
                at_cycle,
                last_progress_cycle,
                committed,
            } => write!(
                f,
                "livelock: no commit progress for {window} cycles \
                 (at cycle {at_cycle}, last progress checkpoint \
                 {last_progress_cycle}, {committed} committed)"
            ),
        }
    }
}

/// Enforces a [`RunBudget`] over a running simulation.
///
/// Constructed once per run and fed every executed cycle through
/// [`CommitWatchdog::observe`]; the simulator's
/// [`run_cycles_budgeted`](crate::Simulator::run_cycles_budgeted) loop does
/// this automatically. The watchdog is purely observational — it never
/// mutates the simulator — so a run that stays within budget is
/// bit-identical to an unbudgeted run.
///
/// The hot path is one `u64` compare: the commit counters are only summed
/// at checkpoint cycles (the next budget deadline), never per cycle.
#[derive(Debug, Clone)]
pub struct CommitWatchdog {
    budget: RunBudget,
    last_committed: u64,
    last_progress_cycle: u64,
    livelock_deadline: u64,
    next_check: u64,
}

impl CommitWatchdog {
    /// Creates a watchdog for one run. Cycle numbering is expected to
    /// start at 0 (a fresh or reset simulator) and increase monotonically
    /// across the run's warm-up and measurement phases.
    pub fn new(budget: RunBudget) -> Self {
        let livelock_deadline = budget.livelock_window.unwrap_or(u64::MAX);
        let mut w = CommitWatchdog {
            budget,
            last_committed: 0,
            last_progress_cycle: 0,
            livelock_deadline,
            next_check: 0,
        };
        w.update_next_check();
        w
    }

    /// The budget this watchdog enforces.
    pub fn budget(&self) -> &RunBudget {
        &self.budget
    }

    fn update_next_check(&mut self) {
        self.next_check = self
            .budget
            .max_cycles
            .unwrap_or(u64::MAX)
            .min(self.livelock_deadline);
    }

    /// Feeds one observation: the current cycle and a lazily-computed
    /// total of committed instructions. The closure is only invoked on
    /// checkpoint cycles, so passing `|| sim.committed_total()` costs a
    /// single compare on nearly every call.
    ///
    /// Commit counters may reset between observations (statistics resets
    /// between warm-up and measurement): any *change* in the total counts
    /// as progress.
    ///
    /// # Errors
    ///
    /// Returns the [`BudgetBreach`] the observation triggered, if any.
    #[inline]
    pub fn observe(
        &mut self,
        now: u64,
        committed: impl FnOnce() -> u64,
    ) -> Result<(), BudgetBreach> {
        if now < self.next_check {
            return Ok(());
        }
        self.check(now, committed())
    }

    #[cold]
    fn check(&mut self, now: u64, committed: u64) -> Result<(), BudgetBreach> {
        if let Some(limit) = self.budget.max_cycles {
            if now >= limit {
                return Err(BudgetBreach::CycleCap {
                    limit,
                    at_cycle: now,
                    committed,
                });
            }
        }
        if let Some(window) = self.budget.livelock_window {
            if now >= self.livelock_deadline {
                if committed == self.last_committed {
                    return Err(BudgetBreach::Livelock {
                        window,
                        at_cycle: now,
                        last_progress_cycle: self.last_progress_cycle,
                        committed,
                    });
                }
                self.last_committed = committed;
                self.last_progress_cycle = now;
                self.livelock_deadline = now.saturating_add(window);
            }
        }
        self.update_next_check();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::RoundRobin;
    use crate::SimConfig;
    use smt_workloads::spec;

    fn recorded(benches: &[&str], cycles: u64) -> OccupancyReport {
        let profiles: Vec<_> = benches.iter().map(|b| spec::profile(b).unwrap()).collect();
        let mut sim = Simulator::new(
            SimConfig::baseline(benches.len()),
            &profiles,
            RoundRobin::default(),
            3,
        );
        sim.prewarm(100_000);
        sim.run_cycles(5_000);
        let mut rec = OccupancyRecorder::new(benches.len());
        for _ in 0..cycles {
            sim.step();
            rec.sample(&sim);
        }
        rec.report()
    }

    #[test]
    fn report_counts_cycles() {
        let r = recorded(&["gzip"], 2_000);
        assert_eq!(r.cycles, 2_000);
        assert!(r.mean[0][ResourceKind::IntRegs] > 0.0);
        assert!(r.peak[0][ResourceKind::IntRegs] > 0);
    }

    #[test]
    fn memory_thread_tops_lsq_occupancy() {
        let r = recorded(&["art", "gzip"], 20_000);
        let (top, mean) = r.top_consumer(ResourceKind::LsQueue).expect("two threads");
        assert_eq!(
            top.index(),
            0,
            "art (memory-bound) should hold the most LSQ entries ({mean:.1})"
        );
    }

    #[test]
    fn shares_are_fractions() {
        let r = recorded(&["gzip", "gcc"], 5_000);
        for t in 0..2 {
            let s = r.share(ThreadId::new(t), ResourceKind::IntQueue, 80);
            assert!((0.0..=1.0).contains(&s));
        }
        assert_eq!(r.share(ThreadId::new(0), ResourceKind::IntQueue, 0), 0.0);
    }

    fn sim(benches: &[&str]) -> Simulator {
        let profiles: Vec<_> = benches.iter().map(|b| spec::profile(b).unwrap()).collect();
        Simulator::new(
            SimConfig::baseline(benches.len()),
            &profiles,
            RoundRobin::default(),
            7,
        )
    }

    #[test]
    fn unlimited_budget_never_breaches() {
        let mut w = CommitWatchdog::new(RunBudget::unlimited());
        for now in 0..100_000u64 {
            assert!(w.observe(now, || 0).is_ok());
        }
    }

    #[test]
    fn cycle_cap_trips_at_the_limit() {
        let mut w = CommitWatchdog::new(RunBudget {
            max_cycles: Some(500),
            livelock_window: None,
        });
        for now in 0..500u64 {
            assert!(w.observe(now, || now * 2).is_ok(), "cycle {now}");
        }
        match w.observe(500, || 999) {
            Err(BudgetBreach::CycleCap {
                limit,
                at_cycle,
                committed,
            }) => {
                assert_eq!(limit, 500);
                assert_eq!(at_cycle, 500);
                assert_eq!(committed, 999);
            }
            other => panic!("expected CycleCap, got {other:?}"),
        }
    }

    #[test]
    fn livelock_trips_after_one_silent_window() {
        let mut w = CommitWatchdog::new(RunBudget {
            max_cycles: None,
            livelock_window: Some(100),
        });
        // Progress through three windows, then stall.
        for now in 0..300u64 {
            assert!(w.observe(now, || now).is_ok(), "cycle {now}");
        }
        for now in 300..400u64 {
            assert!(w.observe(now, || 300).is_ok(), "cycle {now}");
        }
        let err = w.observe(400, || 300).unwrap_err();
        match err {
            BudgetBreach::Livelock {
                window,
                at_cycle,
                last_progress_cycle,
                ..
            } => {
                assert_eq!(window, 100);
                assert_eq!(at_cycle, 400);
                assert_eq!(last_progress_cycle, 300);
            }
            other => panic!("expected Livelock, got {other:?}"),
        }
        assert!(!format!("{err}").is_empty(), "Display renders");
    }

    #[test]
    fn stat_resets_count_as_progress() {
        // reset_stats drops the commit counters between warm-up and
        // measurement; any *change* (including a drop) is progress.
        let mut w = CommitWatchdog::new(RunBudget {
            max_cycles: None,
            livelock_window: Some(50),
        });
        assert!(w.observe(50, || 40).is_ok(), "40 committed in window one");
        assert!(w.observe(100, || 3).is_ok(), "counter reset mid-window");
        assert!(w.observe(150, || 7).is_ok());
    }

    #[test]
    fn budgeted_run_is_bit_identical_to_unbudgeted() {
        // The whole point of observational budgets: a run that stays in
        // budget must not perturb the simulation by a single bit.
        let mut plain = sim(&["gzip", "mcf"]);
        plain.run_cycles(20_000);
        let mut budgeted = sim(&["gzip", "mcf"]);
        let mut w = CommitWatchdog::new(RunBudget::default());
        budgeted
            .run_cycles_budgeted(20_000, &mut w)
            .expect("default budget never trips a healthy run");
        assert_eq!(
            plain.result(),
            budgeted.result(),
            "budget observation drifted the run"
        );
    }

    #[test]
    fn budgeted_run_reports_a_livelock_on_a_fresh_machine() {
        // A 1-cycle window can never see a commit (the commit stage runs
        // before fetch, so cycle 0 commits nothing on an empty machine):
        // the budgeted loop must return the breach instead of running on.
        let mut s = sim(&["gzip"]);
        let mut w = CommitWatchdog::new(RunBudget {
            max_cycles: None,
            livelock_window: Some(1),
        });
        let err = s.run_cycles_budgeted(10_000, &mut w).unwrap_err();
        assert!(
            matches!(err, BudgetBreach::Livelock { .. }),
            "expected livelock, got {err:?}"
        );
        assert!(s.now() < 10_000, "run must stop early");
    }

    #[test]
    fn mean_never_exceeds_peak() {
        let r = recorded(&["mcf", "gzip"], 10_000);
        for t in 0..2 {
            for kind in ResourceKind::ALL {
                assert!(
                    r.mean[t][kind] <= f64::from(r.peak[t][kind]) + 1e-9,
                    "mean above peak for thread {t} {kind}"
                );
            }
        }
    }
}
