//! Simulator configuration (the paper's Table 2).

use serde::{Deserialize, Serialize};
use smt_bpred::PredictorConfig;
use smt_isa::{PerResource, QueueKind, RegClass, ResourceKind};
use smt_mem::MemoryConfig;

/// Full configuration of the simulated SMT processor.
///
/// Defaults reproduce the paper's baseline (Table 2): 8-wide
/// fetch/issue/commit, 80-entry issue queues, 6/3/4 execution units, 352
/// physical registers per file, a 512-entry shared ROB, 12-stage pipeline
/// (modelled as a front-end depth plus 2-cycle register read), gshare/BTB/RAS
/// front end and the 64KB/512KB/300-cycle memory system.
///
/// # Examples
///
/// ```
/// use smt_sim::SimConfig;
///
/// let cfg = SimConfig::baseline(2);
/// assert_eq!(cfg.threads, 2);
/// assert_eq!(cfg.phys_regs, 352);
/// assert_eq!(cfg.rename_pool(), 352 - 32 * 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SimConfig {
    /// Number of hardware threads for this run.
    pub threads: usize,
    /// Instructions fetched per cycle (total across threads).
    pub fetch_width: u32,
    /// Maximum threads fetched from per cycle (2 = ICOUNT-2.8 style).
    pub fetch_threads: u32,
    /// Instructions decoded/renamed per cycle (total).
    pub decode_width: u32,
    /// Instructions committed per cycle (total).
    pub commit_width: u32,
    /// Entries in each of the three issue queues.
    pub iq_entries: u32,
    /// Integer execution units.
    pub int_units: u32,
    /// FP execution units.
    pub fp_units: u32,
    /// Load/store units.
    pub ls_units: u32,
    /// Physical registers per register file (int and fp each).
    pub phys_regs: u32,
    /// Architectural registers reserved per thread per file.
    pub arch_regs_per_thread: u32,
    /// Shared reorder-buffer entries.
    pub rob_entries: u32,
    /// Per-thread fetch-queue entries.
    pub fetch_queue: u32,
    /// Cycles from fetch to earliest rename (front-end depth). Together
    /// with the 2-cycle register read this models the 12-stage pipeline's
    /// branch-misprediction refill.
    pub frontend_delay: u32,
    /// Extra register-read/bypass latency added to execution (Table 2
    /// assumes two-cycle register file access).
    pub regread_delay: u32,
    /// Branch predictor configuration.
    pub bpred: PredictorConfig,
    /// Memory system configuration.
    pub mem: MemoryConfig,
}

impl SimConfig {
    /// The paper's baseline machine with `threads` contexts.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is 0 or exceeds [`smt_isa::ThreadId::MAX_THREADS`].
    pub fn baseline(threads: usize) -> Self {
        assert!(
            (1..=smt_isa::ThreadId::MAX_THREADS).contains(&threads),
            "thread count {threads} unsupported"
        );
        SimConfig {
            threads,
            fetch_width: 8,
            fetch_threads: 2,
            decode_width: 8,
            commit_width: 8,
            iq_entries: 80,
            int_units: 6,
            fp_units: 3,
            ls_units: 4,
            phys_regs: 352,
            arch_regs_per_thread: 32,
            rob_entries: 512,
            fetch_queue: 16,
            frontend_delay: 4,
            regread_delay: 1,
            bpred: PredictorConfig::default(),
            mem: MemoryConfig::default(),
        }
    }

    /// Shared rename-register pool per file: physical registers minus the
    /// architectural registers of every running thread (Section 4 of the
    /// paper: 352 − 32·T).
    ///
    /// # Panics
    ///
    /// Panics if the configuration leaves no rename registers.
    pub fn rename_pool(&self) -> u32 {
        let reserved = self.arch_regs_per_thread * self.threads as u32;
        assert!(
            self.phys_regs > reserved,
            "no rename registers left: {} physical, {} reserved",
            self.phys_regs,
            reserved
        );
        self.phys_regs - reserved
    }

    /// Cycles after issue at which a load that has missed the L2 is
    /// *detected* and reported to the policy — the L2 hit latency. Loads
    /// that resolve faster (L1 hits, L1-miss/L2-hit warm accesses) never
    /// reach the STALL/FLUSH trigger; the adversarial scenario generator
    /// in `smt-workloads` builds workloads around exactly this threshold.
    pub fn l2_detect_delay(&self) -> u32 {
        self.mem.l2.latency
    }

    /// Total entries of each controlled resource, as seen by allocation
    /// policies (issue queues and the two rename pools).
    pub fn resource_totals(&self) -> PerResource<u32> {
        let mut t = PerResource::default();
        t[ResourceKind::IntQueue] = self.iq_entries;
        t[ResourceKind::FpQueue] = self.iq_entries;
        t[ResourceKind::LsQueue] = self.iq_entries;
        t[ResourceKind::IntRegs] = self.rename_pool();
        t[ResourceKind::FpRegs] = self.rename_pool();
        t
    }

    /// Execution units available for a queue.
    pub fn units(&self, q: QueueKind) -> u32 {
        match q {
            QueueKind::Int => self.int_units,
            QueueKind::Fp => self.fp_units,
            QueueKind::LoadStore => self.ls_units,
        }
    }

    /// Rename pool of one register class (both files are sized equally).
    pub fn pool_of(&self, _class: RegClass) -> u32 {
        self.rename_pool()
    }

    /// Largest window span (ROB + fetch-queue entries) a configuration may
    /// request. The per-thread rings are power-of-two sized from this sum;
    /// the cap keeps them addressable and guards against absurd
    /// deserialized configurations allocating gigabytes per thread.
    pub const MAX_WINDOW_SPAN: u32 = 1 << 24;

    /// Validates cross-field consistency. A *hard* check (plain `Result`,
    /// no `debug_assert`): it runs identically in release builds, where it
    /// backstops invariants the hot path only `debug_assert`s — most
    /// importantly the `threads <= ThreadId::MAX_THREADS` bound that the
    /// issue stage's `ReadyEntry` key packing (`seq << 3 | tid`) and the
    /// fast-forward thread bitmasks rely on. [`Simulator::new`] and the
    /// experiment session layer both call it before running.
    ///
    /// [`Simulator::new`]: crate::Simulator::new
    ///
    /// # Errors
    ///
    /// Returns a message if the thread count is out of range, widths are
    /// zero, queues/windows are zero-sized or too large for the ring
    /// storage, or resources are too small to make forward progress.
    pub fn validate(&self) -> Result<(), String> {
        if self.threads == 0 {
            return Err("need at least one hardware thread".into());
        }
        if self.threads > smt_isa::ThreadId::MAX_THREADS {
            return Err(format!(
                "thread count {} exceeds the supported maximum {}",
                self.threads,
                smt_isa::ThreadId::MAX_THREADS
            ));
        }
        if self.fetch_width == 0 || self.decode_width == 0 || self.commit_width == 0 {
            return Err("pipeline widths must be non-zero".into());
        }
        if self.fetch_threads == 0 {
            return Err("must fetch from at least one thread".into());
        }
        if self.iq_entries == 0 || self.rob_entries == 0 || self.fetch_queue == 0 {
            return Err("queues must be non-empty".into());
        }
        match self.rob_entries.checked_add(self.fetch_queue) {
            None => return Err("ROB + fetch queue overflows the window span".into()),
            Some(span) if span > Self::MAX_WINDOW_SPAN => {
                return Err(format!(
                    "window span {span} (ROB + fetch queue) exceeds the ring \
                     capacity limit {}",
                    Self::MAX_WINDOW_SPAN
                ));
            }
            Some(_) => {}
        }
        if self.int_units == 0 || self.ls_units == 0 {
            return Err("need at least one int and one ls unit".into());
        }
        let reserved = self.arch_regs_per_thread * self.threads as u32;
        if self.phys_regs <= reserved {
            return Err(format!(
                "physical registers ({}) do not cover architectural state ({reserved})",
                self.phys_regs
            ));
        }
        Ok(())
    }
}

/// Per-run execution budget, enforced by
/// [`Simulator::run_cycles_budgeted`](crate::Simulator::run_cycles_budgeted)
/// through a [`CommitWatchdog`](crate::watch::CommitWatchdog).
///
/// A budget bounds how far a single run may go before it is declared
/// broken: `max_cycles` caps the absolute cycle count of the run, and
/// `livelock_window` demands at least one committed instruction per
/// window of cycles. Both limits are observational — the budgeted cycle
/// loop steps the machine exactly like
/// [`Simulator::run_cycles`](crate::Simulator::run_cycles), so a run that
/// stays inside its budget is bit-identical to an unbudgeted run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RunBudget {
    /// Hard cap on the run's total cycle count (`None` = unlimited). The
    /// watchdog observes monotonically increasing cycle numbers starting
    /// at 0 for each run.
    pub max_cycles: Option<u64>,
    /// Maximum cycles the machine may advance without committing a single
    /// instruction before the run is declared livelocked (`None` = never).
    /// Detection is checkpoint-based: commits are counted once per window,
    /// so a livelock is reported within one to two windows of the last
    /// commit.
    pub livelock_window: Option<u64>,
}

impl RunBudget {
    /// A budget with no limits at all: never trips, never truncates.
    pub fn unlimited() -> Self {
        RunBudget {
            max_cycles: None,
            livelock_window: None,
        }
    }

    /// `true` if neither limit is set (the watchdog degenerates to a
    /// single integer compare per observation).
    pub fn is_unlimited(&self) -> bool {
        self.max_cycles.is_none() && self.livelock_window.is_none()
    }
}

impl Default for RunBudget {
    /// No cycle cap, and a one-million-cycle livelock window — three
    /// orders of magnitude beyond the longest legitimate commit gap (a
    /// full memory round trip is ≤ 500 cycles on every configuration the
    /// experiments sweep), so healthy runs never trip it while a policy
    /// that gates every thread forever still terminates with a diagnostic
    /// instead of spinning.
    fn default() -> Self {
        RunBudget {
            max_cycles: None,
            livelock_window: Some(1_000_000),
        }
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::baseline(4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table2() {
        let c = SimConfig::baseline(4);
        assert_eq!(c.fetch_width, 8);
        assert_eq!(c.iq_entries, 80);
        assert_eq!(c.int_units, 6);
        assert_eq!(c.fp_units, 3);
        assert_eq!(c.ls_units, 4);
        assert_eq!(c.rob_entries, 512);
        assert_eq!(c.phys_regs, 352);
        assert_eq!(c.mem.memory_latency, 300);
        assert_eq!(c.mem.l2.latency, 20);
        assert_eq!(c.bpred.gshare_entries, 16 * 1024);
        c.validate().unwrap();
    }

    #[test]
    fn rename_pool_follows_paper_formula() {
        // Paper Section 4, with 352 physical registers: P − 32·T.
        for (threads, expect) in [(4usize, 224u32), (3, 256), (2, 288)] {
            let c = SimConfig::baseline(threads);
            assert_eq!(c.rename_pool(), expect);
        }
        // With 320 registers the paper quotes 224/256 rename registers at
        // 3/2 threads, matching P − 32·T. (Its "160" for 4 threads is an
        // arithmetic typo: 320 − 128 = 192.)
        let mut c = SimConfig::baseline(4);
        c.phys_regs = 320;
        assert_eq!(c.rename_pool(), 192);
    }

    #[test]
    fn resource_totals_cover_all_kinds() {
        let c = SimConfig::baseline(2);
        let t = c.resource_totals();
        for (kind, v) in t.iter() {
            assert!(*v > 0, "{kind} has zero entries");
        }
        assert_eq!(t[ResourceKind::IntQueue], 80);
        assert_eq!(t[ResourceKind::IntRegs], c.rename_pool());
    }

    #[test]
    fn validate_catches_register_underflow() {
        let mut c = SimConfig::baseline(4);
        c.phys_regs = 100;
        assert!(c.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "unsupported")]
    fn zero_threads_rejected() {
        let _ = SimConfig::baseline(0);
    }

    #[test]
    fn validate_rejects_thread_counts_out_of_range() {
        // `baseline` asserts its argument, but a deserialized or mutated
        // config can carry any `threads` value; `validate` must reject it
        // with a plain error (release builds included) before the issue
        // stage's `seq << 3 | tid` key packing could silently corrupt
        // ordering for tid >= 8.
        let mut c = SimConfig::baseline(4);
        c.threads = 0;
        assert!(c.validate().unwrap_err().contains("at least one"));
        c.threads = smt_isa::ThreadId::MAX_THREADS + 1;
        assert!(c.validate().unwrap_err().contains("exceeds"));
        // Give the out-of-range config enough registers so the thread
        // bound is really what trips, not the register check.
        c.phys_regs = u32::MAX;
        assert!(c.validate().unwrap_err().contains("exceeds"));
        c.threads = smt_isa::ThreadId::MAX_THREADS;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validate_rejects_zero_sized_windows_and_queues() {
        for field in ["fetch_width", "decode_width", "commit_width"] {
            let mut c = SimConfig::baseline(2);
            match field {
                "fetch_width" => c.fetch_width = 0,
                "decode_width" => c.decode_width = 0,
                _ => c.commit_width = 0,
            }
            assert!(c.validate().is_err(), "{field} = 0 must be rejected");
        }
        for field in ["iq_entries", "rob_entries", "fetch_queue"] {
            let mut c = SimConfig::baseline(2);
            match field {
                "iq_entries" => c.iq_entries = 0,
                "rob_entries" => c.rob_entries = 0,
                _ => c.fetch_queue = 0,
            }
            assert!(c.validate().is_err(), "{field} = 0 must be rejected");
        }
        let mut c = SimConfig::baseline(2);
        c.fetch_threads = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validate_caps_ring_capacities() {
        let mut c = SimConfig::baseline(2);
        c.rob_entries = u32::MAX;
        c.fetch_queue = 2;
        assert!(
            c.validate().unwrap_err().contains("overflow"),
            "u32 overflow of the window span must be rejected"
        );
        c.rob_entries = SimConfig::MAX_WINDOW_SPAN;
        c.fetch_queue = 1;
        assert!(c.validate().unwrap_err().contains("ring capacity"));
        c.rob_entries = SimConfig::MAX_WINDOW_SPAN - 1;
        assert!(c.validate().is_ok());
    }
}
