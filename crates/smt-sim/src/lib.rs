//! Cycle-level SMT processor simulator for the DCRA reproduction.
//!
//! This crate models the machine of the paper's Table 2: an 8-wide SMT
//! processor with three shared 80-entry issue queues, shared physical
//! register files, a shared 512-entry ROB, a gshare front end and a
//! two-level cache hierarchy. Resource arbitration between threads is
//! delegated to a [`policy::Policy`] — the extension point where the
//! paper's fetch policies (ICOUNT, STALL, FLUSH, FLUSH++, DG, PDG) and
//! allocation policies (SRA, DCRA) plug in.
//!
//! # Architecture
//!
//! * [`SimConfig`] — machine description (Table 2 defaults).
//! * [`Simulator`] — the staged cycle loop: fetch → decode/rename → issue
//!   → execute → commit, with squash/replay on branch mispredictions and
//!   policy-initiated flushes. Each stage lives in its own module of the
//!   `core/` tree and processes per-thread bursts (see `ARCHITECTURE.md`
//!   at the repository root for the module map and batching invariants).
//! * [`policy`] — the policy interface and per-cycle machine view.
//! * [`SimResult`]/[`ThreadStats`] — per-run statistics (IPC, front-end
//!   activity, memory-level parallelism, ...).
//! * [`StageProfile`] — per-stage wall-clock attribution for perf
//!   tracking.
//!
//! # Examples
//!
//! ```
//! use smt_sim::{SimConfig, Simulator};
//! use smt_sim::policy::RoundRobin;
//! use smt_workloads::spec;
//!
//! let profiles = [spec::profile("gzip").unwrap(), spec::profile("mcf").unwrap()];
//! let mut sim = Simulator::new(
//!     SimConfig::baseline(2),
//!     &profiles,
//!     RoundRobin::default(),
//!     1,
//! );
//! sim.run_cycles(10_000);
//! println!("throughput = {:.2} IPC", sim.result().throughput());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod core;
mod inst;
pub mod knobs;
pub mod policy;
mod stats;
mod thread;
pub mod watch;

pub use config::{RunBudget, SimConfig};
pub use core::{Simulator, StageProfile};
pub use stats::{SimResult, ThreadStats};
