//! In-flight dynamic instruction state.

use smt_isa::{InstClass, PackedInst, RegClass};

/// Sentinel for "no producer" in a dependency slot.
pub(crate) const NO_DEP: u64 = u64::MAX;

/// Pipeline stage of an in-flight instruction.
///
/// Stored in a dedicated struct-of-arrays lane of the window ring (see
/// [`crate::thread::ThreadState`]), not inside [`DynInst`]: the stage is
/// the field every pipeline stage reads — the commit stage scans runs of
/// [`Stage::Done`], issue filters on [`Stage::Dispatched`] — so keeping it
/// in its own contiguous byte lane makes those burst scans touch one byte
/// per instruction instead of a whole `DynInst`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Stage {
    /// Fetched into the thread's fetch queue; occupies no shared resource.
    Fetched,
    /// Renamed/dispatched: occupies a ROB entry, an issue-queue entry and
    /// (if it writes) a rename register.
    Dispatched,
    /// Issued to a functional unit; the issue-queue entry is released at
    /// issue (Section 3.4: queue counters decrement at issue).
    Executing,
    /// Completed; waiting to commit in order. Releases its rename register
    /// at commit (Section 3.4: register counters decrement at commit).
    Done,
}

/// Resolves a packed instruction's dependence distances to absolute
/// producer sequence numbers ([`NO_DEP`] where a slot has no producer or
/// the distance reaches before the stream start). The result lives in the
/// window ring's deps lane, read at dispatch when subscribing to producers.
pub(crate) fn resolve_deps(packed: &PackedInst, seq: u64) -> [u64; 2] {
    packed.dep_dists().map(|d| {
        let dist = u64::from(d);
        if dist != 0 && dist <= seq {
            seq - dist
        } else {
            NO_DEP
        }
    })
}

/// One in-flight instruction.
///
/// Deliberately compact (48 bytes, so three fit in two cache lines): the
/// window ring holds these, so the full [`DecodedInst`] is *not* embedded —
/// only the fields the pipeline reads per stage, and of those, the hottest
/// (`stage`, `deps`) live in separate struct-of-arrays lanes of the ring
/// instead. The per-thread sequence number is not stored either — it *is*
/// the ring key — and the five status booleans share one flags byte. The
/// packed record itself stays in the thread's trace store (whose tail
/// ring outlives every in-flight instruction by construction: it keeps
/// every block within `max_lookback` of the newest requested seq, and
/// squashed instructions re-fetch from within that span), where squash
/// notifications and re-fetches look it up.
#[derive(Debug, Clone)]
pub(crate) struct DynInst {
    /// Globally unique incarnation id: a squashed-and-refetched instruction
    /// reuses its seq but gets a fresh `uid`, so stale timing events can
    /// be recognised and dropped.
    pub uid: u64,
    /// Program counter.
    pub pc: u64,
    /// Effective address for loads/stores (unused otherwise).
    pub mem_addr: u64,
    /// Earliest cycle the instruction may be renamed (front-end depth).
    pub dispatch_eligible_at: u64,
    /// Cycle the instruction was dispatched (age for issue arbitration).
    pub dispatched_at: u64,
    /// Head of this instruction's consumer wait-list (index into the
    /// thread's waiter pool, [`crate::thread::NO_WAITER`] when empty).
    /// Completion walks the list and wakes the registered consumers.
    pub waiters_head: u32,
    /// Functional class.
    pub class: InstClass,
    /// Register class written, if any.
    pub dest: Option<RegClass>,
    /// Wakeup scoreboard: number of source operands still outstanding.
    /// Counted at dispatch; decremented by producers as they complete.
    /// Valid only while `Dispatched` — the instruction joins its queue's
    /// ready list the moment this reaches zero.
    pub pending_ops: u8,
    /// Status flags, see the `FLAG_*` constants.
    flags: u8,
}

/// Fetch-time branch misprediction (squash when the branch resolves).
const FLAG_MISPREDICTED: u8 = 1 << 0;
/// The load missed the L1 data cache.
const FLAG_L1_MISS: u8 = 1 << 1;
/// The load missed the L2.
const FLAG_L2_MISS: u8 = 1 << 2;
/// The L2 miss has been detected (one L2 latency after issue) and is
/// counted in the thread's pending-L2 counter.
const FLAG_L2_DETECTED: u8 = 1 << 3;
/// The instruction is a call or return (squashing one clears the RAS).
const FLAG_PUSHES_RAS: u8 = 1 << 4;

impl DynInst {
    /// An inert filler for unoccupied ring slots — never observable: every
    /// ring lookup is bounds-guarded by the live `[base, tip)` range.
    pub fn placeholder() -> Self {
        DynInst {
            uid: 0,
            pc: 0,
            mem_addr: 0,
            dispatch_eligible_at: 0,
            dispatched_at: 0,
            waiters_head: crate::thread::NO_WAITER,
            class: InstClass::IntAlu,
            dest: None,
            pending_ops: 0,
            flags: 0,
        }
    }

    /// Creates a freshly fetched instruction from its packed trace record
    /// plus the effective address the fetch stage pre-read from the memory
    /// sidecar (0 for non-memory instructions). The caller stores the
    /// companion lane values ([`resolve_deps`], [`Stage::Fetched`])
    /// alongside.
    pub fn fetched(
        uid: u64,
        packed: &PackedInst,
        mem_addr: u64,
        now: u64,
        frontend_delay: u32,
    ) -> Self {
        DynInst {
            uid,
            pc: packed.pc,
            mem_addr,
            dispatch_eligible_at: now + u64::from(frontend_delay),
            dispatched_at: 0,
            waiters_head: crate::thread::NO_WAITER,
            class: packed.class(),
            dest: packed.dest(),
            pending_ops: 0,
            flags: if packed.touches_ras() {
                FLAG_PUSHES_RAS
            } else {
                0
            },
        }
    }

    #[inline]
    pub fn mispredicted(&self) -> bool {
        self.flags & FLAG_MISPREDICTED != 0
    }

    #[inline]
    pub fn set_mispredicted(&mut self) {
        self.flags |= FLAG_MISPREDICTED;
    }

    #[inline]
    pub fn l1_miss(&self) -> bool {
        self.flags & FLAG_L1_MISS != 0
    }

    #[inline]
    pub fn set_l1_miss(&mut self) {
        self.flags |= FLAG_L1_MISS;
    }

    #[inline]
    pub fn l2_miss(&self) -> bool {
        self.flags & FLAG_L2_MISS != 0
    }

    #[inline]
    pub fn set_l2_miss(&mut self) {
        self.flags |= FLAG_L2_MISS;
    }

    #[inline]
    pub fn l2_detected(&self) -> bool {
        self.flags & FLAG_L2_DETECTED != 0
    }

    #[inline]
    pub fn set_l2_detected(&mut self) {
        self.flags |= FLAG_L2_DETECTED;
    }

    #[inline]
    pub fn pushes_ras(&self) -> bool {
        self.flags & FLAG_PUSHES_RAS != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_isa::DecodedInst;

    /// Packs a decoded record the way the fetch stage sees it: the 16-byte
    /// core plus the pre-read effective address.
    fn packed(d: &DecodedInst) -> (PackedInst, u64) {
        (PackedInst::pack(d, 0), d.mem.map_or(0, |m| m.addr))
    }

    #[test]
    fn deps_resolve_to_absolute_seqs() {
        let d = DecodedInst::builder(InstClass::IntAlu, 0)
            .dest(RegClass::Int)
            .dep(3)
            .dep(10)
            .build();
        let (p, addr) = packed(&d);
        assert_eq!(resolve_deps(&p, 20), [17, 10]);
        let i = DynInst::fetched(1, &p, addr, 5, 4);
        assert_eq!(i.dispatch_eligible_at, 9);
    }

    #[test]
    fn flags_pack_independently() {
        let d = DecodedInst::builder(InstClass::Load, 0)
            .dest(RegClass::Int)
            .mem(0x40, 8)
            .build();
        let (p, addr) = packed(&d);
        let mut i = DynInst::fetched(1, &p, addr, 0, 0);
        assert_eq!(i.mem_addr, 0x40);
        assert!(!i.l1_miss() && !i.l2_miss() && !i.mispredicted());
        i.set_l1_miss();
        i.set_l2_detected();
        assert!(i.l1_miss() && i.l2_detected());
        assert!(!i.l2_miss() && !i.mispredicted() && !i.pushes_ras());
    }

    #[test]
    fn deps_before_stream_start_are_dropped() {
        let d = DecodedInst::builder(InstClass::IntAlu, 0).dep(5).build();
        assert_eq!(
            resolve_deps(&packed(&d).0, 3),
            [NO_DEP, NO_DEP],
            "distance beyond seq 0 has no producer"
        );
    }

    #[test]
    fn layout_hot_structs_stay_compact() {
        // The whole point of not embedding DecodedInst (and of keeping the
        // stage/deps lanes outside): window slots are the simulator's
        // dominant memory traffic. The companion pin for the packed trace
        // record lives in smt-isa (`layout_packed_inst_fits_16_bytes`).
        assert!(
            std::mem::size_of::<DynInst>() <= 48,
            "DynInst grew to {} bytes",
            std::mem::size_of::<DynInst>()
        );
        assert_eq!(
            std::mem::size_of::<Stage>(),
            1,
            "the stage lane must stay a byte lane (commit scans it)"
        );
        assert_eq!(std::mem::size_of::<[u64; 2]>(), 16, "deps lane entry size");
        assert!(
            std::mem::size_of::<PackedInst>() <= 16,
            "PackedInst grew to {} bytes",
            std::mem::size_of::<PackedInst>()
        );
    }
}
