//! In-flight dynamic instruction state.

use smt_isa::DecodedInst;

/// Pipeline stage of an in-flight instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Stage {
    /// Fetched into the thread's fetch queue; occupies no shared resource.
    Fetched,
    /// Renamed/dispatched: occupies a ROB entry, an issue-queue entry and
    /// (if it writes) a rename register.
    Dispatched,
    /// Issued to a functional unit; the issue-queue entry is released at
    /// issue (Section 3.4: queue counters decrement at issue).
    Executing,
    /// Completed; waiting to commit in order. Releases its rename register
    /// at commit (Section 3.4: register counters decrement at commit).
    Done,
}

/// One in-flight instruction.
#[derive(Debug, Clone)]
pub(crate) struct DynInst {
    /// Per-thread dynamic sequence number.
    pub seq: u64,
    /// Globally unique incarnation id: a squashed-and-refetched instruction
    /// reuses its `seq` but gets a fresh `uid`, so stale timing events can
    /// be recognised and dropped.
    pub uid: u64,
    pub decoded: DecodedInst,
    pub stage: Stage,
    /// Earliest cycle the instruction may be renamed (front-end depth).
    pub dispatch_eligible_at: u64,
    /// Cycle the instruction was dispatched (age for issue arbitration).
    pub dispatched_at: u64,
    /// Cycle the result becomes available (valid once Executing).
    pub ready_at: u64,
    /// Absolute producer sequence numbers within the same thread.
    pub deps: [Option<u64>; 2],
    /// Wakeup scoreboard: number of source operands still outstanding.
    /// Counted at dispatch; decremented by producers as they complete.
    /// Valid only while `Dispatched` — the instruction joins its queue's
    /// ready list the moment this reaches zero.
    pub pending_ops: u8,
    /// Head of this instruction's consumer wait-list (index into the
    /// thread's waiter pool, [`crate::thread::NO_WAITER`] when empty).
    /// Completion walks the list and wakes the registered consumers.
    pub waiters_head: u32,
    /// Fetch-time branch misprediction (squash when the branch resolves).
    pub mispredicted: bool,
    /// The load missed the L1 data cache.
    pub l1_miss: bool,
    /// The load missed the L2.
    pub l2_miss: bool,
    /// The L2 miss has been detected (one L2 latency after issue) and is
    /// counted in the thread's pending-L2 counter.
    pub l2_detected: bool,
}

impl DynInst {
    /// Creates a freshly fetched instruction.
    pub fn fetched(
        seq: u64,
        uid: u64,
        decoded: DecodedInst,
        now: u64,
        frontend_delay: u32,
    ) -> Self {
        let deps = decoded.deps().map(|d| {
            d.and_then(|dist| {
                let dist = u64::from(dist);
                (dist <= seq).then(|| seq - dist)
            })
        });
        DynInst {
            seq,
            uid,
            decoded,
            stage: Stage::Fetched,
            dispatch_eligible_at: now + u64::from(frontend_delay),
            dispatched_at: 0,
            ready_at: 0,
            deps,
            pending_ops: 0,
            waiters_head: crate::thread::NO_WAITER,
            mispredicted: false,
            l1_miss: false,
            l2_miss: false,
            l2_detected: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_isa::{InstClass, RegClass};

    #[test]
    fn deps_resolve_to_absolute_seqs() {
        let d = DecodedInst::builder(InstClass::IntAlu, 0)
            .dest(RegClass::Int)
            .dep(3)
            .dep(10)
            .build();
        let i = DynInst::fetched(20, 1, d, 5, 4);
        assert_eq!(i.deps, [Some(17), Some(10)]);
        assert_eq!(i.dispatch_eligible_at, 9);
    }

    #[test]
    fn deps_before_stream_start_are_dropped() {
        let d = DecodedInst::builder(InstClass::IntAlu, 0).dep(5).build();
        let i = DynInst::fetched(3, 1, d, 0, 0);
        assert_eq!(
            i.deps,
            [None, None],
            "distance beyond seq 0 has no producer"
        );
    }
}
