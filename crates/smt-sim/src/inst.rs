//! In-flight dynamic instruction state.

use smt_isa::{BranchKind, DecodedInst, InstClass, RegClass};

/// Sentinel for "no producer" in a dependency slot.
pub(crate) const NO_DEP: u64 = u64::MAX;

/// Pipeline stage of an in-flight instruction.
///
/// Stored in a dedicated struct-of-arrays lane of the window ring (see
/// [`crate::thread::ThreadState`]), not inside [`DynInst`]: the stage is
/// the field every pipeline stage reads — the commit stage scans runs of
/// [`Stage::Done`], issue filters on [`Stage::Dispatched`] — so keeping it
/// in its own contiguous byte lane makes those burst scans touch one byte
/// per instruction instead of a whole `DynInst`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Stage {
    /// Fetched into the thread's fetch queue; occupies no shared resource.
    Fetched,
    /// Renamed/dispatched: occupies a ROB entry, an issue-queue entry and
    /// (if it writes) a rename register.
    Dispatched,
    /// Issued to a functional unit; the issue-queue entry is released at
    /// issue (Section 3.4: queue counters decrement at issue).
    Executing,
    /// Completed; waiting to commit in order. Releases its rename register
    /// at commit (Section 3.4: register counters decrement at commit).
    Done,
}

/// Resolves a decoded instruction's dependence distances to absolute
/// producer sequence numbers ([`NO_DEP`] where a slot has no producer or
/// the distance reaches before the stream start). The result lives in the
/// window ring's deps lane, read at dispatch when subscribing to producers.
pub(crate) fn resolve_deps(decoded: &DecodedInst, seq: u64) -> [u64; 2] {
    decoded.deps().map(|d| match d {
        Some(dist) => {
            let dist = u64::from(dist);
            if dist <= seq {
                seq - dist
            } else {
                NO_DEP
            }
        }
        None => NO_DEP,
    })
}

/// One in-flight instruction.
///
/// Deliberately compact (48 bytes, so three fit in two cache lines): the
/// window ring holds these, so the full [`DecodedInst`] is *not* embedded —
/// only the fields the pipeline reads per stage, and of those, the hottest
/// (`stage`, `deps`) live in separate struct-of-arrays lanes of the ring
/// instead. The per-thread sequence number is not stored either — it *is*
/// the ring key — and the five status booleans share one flags byte. The
/// decoded record itself stays in the thread's replay buffer (which
/// outlives every in-flight instruction by construction: the buffer
/// retires at commit, and squashed instructions are younger than the
/// commit point), where squash notifications and re-fetches look it up.
#[derive(Debug, Clone)]
pub(crate) struct DynInst {
    /// Globally unique incarnation id: a squashed-and-refetched instruction
    /// reuses its seq but gets a fresh `uid`, so stale timing events can
    /// be recognised and dropped.
    pub uid: u64,
    /// Program counter.
    pub pc: u64,
    /// Effective address for loads/stores (unused otherwise).
    pub mem_addr: u64,
    /// Earliest cycle the instruction may be renamed (front-end depth).
    pub dispatch_eligible_at: u64,
    /// Cycle the instruction was dispatched (age for issue arbitration).
    pub dispatched_at: u64,
    /// Head of this instruction's consumer wait-list (index into the
    /// thread's waiter pool, [`crate::thread::NO_WAITER`] when empty).
    /// Completion walks the list and wakes the registered consumers.
    pub waiters_head: u32,
    /// Functional class.
    pub class: InstClass,
    /// Register class written, if any.
    pub dest: Option<RegClass>,
    /// Wakeup scoreboard: number of source operands still outstanding.
    /// Counted at dispatch; decremented by producers as they complete.
    /// Valid only while `Dispatched` — the instruction joins its queue's
    /// ready list the moment this reaches zero.
    pub pending_ops: u8,
    /// Status flags, see the `FLAG_*` constants.
    flags: u8,
}

/// Fetch-time branch misprediction (squash when the branch resolves).
const FLAG_MISPREDICTED: u8 = 1 << 0;
/// The load missed the L1 data cache.
const FLAG_L1_MISS: u8 = 1 << 1;
/// The load missed the L2.
const FLAG_L2_MISS: u8 = 1 << 2;
/// The L2 miss has been detected (one L2 latency after issue) and is
/// counted in the thread's pending-L2 counter.
const FLAG_L2_DETECTED: u8 = 1 << 3;
/// The instruction is a call or return (squashing one clears the RAS).
const FLAG_PUSHES_RAS: u8 = 1 << 4;

impl DynInst {
    /// An inert filler for unoccupied ring slots — never observable: every
    /// ring lookup is bounds-guarded by the live `[base, tip)` range.
    pub fn placeholder() -> Self {
        DynInst {
            uid: 0,
            pc: 0,
            mem_addr: 0,
            dispatch_eligible_at: 0,
            dispatched_at: 0,
            waiters_head: crate::thread::NO_WAITER,
            class: InstClass::IntAlu,
            dest: None,
            pending_ops: 0,
            flags: 0,
        }
    }

    /// Creates a freshly fetched instruction from its decoded record. The
    /// caller stores the companion lane values ([`resolve_deps`],
    /// [`Stage::Fetched`]) alongside.
    ///
    /// # Panics
    ///
    /// Panics if a load or store arrives without a memory access.
    pub fn fetched(uid: u64, decoded: &DecodedInst, now: u64, frontend_delay: u32) -> Self {
        let mem_addr = match decoded.class {
            InstClass::Load | InstClass::Store => {
                decoded.mem.expect("load/store without address").addr
            }
            _ => 0,
        };
        let pushes_ras = matches!(
            decoded.branch.map(|b| b.kind),
            Some(BranchKind::Call) | Some(BranchKind::Return)
        );
        DynInst {
            uid,
            pc: decoded.pc,
            mem_addr,
            dispatch_eligible_at: now + u64::from(frontend_delay),
            dispatched_at: 0,
            waiters_head: crate::thread::NO_WAITER,
            class: decoded.class,
            dest: decoded.dest,
            pending_ops: 0,
            flags: if pushes_ras { FLAG_PUSHES_RAS } else { 0 },
        }
    }

    #[inline]
    pub fn mispredicted(&self) -> bool {
        self.flags & FLAG_MISPREDICTED != 0
    }

    #[inline]
    pub fn set_mispredicted(&mut self) {
        self.flags |= FLAG_MISPREDICTED;
    }

    #[inline]
    pub fn l1_miss(&self) -> bool {
        self.flags & FLAG_L1_MISS != 0
    }

    #[inline]
    pub fn set_l1_miss(&mut self) {
        self.flags |= FLAG_L1_MISS;
    }

    #[inline]
    pub fn l2_miss(&self) -> bool {
        self.flags & FLAG_L2_MISS != 0
    }

    #[inline]
    pub fn set_l2_miss(&mut self) {
        self.flags |= FLAG_L2_MISS;
    }

    #[inline]
    pub fn l2_detected(&self) -> bool {
        self.flags & FLAG_L2_DETECTED != 0
    }

    #[inline]
    pub fn set_l2_detected(&mut self) {
        self.flags |= FLAG_L2_DETECTED;
    }

    #[inline]
    pub fn pushes_ras(&self) -> bool {
        self.flags & FLAG_PUSHES_RAS != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deps_resolve_to_absolute_seqs() {
        let d = DecodedInst::builder(InstClass::IntAlu, 0)
            .dest(RegClass::Int)
            .dep(3)
            .dep(10)
            .build();
        assert_eq!(resolve_deps(&d, 20), [17, 10]);
        let i = DynInst::fetched(1, &d, 5, 4);
        assert_eq!(i.dispatch_eligible_at, 9);
    }

    #[test]
    fn flags_pack_independently() {
        let d = DecodedInst::builder(InstClass::Load, 0)
            .dest(RegClass::Int)
            .mem(0x40, 8)
            .build();
        let mut i = DynInst::fetched(1, &d, 0, 0);
        assert!(!i.l1_miss() && !i.l2_miss() && !i.mispredicted());
        i.set_l1_miss();
        i.set_l2_detected();
        assert!(i.l1_miss() && i.l2_detected());
        assert!(!i.l2_miss() && !i.mispredicted() && !i.pushes_ras());
    }

    #[test]
    fn deps_before_stream_start_are_dropped() {
        let d = DecodedInst::builder(InstClass::IntAlu, 0).dep(5).build();
        assert_eq!(
            resolve_deps(&d, 3),
            [NO_DEP, NO_DEP],
            "distance beyond seq 0 has no producer"
        );
    }

    #[test]
    fn stays_compact() {
        // The whole point of not embedding DecodedInst (and of keeping the
        // stage/deps lanes outside): window slots are the simulator's
        // dominant memory traffic.
        assert!(
            std::mem::size_of::<DynInst>() <= 48,
            "DynInst grew to {} bytes",
            std::mem::size_of::<DynInst>()
        );
    }
}
