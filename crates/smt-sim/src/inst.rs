//! In-flight dynamic instruction state.

use smt_isa::{BranchKind, DecodedInst, InstClass, RegClass};

/// Sentinel for "no producer" in [`DynInst::deps`].
pub(crate) const NO_DEP: u64 = u64::MAX;

/// Pipeline stage of an in-flight instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Stage {
    /// Fetched into the thread's fetch queue; occupies no shared resource.
    Fetched,
    /// Renamed/dispatched: occupies a ROB entry, an issue-queue entry and
    /// (if it writes) a rename register.
    Dispatched,
    /// Issued to a functional unit; the issue-queue entry is released at
    /// issue (Section 3.4: queue counters decrement at issue).
    Executing,
    /// Completed; waiting to commit in order. Releases its rename register
    /// at commit (Section 3.4: register counters decrement at commit).
    Done,
}

/// One in-flight instruction.
///
/// Deliberately compact: the window `VecDeque`s move these on every fetch,
/// commit and squash, so the full [`DecodedInst`] is *not* embedded — only
/// the fields the pipeline reads per stage. The decoded record itself stays
/// in the thread's replay buffer (which outlives every in-flight
/// instruction by construction: the buffer retires at commit, and squashed
/// instructions are younger than the commit point), where squash
/// notifications and re-fetches look it up.
#[derive(Debug, Clone)]
pub(crate) struct DynInst {
    /// Per-thread dynamic sequence number.
    pub seq: u64,
    /// Globally unique incarnation id: a squashed-and-refetched instruction
    /// reuses its `seq` but gets a fresh `uid`, so stale timing events can
    /// be recognised and dropped.
    pub uid: u64,
    /// Program counter.
    pub pc: u64,
    /// Effective address for loads/stores (unused otherwise).
    pub mem_addr: u64,
    /// Earliest cycle the instruction may be renamed (front-end depth).
    pub dispatch_eligible_at: u64,
    /// Cycle the instruction was dispatched (age for issue arbitration).
    pub dispatched_at: u64,
    /// Absolute producer sequence numbers within the same thread
    /// ([`NO_DEP`] = no producer in that slot).
    pub deps: [u64; 2],
    /// Head of this instruction's consumer wait-list (index into the
    /// thread's waiter pool, [`crate::thread::NO_WAITER`] when empty).
    /// Completion walks the list and wakes the registered consumers.
    pub waiters_head: u32,
    /// Functional class.
    pub class: InstClass,
    /// Register class written, if any.
    pub dest: Option<RegClass>,
    pub stage: Stage,
    /// Wakeup scoreboard: number of source operands still outstanding.
    /// Counted at dispatch; decremented by producers as they complete.
    /// Valid only while `Dispatched` — the instruction joins its queue's
    /// ready list the moment this reaches zero.
    pub pending_ops: u8,
    /// Fetch-time branch misprediction (squash when the branch resolves).
    pub mispredicted: bool,
    /// The load missed the L1 data cache.
    pub l1_miss: bool,
    /// The load missed the L2.
    pub l2_miss: bool,
    /// The L2 miss has been detected (one L2 latency after issue) and is
    /// counted in the thread's pending-L2 counter.
    pub l2_detected: bool,
    /// The instruction is a call or return (squashing one clears the RAS).
    pub pushes_ras: bool,
}

impl DynInst {
    /// An inert filler for unoccupied ring slots — never observable: every
    /// ring lookup is bounds-guarded by the live `[base, tip)` range.
    pub fn placeholder() -> Self {
        DynInst {
            seq: u64::MAX,
            uid: 0,
            pc: 0,
            mem_addr: 0,
            dispatch_eligible_at: 0,
            dispatched_at: 0,
            deps: [NO_DEP; 2],
            waiters_head: crate::thread::NO_WAITER,
            class: InstClass::IntAlu,
            dest: None,
            stage: Stage::Done,
            pending_ops: 0,
            mispredicted: false,
            l1_miss: false,
            l2_miss: false,
            l2_detected: false,
            pushes_ras: false,
        }
    }

    /// Creates a freshly fetched instruction from its decoded record.
    ///
    /// # Panics
    ///
    /// Panics if a load or store arrives without a memory access.
    pub fn fetched(
        seq: u64,
        uid: u64,
        decoded: &DecodedInst,
        now: u64,
        frontend_delay: u32,
    ) -> Self {
        let deps = decoded.deps().map(|d| match d {
            Some(dist) => {
                let dist = u64::from(dist);
                if dist <= seq {
                    seq - dist
                } else {
                    NO_DEP
                }
            }
            None => NO_DEP,
        });
        let mem_addr = match decoded.class {
            InstClass::Load | InstClass::Store => {
                decoded.mem.expect("load/store without address").addr
            }
            _ => 0,
        };
        DynInst {
            seq,
            uid,
            pc: decoded.pc,
            mem_addr,
            dispatch_eligible_at: now + u64::from(frontend_delay),
            dispatched_at: 0,
            deps,
            waiters_head: crate::thread::NO_WAITER,
            class: decoded.class,
            dest: decoded.dest,
            stage: Stage::Fetched,
            pending_ops: 0,
            mispredicted: false,
            l1_miss: false,
            l2_miss: false,
            l2_detected: false,
            pushes_ras: matches!(
                decoded.branch.map(|b| b.kind),
                Some(BranchKind::Call) | Some(BranchKind::Return)
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deps_resolve_to_absolute_seqs() {
        let d = DecodedInst::builder(InstClass::IntAlu, 0)
            .dest(RegClass::Int)
            .dep(3)
            .dep(10)
            .build();
        let i = DynInst::fetched(20, 1, &d, 5, 4);
        assert_eq!(i.deps, [17, 10]);
        assert_eq!(i.dispatch_eligible_at, 9);
    }

    #[test]
    fn deps_before_stream_start_are_dropped() {
        let d = DecodedInst::builder(InstClass::IntAlu, 0).dep(5).build();
        let i = DynInst::fetched(3, 1, &d, 0, 0);
        assert_eq!(
            i.deps,
            [NO_DEP, NO_DEP],
            "distance beyond seq 0 has no producer"
        );
    }

    #[test]
    fn stays_compact() {
        // The whole point of not embedding DecodedInst: window moves are
        // the simulator's dominant memory traffic.
        assert!(
            std::mem::size_of::<DynInst>() <= 88,
            "DynInst grew to {} bytes",
            std::mem::size_of::<DynInst>()
        );
    }
}
