//! Property-based tests of the simulator core: for arbitrary seeds,
//! benchmark pairs and run lengths, the incrementally-maintained resource
//! counters must match a from-scratch recomputation, and basic conservation
//! laws must hold.

use proptest::prelude::*;
use smt_sim::policy::RoundRobin;
use smt_sim::{SimConfig, Simulator};
use smt_workloads::spec;

fn benches() -> impl Strategy<Value = Vec<&'static str>> {
    let names = spec::names();
    proptest::collection::vec((0..names.len()).prop_map(move |i| names[i]), 1..4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The big one: counter consistency under arbitrary workloads/seeds.
    #[test]
    fn counters_never_drift(benches in benches(), seed in 0u64..500, chunks in 1usize..6) {
        let profiles: Vec<_> = benches.iter().map(|b| spec::profile(b).unwrap()).collect();
        let mut sim = Simulator::new(
            SimConfig::baseline(benches.len()),
            &profiles,
            RoundRobin::default(),
            seed,
        );
        for _ in 0..chunks {
            sim.run_cycles(1_500);
            sim.assert_consistent();
        }
    }

    /// Conservation: fetched = committed + squashed + still-in-flight, so
    /// fetched >= committed and fetched >= squashed.
    #[test]
    fn fetch_conservation(benches in benches(), seed in 0u64..500) {
        let profiles: Vec<_> = benches.iter().map(|b| spec::profile(b).unwrap()).collect();
        let mut sim = Simulator::new(
            SimConfig::baseline(benches.len()),
            &profiles,
            RoundRobin::default(),
            seed,
        );
        sim.run_cycles(8_000);
        let r = sim.result();
        for t in &r.threads {
            prop_assert!(t.fetched >= t.committed + t.squashed,
                "fetched {} < committed {} + squashed {}", t.fetched, t.committed, t.squashed);
        }
    }

    /// IPC can never exceed the commit width.
    #[test]
    fn ipc_bounded_by_width(seed in 0u64..200) {
        let profiles = [spec::profile("gzip").unwrap(), spec::profile("eon").unwrap()];
        let mut sim = Simulator::new(
            SimConfig::baseline(2),
            &profiles,
            RoundRobin::default(),
            seed,
        );
        sim.run_cycles(5_000);
        prop_assert!(sim.result().throughput() <= 8.0);
    }
}
