//! Stepped-vs-fast-forward equivalence: for randomized machine
//! configurations, workload mixes and seeds, running the simulator with
//! multi-cycle fast-forward (`run_cycles`) must produce *bit-identical*
//! output to the one-cycle-at-a-time reference loop
//! (`run_cycles_stepped`) — for every one of the nine canonical policies.
//!
//! This is the contract that makes fast-forward a pure performance
//! feature: `Policy::on_idle_cycles` replays per-cycle policy state
//! (RR rotation, DCRA activity decay, FLUSH++ pressure windows) and the
//! core replays per-cycle statistics (gated/blocked counters, MLP
//! samples, the commit round-robin origin) arithmetically, so nothing
//! observable may drift.

use proptest::prelude::*;
use smt_sim::policy::AnyPolicy;
use smt_sim::{SimConfig, SimResult, Simulator};
use smt_workloads::spec;

/// The nine canonical policies, freshly built (policies are stateful).
fn policies() -> Vec<AnyPolicy> {
    vec![
        smt_sim::policy::RoundRobin::default().into(),
        smt_policies::Icount.into(),
        smt_policies::Stall.into(),
        smt_policies::Flush.into(),
        smt_policies::FlushPlusPlus::default().into(),
        smt_policies::DataGating.into(),
        smt_policies::PredictiveDataGating::default().into(),
        smt_policies::StaticAllocation::new().into(),
        dcra::Dcra::default().into(),
    ]
}

fn benches() -> impl Strategy<Value = Vec<&'static str>> {
    let names = spec::names();
    proptest::collection::vec((0..names.len()).prop_map(move |i| names[i]), 1..5)
}

/// Everything a run can observe: final statistics, the clock, cache and
/// predictor counters.
fn digest(sim: &Simulator) -> (SimResult, u64, String) {
    (
        sim.result(),
        sim.now(),
        format!(
            "{:?} {:?}",
            sim.cache_stats_helper(),
            sim.predictor().stats()
        ),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The equivalence property, including a mid-run `reset_stats` (the
    /// warm-up/measure boundary every experiment uses).
    #[test]
    fn fast_forward_matches_stepped_for_all_policies(
        benches in benches(),
        cfg_seed in 0u64..1000,
        seed in 0u64..1000,
        warm in 200u64..1_200,
        measured in 1_000u64..4_000,
    ) {
        let profiles: Vec<_> = benches.iter().map(|b| spec::profile(b).unwrap()).collect();
        // Derive a config deterministically from cfg_seed via the strategy
        // space: reuse the same strategy machinery by indexing variants.
        let rob = [64u32, 128, 512][(cfg_seed % 3) as usize];
        let fq = [8u32, 16][((cfg_seed / 3) % 2) as usize];
        let iq = [24u32, 80][((cfg_seed / 6) % 2) as usize];
        let lat = [100u32, 300][((cfg_seed / 12) % 2) as usize];
        let mut cfg = SimConfig::baseline(benches.len());
        cfg.rob_entries = rob;
        cfg.fetch_queue = fq;
        cfg.iq_entries = iq;
        cfg.mem.memory_latency = lat;
        cfg.validate().expect("generated config must be valid");

        for i in 0..policies().len() {
            let (mut a, mut b) = (policies(), policies());
            let (pol_a, pol_b) = (a.swap_remove(i), b.swap_remove(i));
            let name = {
                use smt_sim::policy::Policy as _;
                pol_a.name().to_string()
            };
            let mut stepped = Simulator::new(cfg.clone(), &profiles, pol_a, seed);
            let mut fast = Simulator::new(cfg.clone(), &profiles, pol_b, seed);
            stepped.run_cycles_stepped(warm);
            fast.run_cycles(warm);
            stepped.reset_stats();
            fast.reset_stats();
            stepped.run_cycles_stepped(measured);
            fast.run_cycles(measured);
            prop_assert_eq!(
                digest(&stepped),
                digest(&fast),
                "fast-forward diverged from stepped core for {} \
                 (benches {:?}, cfg_seed {}, seed {})",
                name, benches, cfg_seed, seed
            );
        }
    }

    /// `run_until_committed` fast-forwards too; its stopping cycle and
    /// statistics must match a stepped reference loop.
    #[test]
    fn run_until_committed_matches_stepped(
        seed in 0u64..500,
        insts in 100u64..800,
    ) {
        let profiles = [
            spec::profile("mcf").unwrap(),
            spec::profile("art").unwrap(),
        ];
        let cfg = SimConfig::baseline(2);
        let policy = || AnyPolicy::from(smt_policies::Stall);
        let mut fast = Simulator::new(cfg.clone(), &profiles, policy(), seed);
        fast.run_until_committed(insts, 100_000);

        let mut stepped = Simulator::new(cfg, &profiles, policy(), seed);
        let limit = 100_000;
        while stepped.now() < limit
            && stepped.result().threads.iter().any(|t| t.committed < insts)
        {
            stepped.step();
        }
        prop_assert_eq!(digest(&stepped), digest(&fast));
    }
}
