//! Behavioural integration tests: each policy's *response action* must be
//! observable on a real simulation.

use smt_policies::{by_name, DataGating, Flush, Stall};
use smt_sim::policy::AnyPolicy;
use smt_sim::{SimConfig, SimResult, Simulator};
use smt_workloads::spec;

fn run(benches: &[&str], policy: impl Into<AnyPolicy>, cycles: u64) -> SimResult {
    let profiles: Vec<_> = benches
        .iter()
        .map(|b| spec::profile(b).expect("registry benchmark"))
        .collect();
    let mut sim = Simulator::new(SimConfig::baseline(benches.len()), &profiles, policy, 42);
    sim.prewarm(150_000);
    sim.run_cycles(10_000);
    sim.reset_stats();
    sim.run_cycles(cycles);
    sim.result()
}

#[test]
fn stall_gates_the_memory_thread() {
    // Under STALL, the memory-bound thread must accumulate gated cycles;
    // under ICOUNT it must not.
    let stall = run(&["art", "gzip"], Stall, 60_000);
    assert!(
        stall.threads[0].gated_cycles > 0,
        "art should be stalled on detected L2 misses"
    );
    let icount = run(&["art", "gzip"], by_name("ICOUNT").unwrap(), 60_000);
    assert_eq!(icount.threads[0].gated_cycles, 0);
}

#[test]
fn flush_squashes_the_memory_thread() {
    let flush = run(&["art", "gzip"], Flush, 60_000);
    assert!(
        flush.threads[0].squashed > flush.threads[0].mispredicts,
        "FLUSH must squash beyond branch mispredictions (squashed={}, mispredicts={})",
        flush.threads[0].squashed,
        flush.threads[0].mispredicts
    );
}

#[test]
fn dg_gates_harder_than_stall() {
    // DG reacts to every L1 miss, STALL only to L2 misses, so DG must gate
    // the memory thread at least as often.
    let dg = run(&["art", "gzip"], DataGating, 60_000);
    let stall = run(&["art", "gzip"], Stall, 60_000);
    assert!(
        dg.threads[0].gated_cycles > stall.threads[0].gated_cycles,
        "DG gated {} vs STALL {}",
        dg.threads[0].gated_cycles,
        stall.threads[0].gated_cycles
    );
}

#[test]
fn sra_limits_thread_resource_usage() {
    use smt_isa::{ResourceKind, ThreadId};
    let profiles = [
        spec::profile("art").unwrap(),
        spec::profile("swim").unwrap(),
    ];
    let mut sim = Simulator::new(
        SimConfig::baseline(2),
        &profiles,
        by_name("SRA").unwrap(),
        7,
    );
    sim.prewarm(100_000);
    for _ in 0..40_000 {
        sim.step();
        for t in 0..2 {
            let u = sim.thread_usage(ThreadId::new(t));
            // Even split of 80-entry queues at 2 threads = 40 each.
            for q in [
                ResourceKind::IntQueue,
                ResourceKind::FpQueue,
                ResourceKind::LsQueue,
            ] {
                assert!(
                    u[q] <= 40,
                    "thread {t} exceeded its static {q} partition: {}",
                    u[q]
                );
            }
        }
    }
}

#[test]
fn flush_increases_frontend_activity_on_mem_workloads() {
    let flush = run(&["swim", "art"], Flush, 60_000);
    let stall = run(&["swim", "art"], Stall, 60_000);
    let rate = |r: &SimResult| r.total_fetched() as f64 / r.total_committed().max(1) as f64;
    assert!(
        rate(&flush) > rate(&stall),
        "FLUSH {:.2} fetches/commit should exceed STALL {:.2}",
        rate(&flush),
        rate(&stall)
    );
}

#[test]
fn policies_disagree_on_fetch_distribution() {
    // Sanity: different policies must actually steer the machine
    // differently on a MIX workload.
    let a = run(&["art", "gzip"], by_name("ICOUNT").unwrap(), 40_000);
    let b = run(&["art", "gzip"], by_name("DG").unwrap(), 40_000);
    assert_ne!(a.threads[0].committed, b.threads[0].committed);
}
