//! STALL fetch policy (Tullsen & Brown, MICRO'01).

use crate::icount::icount_order_into;
use smt_isa::ThreadId;
use smt_policy_core::{CycleView, MissResponse, Policy};

/// ICOUNT + stall-on-L2-miss: when a thread is detected to have an
/// outstanding L2 miss, it stops fetching until the miss is serviced.
///
/// As the paper notes, the detection "already may be too late": by the time
/// the L2 miss is known (one L2 latency after the access), the thread has
/// kept fetching and may already hold many shared entries. STALL also
/// introduces resource *under-use*: the stalled thread's resources may not
/// be needed by anyone else.
///
/// # Examples
///
/// ```
/// use smt_policies::Stall;
/// use smt_policy_core::Policy;
///
/// assert_eq!(Stall::default().name(), "STALL");
/// ```
#[derive(Debug, Clone, Default)]
pub struct Stall;

impl Policy for Stall {
    fn name(&self) -> &str {
        "STALL"
    }

    fn fetch_order(&mut self, view: &CycleView, order: &mut Vec<ThreadId>) {
        icount_order_into(view, order);
    }

    fn fetch_gate(&mut self, t: ThreadId, view: &CycleView) -> bool {
        // Belt and braces: the simulator also stalls the thread via the
        // Stall response below, but gating on the pending counter keeps the
        // thread stopped while *any* detected L2 miss is outstanding.
        view.l2_pending(t) == 0
    }

    fn on_l2_miss_detected(&mut self, _t: ThreadId, _view: &CycleView) -> MissResponse {
        MissResponse::Stall
    }

    fn on_idle_cycles(&mut self, n: u64, _view: &CycleView) -> u64 {
        // Stateless per cycle: order and gate are pure functions of the
        // view (the `l2_pending` lane only moves on events, which end an
        // idle span).
        n
    }

    fn wants_fast_forward(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_isa::PerResource;
    use smt_policy_core::ThreadView;

    #[test]
    fn gates_thread_with_pending_l2_miss() {
        let mut p = Stall;
        let tv = ThreadView {
            l2_pending: 1,
            ..ThreadView::default()
        };
        let v = CycleView::new(0, PerResource::filled(80), &[tv, ThreadView::default()]);
        assert!(!p.fetch_gate(ThreadId::new(0), &v));
        assert!(p.fetch_gate(ThreadId::new(1), &v));
        assert_eq!(
            p.on_l2_miss_detected(ThreadId::new(0), &v),
            MissResponse::Stall
        );
    }
}
