//! Predictive Data Gating fetch policy (El-Moursy & Albonesi, HPCA'03).

use crate::icount::icount_order_into;
use fxhash::FxHashMap;
use smt_isa::{InstClass, PackedInst, ThreadId};
use smt_policy_core::{CycleView, Policy};

/// PDG stalls a thread as soon as a load *predicted* to miss the L1 is
/// fetched, instead of waiting for the miss to be detected (DG). The miss
/// predictor is a table of 2-bit saturating counters indexed by load PC,
/// trained on actual L1 outcomes at load completion.
///
/// As the paper notes (citing Yoaz et al.), cache misses are hard to
/// predict; mispredicted gates stall threads without cause and missed
/// predictions fall back to DG-like late gating.
///
/// # Examples
///
/// ```
/// use smt_policies::PredictiveDataGating;
/// use smt_policy_core::Policy;
///
/// assert_eq!(PredictiveDataGating::default().name(), "PDG");
/// ```
#[derive(Debug, Clone)]
pub struct PredictiveDataGating {
    /// 2-bit miss-confidence counters indexed by hashed load PC.
    table: Vec<u8>,
    /// Per-thread count of in-flight loads that were predicted to miss.
    predicted_inflight: Vec<u32>,
    /// Per-thread multiset of in-flight predicted-miss load PCs, to release
    /// the gate when they complete or are squashed. Touched on every load
    /// fetch/completion, hence the Fx-hashed map.
    inflight_pcs: Vec<FxHashMap<u64, u32>>,
}

impl Default for PredictiveDataGating {
    fn default() -> Self {
        PredictiveDataGating {
            table: vec![1; 4096],
            predicted_inflight: Vec::new(),
            inflight_pcs: Vec::new(),
        }
    }
}

impl PredictiveDataGating {
    fn slot(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.table.len() - 1)
    }

    fn predicts_miss(&self, pc: u64) -> bool {
        self.table[self.slot(pc)] >= 2
    }

    fn ensure(&mut self, n: usize) {
        if self.predicted_inflight.len() < n {
            self.predicted_inflight.resize(n, 0);
            self.inflight_pcs.resize(n, FxHashMap::default());
        }
    }

    fn release(&mut self, tid: usize, pc: u64) {
        if let Some(c) = self.inflight_pcs[tid].get_mut(&pc) {
            *c -= 1;
            if *c == 0 {
                self.inflight_pcs[tid].remove(&pc);
            }
            self.predicted_inflight[tid] -= 1;
        }
    }
}

impl Policy for PredictiveDataGating {
    fn name(&self) -> &str {
        "PDG"
    }

    fn fetch_order(&mut self, view: &CycleView, order: &mut Vec<ThreadId>) {
        icount_order_into(view, order);
    }

    fn fetch_gate(&mut self, t: ThreadId, view: &CycleView) -> bool {
        self.ensure(view.thread_count());
        // Gate on predicted misses (the predictive part) and on real
        // pending misses the predictor failed to anticipate (DG fallback).
        self.predicted_inflight[t.index()] == 0 && view.l1d_pending(t) == 0
    }

    fn on_fetch_inst(&mut self, t: ThreadId, inst: &PackedInst) {
        if inst.class() != InstClass::Load {
            return;
        }
        self.ensure(t.index() + 1);
        if self.predicts_miss(inst.pc) {
            self.predicted_inflight[t.index()] += 1;
            *self.inflight_pcs[t.index()].entry(inst.pc).or_insert(0) += 1;
        }
    }

    fn on_load_complete(&mut self, t: ThreadId, pc: u64, l1_missed: bool) {
        self.ensure(t.index() + 1);
        // Train the predictor with the actual outcome.
        let slot = self.slot(pc);
        let c = &mut self.table[slot];
        if l1_missed {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        self.release(t.index(), pc);
    }

    fn wants_squash_inst(&self) -> bool {
        true
    }

    fn on_idle_cycles(&mut self, n: u64, _view: &CycleView) -> u64 {
        // The predictor table and the in-flight multisets only move on
        // fetch, load completion and squash — none of which happen on an
        // idle cycle — so the gate decision is frozen for the whole span.
        n
    }

    fn wants_fast_forward(&self) -> bool {
        true
    }

    fn on_squash_inst(&mut self, t: ThreadId, inst: &PackedInst) {
        if inst.class() == InstClass::Load {
            self.ensure(t.index() + 1);
            self.release(t.index(), inst.pc);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_isa::{PerResource, RegClass};
    use smt_policy_core::ThreadView;

    fn load(pc: u64) -> PackedInst {
        let decoded = smt_isa::DecodedInst::builder(InstClass::Load, pc)
            .dest(RegClass::Int)
            .mem(0x1000, 8)
            .build();
        PackedInst::pack(&decoded, 0)
    }

    fn view(n: usize) -> CycleView {
        CycleView::new(0, PerResource::filled(80), &vec![ThreadView::default(); n])
    }

    #[test]
    fn trains_and_gates_on_predicted_miss() {
        let mut p = PredictiveDataGating::default();
        let t = ThreadId::new(0);
        let v = view(1);
        // Train: the load at 0x100 misses repeatedly.
        for _ in 0..3 {
            p.on_load_complete(t, 0x100, true);
        }
        assert!(p.predicts_miss(0x100));
        // Fetching it now gates the thread...
        p.on_fetch_inst(t, &load(0x100));
        assert!(!p.fetch_gate(t, &v));
        // ...until it completes.
        p.on_load_complete(t, 0x100, true);
        assert!(p.fetch_gate(t, &v));
    }

    #[test]
    fn hits_untrain_the_predictor() {
        let mut p = PredictiveDataGating::default();
        let t = ThreadId::new(0);
        for _ in 0..3 {
            p.on_load_complete(t, 0x40, true);
        }
        for _ in 0..3 {
            p.on_load_complete(t, 0x40, false);
        }
        assert!(!p.predicts_miss(0x40));
    }

    #[test]
    fn squash_releases_the_gate() {
        let mut p = PredictiveDataGating::default();
        let t = ThreadId::new(0);
        let v = view(1);
        for _ in 0..3 {
            p.on_load_complete(t, 0x80, true);
        }
        p.on_fetch_inst(t, &load(0x80));
        assert!(!p.fetch_gate(t, &v));
        p.on_squash_inst(t, &load(0x80));
        assert!(p.fetch_gate(t, &v));
    }

    #[test]
    fn unpredicted_loads_do_not_gate() {
        let mut p = PredictiveDataGating::default();
        let t = ThreadId::new(0);
        let v = view(1);
        p.on_fetch_inst(t, &load(0x200));
        assert!(p.fetch_gate(t, &v));
        // Completion of an untracked load must not underflow.
        p.on_load_complete(t, 0x200, false);
        assert!(p.fetch_gate(t, &v));
    }
}
