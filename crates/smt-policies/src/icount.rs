//! ICOUNT fetch policy (Tullsen et al., ISCA'96).

use smt_isa::ThreadId;
use smt_policy_core::{CycleView, Policy};

/// Appends the threads in ascending pre-issue instruction count to `out` —
/// the shared priority function of ICOUNT and every policy built on top of
/// it. Ties break toward lower thread ids (deterministic). Writing into a
/// caller-owned buffer keeps per-cycle ordering allocation-free.
pub fn icount_order_into(view: &CycleView, out: &mut Vec<ThreadId>) {
    // This runs every cycle for six of the nine policies, so the common
    // machine sizes (2–4 threads) use a fixed compare–exchange network on
    // `(icount, index)` keys instead of the generic sort. Keys are unique
    // (the index breaks ties), so the network's lack of stability cannot
    // be observed and the order matches `sort_by_key` exactly. The keys
    // come straight from the view's contiguous icount lane.
    let icounts = view.icounts();
    let n = icounts.len();
    let key = |i: usize| (icounts[i], i);
    match n {
        0 => {}
        1 => out.push(ThreadId::new(0)),
        2 => {
            let (a, b) = if key(0) <= key(1) { (0, 1) } else { (1, 0) };
            out.extend([ThreadId::new(a), ThreadId::new(b)]);
        }
        3 | 4 => {
            let mut k: [(u32, usize); 4] = [(0, 0); 4];
            for (i, slot) in k.iter_mut().enumerate().take(n) {
                *slot = key(i);
            }
            let cex = |k: &mut [(u32, usize); 4], a: usize, b: usize| {
                if k[a] > k[b] {
                    k.swap(a, b);
                }
            };
            if n == 3 {
                cex(&mut k, 0, 1);
                cex(&mut k, 1, 2);
                cex(&mut k, 0, 1);
            } else {
                cex(&mut k, 0, 1);
                cex(&mut k, 2, 3);
                cex(&mut k, 0, 2);
                cex(&mut k, 1, 3);
                cex(&mut k, 1, 2);
            }
            out.extend(k[..n].iter().map(|&(_, i)| ThreadId::new(i)));
        }
        _ => {
            let first = out.len();
            out.extend((0..n).map(ThreadId::new));
            out[first..].sort_by_key(|t| (icounts[t.index()], t.index()));
        }
    }
}

/// Allocating convenience wrapper around [`icount_order_into`].
pub fn icount_order(view: &CycleView) -> Vec<ThreadId> {
    let mut order = Vec::with_capacity(view.thread_count());
    icount_order_into(view, &mut order);
    order
}

/// The ICOUNT fetch policy: prioritise the threads with the fewest
/// instructions in the pre-issue stages.
///
/// ICOUNT gives excellent throughput for high-ILP threads but, as Section 2
/// of the paper explains, it does not notice that a thread blocked on an L2
/// miss stops making progress — its icount stops growing, so it keeps
/// receiving fetch slots and monopolises shared resources.
///
/// # Examples
///
/// ```
/// use smt_policies::Icount;
/// use smt_policy_core::Policy;
///
/// let p = Icount::default();
/// assert_eq!(p.name(), "ICOUNT");
/// ```
#[derive(Debug, Clone, Default)]
pub struct Icount;

impl Policy for Icount {
    fn name(&self) -> &str {
        "ICOUNT"
    }

    fn fetch_order(&mut self, view: &CycleView, order: &mut Vec<ThreadId>) {
        icount_order_into(view, order);
    }

    fn on_idle_cycles(&mut self, n: u64, _view: &CycleView) -> u64 {
        // Stateless per cycle: the ICOUNT order is a pure function of the
        // view, which cannot change while the machine is idle.
        n
    }

    fn wants_fast_forward(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_isa::PerResource;
    use smt_policy_core::ThreadView;

    fn view(icounts: &[u32]) -> CycleView {
        let threads: Vec<ThreadView> = icounts
            .iter()
            .map(|&c| ThreadView {
                icount: c,
                ..ThreadView::default()
            })
            .collect();
        CycleView::new(0, PerResource::filled(80), &threads)
    }

    #[test]
    fn orders_by_ascending_icount() {
        let v = view(&[10, 3, 7]);
        let order = icount_order(&v);
        let idx: Vec<usize> = order.iter().map(|t| t.index()).collect();
        assert_eq!(idx, vec![1, 2, 0]);
    }

    #[test]
    fn ties_break_deterministically() {
        let v = view(&[5, 5, 5]);
        let idx: Vec<usize> = icount_order(&v).iter().map(|t| t.index()).collect();
        assert_eq!(idx, vec![0, 1, 2]);
    }

    #[test]
    fn policy_exposes_order() {
        let mut p = Icount;
        let v = view(&[2, 1]);
        let mut order = Vec::new();
        p.fetch_order(&v, &mut order);
        assert_eq!(order[0].index(), 1);
    }

    #[test]
    fn into_variant_appends_after_existing_entries() {
        let v = view(&[4, 2, 9]);
        let mut out = vec![ThreadId::new(7)];
        icount_order_into(&v, &mut out);
        let idx: Vec<usize> = out.iter().map(|t| t.index()).collect();
        assert_eq!(idx, vec![7, 1, 0, 2], "pre-existing entries untouched");
    }
}
