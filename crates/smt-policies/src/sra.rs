//! Static resource allocation (SRA).

use crate::icount::icount_order_into;
use smt_isa::{PerResource, QueueKind, RegClass, ResourceKind, ThreadId};
use smt_policy_core::{CycleView, Policy};

/// Static resource allocation: every shared resource is split evenly among
/// the running threads and a thread may never exceed its `R/T` share
/// (the Pentium-4-style partitioning the paper compares against in
/// Section 5.1).
///
/// `StaticAllocation` can also enforce *custom* per-resource caps via
/// [`StaticAllocation::with_caps`], which the Figure-2 experiment uses to
/// give a single thread a chosen percentage of one resource.
///
/// # Examples
///
/// ```
/// use smt_policies::StaticAllocation;
/// use smt_policy_core::Policy;
///
/// assert_eq!(StaticAllocation::default().name(), "SRA");
/// ```
#[derive(Debug, Clone, Default)]
pub struct StaticAllocation {
    /// Explicit caps; when `None` for a resource, the even `R/T` split
    /// applies.
    caps: PerResource<Option<u32>>,
}

impl StaticAllocation {
    /// Even `R/T` partitioning (the paper's SRA).
    pub fn new() -> Self {
        StaticAllocation::default()
    }

    /// Partitioning with explicit per-resource caps (entries a thread may
    /// occupy). Resources left `None` fall back to the even split.
    pub fn with_caps(caps: PerResource<Option<u32>>) -> Self {
        StaticAllocation { caps }
    }

    /// The cap applied to each thread for `kind` under `view`.
    pub fn cap(&self, kind: ResourceKind, view: &CycleView) -> u32 {
        match self.caps[kind] {
            Some(c) => c,
            None => (view.totals[kind] / view.thread_count() as u32).max(1),
        }
    }
}

impl Policy for StaticAllocation {
    fn name(&self) -> &str {
        "SRA"
    }

    fn fetch_order(&mut self, view: &CycleView, order: &mut Vec<ThreadId>) {
        icount_order_into(view, order);
    }

    fn wants_dispatch_view(&self) -> bool {
        true
    }

    fn may_dispatch(
        &self,
        t: ThreadId,
        queue: QueueKind,
        dest: Option<RegClass>,
        view: &CycleView,
    ) -> bool {
        let usage = view.usage(t);
        let qr = queue.resource();
        if usage[qr] >= self.cap(qr, view) {
            return false;
        }
        if let Some(d) = dest {
            let rr = d.resource();
            if usage[rr] >= self.cap(rr, view) {
                return false;
            }
        }
        true
    }

    fn fetch_gate(&mut self, t: ThreadId, view: &CycleView) -> bool {
        // Stop fetching once the thread is already at a partition limit;
        // dispatch would refuse the instructions anyway, so fetching more
        // only fills the fetch queue.
        let usage = view.usage(t);
        ResourceKind::ALL
            .iter()
            .any(|&r| usage[r] < self.cap(r, view))
    }

    fn on_idle_cycles(&mut self, n: u64, _view: &CycleView) -> u64 {
        // The caps are static and both gates are pure functions of the
        // usage lanes, which cannot move while the machine is idle.
        n
    }

    fn wants_fast_forward(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_policy_core::ThreadView;

    fn view(n: usize, totals: u32) -> CycleView {
        CycleView::new(
            0,
            PerResource::filled(totals),
            &vec![ThreadView::default(); n],
        )
    }

    /// Rebuilds `view`'s thread 0 with the given usage overrides.
    fn with_usage(view: &mut CycleView, usages: &[(ResourceKind, u32)]) {
        let mut tv = ThreadView::default();
        for &(k, v) in usages {
            tv.usage[k] = v;
        }
        view.set_thread(0, &tv);
    }

    #[test]
    fn even_split_cap() {
        let p = StaticAllocation::new();
        let v = view(4, 80);
        assert_eq!(p.cap(ResourceKind::IntQueue, &v), 20);
        let v2 = view(3, 80);
        assert_eq!(p.cap(ResourceKind::IntQueue, &v2), 26);
    }

    #[test]
    fn dispatch_blocked_at_cap() {
        let p = StaticAllocation::new();
        let mut v = view(2, 80); // cap 40
        with_usage(&mut v, &[(ResourceKind::IntQueue, 40)]);
        assert!(!p.may_dispatch(ThreadId::new(0), QueueKind::Int, None, &v));
        assert!(p.may_dispatch(ThreadId::new(1), QueueKind::Int, None, &v));
        // A different queue is still allowed.
        assert!(p.may_dispatch(ThreadId::new(0), QueueKind::Fp, None, &v));
    }

    #[test]
    fn register_cap_checked_independently() {
        let p = StaticAllocation::new();
        let mut v = view(2, 80);
        with_usage(&mut v, &[(ResourceKind::IntRegs, 40)]);
        assert!(!p.may_dispatch(ThreadId::new(0), QueueKind::Int, Some(RegClass::Int), &v));
        assert!(p.may_dispatch(ThreadId::new(0), QueueKind::Int, None, &v));
    }

    #[test]
    fn custom_caps_override_even_split() {
        let mut caps = PerResource::<Option<u32>>::default();
        caps[ResourceKind::LsQueue] = Some(10);
        let p = StaticAllocation::with_caps(caps);
        let v = view(1, 80);
        assert_eq!(p.cap(ResourceKind::LsQueue, &v), 10);
        assert_eq!(p.cap(ResourceKind::IntQueue, &v), 80);
    }

    #[test]
    fn fetch_gate_closes_only_when_every_resource_full() {
        let mut p = StaticAllocation::new();
        let mut v = view(2, 80);
        let full: Vec<_> = ResourceKind::ALL.iter().map(|&r| (r, 40)).collect();
        with_usage(&mut v, &full);
        assert!(!p.fetch_gate(ThreadId::new(0), &v));
        let mut nearly = full;
        nearly.retain(|&(r, _)| r != ResourceKind::FpQueue);
        with_usage(&mut v, &nearly);
        assert!(p.fetch_gate(ThreadId::new(0), &v));
    }
}
