//! Data Gating fetch policy (El-Moursy & Albonesi, HPCA'03).

use crate::icount::icount_order_into;
use smt_isa::ThreadId;
use smt_policy_core::{CycleView, Policy};

/// ICOUNT + stall-on-L1-data-miss: a thread with any pending L1 data miss
/// is fetch-gated until all its misses are serviced.
///
/// The paper's criticism (Section 2): fewer than half of L1 misses turn
/// into L2 misses for memory-bounded threads, so gating on *every* L1 miss
/// is too severe — the thread is stopped even when the data arrives from
/// the L2 in ~20 cycles and no resource abuse was imminent.
///
/// # Examples
///
/// ```
/// use smt_policies::DataGating;
/// use smt_policy_core::Policy;
///
/// assert_eq!(DataGating::default().name(), "DG");
/// ```
#[derive(Debug, Clone, Default)]
pub struct DataGating;

impl Policy for DataGating {
    fn name(&self) -> &str {
        "DG"
    }

    fn fetch_order(&mut self, view: &CycleView, order: &mut Vec<ThreadId>) {
        icount_order_into(view, order);
    }

    fn fetch_gate(&mut self, t: ThreadId, view: &CycleView) -> bool {
        view.l1d_pending(t) == 0
    }

    fn on_idle_cycles(&mut self, n: u64, _view: &CycleView) -> u64 {
        // Stateless per cycle: the gate reads the `l1d_pending` lane,
        // which only moves on events.
        n
    }

    fn wants_fast_forward(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_isa::PerResource;
    use smt_policy_core::ThreadView;

    #[test]
    fn gates_on_any_pending_l1_miss() {
        let mut p = DataGating;
        let a = ThreadView {
            l1d_pending: 2,
            ..ThreadView::default()
        };
        let v = CycleView::new(0, PerResource::filled(80), &[a, ThreadView::default()]);
        assert!(!p.fetch_gate(ThreadId::new(0), &v));
        assert!(p.fetch_gate(ThreadId::new(1), &v));
    }
}
