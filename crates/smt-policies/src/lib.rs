//! The paper's baseline SMT fetch and allocation policies.
//!
//! Every policy the evaluation compares DCRA against (Sections 2 and 5):
//!
//! | Policy | Kind | Input information | Response action |
//! |--------|------|-------------------|-----------------|
//! | [`Icount`] | fetch | pre-issue instruction counts | fetch priority |
//! | [`Stall`] | fetch | detected L2 misses | fetch stall |
//! | [`Flush`] | fetch | detected L2 misses | squash + stall |
//! | [`FlushPlusPlus`] | fetch | L2 miss *rates* | STALL↔FLUSH switch |
//! | [`DataGating`] | fetch | pending L1 data misses | fetch stall |
//! | [`PredictiveDataGating`] | fetch | *predicted* L1 misses | fetch stall |
//! | [`StaticAllocation`] | allocation | per-thread usage counters | hard partition |
//!
//! (`ROUND-ROBIN` lives in [`smt_policy_core::RoundRobin`]; the paper's
//! contribution, DCRA, lives in the `dcra` crate.)
//!
//! # Examples
//!
//! ```
//! use smt_policies::Icount;
//! use smt_sim::{SimConfig, Simulator};
//! use smt_workloads::spec;
//!
//! let profiles = [spec::profile("gzip").unwrap(), spec::profile("twolf").unwrap()];
//! let mut sim = Simulator::new(SimConfig::baseline(2), &profiles,
//!                              Icount, 1);
//! sim.run_cycles(5_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dg;
mod flush;
mod flushpp;
mod icount;
mod pdg;
mod sra;
mod stall;

pub use dg::DataGating;
pub use flush::Flush;
pub use flushpp::FlushPlusPlus;
pub use icount::{icount_order, icount_order_into, Icount};
pub use pdg::PredictiveDataGating;
pub use sra::StaticAllocation;
pub use stall::Stall;

use smt_policy_core::Policy;

/// Builds a boxed policy by its paper name (`"RR"`, `"ICOUNT"`, `"STALL"`,
/// `"FLUSH"`, `"FLUSH++"`, `"DG"`, `"PDG"`, `"SRA"`). Returns `None` for
/// unknown names ("DCRA" is constructed from the `dcra` crate).
pub fn by_name(name: &str) -> Option<Box<dyn Policy>> {
    Some(match name {
        "RR" => Box::new(smt_policy_core::RoundRobin::default()),
        "ICOUNT" => Box::new(Icount),
        "STALL" => Box::new(Stall),
        "FLUSH" => Box::new(Flush),
        "FLUSH++" => Box::new(FlushPlusPlus::default()),
        "DG" => Box::new(DataGating),
        "PDG" => Box::new(PredictiveDataGating::default()),
        "SRA" => Box::new(StaticAllocation::default()),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn by_name_builds_each_policy() {
        for n in [
            "RR", "ICOUNT", "STALL", "FLUSH", "FLUSH++", "DG", "PDG", "SRA",
        ] {
            let p = by_name(n).unwrap_or_else(|| panic!("missing {n}"));
            assert_eq!(p.name(), n);
        }
        assert!(by_name("NOPE").is_none());
    }
}
