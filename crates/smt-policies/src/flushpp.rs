//! FLUSH++ fetch policy (Cazorla et al., ISHPC'03).

use crate::icount::icount_order_into;
use smt_isa::ThreadId;
use smt_policy_core::{CycleView, MissResponse, Policy};

/// FLUSH++ switches between STALL and FLUSH based on the cache behaviour of
/// the running threads:
///
/// * **low pressure** (few threads with a high L2 miss rate) — STALL is
///   enough: the stalled thread's resources are not badly needed;
/// * **high pressure** (several memory-bounded threads) — FLUSH frees the
///   resources that the other missing threads do need.
///
/// The pressure signal is the number of threads whose running L2 miss rate
/// (L2 misses per load, over a sliding window) exceeds
/// [`FlushPlusPlus::MEM_THRESHOLD`] — the same "threads with high L2 miss
/// rate" criterion the paper uses to describe workloads.
///
/// # Examples
///
/// ```
/// use smt_policies::FlushPlusPlus;
/// use smt_policy_core::Policy;
///
/// assert_eq!(FlushPlusPlus::default().name(), "FLUSH++");
/// ```
#[derive(Debug, Clone, Default)]
pub struct FlushPlusPlus {
    /// Last-window snapshot of (loads, l2_misses) per thread.
    window_base: Vec<(u64, u64)>,
    /// Miss rate per thread over the last complete window.
    rates: Vec<f64>,
    /// Number of memory-bounded threads, memoized when `rates` roll over —
    /// the classification inputs only change at window boundaries, so the
    /// per-miss-event pressure query is a cached read instead of a scan.
    pressure: usize,
    last_window: u64,
}

impl FlushPlusPlus {
    /// L2 misses per load above which a thread counts as memory-bounded
    /// (mirrors Table 3's 1% miss-rate criterion, scaled to per-load).
    pub const MEM_THRESHOLD: f64 = 0.01;
    /// Number of memory-bounded threads at which resource pressure is
    /// considered high and FLUSH is preferred over STALL.
    pub const PRESSURE_THRESHOLD: usize = 2;
    /// Re-evaluation period in cycles.
    pub const WINDOW: u64 = 4096;

    /// Number of threads currently classified as memory-bounded (cached at
    /// the last window rollover).
    fn mem_threads(&self) -> usize {
        self.pressure
    }

    /// (Re)sizes the per-thread window state for `n` threads if needed.
    fn ensure(&mut self, n: usize) {
        if self.window_base.len() != n {
            self.window_base = vec![(0, 0); n];
            self.rates = vec![0.0; n];
            // The memoized pressure count mirrors `rates`; reset it with
            // them, or a stale count would answer miss responses until the
            // next window rollover.
            self.pressure = 0;
        }
    }

    /// One window rollover at cycle `at`: recompute the per-thread miss
    /// rates from the counter deltas since the previous rollover and
    /// memoize the pressure count. Shared by the per-cycle path
    /// (`begin_cycle`) and the idle-cycle replay.
    fn roll_window(&mut self, at: u64, view: &CycleView) {
        self.last_window = at;
        let n = view.thread_count();
        let (all_loads, all_misses) = (view.load_counts(), view.l2_miss_counts());
        for i in 0..n {
            let (loads0, misses0) = self.window_base[i];
            // saturating: the simulator may reset its statistics
            // between windows (end of warm-up), which rewinds the
            // absolute counters.
            let loads = all_loads[i].saturating_sub(loads0);
            let misses = all_misses[i].saturating_sub(misses0);
            self.rates[i] = if loads == 0 {
                0.0
            } else {
                misses as f64 / loads as f64
            };
            self.window_base[i] = (all_loads[i], all_misses[i]);
        }
        self.pressure = self
            .rates
            .iter()
            .filter(|&&r| r > Self::MEM_THRESHOLD)
            .count();
    }
}

impl Policy for FlushPlusPlus {
    fn name(&self) -> &str {
        "FLUSH++"
    }

    fn begin_cycle(&mut self, view: &CycleView) {
        self.ensure(view.thread_count());
        if view.now >= self.last_window + Self::WINDOW {
            self.roll_window(view.now, view);
        }
    }

    fn fetch_order(&mut self, view: &CycleView, order: &mut Vec<ThreadId>) {
        icount_order_into(view, order);
    }

    fn fetch_gate(&mut self, t: ThreadId, view: &CycleView) -> bool {
        view.l2_pending(t) == 0
    }

    fn wants_progress_counters(&self) -> bool {
        true // the pressure windows read loads/l2_misses
    }

    fn on_l2_miss_detected(&mut self, _t: ThreadId, _view: &CycleView) -> MissResponse {
        if self.mem_threads() >= Self::PRESSURE_THRESHOLD {
            MissResponse::Flush
        } else {
            MissResponse::Stall
        }
    }

    fn on_idle_cycles(&mut self, n: u64, view: &CycleView) -> u64 {
        // Gating reads the (event-driven, hence frozen) `l2_pending` lane;
        // the only per-cycle state is the pressure window. Rollovers that
        // would have happened inside the span are replayed: the first one
        // sees the real counter deltas accumulated since the last rollover
        // (identical to what `begin_cycle` would compute at that cycle);
        // later ones see zero deltas — the counters cannot move while the
        // machine is idle — so every rate collapses to 0 and the pressure
        // to "no memory-bounded threads".
        self.ensure(view.thread_count());
        let (start, end) = (view.now, view.now + n); // skipped span, exclusive end
        let first = (self.last_window + Self::WINDOW).max(start);
        if first < end {
            self.roll_window(first, view);
            let later = (end - 1 - first) / Self::WINDOW;
            if later > 0 {
                self.last_window += later * Self::WINDOW;
                for r in &mut self.rates {
                    *r = 0.0;
                }
                self.pressure = 0;
                // `window_base` already holds the span's (frozen) counters
                // from the first rollover.
            }
        }
        n
    }

    fn wants_fast_forward(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_isa::PerResource;
    use smt_policy_core::ThreadView;

    fn view_with(loads: &[(u64, u64)], now: u64) -> CycleView {
        let threads: Vec<ThreadView> = loads
            .iter()
            .map(|&(l, m)| ThreadView {
                loads: l,
                l2_misses: m,
                ..ThreadView::default()
            })
            .collect();
        CycleView::new(now, PerResource::filled(80), &threads)
    }

    #[test]
    fn low_pressure_stalls_high_pressure_flushes() {
        let mut p = FlushPlusPlus::default();
        // Window 1: one memory-bounded thread -> STALL.
        p.begin_cycle(&view_with(&[(0, 0), (0, 0)], 0));
        p.begin_cycle(&view_with(&[(1000, 100), (1000, 0)], FlushPlusPlus::WINDOW));
        let v = view_with(&[(1000, 100), (1000, 0)], FlushPlusPlus::WINDOW);
        assert_eq!(
            p.on_l2_miss_detected(ThreadId::new(0), &v),
            MissResponse::Stall
        );
        // Window 2: both threads memory-bounded -> FLUSH.
        p.begin_cycle(&view_with(
            &[(2000, 300), (2000, 150)],
            2 * FlushPlusPlus::WINDOW,
        ));
        assert_eq!(
            p.on_l2_miss_detected(ThreadId::new(0), &v),
            MissResponse::Flush
        );
    }

    #[test]
    fn idle_replay_matches_stepped_windows() {
        // Replaying k idle cycles must leave the window state exactly
        // where k stepped `begin_cycle` calls (over a frozen view) would.
        // Exercise spans that contain zero, one and several rollovers, and
        // spans that start mid-window.
        let counters = [(1000u64, 100u64), (1000, 0)];
        for warm in [0u64, 1, FlushPlusPlus::WINDOW - 1] {
            for span in [
                1u64,
                2,
                FlushPlusPlus::WINDOW,
                3 * FlushPlusPlus::WINDOW + 7,
            ] {
                let mut stepped = FlushPlusPlus::default();
                let mut jumped = FlushPlusPlus::default();
                for t in 0..warm {
                    stepped.begin_cycle(&view_with(&counters, t));
                    jumped.begin_cycle(&view_with(&counters, t));
                }
                for t in warm..warm + span {
                    stepped.begin_cycle(&view_with(&counters, t));
                }
                assert_eq!(
                    jumped.on_idle_cycles(span, &view_with(&counters, warm)),
                    span
                );
                assert_eq!(
                    (stepped.last_window, stepped.pressure, &stepped.rates),
                    (jumped.last_window, jumped.pressure, &jumped.rates),
                    "window state drifted (warm={warm}, span={span})"
                );
                assert_eq!(stepped.window_base, jumped.window_base);
            }
        }
    }

    #[test]
    fn zero_loads_window_counts_as_ilp() {
        let mut p = FlushPlusPlus::default();
        p.begin_cycle(&view_with(&[(0, 0)], 0));
        p.begin_cycle(&view_with(&[(0, 0)], FlushPlusPlus::WINDOW));
        assert_eq!(p.mem_threads(), 0);
    }
}
