//! FLUSH fetch policy (Tullsen & Brown, MICRO'01).

use crate::icount::icount_order_into;
use smt_isa::ThreadId;
use smt_policy_core::{CycleView, MissResponse, Policy};

/// ICOUNT + flush-on-L2-miss: when a thread's L2 miss is detected, every
/// instruction younger than the missing load is squashed, releasing all the
/// shared resources it held, and the thread stalls until the miss returns.
///
/// This corrects STALL's late detection, at the cost of a large increase in
/// front-end activity: the squashed instructions must be fetched, decoded
/// and renamed again (the paper measures ~2× front-end work vs DCRA).
///
/// # Examples
///
/// ```
/// use smt_policies::Flush;
/// use smt_policy_core::Policy;
///
/// assert_eq!(Flush::default().name(), "FLUSH");
/// ```
#[derive(Debug, Clone, Default)]
pub struct Flush;

impl Policy for Flush {
    fn name(&self) -> &str {
        "FLUSH"
    }

    fn fetch_order(&mut self, view: &CycleView, order: &mut Vec<ThreadId>) {
        icount_order_into(view, order);
    }

    fn fetch_gate(&mut self, t: ThreadId, view: &CycleView) -> bool {
        view.l2_pending(t) == 0
    }

    fn on_l2_miss_detected(&mut self, _t: ThreadId, _view: &CycleView) -> MissResponse {
        MissResponse::Flush
    }

    fn on_idle_cycles(&mut self, n: u64, _view: &CycleView) -> u64 {
        // Stateless per cycle, like STALL.
        n
    }

    fn wants_fast_forward(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_isa::PerResource;
    use smt_policy_core::ThreadView;

    #[test]
    fn responds_with_flush() {
        let mut p = Flush;
        let v = CycleView::new(0, PerResource::filled(80), &[ThreadView::default()]);
        assert_eq!(
            p.on_l2_miss_detected(ThreadId::new(0), &v),
            MissResponse::Flush
        );
    }
}
