//! `lint-allow.toml`: the justified escape hatch.
//!
//! Every suppression is an explicit checked-in entry carrying a
//! non-empty justification — the review surface for "this panic/clock is
//! fine" is the allowlist diff, not a scattering of inline comments.
//! Entries that stop matching anything become findings themselves
//! (`ALLOW-STALE-001`), so the file can only shrink when the code gets
//! cleaner, never rot.

use crate::config::parse_sections;
use crate::rules::Finding;

/// Finding ID for an allowlist entry that matched nothing.
pub const ALLOW_STALE: &str = "ALLOW-STALE-001";

/// One `[[allow]]` entry.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Rule ID the entry suppresses, e.g. `PANIC-EXPECT-002`.
    pub rule: String,
    /// Repo-relative file the findings live in.
    pub file: String,
    /// Substring the *raw* source line must contain; empty matches any
    /// line of `file` (whole-file waiver — use sparingly).
    pub pattern: String,
    /// Why the violation is sound. Required, non-empty.
    pub justification: String,
    /// 1-based line of the entry in `lint-allow.toml`, for stale reports.
    pub line: usize,
}

/// The parsed allowlist.
#[derive(Debug, Default)]
pub struct AllowList {
    /// Entries in file order.
    pub entries: Vec<AllowEntry>,
}

impl AllowList {
    /// Parses `lint-allow.toml` text. Entries without a justification are
    /// a parse error: the file's whole point is the recorded "why".
    pub fn parse(text: &str) -> Result<AllowList, String> {
        let mut entries = Vec::new();
        // Track entry line numbers: re-find each [[allow]] header.
        let mut header_lines = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            if raw.trim().starts_with("[[allow]]") {
                header_lines.push(idx + 1);
            }
        }
        let sections = parse_sections(text)?;
        for (nth, section) in sections.into_iter().enumerate() {
            if section.name != "allow" || !section.array {
                return Err(format!(
                    "lint-allow.toml only holds [[allow]] entries, found [{}]",
                    section.name
                ));
            }
            let line = header_lines.get(nth).copied().unwrap_or(0);
            let mut rule = None;
            let mut file = None;
            let mut pattern = String::new();
            let mut justification = String::new();
            for (k, v) in &section.pairs {
                let s = v.as_str_lossy();
                match k.as_str() {
                    "rule" => rule = Some(s),
                    "file" => file = Some(s),
                    "pattern" => pattern = s,
                    "justification" => justification = s,
                    other => return Err(format!("[[allow]] (line {line}): unknown key `{other}`")),
                }
            }
            let rule = rule.ok_or_else(|| format!("[[allow]] (line {line}) is missing `rule`"))?;
            let file = file.ok_or_else(|| format!("[[allow]] (line {line}) is missing `file`"))?;
            if justification.trim().is_empty() {
                return Err(format!(
                    "[[allow]] (line {line}) for {rule} in {file} has no justification — \
                     every suppression must say why it is sound"
                ));
            }
            entries.push(AllowEntry {
                rule,
                file,
                pattern,
                justification,
                line,
            });
        }
        Ok(AllowList { entries })
    }

    /// Splits `findings` into kept ones and a suppressed count, and
    /// appends an `ALLOW-STALE-001` finding for every entry that matched
    /// nothing.
    pub fn apply(&self, findings: Vec<Finding>, allow_file: &str) -> (Vec<Finding>, usize) {
        let mut hits = vec![0usize; self.entries.len()];
        let mut kept = Vec::with_capacity(findings.len());
        let mut suppressed = 0;
        for f in findings {
            let matched = self.entries.iter().enumerate().find(|(_, e)| {
                e.rule == f.rule
                    && e.file == f.file
                    && (e.pattern.is_empty() || f.excerpt.contains(&e.pattern))
            });
            match matched {
                Some((i, _)) => {
                    hits[i] += 1;
                    suppressed += 1;
                }
                None => kept.push(f),
            }
        }
        for (entry, n) in self.entries.iter().zip(&hits) {
            if *n == 0 {
                kept.push(Finding {
                    rule: ALLOW_STALE,
                    file: allow_file.to_owned(),
                    line: entry.line,
                    excerpt: format!(
                        "{} in {} (pattern `{}`)",
                        entry.rule, entry.file, entry.pattern
                    ),
                    message: "stale allowlist entry: it no longer matches any finding — \
                              delete it so the escape hatch stays minimal"
                        .into(),
                });
            }
        }
        (kept, suppressed)
    }
}

impl crate::config::Value {
    fn as_str_lossy(&self) -> String {
        match self {
            crate::config::Value::Str(s) => s.clone(),
            crate::config::Value::Int(n) => n.to_string(),
            crate::config::Value::List(v) => v.join(","),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, file: &str, excerpt: &str) -> Finding {
        Finding {
            rule,
            file: file.into(),
            line: 1,
            excerpt: excerpt.into(),
            message: String::new(),
        }
    }

    #[test]
    fn suppresses_matching_findings_only() {
        let allow = AllowList::parse(
            "[[allow]]\nrule = \"PANIC-EXPECT-002\"\nfile = \"a.rs\"\npattern = \"covered every spec\"\njustification = \"structural invariant\"\n",
        )
        .expect("parses");
        let fs = vec![
            finding(
                "PANIC-EXPECT-002",
                "a.rs",
                "slot.expect(\"covered every spec\")",
            ),
            finding("PANIC-EXPECT-002", "a.rs", "other.expect(\"nope\")"),
        ];
        let (kept, suppressed) = allow.apply(fs, "lint-allow.toml");
        assert_eq!(suppressed, 1);
        assert_eq!(kept.len(), 1);
        assert!(kept[0].excerpt.contains("nope"));
    }

    #[test]
    fn stale_entries_become_findings() {
        let allow = AllowList::parse(
            "[[allow]]\nrule = \"DET-TIME-002\"\nfile = \"gone.rs\"\njustification = \"was real once\"\n",
        )
        .expect("parses");
        let (kept, suppressed) = allow.apply(Vec::new(), "lint-allow.toml");
        assert_eq!(suppressed, 0);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].rule, ALLOW_STALE);
        assert_eq!(kept[0].line, 1);
    }

    #[test]
    fn missing_justification_is_a_parse_error() {
        let err = AllowList::parse("[[allow]]\nrule = \"PANIC-UNWRAP-001\"\nfile = \"a.rs\"\n")
            .expect_err("must fail");
        assert!(err.contains("justification"));
    }
}
