//! `smt-lint`: workspace-local static analysis for the invariants the
//! test suite can only check dynamically.
//!
//! Every headline claim this reproduction makes — bit-identical goldens
//! across nine policies, worker-count-invariant scenario manifests,
//! replay-equals-regenerate trace stores — rests on two properties:
//! *determinism* (simulated state derives only from seed + config) and
//! *panic-freedom* (the experiment engine surfaces typed `RunError`s,
//! never aborts a worker). Tests enforce those properties only on the
//! paths they happen to execute; this crate enforces them on every line,
//! before anything runs, and still works when the tree doesn't compile.
//!
//! Three rule groups (see [`rules`]) are scoped per crate by `lint.toml`
//! ([`config`]); violations are suppressed only through the justified
//! allowlist `lint-allow.toml` ([`allowlist`]); and the [`mirror`] module
//! statically cross-checks the `smt-sim/knobs.rs` constants against
//! their `smt-workloads` mirrors plus the ≤16-byte `PackedInst` layout
//! pin. Run it with `cargo run -p smt-lint`; see the "Invariants &
//! static analysis" section of ARCHITECTURE.md for the rule catalogue.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allowlist;
pub mod config;
pub mod mirror;
pub mod rules;
pub mod scrub;

use crate::allowlist::AllowList;
use crate::config::LintConfig;
use crate::rules::Finding;
use std::path::{Path, PathBuf};

/// Result of a full lint run.
#[derive(Debug)]
pub struct Report {
    /// Surviving findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Findings suppressed by allowlist entries.
    pub suppressed: usize,
}

/// Directories never walked regardless of config.
const ALWAYS_EXCLUDED: &[&str] = &["target", ".git"];

/// Path components that mark a file as test-only for rule purposes:
/// integration tests, benches, and examples may unwrap and clock freely.
const TEST_SCOPE_DIRS: &[&str] = &["tests", "benches", "examples"];

/// Walks `root` and returns repo-relative (forward-slash) paths of every
/// `.rs` file outside the exclusions, sorted for deterministic output.
pub fn discover_files(root: &Path, cfg: &LintConfig) -> std::io::Result<Vec<String>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let rel = rel_path(root, &path);
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if entry.file_type()?.is_dir() {
                if ALWAYS_EXCLUDED.contains(&name.as_ref()) || name.starts_with('.') {
                    continue;
                }
                if cfg.exclude.contains(&rel) {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") && !cfg.exclude.contains(&rel) {
                out.push(rel);
            }
        }
    }
    out.sort();
    Ok(out)
}

fn rel_path(root: &Path, path: &Path) -> String {
    let rel: PathBuf = path.strip_prefix(root).unwrap_or(path).to_path_buf();
    let parts: Vec<String> = rel
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    parts.join("/")
}

/// `src/lib.rs`, `src/main.rs`, or `src/bin/*.rs` — the files the
/// `UNSAFE-FORBID-002` crate-root rule applies to.
fn is_crate_root(rel: &str) -> bool {
    let parts: Vec<&str> = rel.split('/').collect();
    match parts.as_slice() {
        [.., "src", "lib.rs"] | [.., "src", "main.rs"] => true,
        [.., "src", "bin", f] => f.ends_with(".rs"),
        _ => false,
    }
}

/// A file whose whole content is test scope (integration tests, benches,
/// examples, and anything under a `fixtures` directory).
fn is_test_scope(rel: &str) -> bool {
    rel.split('/')
        .any(|part| TEST_SCOPE_DIRS.contains(&part) || part == "fixtures")
}

/// Runs the full lint: file rules, allowlist application, mirror pins,
/// and layout pins.
pub fn run(root: &Path, cfg: &LintConfig, allow: &AllowList) -> std::io::Result<Report> {
    let files = discover_files(root, cfg)?;
    let mut findings = Vec::new();
    for rel in &files {
        if is_test_scope(rel) {
            continue;
        }
        let groups = cfg.groups_for(rel);
        if groups.is_empty() {
            continue;
        }
        let mut rule_ids: Vec<&'static str> = Vec::new();
        for g in groups {
            if let Some(rs) = rules::group_rules(g) {
                rule_ids.extend_from_slice(rs);
            }
        }
        let text = std::fs::read_to_string(root.join(rel))?;
        let src = scrub::scrub(&text);
        findings.extend(rules::check_file(rel, &src, &rule_ids, is_crate_root(rel)));
    }
    for pin in &cfg.mirrors {
        findings.extend(mirror::check_mirror(root, pin));
    }
    for pin in &cfg.layouts {
        findings.extend(mirror::check_layout(root, pin));
    }
    let (mut findings, suppressed) = allow.apply(findings, "lint-allow.toml");
    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    Ok(Report {
        findings,
        files_scanned: files.len(),
        suppressed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_root_detection() {
        assert!(is_crate_root("crates/smt-sim/src/lib.rs"));
        assert!(is_crate_root("src/lib.rs"));
        assert!(is_crate_root("crates/smt-experiments/src/bin/table3.rs"));
        assert!(!is_crate_root("crates/smt-sim/src/core/fetch.rs"));
        assert!(!is_crate_root("examples/quickstart.rs"));
    }

    #[test]
    fn test_scope_detection() {
        assert!(is_test_scope("tests/chaos_soak.rs"));
        assert!(is_test_scope("crates/dcra/tests/properties.rs"));
        assert!(is_test_scope("crates/bench/benches/components.rs"));
        assert!(is_test_scope("examples/quickstart.rs"));
        assert!(!is_test_scope("crates/smt-sim/src/core/fetch.rs"));
    }
}
