//! The rule set: line-oriented matchers over scrubbed source.
//!
//! Each rule has a stable ID (`GROUP-NAME-NNN`) that findings, allowlist
//! entries, fixtures, and ARCHITECTURE.md all reference. Rules belong to
//! one of three groups — `determinism`, `panic`, `unsafe` — and
//! `lint.toml` decides which groups run in which crate.
//!
//! These are deliberately *syntactic* checks. They trade a small
//! false-positive rate (paid off through the justified allowlist) for
//! zero build-time cost and total independence from the compiler: the
//! lint still works when the tree doesn't compile, which is exactly when
//! a refactor is mid-flight and most likely to smuggle in a stray
//! `unwrap`.

use crate::scrub::ScrubbedFile;

/// One rule violation at a specific source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule ID, e.g. `PANIC-UNWRAP-001`.
    pub rule: &'static str,
    /// Repo-relative path with forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The raw source line (trimmed) the rule fired on.
    pub excerpt: String,
    /// What the rule protects and what to do instead.
    pub message: String,
}

/// Determinism: no hash containers with the std `RandomState` hasher.
pub const DET_HASH: &str = "DET-HASH-001";
/// Determinism: no ambient wall-clock or entropy sources.
pub const DET_TIME: &str = "DET-TIME-002";
/// Determinism: no float `==` / `!=` against float literals.
pub const DET_FLOAT: &str = "DET-FLOAT-003";
/// Panic-freedom: no bare `.unwrap()`.
pub const PANIC_UNWRAP: &str = "PANIC-UNWRAP-001";
/// Panic-freedom: no `.expect(…)` either — typed errors or allowlist.
pub const PANIC_EXPECT: &str = "PANIC-EXPECT-002";
/// Panic-freedom: no `panic!` / `unreachable!` / `todo!` / `unimplemented!`.
pub const PANIC_MACRO: &str = "PANIC-MACRO-003";
/// Panic-freedom: no unchecked `container[index]` subscripting.
pub const PANIC_INDEX: &str = "PANIC-INDEX-004";
/// Unsafe hygiene: every `unsafe` needs an adjacent `// SAFETY:` comment.
pub const UNSAFE_NODOC: &str = "UNSAFE-NODOC-001";
/// Unsafe hygiene: unsafe-free crate roots must `#![forbid(unsafe_code)]`.
pub const UNSAFE_FORBID: &str = "UNSAFE-FORBID-002";

/// All rule IDs in a group, or `None` for an unknown group name.
pub fn group_rules(group: &str) -> Option<&'static [&'static str]> {
    match group {
        "determinism" => Some(&[DET_HASH, DET_TIME, DET_FLOAT]),
        "panic" => Some(&[PANIC_UNWRAP, PANIC_EXPECT, PANIC_MACRO, PANIC_INDEX]),
        "unsafe" => Some(&[UNSAFE_NODOC, UNSAFE_FORBID]),
        _ => None,
    }
}

/// The three valid group names, for config validation and `--list-rules`.
pub const GROUPS: &[&str] = &["determinism", "panic", "unsafe"];

/// Runs every rule in `rules` over one scrubbed file. `crate_root` marks
/// files that are a crate root (`src/lib.rs`, `src/main.rs`,
/// `src/bin/*.rs`) for the `UNSAFE-FORBID-002` whole-file check.
pub fn check_file(
    file: &str,
    src: &ScrubbedFile,
    rules: &[&'static str],
    crate_root: bool,
) -> Vec<Finding> {
    let mut out = Vec::new();
    let has = |r: &str| rules.contains(&r);

    // Byte-level matchers below slice at byte offsets; blank any
    // non-ASCII code character (only prose has them once strings and
    // comments are scrubbed) so offsets are always char boundaries.
    let ascii: Vec<String> = src
        .scrubbed
        .iter()
        .map(|l| {
            l.chars()
                .map(|c| if c.is_ascii() { c } else { ' ' })
                .collect()
        })
        .collect();

    for (idx, line) in ascii.iter().enumerate() {
        if src.test_mask.get(idx).copied().unwrap_or(false) {
            continue;
        }
        let lineno = idx + 1;
        let mut push = |rule: &'static str, message: String| {
            out.push(Finding {
                rule,
                file: file.to_owned(),
                line: lineno,
                excerpt: src.raw[idx].trim().to_owned(),
                message,
            });
        };

        if has(DET_HASH) && det_hash_hit(line) {
            push(
                DET_HASH,
                "std HashMap/HashSet iterate in RandomState order, which varies per process; \
                 use fxhash::FxHashMap, a BTreeMap, or sort before iterating"
                    .into(),
            );
        }
        if has(DET_TIME) {
            if let Some(tok) = det_time_hit(line) {
                push(
                    DET_TIME,
                    format!(
                        "`{tok}` is ambient wall-clock/entropy; simulated state must derive \
                         only from the seed and the config"
                    ),
                );
            }
        }
        if has(DET_FLOAT) && det_float_hit(line) {
            push(
                DET_FLOAT,
                "float == / != against a literal is representation-fragile; compare with an \
                 epsilon or restructure around integers"
                    .into(),
            );
        }
        if has(PANIC_UNWRAP) && line.contains(".unwrap()") {
            push(
                PANIC_UNWRAP,
                "bare `.unwrap()` in a panic-free zone; surface a typed RunError (PR 7 \
                 plumbing) or allowlist with justification"
                    .into(),
            );
        }
        if has(PANIC_EXPECT) && line.contains(".expect(") {
            push(
                PANIC_EXPECT,
                "`.expect(…)` still panics; surface a typed RunError or allowlist with \
                 justification"
                    .into(),
            );
        }
        if has(PANIC_MACRO) {
            if let Some(mac) = panic_macro_hit(line) {
                push(
                    PANIC_MACRO,
                    format!("`{mac}` aborts the worker; return a typed error instead"),
                );
            }
        }
        if has(PANIC_INDEX) {
            for _ in 0..panic_index_hits(line) {
                push(
                    PANIC_INDEX,
                    "unchecked `container[index]` can panic out-of-bounds; use `.get()` or \
                     allowlist with a bounds argument"
                        .into(),
                );
            }
        }
        if has(UNSAFE_NODOC) && unsafe_token(line) && !safety_comment_nearby(&src.raw, idx) {
            push(
                UNSAFE_NODOC,
                "`unsafe` without an adjacent `// SAFETY:` comment; state the invariant that \
                 makes it sound"
                    .into(),
            );
        }
    }

    if has(UNSAFE_FORBID) && crate_root {
        let has_forbid = src
            .scrubbed
            .iter()
            .any(|l| l.contains("#![forbid(unsafe_code)]"));
        let has_unsafe = src.scrubbed.iter().any(|l| unsafe_token(l));
        if !has_forbid && !has_unsafe {
            out.push(Finding {
                rule: UNSAFE_FORBID,
                file: file.to_owned(),
                line: 1,
                excerpt: src.raw.first().cloned().unwrap_or_default(),
                message: "crate root has no `unsafe` but does not `#![forbid(unsafe_code)]`; \
                          forbid it so none can creep in"
                    .into(),
            });
        }
    }

    out
}

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// `needle` appears in `line` with non-identifier chars on both sides.
fn word_hit(line: &str, needle: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = line[start..].find(needle) {
        let at = start + pos;
        let before_ok = at == 0 || !is_ident(line[..at].chars().next_back().unwrap_or(' '));
        let after_ok = !line[at + needle.len()..]
            .chars()
            .next()
            .is_some_and(is_ident);
        if before_ok && after_ok {
            return true;
        }
        start = at + needle.len();
    }
    false
}

fn det_hash_hit(line: &str) -> bool {
    if line.contains("std::collections::HashMap") || line.contains("std::collections::HashSet") {
        return true;
    }
    if line.contains("use std::collections::")
        && (word_hit(line, "HashMap") || word_hit(line, "HashSet"))
    {
        return true;
    }
    word_hit(line, "RandomState") || word_hit(line, "DefaultHasher")
}

fn det_time_hit(line: &str) -> Option<&'static str> {
    for tok in [
        "Instant",
        "SystemTime",
        "thread_rng",
        "from_entropy",
        "getrandom",
    ] {
        if word_hit(line, tok) {
            return Some(tok);
        }
    }
    if line.contains("rand::random") {
        return Some("rand::random");
    }
    None
}

/// Rough token stream for the float-comparison rule: identifiers/numbers
/// and single operators. Number tokens stop before `..` so ranges don't
/// read as floats.
fn tokens(line: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let b = line.as_bytes();
    let mut i = 0;
    while i < b.len() {
        let c = b[i] as char;
        if c.is_whitespace() {
            i += 1;
        } else if is_ident(c) {
            let start = i;
            while i < b.len() && is_ident(b[i] as char) {
                i += 1;
            }
            // A digit-led token may continue over a single `.` (float
            // literal) but not `..` (range) or `.ident` (method call).
            if c.is_ascii_digit()
                && i < b.len()
                && b[i] == b'.'
                && (i + 1 >= b.len()
                    || (b[i + 1] != b'.' && !(b[i + 1] as char).is_alphabetic()
                        || (b[i + 1] as char).is_ascii_digit()))
            {
                i += 1;
                while i < b.len() && is_ident(b[i] as char) {
                    i += 1;
                }
            }
            out.push(&line[start..i]);
        } else {
            // Two-char operators we care about, else single char.
            let two = &line[i..(i + 2).min(line.len())];
            if matches!(two, "==" | "!=" | "<=" | ">=" | ".." | "=>" | "->" | "::") {
                out.push(two);
                i += 2;
            } else {
                out.push(&line[i..i + 1]);
                i += 1;
            }
        }
    }
    out
}

fn is_float_literal(tok: &str) -> bool {
    let suffixed = tok.ends_with("f32") || tok.ends_with("f64");
    let t = tok.trim_end_matches("f32").trim_end_matches("f64");
    if !t.starts_with(|c: char| c.is_ascii_digit()) {
        return false;
    }
    if t.starts_with("0x") || t.starts_with("0b") || t.starts_with("0o") {
        return false;
    }
    suffixed
        || t.contains('.')
        || (t.contains('e') || t.contains('E'))
            && t.chars().all(|c| c.is_ascii_digit() || "eE+-_".contains(c))
}

fn det_float_hit(line: &str) -> bool {
    let toks = tokens(line);
    for (i, t) in toks.iter().enumerate() {
        if *t == "==" || *t == "!=" {
            let prev_float = i > 0 && is_float_literal(toks[i - 1]);
            let next_float = toks.get(i + 1).is_some_and(|n| is_float_literal(n));
            if prev_float || next_float {
                return true;
            }
        }
    }
    false
}

fn panic_macro_hit(line: &str) -> Option<&'static str> {
    for mac in ["panic!", "unreachable!", "todo!", "unimplemented!"] {
        let name = &mac[..mac.len() - 1];
        let mut start = 0;
        while let Some(pos) = line[start..].find(mac) {
            let at = start + pos;
            let before_ok = at == 0 || !is_ident(line[..at].chars().next_back().unwrap_or(' '));
            if before_ok {
                return Some(mac);
            }
            start = at + name.len();
        }
    }
    None
}

/// Keywords that may directly precede a `[` that opens an array *value*,
/// not an index expression.
const NON_INDEX_KEYWORDS: &[&str] = &["return", "break", "in", "as", "const", "static", "else"];

/// Counts `expr[…]` subscript sites: a `[` whose previous non-space char
/// ends an expression (identifier, `)`, `]`, `?`) and whose preceding
/// identifier is not a keyword introducing an array literal/type.
fn panic_index_hits(line: &str) -> usize {
    let b = line.as_bytes();
    let mut hits = 0;
    for i in 0..b.len() {
        if b[i] != b'[' {
            continue;
        }
        let mut j = i;
        while j > 0 && b[j - 1] == b' ' {
            j -= 1;
        }
        if j == 0 {
            continue;
        }
        let prev = b[j - 1] as char;
        if !(is_ident(prev) || prev == ')' || prev == ']' || prev == '?') {
            continue;
        }
        if is_ident(prev) {
            let mut k = j - 1;
            while k > 0 && is_ident(b[k - 1] as char) {
                k -= 1;
            }
            let ident = &line[k..j];
            if NON_INDEX_KEYWORDS.contains(&ident) {
                continue;
            }
            // A digit-led "identifier" directly after `[` start… tuple
            // index like `.0[1]` is still a subscript; keep it.
        }
        hits += 1;
    }
    hits
}

fn unsafe_token(line: &str) -> bool {
    word_hit(line, "unsafe")
}

fn safety_comment_nearby(raw: &[String], idx: usize) -> bool {
    let lo = idx.saturating_sub(3);
    raw[lo..=idx].iter().any(|l| l.contains("SAFETY:"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scrub::scrub;

    fn run(src: &str, rules: &[&'static str]) -> Vec<Finding> {
        check_file("x.rs", &scrub(src), rules, false)
    }

    #[test]
    fn det_hash_flags_std_maps_not_fx() {
        assert_eq!(
            run("use std::collections::HashMap;\n", &[DET_HASH]).len(),
            1
        );
        assert_eq!(
            run("let m: std::collections::HashSet<u32>;\n", &[DET_HASH]).len(),
            1
        );
        assert!(run("use fxhash::FxHashMap;\n", &[DET_HASH]).is_empty());
        assert!(run("use std::collections::BTreeMap;\n", &[DET_HASH]).is_empty());
    }

    #[test]
    fn det_time_flags_clocks_not_duration() {
        assert_eq!(run("let t = Instant::now();\n", &[DET_TIME]).len(), 1);
        assert!(run("let d = Duration::from_secs(1);\n", &[DET_TIME]).is_empty());
    }

    #[test]
    fn det_float_flags_literal_eq_only() {
        assert_eq!(run("if x == 1.0 { }\n", &[DET_FLOAT]).len(), 1);
        assert_eq!(run("if 0.5f64 != y { }\n", &[DET_FLOAT]).len(), 1);
        assert!(run("if x == 1 { }\n", &[DET_FLOAT]).is_empty());
        assert!(run("for i in 0..10 { }\n", &[DET_FLOAT]).is_empty());
        assert!(run("if x <= 1.0 { }\n", &[DET_FLOAT]).is_empty());
    }

    #[test]
    fn panic_rules_fire_outside_strings_only() {
        assert_eq!(run("x.unwrap();\n", &[PANIC_UNWRAP]).len(), 1);
        assert!(run("log(\"don't .unwrap() here\");\n", &[PANIC_UNWRAP]).is_empty());
        assert_eq!(run("panic!(\"boom\");\n", &[PANIC_MACRO]).len(), 1);
        assert!(run("silence_chaos_panics();\n", &[PANIC_MACRO]).is_empty());
    }

    #[test]
    fn index_rule_counts_subscripts_not_types() {
        assert_eq!(run("let y = xs[i] + ys[j];\n", &[PANIC_INDEX]).len(), 2);
        assert!(run("fn f(x: [u8; 4]) {}\n", &[PANIC_INDEX]).is_empty());
        assert!(run("let a = [0u8; 4];\n", &[PANIC_INDEX]).is_empty());
        assert!(run("#[derive(Debug)]\n", &[PANIC_INDEX]).is_empty());
        assert!(run("vec![1, 2, 3];\n", &[PANIC_INDEX]).is_empty());
        assert!(run("return [a, b];\n", &[PANIC_INDEX]).is_empty());
    }

    #[test]
    fn unsafe_needs_safety_comment() {
        assert_eq!(run("unsafe { go() }\n", &[UNSAFE_NODOC]).len(), 1);
        assert!(run(
            "// SAFETY: bounds checked above\nunsafe { go() }\n",
            &[UNSAFE_NODOC]
        )
        .is_empty());
        assert!(run("#![forbid(unsafe_code)]\n", &[UNSAFE_NODOC]).is_empty());
    }

    #[test]
    fn crate_root_must_forbid() {
        let f = check_file(
            "src/lib.rs",
            &scrub("pub fn f() {}\n"),
            &[UNSAFE_FORBID],
            true,
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, UNSAFE_FORBID);
        let ok = check_file(
            "src/lib.rs",
            &scrub("#![forbid(unsafe_code)]\npub fn f() {}\n"),
            &[UNSAFE_FORBID],
            true,
        );
        assert!(ok.is_empty());
    }

    #[test]
    fn test_regions_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        assert!(run(src, &[PANIC_UNWRAP]).is_empty());
    }
}
