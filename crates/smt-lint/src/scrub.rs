//! Source scrubbing: turns Rust source into a same-shape text where
//! comments and string/char-literal *contents* are blanked to spaces, so
//! the line-oriented rule matchers in [`crate::rules`] never fire on
//! prose — a doc comment discussing `.unwrap()` or an error string
//! containing `panic` is invisible to them.
//!
//! The scrubber also marks *test regions*: lines covered by a
//! `#[cfg(test)]` or `#[test]` item. Rules skip findings there — test
//! code may unwrap and hash freely; the invariants protect the paths a
//! production sweep actually executes.
//!
//! This is a hand-rolled state machine, not a real lexer. It understands
//! exactly as much Rust as the rules need: line/block (nested) comments,
//! plain and raw strings (any `#` count, `b`/`r`/`br` prefixes), char
//! literals vs. lifetimes, and brace depth for attribute-to-item span
//! tracking. Anything fancier belongs in clippy, which runs beside it.

/// One source file, scrubbed and annotated.
#[derive(Debug)]
pub struct ScrubbedFile {
    /// Original lines, used for excerpts, allowlist `pattern` matching,
    /// and `// SAFETY:` comment detection.
    pub raw: Vec<String>,
    /// Same lines with comments and literal contents blanked to spaces.
    /// Quote delimiters are kept so `.expect("…")` still shows its call
    /// shape; everything between them is whitespace.
    pub scrubbed: Vec<String>,
    /// `true` for lines inside a `#[cfg(test)]` / `#[test]` item.
    pub test_mask: Vec<bool>,
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    CharLit,
}

/// Scrubs `text` into per-line code-only content plus a test-region mask.
pub fn scrub(text: &str) -> ScrubbedFile {
    let chars: Vec<char> = text.chars().collect();
    let mut out = String::with_capacity(text.len());
    let mut state = State::Code;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match state {
            State::Code => {
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    continue;
                }
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    continue;
                }
                if c == '"' {
                    state = State::Str;
                    out.push('"');
                    i += 1;
                    continue;
                }
                // Raw / byte string prefixes: r", r#", br", b".
                if (c == 'r' || c == 'b') && !prev_is_ident(&chars, i) {
                    if let Some((hashes, consumed)) = raw_str_open(&chars, i) {
                        state = State::RawStr(hashes);
                        for _ in 0..consumed {
                            out.push(' ');
                        }
                        out.push('"');
                        i += consumed + 1;
                        continue;
                    }
                    if c == 'b' && next == Some('"') {
                        state = State::Str;
                        out.push(' ');
                        out.push('"');
                        i += 2;
                        continue;
                    }
                }
                if c == '\'' {
                    // Distinguish a char literal from a lifetime: a
                    // lifetime is `'` + ident with no closing quote.
                    if next == Some('\\') {
                        state = State::CharLit;
                        out.push('\'');
                        i += 1;
                        continue;
                    }
                    if let (Some(n), Some(after)) = (next, chars.get(i + 2).copied()) {
                        if after == '\'' && n != '\'' {
                            // 'x' — single-char literal.
                            out.push('\'');
                            out.push(' ');
                            out.push('\'');
                            i += 3;
                            continue;
                        }
                        let _ = n;
                    }
                    // Lifetime (or stray quote): pass through as code.
                    out.push(c);
                    i += 1;
                    continue;
                }
                out.push(c);
                i += 1;
            }
            State::LineComment => {
                if c == '\n' {
                    state = State::Code;
                    out.push('\n');
                } else {
                    out.push(' ');
                }
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    out.push(' ');
                    if next.is_some() {
                        out.push(if next == Some('\n') { '\n' } else { ' ' });
                        i += 2;
                    } else {
                        i += 1;
                    }
                } else if c == '"' {
                    state = State::Code;
                    out.push('"');
                    i += 1;
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' && raw_str_closes(&chars, i, hashes) {
                    state = State::Code;
                    out.push('"');
                    for _ in 0..hashes {
                        out.push(' ');
                    }
                    i += 1 + hashes as usize;
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            State::CharLit => {
                if c == '\\' {
                    out.push(' ');
                    if next.is_some() {
                        out.push(' ');
                        i += 2;
                    } else {
                        i += 1;
                    }
                } else if c == '\'' {
                    state = State::Code;
                    out.push('\'');
                    i += 1;
                } else {
                    out.push(' ');
                    i += 1;
                }
            }
        }
    }

    let raw: Vec<String> = text.lines().map(str::to_owned).collect();
    let scrubbed: Vec<String> = out.lines().map(str::to_owned).collect();
    let test_mask = mark_test_regions(&out, raw.len());
    ScrubbedFile {
        raw,
        scrubbed,
        test_mask,
    }
}

fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_')
}

/// If `chars[i..]` opens a raw string (`r"`, `r#"`, `br##"` …), returns
/// `(hash_count, chars_before_the_quote)`.
fn raw_str_open(chars: &[char], i: usize) -> Option<(u32, usize)> {
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0u32;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) == Some(&'"') {
        Some((hashes, j - i))
    } else {
        None
    }
}

fn raw_str_closes(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Marks every line covered by a `#[cfg(test)]` or `#[test]` item.
///
/// From each attribute occurrence, scan forward to the first `{` and mark
/// through its matching `}` (intervening attributes contain no braces).
/// Operates on scrubbed text, so attribute look-alikes in strings or
/// comments cannot open a region.
fn mark_test_regions(scrubbed: &str, n_lines: usize) -> Vec<bool> {
    let mut mask = vec![false; n_lines];
    let bytes = scrubbed.as_bytes();
    let mut line_of = Vec::with_capacity(bytes.len());
    let mut line = 0usize;
    for &b in bytes {
        line_of.push(line);
        if b == b'\n' {
            line += 1;
        }
    }
    for needle in ["#[cfg(test)]", "#[cfg(all(test", "#[test]"] {
        let mut start = 0;
        while let Some(pos) = scrubbed[start..].find(needle) {
            let at = start + pos;
            start = at + needle.len();
            // Find the first `{` after the attribute and mark through its
            // matching `}`.
            let mut depth = 0i32;
            let mut opened = false;
            for (off, b) in bytes[at..].iter().enumerate() {
                match b {
                    b'{' => {
                        depth += 1;
                        opened = true;
                    }
                    b'}' => depth -= 1,
                    b';' if !opened => break, // `#[cfg(test)] mod t;` — out-of-line, give up
                    _ => {}
                }
                if opened {
                    let l = line_of[at + off];
                    if l < mask.len() {
                        mask[l] = true;
                    }
                    if depth == 0 {
                        break;
                    }
                }
            }
            // Mark the attribute's own lines too.
            let l = line_of[at];
            if l < mask.len() {
                mask[l] = true;
            }
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let s = scrub("let x = \"panic! .unwrap()\"; // Instant::now\n");
        assert!(!s.scrubbed[0].contains("panic"));
        assert!(!s.scrubbed[0].contains("unwrap"));
        assert!(!s.scrubbed[0].contains("Instant"));
        assert!(s.raw[0].contains("Instant"));
    }

    #[test]
    fn raw_strings_any_hash_depth() {
        let s = scrub("let x = r##\"has .unwrap() inside\"##; x.len();\n");
        assert!(!s.scrubbed[0].contains("unwrap"));
        assert!(s.scrubbed[0].contains("x.len()"));
    }

    #[test]
    fn lifetimes_survive_char_literals_do_not() {
        let s = scrub("fn f<'a>(x: &'a str) { let c = 'x'; let q = '\\''; }\n");
        assert!(s.scrubbed[0].contains("<'a>"));
        assert!(!s.scrubbed[0].contains('x') || !s.scrubbed[0].contains("'x'"));
    }

    #[test]
    fn nested_block_comments() {
        let s = scrub("a /* one /* two */ still */ b\n");
        assert!(s.scrubbed[0].contains('a'));
        assert!(s.scrubbed[0].contains('b'));
        assert!(!s.scrubbed[0].contains("still"));
    }

    #[test]
    fn cfg_test_module_is_masked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn also_live() {}\n";
        let s = scrub(src);
        assert_eq!(s.test_mask, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn test_attr_fn_is_masked() {
        let src = "fn live() {}\n#[test]\nfn t() {\n    boom();\n}\n";
        let s = scrub(src);
        assert_eq!(s.test_mask, vec![false, true, true, true, true]);
    }
}
