//! CLI for the workspace static-analysis pass.
//!
//! ```text
//! cargo run -p smt-lint                 # lint the repo, exit 1 on findings
//! cargo run -p smt-lint -- --root DIR   # lint another tree (CI bad-fixture proof)
//! cargo run -p smt-lint -- --list-rules # print the rule catalogue
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 usage/config error — so CI can
//! distinguish "the tree is dirty" from "the lint itself is broken".

#![forbid(unsafe_code)]

use smt_lint::allowlist::AllowList;
use smt_lint::{config, rules};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    config: Option<PathBuf>,
    allow: Option<PathBuf>,
    list_rules: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        config: None,
        allow: None,
        list_rules: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => args.root = next_path(&mut it, "--root")?,
            "--config" => args.config = Some(next_path(&mut it, "--config")?),
            "--allow" => args.allow = Some(next_path(&mut it, "--allow")?),
            "--list-rules" => args.list_rules = true,
            "--help" | "-h" => {
                return Err("usage: smt-lint [--root DIR] [--config lint.toml] \
                            [--allow lint-allow.toml] [--list-rules]"
                    .into())
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn next_path(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<PathBuf, String> {
    it.next()
        .map(PathBuf::from)
        .ok_or_else(|| format!("{flag} needs a path argument"))
}

fn list_rules() {
    println!("rule groups and IDs (scoped per crate in lint.toml):");
    for group in rules::GROUPS {
        println!("  {group}:");
        for id in rules::group_rules(group).unwrap_or(&[]) {
            println!("    {id}");
        }
    }
    println!("  (plus per-pin MIRROR-* / LAYOUT-* IDs from lint.toml, and ALLOW-STALE-001)");
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("smt-lint: {msg}");
            return ExitCode::from(2);
        }
    };
    if args.list_rules {
        list_rules();
        return ExitCode::SUCCESS;
    }

    let config_path = args.config.unwrap_or_else(|| args.root.join("lint.toml"));
    let cfg = match std::fs::read_to_string(&config_path) {
        Ok(text) => match config::parse(&text) {
            Ok(cfg) => cfg,
            Err(e) => {
                eprintln!("smt-lint: {}: {e}", config_path.display());
                return ExitCode::from(2);
            }
        },
        Err(e) => {
            eprintln!("smt-lint: cannot read {}: {e}", config_path.display());
            return ExitCode::from(2);
        }
    };

    // The allowlist is optional: a missing file just means no waivers.
    let allow_path = args
        .allow
        .unwrap_or_else(|| args.root.join("lint-allow.toml"));
    let allow = match std::fs::read_to_string(&allow_path) {
        Ok(text) => match AllowList::parse(&text) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("smt-lint: {}: {e}", allow_path.display());
                return ExitCode::from(2);
            }
        },
        Err(_) => AllowList::default(),
    };

    let report = match smt_lint::run(&args.root, &cfg, &allow) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("smt-lint: walk failed: {e}");
            return ExitCode::from(2);
        }
    };

    for f in &report.findings {
        println!("error[{}] {}:{}", f.rule, f.file, f.line);
        if !f.excerpt.is_empty() {
            println!("  | {}", f.excerpt);
        }
        println!("  = {}", f.message);
    }
    println!(
        "smt-lint: {} files scanned, {} finding(s), {} allowlisted",
        report.files_scanned,
        report.findings.len(),
        report.suppressed
    );
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
