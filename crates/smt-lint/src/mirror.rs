//! Static mirror-constant and packed-layout checks.
//!
//! `smt-workloads` sits below `smt-sim` in the dependency graph, so it
//! mirrors policy-timing constants (`DCRA_ACTIVITY_WINDOW`, …) by value;
//! a runtime sync test in `smt-sim/knobs.rs` pins the pair. This module
//! is the *static* half of that contract: it cross-parses both
//! declarations and fails the lint the moment either side is edited to
//! disagree — before any test runs, and even when the tree doesn't
//! compile.
//!
//! The resolver evaluates `const NAME: Ty = EXPR;` declarations where
//! `EXPR` is an integer literal, a `+`/`*` chain of literals
//! (`64 * 1024`), or a path to another constant (`ActivityTracker::
//! DEFAULT_INIT`) chased — by its final segment — through the pin's
//! `search` file list. Anything it cannot resolve is a loud finding,
//! never a silent pass.

use crate::config::{LayoutPin, MirrorPin};
use crate::rules::Finding;
use crate::scrub::scrub;
use std::path::Path;

/// Finding ID for a resolver failure (missing file/const, unsupported
/// expression shape).
pub const MIRROR_UNRESOLVED: &str = "MIRROR-UNRESOLVED-001";

/// Checks one mirror pin, returning findings on mismatch or resolver
/// failure.
pub fn check_mirror(root: &Path, pin: &MirrorPin) -> Vec<Finding> {
    let left = resolve(root, &pin.left.0, &pin.left.1, &pin.search, 0);
    let right = resolve(root, &pin.right.0, &pin.right.1, &pin.search, 0);
    match (left, right) {
        (Ok(l), Ok(r)) if l.value == r.value => Vec::new(),
        (Ok(l), Ok(r)) => vec![Finding {
            rule: leak_id(&pin.id),
            file: pin.left.0.clone(),
            line: l.line,
            excerpt: l.excerpt,
            message: format!(
                "mirror constant {} = {} disagrees with {}#{} = {} (line {}); these must \
                 stay bit-identical for the adversarial scenario timing to mean anything",
                pin.left.1, l.value, pin.right.0, pin.right.1, r.value, r.line
            ),
        }],
        (l, r) => [(&pin.left, l), (&pin.right, r)]
            .into_iter()
            .filter_map(|(anchor, res)| {
                res.err().map(|e| Finding {
                    rule: MIRROR_UNRESOLVED,
                    file: anchor.0.clone(),
                    line: 1,
                    excerpt: format!("{}#{}", anchor.0, anchor.1),
                    message: format!("mirror pin `{}`: {e}", pin.id),
                })
            })
            .collect(),
    }
}

/// A resolved constant: its integer value and where the declaration sits.
struct Resolved {
    value: i128,
    line: usize,
    excerpt: String,
}

fn resolve(
    root: &Path,
    file: &str,
    name: &str,
    search: &[String],
    depth: u32,
) -> Result<Resolved, String> {
    if depth > 5 {
        return Err(format!("`{name}`: resolution chain deeper than 5 — cycle?"));
    }
    let text =
        std::fs::read_to_string(root.join(file)).map_err(|e| format!("cannot read {file}: {e}"))?;
    let src = scrub(&text);
    // Find `const NAME:` on a scrubbed line, join lines up to the `;`.
    let needle = format!("const {name}:");
    let start = src
        .scrubbed
        .iter()
        .position(|l| l.contains(&needle))
        .ok_or_else(|| format!("`const {name}` not found in {file}"))?;
    let mut decl = String::new();
    for l in &src.scrubbed[start..] {
        decl.push_str(l);
        decl.push(' ');
        if l.contains(';') {
            break;
        }
    }
    let eq = decl
        .find('=')
        .ok_or_else(|| format!("`const {name}` in {file} has no `=`"))?;
    let semi = decl[eq..]
        .find(';')
        .map(|p| eq + p)
        .ok_or_else(|| format!("`const {name}` in {file} has no `;`"))?;
    let expr = decl[eq + 1..semi].trim().to_owned();
    let value = eval(root, file, &expr, search, depth)
        .map_err(|e| format!("`const {name}` in {file}: {e}"))?;
    Ok(Resolved {
        value,
        line: start + 1,
        excerpt: src.raw[start].trim().to_owned(),
    })
}

/// Evaluates an expression: literal, `a * b` / `a + b` chains, or a
/// path whose final segment is chased through `file` itself then the
/// `search` list.
fn eval(
    root: &Path,
    file: &str,
    expr: &str,
    search: &[String],
    depth: u32,
) -> Result<i128, String> {
    // `+` then `*` precedence over literal/path atoms; no parens — the
    // constants this guards are simple by design.
    if let Some((l, r)) = split_top(expr, '+') {
        return Ok(eval(root, file, l, search, depth)? + eval(root, file, r, search, depth)?);
    }
    if let Some((l, r)) = split_top(expr, '*') {
        return Ok(eval(root, file, l, search, depth)? * eval(root, file, r, search, depth)?);
    }
    let atom = expr.trim();
    if atom.starts_with(|c: char| c.is_ascii_digit()) {
        return parse_int(atom);
    }
    // Path atom: chase the final segment through this file, then search.
    let last = atom
        .rsplit("::")
        .next()
        .unwrap_or(atom)
        .trim()
        .trim_start_matches("Self::");
    if last.is_empty() || !last.chars().all(|c| c.is_alphanumeric() || c == '_') {
        return Err(format!("unsupported expression `{expr}`"));
    }
    let mut tried = Vec::new();
    for candidate in std::iter::once(file).chain(search.iter().map(String::as_str)) {
        match resolve(root, candidate, last, search, depth + 1) {
            Ok(r) => return Ok(r.value),
            Err(e) => tried.push(e),
        }
    }
    Err(format!("cannot resolve `{atom}`: {}", tried.join("; ")))
}

/// Splits at the first top-level occurrence of `op` (no paren tracking —
/// parenthesised knob expressions are out of scope and error later).
fn split_top(expr: &str, op: char) -> Option<(&str, &str)> {
    expr.find(op).map(|i| (&expr[..i], &expr[i + 1..]))
}

fn parse_int(s: &str) -> Result<i128, String> {
    let mut cleaned: String = s.chars().filter(|c| *c != '_').collect();
    for suffix in [
        "usize", "isize", "u128", "i128", "u64", "i64", "u32", "i32", "u16", "i16", "u8", "i8",
    ] {
        if let Some(stripped) = cleaned.strip_suffix(suffix) {
            cleaned = stripped.to_owned();
            break;
        }
    }
    let (digits, radix) = if let Some(hex) = cleaned.strip_prefix("0x") {
        (hex, 16)
    } else if let Some(bin) = cleaned.strip_prefix("0b") {
        (bin, 2)
    } else if let Some(oct) = cleaned.strip_prefix("0o") {
        (oct, 8)
    } else {
        (cleaned.as_str(), 10)
    };
    i128::from_str_radix(digits, radix).map_err(|e| format!("bad integer `{s}`: {e}"))
}

/// Checks one layout pin: parses the struct's fields, computes a
/// natural-alignment size in declaration order (an upper bound the
/// compiler may only improve on), and compares against the budget. The
/// runtime `size_of` tests remain the ground truth; this catches a grown
/// field at lint time.
pub fn check_layout(root: &Path, pin: &LayoutPin) -> Vec<Finding> {
    let fail = |line: usize, excerpt: String, message: String| {
        vec![Finding {
            rule: leak_id(&pin.id),
            file: pin.file.clone(),
            line,
            excerpt,
            message,
        }]
    };
    let text = match std::fs::read_to_string(root.join(&pin.file)) {
        Ok(t) => t,
        Err(e) => return fail(1, String::new(), format!("cannot read {}: {e}", pin.file)),
    };
    let src = scrub(&text);
    let needle = format!("struct {} {{", pin.name);
    let Some(start) = src.scrubbed.iter().position(|l| l.contains(&needle)) else {
        return fail(
            1,
            String::new(),
            format!("`struct {}` not found in {}", pin.name, pin.file),
        );
    };
    let mut size: u64 = 0;
    let mut max_align: u64 = 1;
    for (off, line) in src.scrubbed[start + 1..].iter().enumerate() {
        let lineno = start + 2 + off;
        let trimmed = line.trim();
        if trimmed.starts_with('}') {
            break;
        }
        // Field lines look like `pub name: Type,`; skip attributes and
        // blanks (docs are already scrubbed away).
        let Some((_, ty)) = trimmed.split_once(':') else {
            continue;
        };
        let ty = ty.trim().trim_end_matches(',').trim();
        let Some((fsize, falign)) = primitive_layout(ty) else {
            return fail(
                lineno,
                src.raw[lineno - 1].trim().to_owned(),
                format!(
                    "field type `{ty}` is not a fixed-size primitive; the static layout pin \
                     cannot bound it — shrink it or move the pin to a runtime test"
                ),
            );
        };
        size = size.div_ceil(falign) * falign + fsize;
        max_align = max_align.max(falign);
    }
    size = size.div_ceil(max_align) * max_align;
    if size > pin.max_bytes {
        return fail(
            start + 1,
            src.raw[start].trim().to_owned(),
            format!(
                "`{}` computes to {size} bytes > the {}-byte budget; the packed trace-store \
                 economics (PR 8) assume records stay within it",
                pin.name, pin.max_bytes
            ),
        );
    }
    Vec::new()
}

/// `(size, align)` for primitive types and `[T; N]` arrays of them.
fn primitive_layout(ty: &str) -> Option<(u64, u64)> {
    if let Some(inner) = ty.strip_prefix('[').and_then(|r| r.strip_suffix(']')) {
        let (elem, count) = inner.split_once(';')?;
        let (esize, ealign) = primitive_layout(elem.trim())?;
        let n: u64 = count.trim().parse().ok()?;
        return Some((esize * n, ealign));
    }
    let s = match ty {
        "u8" | "i8" | "bool" => 1,
        "u16" | "i16" => 2,
        "u32" | "i32" | "f32" | "char" => 4,
        "u64" | "i64" | "f64" | "usize" | "isize" => 8,
        "u128" | "i128" => 16,
        _ => return None,
    };
    Some((s, s))
}

/// Pin IDs come from config (a `String`); findings carry `&'static str`
/// rule IDs. Leak the handful of configured IDs once per run — bounded
/// by the pin count, so this is not a creeping leak.
fn leak_id(id: &str) -> &'static str {
    Box::leak(id.to_owned().into_boxed_str())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn write(dir: &Path, rel: &str, text: &str) {
        let p = dir.join(rel);
        fs::create_dir_all(p.parent().expect("has parent")).expect("mkdir");
        fs::write(p, text).expect("write");
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("smt-lint-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).expect("mkdir");
        d
    }

    #[test]
    fn chases_path_constants_through_search_files() {
        let d = tmpdir("mirror-chase");
        write(&d, "left.rs", "pub const WINDOW: u32 = 256;\n");
        write(
            &d,
            "right.rs",
            "pub const WINDOW: u32 = ActivityTracker::DEFAULT_INIT;\n",
        );
        write(&d, "deep.rs", "    pub const DEFAULT_INIT: u32 = 256;\n");
        let pin = MirrorPin {
            id: "MIRROR-T".into(),
            left: ("left.rs".into(), "WINDOW".into()),
            right: ("right.rs".into(), "WINDOW".into()),
            search: vec!["deep.rs".into()],
        };
        assert!(check_mirror(&d, &pin).is_empty());
        // Now drift the deep side.
        write(&d, "deep.rs", "    pub const DEFAULT_INIT: u32 = 300;\n");
        let findings = check_mirror(&d, &pin);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("256"));
        assert!(findings[0].message.contains("300"));
    }

    #[test]
    fn unresolvable_is_loud_not_silent() {
        let d = tmpdir("mirror-unresolved");
        write(&d, "left.rs", "pub const W: u32 = 1;\n");
        write(&d, "right.rs", "pub const W: u32 = some_fn();\n");
        let pin = MirrorPin {
            id: "MIRROR-T".into(),
            left: ("left.rs".into(), "W".into()),
            right: ("right.rs".into(), "W".into()),
            search: vec![],
        };
        let findings = check_mirror(&d, &pin);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, MIRROR_UNRESOLVED);
    }

    #[test]
    fn products_and_underscores_evaluate() {
        let d = tmpdir("mirror-product");
        write(&d, "a.rs", "pub const S: u64 = 64 * 1_024;\n");
        write(&d, "b.rs", "pub const S: u64 = 65536;\n");
        let pin = MirrorPin {
            id: "MIRROR-T".into(),
            left: ("a.rs".into(), "S".into()),
            right: ("b.rs".into(), "S".into()),
            search: vec![],
        };
        assert!(check_mirror(&d, &pin).is_empty(), "64 * 1_024 == 65536");
    }

    #[test]
    fn layout_pin_passes_and_fails() {
        let d = tmpdir("layout");
        write(
            &d,
            "p.rs",
            "pub struct Packed {\n    pub pc: u64,\n    dep: [u16; 2],\n    meta: u16,\n    aux: u16,\n}\n",
        );
        let pin = LayoutPin {
            id: "LAYOUT-T".into(),
            file: "p.rs".into(),
            name: "Packed".into(),
            max_bytes: 16,
        };
        assert!(check_layout(&d, &pin).is_empty());
        let tight = LayoutPin {
            max_bytes: 15,
            ..pin
        };
        let findings = check_layout(&d, &tight);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("16 bytes"));
    }
}
