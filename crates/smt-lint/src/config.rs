//! `lint.toml` parsing: which rule groups run where, what to exclude
//! from the walk, and the mirror/layout pins to cross-check.
//!
//! The parser is a deliberately tiny TOML subset — `[section]`,
//! `[[array-of-tables]]`, quoted section suffixes (`[crate."path"]`),
//! and `key = "string" | integer | ["array", "of", "strings"]` — the
//! same spirit as the vendored serde stand-in: enough for our own
//! files, not a general implementation. Unknown keys are errors, so a
//! typo in `lint.toml` fails loudly instead of silently disabling a
//! rule.

use crate::rules;

/// One `[[mirror]]` pin: two constants (each `path/to/file.rs#CONST`)
/// that must resolve to the same integer value.
#[derive(Debug, Clone)]
pub struct MirrorPin {
    /// Finding ID, e.g. `MIRROR-DCRA-WINDOW`.
    pub id: String,
    /// `(file, const_name)` of the mirror side (e.g. smt-workloads).
    pub left: (String, String),
    /// `(file, const_name)` of the source-of-truth side (e.g. knobs.rs).
    pub right: (String, String),
    /// Extra files the resolver may chase `Path::CONST` references into.
    pub search: Vec<String>,
}

/// One `[[layout]]` pin: a packed struct whose computed size must not
/// exceed `max_bytes`.
#[derive(Debug, Clone)]
pub struct LayoutPin {
    /// Finding ID, e.g. `LAYOUT-PACKED-INST`.
    pub id: String,
    /// File holding the struct definition.
    pub file: String,
    /// Struct name.
    pub name: String,
    /// Size budget in bytes.
    pub max_bytes: u64,
}

/// Parsed `lint.toml`.
#[derive(Debug, Clone, Default)]
pub struct LintConfig {
    /// Groups for crates with no `[crate."…"]` entry — new crates opt
    /// in to whatever this says by default.
    pub default_groups: Vec<String>,
    /// Per-crate-directory overrides, longest prefix wins.
    pub crate_groups: Vec<(String, Vec<String>)>,
    /// Per-file overrides, exact match, beats crate overrides.
    pub file_groups: Vec<(String, Vec<String>)>,
    /// Path prefixes excluded from the walk (fixtures, generated code).
    pub exclude: Vec<String>,
    /// Mirror-constant pins.
    pub mirrors: Vec<MirrorPin>,
    /// Packed-layout pins.
    pub layouts: Vec<LayoutPin>,
}

impl LintConfig {
    /// Resolves the rule groups for a repo-relative file path.
    pub fn groups_for(&self, file: &str) -> &[String] {
        if let Some((_, g)) = self.file_groups.iter().find(|(f, _)| f == file) {
            return g;
        }
        let mut best: Option<&(String, Vec<String>)> = None;
        for entry in &self.crate_groups {
            let prefix = &entry.0;
            let matches = file == prefix
                || (file.starts_with(prefix.as_str())
                    && file.as_bytes().get(prefix.len()) == Some(&b'/'));
            if matches && best.is_none_or(|b| prefix.len() > b.0.len()) {
                best = Some(entry);
            }
        }
        best.map_or(&self.default_groups, |(_, g)| g)
    }
}

/// A parsed `key = value` right-hand side.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `"…"`
    Str(String),
    /// Bare integer.
    Int(u64),
    /// `["…", "…"]`
    List(Vec<String>),
}

impl Value {
    fn as_str(&self, key: &str) -> Result<String, String> {
        match self {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(format!("`{key}` must be a string")),
        }
    }
    fn as_list(&self, key: &str) -> Result<Vec<String>, String> {
        match self {
            Value::List(v) => Ok(v.clone()),
            _ => Err(format!("`{key}` must be a list of strings")),
        }
    }
    fn as_int(&self, key: &str) -> Result<u64, String> {
        match self {
            Value::Int(n) => Ok(*n),
            _ => Err(format!("`{key}` must be an integer")),
        }
    }
}

/// One `[section]` or `[[section]]` with its key/value pairs.
#[derive(Debug)]
pub struct Section {
    /// Raw header without brackets, e.g. `crate."crates/smt-sim"`.
    pub name: String,
    /// `[[double-bracket]]` table-array entry?
    pub array: bool,
    /// Key/value pairs in order.
    pub pairs: Vec<(String, Value)>,
}

/// Parses the TOML subset into sections. Line-oriented; `#` comments and
/// blanks are skipped. Errors carry 1-based line numbers.
pub fn parse_sections(text: &str) -> Result<Vec<Section>, String> {
    let mut sections: Vec<Section> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim().to_owned();
        if line.is_empty() {
            continue;
        }
        if let Some(inner) = line.strip_prefix("[[").and_then(|r| r.strip_suffix("]]")) {
            sections.push(Section {
                name: inner.trim().to_owned(),
                array: true,
                pairs: Vec::new(),
            });
        } else if let Some(inner) = line.strip_prefix('[').and_then(|r| r.strip_suffix(']')) {
            sections.push(Section {
                name: inner.trim().to_owned(),
                array: false,
                pairs: Vec::new(),
            });
        } else if let Some(eq) = line.find('=') {
            let key = line[..eq].trim().to_owned();
            let value =
                parse_value(line[eq + 1..].trim()).map_err(|e| format!("line {lineno}: {e}"))?;
            let section = sections
                .last_mut()
                .ok_or_else(|| format!("line {lineno}: `{key}` outside any [section]"))?;
            section.pairs.push((key, value));
        } else {
            return Err(format!("line {lineno}: cannot parse `{line}`"));
        }
    }
    Ok(sections)
}

/// Strips a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(v: &str) -> Result<Value, String> {
    if let Some(s) = v.strip_prefix('"').and_then(|r| r.strip_suffix('"')) {
        return Ok(Value::Str(s.to_owned()));
    }
    if let Some(inner) = v.strip_prefix('[').and_then(|r| r.strip_suffix(']')) {
        let mut items = Vec::new();
        for part in inner.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match part.strip_prefix('"').and_then(|r| r.strip_suffix('"')) {
                Some(s) => items.push(s.to_owned()),
                None => return Err(format!("list item `{part}` is not a quoted string")),
            }
        }
        return Ok(Value::List(items));
    }
    let digits: String = v.chars().filter(|c| *c != '_').collect();
    if !digits.is_empty() && digits.chars().all(|c| c.is_ascii_digit()) {
        return digits
            .parse()
            .map(Value::Int)
            .map_err(|e| format!("bad integer `{v}`: {e}"));
    }
    Err(format!(
        "cannot parse value `{v}` (string / integer / [list] only)"
    ))
}

/// Validates that every named group exists.
fn check_groups(groups: &[String], context: &str) -> Result<(), String> {
    for g in groups {
        if rules::group_rules(g).is_none() {
            return Err(format!(
                "{context}: unknown rule group `{g}` (valid: {})",
                rules::GROUPS.join(", ")
            ));
        }
    }
    Ok(())
}

/// Splits `path/to/file.rs#CONST` into its two halves.
fn parse_anchor(s: &str, key: &str) -> Result<(String, String), String> {
    match s.split_once('#') {
        Some((f, c)) if !f.is_empty() && !c.is_empty() => Ok((f.to_owned(), c.to_owned())),
        _ => Err(format!(
            "`{key}` must look like `path/to/file.rs#CONST_NAME`, got `{s}`"
        )),
    }
}

/// Parses the full `lint.toml` text.
pub fn parse(text: &str) -> Result<LintConfig, String> {
    let mut cfg = LintConfig::default();
    for section in parse_sections(text)? {
        let name = section.name.as_str();
        let get = |key: &str| -> Option<&Value> {
            section.pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
        };
        let known = |allowed: &[&str]| -> Result<(), String> {
            for (k, _) in &section.pairs {
                if !allowed.contains(&k.as_str()) {
                    return Err(format!("[{name}]: unknown key `{k}`"));
                }
            }
            Ok(())
        };
        if name == "default" {
            known(&["groups"])?;
            cfg.default_groups = get("groups")
                .ok_or("[default] needs `groups`")?
                .as_list("groups")?;
            check_groups(&cfg.default_groups, "[default]")?;
        } else if name == "scan" {
            known(&["exclude"])?;
            if let Some(v) = get("exclude") {
                cfg.exclude = v.as_list("exclude")?;
            }
        } else if let Some(rest) = name.strip_prefix("crate.") {
            known(&["groups"])?;
            let path = rest.trim_matches('"').to_owned();
            let groups = get("groups")
                .ok_or_else(|| format!("[{name}] needs `groups`"))?
                .as_list("groups")?;
            check_groups(&groups, name)?;
            cfg.crate_groups.push((path, groups));
        } else if let Some(rest) = name.strip_prefix("file.") {
            known(&["groups"])?;
            let path = rest.trim_matches('"').to_owned();
            let groups = get("groups")
                .ok_or_else(|| format!("[{name}] needs `groups`"))?
                .as_list("groups")?;
            check_groups(&groups, name)?;
            cfg.file_groups.push((path, groups));
        } else if name == "mirror" && section.array {
            known(&["id", "left", "right", "search"])?;
            cfg.mirrors.push(MirrorPin {
                id: get("id").ok_or("[[mirror]] needs `id`")?.as_str("id")?,
                left: parse_anchor(
                    &get("left")
                        .ok_or("[[mirror]] needs `left`")?
                        .as_str("left")?,
                    "left",
                )?,
                right: parse_anchor(
                    &get("right")
                        .ok_or("[[mirror]] needs `right`")?
                        .as_str("right")?,
                    "right",
                )?,
                search: match get("search") {
                    Some(v) => v.as_list("search")?,
                    None => Vec::new(),
                },
            });
        } else if name == "layout" && section.array {
            known(&["id", "file", "struct", "max_bytes"])?;
            cfg.layouts.push(LayoutPin {
                id: get("id").ok_or("[[layout]] needs `id`")?.as_str("id")?,
                file: get("file")
                    .ok_or("[[layout]] needs `file`")?
                    .as_str("file")?,
                name: get("struct")
                    .ok_or("[[layout]] needs `struct`")?
                    .as_str("struct")?,
                max_bytes: get("max_bytes")
                    .ok_or("[[layout]] needs `max_bytes`")?
                    .as_int("max_bytes")?,
            });
        } else {
            return Err(format!(
                "unknown section [{name}] (default / scan / crate.\"…\" / file.\"…\" / \
                 [[mirror]] / [[layout]])"
            ));
        }
    }
    Ok(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# comment
[default]
groups = ["determinism", "panic", "unsafe"]

[scan]
exclude = ["target", "crates/smt-lint/tests/fixtures"]

[crate."crates/smt-sim"]
groups = ["determinism", "unsafe"]

[file."crates/x/src/bin/tool.rs"]
groups = ["unsafe"]

[[mirror]]
id = "MIRROR-A"
left = "a.rs#LEFT"
right = "b.rs#RIGHT"
search = ["c.rs"]

[[layout]]
id = "LAYOUT-P"
file = "p.rs"
struct = "Packed"
max_bytes = 16
"#;

    #[test]
    fn parses_the_full_shape() {
        let cfg = parse(SAMPLE).expect("parses");
        assert_eq!(cfg.default_groups.len(), 3);
        assert_eq!(cfg.exclude.len(), 2);
        assert_eq!(cfg.crate_groups[0].0, "crates/smt-sim");
        assert_eq!(cfg.mirrors[0].left, ("a.rs".into(), "LEFT".into()));
        assert_eq!(cfg.layouts[0].max_bytes, 16);
    }

    #[test]
    fn group_resolution_precedence() {
        let cfg = parse(SAMPLE).expect("parses");
        assert_eq!(cfg.groups_for("crates/smt-sim/src/core.rs").len(), 2);
        assert_eq!(cfg.groups_for("crates/x/src/bin/tool.rs").len(), 1);
        assert_eq!(cfg.groups_for("crates/other/src/lib.rs").len(), 3);
        // Prefix must end at a path boundary.
        assert_eq!(cfg.groups_for("crates/smt-simx/src/lib.rs").len(), 3);
    }

    #[test]
    fn unknown_group_and_section_are_loud() {
        assert!(parse("[default]\ngroups = [\"nope\"]\n").is_err());
        assert!(parse("[wat]\nx = 1\n").is_err());
        assert!(parse("[default]\ntypo = [\"unsafe\"]\n").is_err());
    }
}
