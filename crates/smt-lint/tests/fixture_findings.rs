//! Fixture-based self-tests: every deliberately-bad fixture must produce
//! exactly the expected rule IDs at the expected lines, and the clean
//! fixture none — so a rule that drifts (wrong line, extra hit, silent
//! no-op) fails here before it mis-lints the real tree.

use smt_lint::allowlist::AllowList;
use smt_lint::config;
use smt_lint::rules::{self, check_file};
use smt_lint::scrub::scrub;
use std::path::{Path, PathBuf};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn fixture(rel: &str) -> String {
    let p = fixture_root().join(rel);
    std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("read {}: {e}", p.display()))
}

/// Every rule ID of every group, so fixtures are checked against the
/// full catalogue regardless of lint.toml scoping.
fn all_rules() -> Vec<&'static str> {
    rules::GROUPS
        .iter()
        .flat_map(|g| rules::group_rules(g).unwrap_or(&[]).iter().copied())
        .collect()
}

fn ids_and_lines(file: &str, crate_root: bool) -> Vec<(&'static str, usize)> {
    let src = scrub(&fixture(file));
    check_file(file, &src, &all_rules(), crate_root)
        .into_iter()
        .map(|f| (f.rule, f.line))
        .collect()
}

#[test]
fn determinism_fixture_findings() {
    assert_eq!(
        ids_and_lines("bad/determinism.rs", false),
        vec![
            ("DET-HASH-001", 4),
            ("DET-TIME-002", 5),
            ("DET-TIME-002", 8),
            ("DET-HASH-001", 9),
            ("DET-FLOAT-003", 14),
        ]
    );
}

#[test]
fn panic_fixture_findings() {
    assert_eq!(
        ids_and_lines("bad/panics.rs", false),
        vec![
            ("PANIC-UNWRAP-001", 4),
            ("PANIC-EXPECT-002", 5),
            ("PANIC-MACRO-003", 7),
            ("PANIC-INDEX-004", 9),
        ]
    );
}

#[test]
fn unsafe_fixture_findings() {
    // Line 4 has no SAFETY comment; line 9 does and must stay silent.
    assert_eq!(
        ids_and_lines("bad/unsafe_nodoc.rs", false),
        vec![("UNSAFE-NODOC-001", 4)]
    );
}

#[test]
fn missing_forbid_fixture_findings() {
    assert_eq!(
        ids_and_lines("bad/missing_forbid.rs", true),
        vec![("UNSAFE-FORBID-002", 1)]
    );
}

#[test]
fn clean_fixture_is_clean() {
    assert_eq!(ids_and_lines("good/clean.rs", true), vec![]);
}

/// End-to-end over the ci-bad tree — the same invocation CI uses to prove
/// the lint job can fail: violations in the crate root plus a mismatched
/// mirror pair, all surfaced with exact locations.
#[test]
fn ci_bad_tree_fails_with_expected_findings() {
    let root = fixture_root().join("ci-bad");
    let cfg_text = std::fs::read_to_string(root.join("lint.toml")).expect("ci-bad lint.toml");
    let cfg = config::parse(&cfg_text).expect("ci-bad config parses");
    let report = smt_lint::run(&root, &cfg, &AllowList::default()).expect("lint run");
    let got: Vec<(String, String, usize)> = report
        .findings
        .iter()
        .map(|f| (f.rule.to_string(), f.file.clone(), f.line))
        .collect();
    for expected in [
        ("MIRROR-CI-BAD", "left.rs", 3),
        ("PANIC-MACRO-003", "src/lib.rs", 4),
        ("UNSAFE-FORBID-002", "src/lib.rs", 1),
    ] {
        let key = (expected.0.to_string(), expected.1.to_string(), expected.2);
        assert!(got.contains(&key), "missing {expected:?} in {got:?}");
    }
    assert!(!report.findings.is_empty(), "ci-bad must fail the lint");
}
