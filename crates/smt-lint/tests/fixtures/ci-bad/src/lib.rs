//! ci-bad crate root: panics, no forbid attribute.

pub fn boom() {
    panic!("ci-bad fixture");
}
