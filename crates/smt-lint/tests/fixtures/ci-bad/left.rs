//! One side of the deliberately mismatched mirror pair.

pub const WINDOW: u32 = 256;
