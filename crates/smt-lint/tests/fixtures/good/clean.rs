//! Clean fixture: passes every rule group the lint knows about.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;

pub fn ordered() -> BTreeMap<u32, u32> {
    BTreeMap::new()
}

pub fn close_enough(x: f64) -> bool {
    (x - 0.1).abs() < 1e-12
}

pub fn safe_get(v: &[u32]) -> u32 {
    v.first().copied().unwrap_or_default()
}
