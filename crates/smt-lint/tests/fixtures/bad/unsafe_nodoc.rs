//! Undocumented unsafe for the smt-lint self-tests.

pub fn peek(p: *const u32) -> u32 {
    unsafe { *p }
}

pub fn peek_documented(p: *const u32) -> u32 {
    // SAFETY: the caller guarantees `p` is valid, aligned and initialised.
    unsafe { *p }
}
