//! Deliberately non-deterministic code for the smt-lint self-tests.
//! Never compiled — the tests scan it as text and pin exact findings.

use std::collections::HashMap;
use std::time::Instant;

pub fn ambient() -> u64 {
    let started = Instant::now();
    let map = std::collections::HashMap::<u32, u32>::new();
    map.len() as u64 + started.elapsed().as_nanos() as u64
}

pub fn fragile(x: f64) -> bool {
    x == 0.1
}
