//! Deliberately panicky code for the smt-lint self-tests.

pub fn boom(v: &[u32]) -> u32 {
    let first = v.iter().next().unwrap();
    let second = v.get(1).expect("second element");
    if *first > 9000 {
        panic!("over nine thousand");
    }
    first + second + v[2]
}
