//! A crate root with no `unsafe` and no `#![forbid(unsafe_code)]`.

pub fn fine() {}
