//! The paper's Table-4 multiprogrammed workloads.

use serde::{Deserialize, Serialize};

/// Workload class by the cache behaviour of its member threads (Section 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum WorkloadType {
    /// Only high-ILP threads.
    Ilp,
    /// A mixture of ILP and MEM threads.
    Mix,
    /// Only memory-bounded threads.
    Mem,
}

impl WorkloadType {
    /// All workload types in the paper's presentation order.
    pub const ALL: [WorkloadType; 3] = [WorkloadType::Ilp, WorkloadType::Mix, WorkloadType::Mem];
}

impl std::fmt::Display for WorkloadType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadType::Ilp => f.write_str("ILP"),
            WorkloadType::Mix => f.write_str("MIX"),
            WorkloadType::Mem => f.write_str("MEM"),
        }
    }
}

/// One multiprogrammed workload: a named set of benchmarks run together.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Workload {
    /// Class (ILP/MIX/MEM).
    pub kind: WorkloadType,
    /// Group index within the class (1..=4, Table 4's four groups).
    pub group: u8,
    /// Benchmark names, one per hardware thread.
    pub benchmarks: Vec<String>,
}

impl Workload {
    /// Number of threads in this workload.
    pub fn threads(&self) -> usize {
        self.benchmarks.len()
    }

    /// Canonical identifier, e.g. `"MEM2-g1"` for the 2-thread MEM group-1
    /// workload.
    pub fn id(&self) -> String {
        format!("{}{}-g{}", self.kind, self.threads(), self.group)
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} [{}]", self.id(), self.benchmarks.join("+"))
    }
}

/// Raw Table 4 of the paper: (threads, type, group) → benchmarks.
const TABLE4: &[(WorkloadType, u8, &[&str])] = &[
    // 2 threads
    (WorkloadType::Ilp, 1, &["gzip", "bzip2"]),
    (WorkloadType::Ilp, 2, &["wupwise", "gcc"]),
    (WorkloadType::Ilp, 3, &["fma3d", "mesa"]),
    (WorkloadType::Ilp, 4, &["apsi", "gcc"]),
    (WorkloadType::Mix, 1, &["gzip", "twolf"]),
    (WorkloadType::Mix, 2, &["wupwise", "twolf"]),
    (WorkloadType::Mix, 3, &["lucas", "crafty"]),
    (WorkloadType::Mix, 4, &["equake", "bzip2"]),
    (WorkloadType::Mem, 1, &["mcf", "twolf"]),
    (WorkloadType::Mem, 2, &["art", "vpr"]),
    (WorkloadType::Mem, 3, &["art", "twolf"]),
    (WorkloadType::Mem, 4, &["swim", "mcf"]),
    // 3 threads
    (WorkloadType::Ilp, 1, &["gcc", "eon", "gap"]),
    (WorkloadType::Ilp, 2, &["gcc", "apsi", "gzip"]),
    (WorkloadType::Ilp, 3, &["crafty", "perl", "wupwise"]),
    (WorkloadType::Ilp, 4, &["mesa", "vortex", "fma3d"]),
    (WorkloadType::Mix, 1, &["twolf", "eon", "vortex"]),
    (WorkloadType::Mix, 2, &["lucas", "gap", "apsi"]),
    (WorkloadType::Mix, 3, &["equake", "perl", "gcc"]),
    (WorkloadType::Mix, 4, &["mcf", "apsi", "fma3d"]),
    (WorkloadType::Mem, 1, &["mcf", "twolf", "vpr"]),
    (WorkloadType::Mem, 2, &["swim", "twolf", "equake"]),
    (WorkloadType::Mem, 3, &["art", "twolf", "lucas"]),
    (WorkloadType::Mem, 4, &["equake", "vpr", "swim"]),
    // 4 threads
    (WorkloadType::Ilp, 1, &["gzip", "bzip2", "eon", "gcc"]),
    (WorkloadType::Ilp, 2, &["mesa", "gzip", "fma3d", "bzip2"]),
    (WorkloadType::Ilp, 3, &["crafty", "fma3d", "apsi", "vortex"]),
    (WorkloadType::Ilp, 4, &["apsi", "gap", "wupwise", "perl"]),
    (WorkloadType::Mix, 1, &["gzip", "twolf", "bzip2", "mcf"]),
    (WorkloadType::Mix, 2, &["mcf", "mesa", "lucas", "gzip"]),
    (WorkloadType::Mix, 3, &["art", "gap", "twolf", "crafty"]),
    (WorkloadType::Mix, 4, &["swim", "fma3d", "vpr", "bzip2"]),
    (WorkloadType::Mem, 1, &["mcf", "twolf", "vpr", "parser"]),
    (WorkloadType::Mem, 2, &["art", "twolf", "equake", "mcf"]),
    (WorkloadType::Mem, 3, &["equake", "parser", "mcf", "lucas"]),
    (WorkloadType::Mem, 4, &["art", "mcf", "vpr", "swim"]),
];

/// All 36 workloads of the paper's Table 4.
pub fn table4_workloads() -> Vec<Workload> {
    TABLE4
        .iter()
        .map(|(kind, group, benchmarks)| Workload {
            kind: *kind,
            group: *group,
            benchmarks: benchmarks.iter().map(|b| b.to_string()).collect(),
        })
        .collect()
}

/// The four workload groups of the given class and thread count, e.g.
/// `workloads_of(WorkloadType::Mem, 2)` = the paper's "MEM2" set.
pub fn workloads_of(kind: WorkloadType, threads: usize) -> Vec<Workload> {
    table4_workloads()
        .into_iter()
        .filter(|w| w.kind == kind && w.threads() == threads)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec;

    #[test]
    fn table4_has_36_workloads() {
        let all = table4_workloads();
        assert_eq!(all.len(), 36);
        for threads in [2, 3, 4] {
            for kind in WorkloadType::ALL {
                assert_eq!(
                    workloads_of(kind, threads).len(),
                    4,
                    "{kind}{threads} needs 4 groups"
                );
            }
        }
    }

    #[test]
    fn every_benchmark_in_table4_has_a_profile() {
        for w in table4_workloads() {
            for b in &w.benchmarks {
                assert!(spec::profile(b).is_some(), "missing profile for {b}");
            }
        }
    }

    #[test]
    fn workload_types_match_member_cache_behaviour() {
        for w in table4_workloads() {
            let mem_count = w
                .benchmarks
                .iter()
                .filter(|b| spec::mem_names().contains(&b.as_ref()))
                .count();
            match w.kind {
                WorkloadType::Ilp => {
                    assert_eq!(mem_count, 0, "{w} labelled ILP but has MEM threads")
                }
                WorkloadType::Mem => assert_eq!(
                    mem_count,
                    w.threads(),
                    "{w} labelled MEM but has ILP threads"
                ),
                WorkloadType::Mix => {
                    assert!(mem_count > 0 && mem_count < w.threads(), "{w} is not mixed")
                }
            }
        }
    }

    #[test]
    fn ids_are_unique() {
        let all = table4_workloads();
        let mut ids: Vec<String> = all.iter().map(|w| w.id()).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), all.len());
    }

    #[test]
    fn display_mentions_members() {
        let w = &workloads_of(WorkloadType::Mem, 2)[0];
        let s = w.to_string();
        assert!(s.contains("mcf") && s.contains("twolf"));
    }
}
