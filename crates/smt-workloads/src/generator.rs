//! Deterministic statistical trace generation.

use crate::profile::BenchmarkProfile;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use smt_isa::{BranchKind, DecodedInst, InstClass, RegClass};
use std::sync::{Arc, Mutex, OnceLock};

/// Execution phase of the generated program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Compute,
    Memory,
}

#[derive(Debug, Clone, Copy)]
struct BranchSite {
    pc: u64,
    target: u64,
    taken_prob: f64,
}

/// A deterministic, infinite instruction stream expanded from a
/// [`BenchmarkProfile`].
///
/// The generator is the repo's substitute for the paper's Alpha/SPEC2000
/// traces (see `DESIGN.md`). Two generators constructed with the same
/// profile, seed and data base produce identical streams, which the
/// simulator relies on for reproducibility.
///
/// # Examples
///
/// ```
/// use smt_workloads::{spec, TraceGenerator};
///
/// let p = spec::profile("gzip").unwrap();
/// let mut a = TraceGenerator::new(p, 7, 0);
/// let mut b = TraceGenerator::new(p, 7, 0);
/// for _ in 0..100 {
///     assert_eq!(a.next_inst(), b.next_inst());
/// }
/// ```
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    profile: BenchmarkProfile,
    seed: u64,
    thread_slot: u64,
    rng: SmallRng,
    seq: u64,
    pc: u64,
    code_base: u64,
    data_base: u64,
    phase: Phase,
    phase_left: u64,
    warm_cursor: u64,
    cold_cursor: u64,
    last_cold_load_seq: Option<u64>,
    call_depth: u32,
    sites: Vec<BranchSite>,
    /// Number of leading entries of `sites` that are biased (loop) sites.
    /// The split is fixed at construction, so site picking indexes the two
    /// ranges directly instead of rebuilding index vectors per branch.
    biased_count: usize,
    /// `ln(1 - 1/dep_mean)` — the geometric sampler's denominator for
    /// dependence distances, precomputed because it is drawn for almost
    /// every instruction (`ln` twice per sample was a measurable share of
    /// generation time). `NaN` when `dep_mean <= 1`.
    dep_ln_one_minus_p: f64,
    /// Descending geometric thresholds `exp(k · ln(1-p))` for
    /// `k = 1..=DEP_CLAMP`, shared across generators with the same
    /// `dep_mean` — the table behind the `ln`-free dependence-distance
    /// fast path (see [`TraceGenerator::dep_distance`]).
    dep_table: Arc<Vec<f64>>,
    /// Cumulative mix thresholds for sampling instruction classes.
    mix_cdf: [(f64, InstClass); 8],
}

/// Upper clamp of sampled dependence distances (instructions).
const DEP_CLAMP: u64 = 512;

/// The per-`dep_mean` threshold table for the dependence-distance sampler,
/// built once per distinct mean and shared (generators are rebuilt for
/// every sweep run; rebuilding 512 `exp` calls each time would eat the
/// session-reuse savings). Keyed by the bit pattern of `ln(1 - 1/mean)`;
/// a non-finite key (mean ≤ 1) yields an empty table, which is never
/// consulted because the sampler short-circuits first.
fn dep_threshold_table(ln_one_minus_p: f64) -> Arc<Vec<f64>> {
    type TableCache = Mutex<Vec<(u64, Arc<Vec<f64>>)>>;
    static CACHE: OnceLock<TableCache> = OnceLock::new();
    let key = ln_one_minus_p.to_bits();
    let mut cache = CACHE
        .get_or_init(|| Mutex::new(Vec::new()))
        .lock()
        .expect("dep-table cache poisoned");
    if let Some((_, table)) = cache.iter().find(|(k, _)| *k == key) {
        return Arc::clone(table);
    }
    let table: Arc<Vec<f64>> = Arc::new(if ln_one_minus_p.is_finite() {
        (1..=DEP_CLAMP)
            .map(|k| (ln_one_minus_p * k as f64).exp())
            .collect()
    } else {
        Vec::new()
    });
    cache.push((key, Arc::clone(&table)));
    table
}

impl TraceGenerator {
    /// Creates a generator for `profile`, seeded with `seed`. `thread_slot`
    /// offsets the data/code address space so concurrent threads have
    /// disjoint footprints (they still share cache *capacity*).
    ///
    /// # Panics
    ///
    /// Panics if the profile fails [`BenchmarkProfile::validate`].
    pub fn new(profile: &BenchmarkProfile, seed: u64, thread_slot: u64) -> Self {
        profile
            .validate()
            .expect("trace generator requires a valid profile");
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        // Per-thread address spaces are disjoint (bit 36+) and *staggered*
        // by an odd line count so that different threads' regions map to
        // different cache sets — without the stagger every thread's code
        // would land in the same I-cache sets (all bases share their low
        // bits) and three or more threads would conflict-evict each other's
        // fetch blocks forever.
        let stagger = thread_slot * 0x1_1040;
        let code_base = 0x0040_0000 + (thread_slot << 36) + stagger;
        let data_base = 0x1000_0000 + (thread_slot << 36) + 3 * stagger;

        let n_sites = profile.branches.sites;
        let biased_sites = ((n_sites as f64) * profile.branches.biased_frac).round() as usize;
        let code_bytes = profile.branches.code_bytes.max(256);
        // Programs spend most of their time in a small hot loop nest; only
        // occasional excursions touch the full code footprint. Biased
        // (loop) branches live in and target the hot region; the
        // data-dependent branches are spread across the footprint. Without
        // this locality the active instruction footprint of a multithreaded
        // workload would overflow the shared I-cache and fetch would be
        // I-cache-stalled most of the time — which real SPEC codes are not.
        let hot_code = code_bytes.min(8 * 1024);
        let sites = (0..n_sites)
            .map(|i| {
                if i < biased_sites {
                    // Loop back edge: the site jumps a short distance
                    // backwards, so the fetch stream cycles tightly over a
                    // small body whose I-cache lines are re-touched every
                    // iteration — like a real inner loop, and unlike a
                    // uniform-random jump, whose reuse distance would grow
                    // as the thread slows and make code residency bistable
                    // under multiprogrammed cache pressure.
                    let pc = code_base + (i as u64 * 97 % (hot_code / 4)) * 4;
                    let body = rng.gen_range(16..256) * 4;
                    let target = pc.saturating_sub(body).max(code_base);
                    // Biased (loop) site: learnable by gshare.
                    BranchSite {
                        pc,
                        target,
                        taken_prob: 0.985,
                    }
                } else {
                    let pc = code_base + (i as u64 * 193 % (code_bytes / 4)) * 4;
                    // Cold excursion half the time, back to the hot nest
                    // otherwise.
                    let target = if rng.gen_bool(0.5) {
                        code_base + rng.gen_range(0..code_bytes / 4) * 4
                    } else {
                        code_base + rng.gen_range(0..hot_code / 4) * 4
                    };
                    // Data-dependent site: effectively random direction.
                    BranchSite {
                        pc,
                        target,
                        taken_prob: profile.branches.random_taken_rate,
                    }
                }
            })
            .collect();

        let m = profile.mix;
        let entries = [
            (m.load, InstClass::Load),
            (m.store, InstClass::Store),
            (m.branch, InstClass::Branch),
            (m.int_alu, InstClass::IntAlu),
            (m.int_mul, InstClass::IntMul),
            (m.fp_alu, InstClass::FpAlu),
            (m.fp_mul, InstClass::FpMul),
            (m.fp_div, InstClass::FpDiv),
        ];
        let cold_cursor_start = rng.gen_range(0..(profile.mem.cold_bytes / 64).max(1)) * 64;
        let total = m.total();
        let mut acc = 0.0;
        let mix_cdf = entries.map(|(w, c)| {
            acc += w / total;
            (acc, c)
        });

        let mut this = TraceGenerator {
            profile: profile.clone(),
            seed,
            thread_slot,
            rng,
            seq: 0,
            pc: code_base,
            code_base,
            data_base,
            phase: Phase::Compute,
            phase_left: 1,
            warm_cursor: 0,
            // Random start so two generators over the same region (e.g.
            // the decorrelated warm-up twin) do not walk the same
            // sequential path through the cold region.
            cold_cursor: cold_cursor_start,
            last_cold_load_seq: None,
            call_depth: 0,
            sites,
            biased_count: biased_sites.min(n_sites),
            dep_ln_one_minus_p: ln_one_minus_inv(profile.dep_mean),
            dep_table: dep_threshold_table(ln_one_minus_inv(profile.dep_mean)),
            mix_cdf,
        };
        this.advance_phase();
        this
    }

    /// Number of instructions generated so far.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// `true` while the generator is in a memory phase (used by tests and
    /// the Table-5 experiment for ground truth).
    pub fn in_memory_phase(&self) -> bool {
        self.phase == Phase::Memory
    }

    /// The profile driving this generator.
    pub fn profile(&self) -> &BenchmarkProfile {
        &self.profile
    }

    /// A *decorrelated* twin of this generator: same profile and thread
    /// slot (same regions, same statistics) but a different random stream.
    /// Used for functional cache warm-up — the twin touches the same hot,
    /// warm and code regions (which is what warming needs) without leaking
    /// the exact future cold-region lines into the caches, which would
    /// erase the measured run's compulsory misses.
    pub fn decorrelated(&self, salt: u64) -> TraceGenerator {
        TraceGenerator::new(
            &self.profile,
            self.seed ^ salt.wrapping_mul(0x5052_4557_4d5f),
            self.thread_slot,
        )
    }

    fn advance_phase(&mut self) {
        let (next, mean) = match self.phase {
            Phase::Compute => (Phase::Memory, self.profile.phases.mem_len),
            Phase::Memory => (Phase::Compute, self.profile.phases.compute_len),
        };
        self.phase = next;
        self.phase_left = sample_geometric(&mut self.rng, mean).max(1);
    }

    fn sample_class(&mut self) -> InstClass {
        let u: f64 = self.rng.gen();
        // Branchless equivalent of "first entry with `u <= threshold`":
        // the index is the number of thresholds strictly below `u`. Eight
        // predicate sums vectorise; the early-exit scan it replaces was a
        // data-dependent branch per instruction.
        let idx = self
            .mix_cdf
            .iter()
            .map(|&(threshold, _)| usize::from(threshold < u))
            .sum::<usize>();
        match self.mix_cdf.get(idx) {
            Some(&(_, class)) => class,
            None => InstClass::IntAlu,
        }
    }

    /// Samples a dependence distance: the clamped geometric draw
    /// `ceil(ln(u) / ln(1-p)).clamp(1, 512)`, computed through the
    /// precomputed threshold table instead of a per-sample `ln`.
    ///
    /// Bit-identical to the direct expression: the distance is `k` exactly
    /// when `u` falls in `[exp(k·L), exp((k-1)·L))`, so a binary search
    /// over the `exp(k·L)` table reproduces the `ln`-based result — except
    /// possibly within a few ULPs of a threshold, where the two float
    /// computations could round apart. A relative guard band of `1e-9`
    /// around each interior threshold (four orders of magnitude wider than
    /// the actual error bound of either expression, and crossed by ~1e-6
    /// of draws) falls back to the original expression, which settles
    /// those draws by definition. The clamp collapses the `k = 512/513`
    /// boundary, so the table's tail needs no guard.
    fn dep_distance(&mut self) -> u32 {
        if self.profile.dep_mean <= 1.0 {
            return 1;
        }
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let table = &self.dep_table[..];
        // Thresholds are descending; count how many exceed `u`. The draw
        // is geometric, so almost every sample lands in the first few
        // thresholds: count those with a branchless (vectorisable) sweep
        // and only fall back to binary search for the rare deep tail —
        // a data-dependent binary search over 512 entries costs ~9 branch
        // mispredictions, which is as slow as the `ln` it replaces.
        const SWEEP: usize = 16;
        let head = table[..SWEEP.min(table.len())]
            .iter()
            .map(|&t| usize::from(t > u))
            .sum::<usize>();
        let above = if head < SWEEP.min(table.len()) {
            head
        } else {
            SWEEP + table[SWEEP..].partition_point(|&t| t > u)
        };
        if above >= table.len() {
            return DEP_CLAMP as u32; // k > DEP_CLAMP, clamped
        }
        let k = above + 1; // smallest k with u >= exp(k·L)
        let lower = table[k - 1];
        let near_lower = u - lower < lower * 1e-9;
        let near_upper = k >= 2 && {
            let upper = table[k - 2];
            upper - u < upper * 1e-9
        };
        if near_lower || near_upper {
            // Guard band: defer to the exact expression (same `u`).
            let exact = (u.ln() / self.dep_ln_one_minus_p).ceil().max(1.0) as u64;
            return exact.clamp(1, DEP_CLAMP) as u32;
        }
        k as u32
    }

    /// Samples a data address from the nested-working-set model. Returns
    /// `(address, is_cold)`.
    fn sample_address(&mut self) -> (u64, bool) {
        let mem = self.profile.mem;
        let boost = match self.phase {
            Phase::Memory => self.profile.phases.mem_boost,
            Phase::Compute => self.profile.phases.compute_damp,
        };
        let warm = (mem.warm_frac * boost).min(0.9);
        let cold = (mem.cold_frac * boost).min(0.9 - warm.min(0.89));
        let u: f64 = self.rng.gen();
        if u < cold {
            let off = self.cold_offset(mem.cold_bytes);
            (self.data_base + 0x4000_0000 + off, true)
        } else if u < cold + warm {
            // The warm region is a *conflict set*: `warm_bytes` worth of
            // lines arranged as 4 tags per L1 set. A 2-way L1 can hold at
            // most half of each set's tags, so every warm access misses
            // the L1 by construction, while the full region stays
            // L2-resident with a short reuse distance (one pass over the
            // region). This gives the profile's `warm_frac` an exact
            // L1-miss/L2-hit contribution — the basis of the Table-3
            // calibration — and keeps the region L2-resident even when a
            // co-running thread streams misses through the L2.
            const TAGS: u64 = 4;
            const L1_SETS: u64 = 512;
            let lines = (mem.warm_bytes / 64).max(TAGS);
            let sets = (lines / TAGS).max(1);
            // Half the touches advance a cyclic sweep; the other half
            // revisit a random earlier position. The mixture gives the
            // region a *spread* of reuse distances, so L2 pressure from
            // co-running threads evicts warm lines gradually instead of
            // ageing the whole region past the LRU cliff at once — the
            // cliff made co-run performance bistable.
            let j = if self.rng.gen_bool(0.5) {
                self.warm_cursor = self.warm_cursor.wrapping_add(1);
                self.warm_cursor
            } else {
                self.warm_cursor
                    .wrapping_sub(self.rng.gen_range(1..lines.max(2)))
            };
            let tag = j % TAGS;
            let set = (j / TAGS) % sets;
            let line_off = set + L1_SETS * tag;
            (self.data_base + 0x0100_0000 + line_off * 64, false)
        } else {
            let off = self.rng.gen_range(0..mem.hot_bytes / 8) * 8;
            (self.data_base + off, false)
        }
    }

    /// Cold-region offsets always touch a fresh cache line (the region is
    /// far larger than the L2): streaming profiles advance sequentially,
    /// irregular profiles jump randomly. Either way the access is an L2
    /// miss; `streaming` only shapes the address pattern.
    fn cold_offset(&mut self, region_bytes: u64) -> u64 {
        if self.rng.gen_bool(self.profile.mem.streaming) {
            self.cold_cursor = (self.cold_cursor + 64) % region_bytes;
            self.cold_cursor
        } else {
            let lines = (region_bytes / 64).max(1);
            self.rng.gen_range(0..lines) * 64
        }
    }

    /// Generates the next dynamic instruction of the stream.
    pub fn next_inst(&mut self) -> DecodedInst {
        let class = self.sample_class();
        let pc = self.pc;
        self.pc = self.code_base
            + ((self.pc - self.code_base + 4) % self.profile.branches.code_bytes.max(256));

        let inst = match class {
            InstClass::Load => self.gen_load(pc),
            InstClass::Store => self.gen_store(pc),
            InstClass::Branch => self.gen_branch(pc),
            c => self.gen_alu(pc, c),
        };

        self.seq += 1;
        self.phase_left -= 1;
        if self.phase_left == 0 {
            self.advance_phase();
        }
        inst
    }

    fn gen_load(&mut self, pc: u64) -> DecodedInst {
        let (addr, is_cold) = self.sample_address();
        let dest =
            if self.profile.fp_load_frac > 0.0 && self.rng.gen_bool(self.profile.fp_load_frac) {
                RegClass::Fp
            } else {
                RegClass::Int
            };
        let mut b = DecodedInst::builder(InstClass::Load, pc)
            .dest(dest)
            .mem(addr, 8);
        if is_cold {
            // Pointer chasing: the address of this cold load depends on the
            // data of the previous cold load, serialising the misses.
            if let Some(prev) = self.last_cold_load_seq {
                if self.rng.gen_bool(self.profile.mem.pointer_chase) {
                    let dist = (self.seq - prev).clamp(1, 512) as u32;
                    b = b.dep(dist);
                }
            }
            self.last_cold_load_seq = Some(self.seq);
        } else {
            let d = self.dep_distance();
            b = b.dep(d);
        }
        b.build()
    }

    fn gen_store(&mut self, pc: u64) -> DecodedInst {
        let (addr, _) = self.sample_address();
        let d1 = self.dep_distance();
        let d2 = self.dep_distance();
        DecodedInst::builder(InstClass::Store, pc)
            .mem(addr, 8)
            .dep(d1)
            .dep(d2)
            .build()
    }

    fn gen_branch(&mut self, pc: u64) -> DecodedInst {
        // Returns match outstanding calls; calls occur with call_frac.
        if self.call_depth > 0 && self.rng.gen_bool(0.5) {
            self.call_depth -= 1;
            let target = self.code_base + self.rng.gen_range(0..64) * 4;
            return DecodedInst::builder(InstClass::Branch, pc)
                .branch(BranchKind::Return, true, target)
                .build();
        }
        if self.rng.gen_bool(self.profile.branches.call_frac) {
            self.call_depth = (self.call_depth + 1).min(64);
            let site = self.pick_site();
            return DecodedInst::builder(InstClass::Branch, site.pc)
                .branch(BranchKind::Call, true, site.target)
                .build();
        }
        let site = self.pick_site();
        let taken = self.rng.gen_bool(site.taken_prob);
        let d = self.dep_distance();
        let inst = DecodedInst::builder(InstClass::Branch, site.pc)
            .branch(BranchKind::Conditional, taken, site.target)
            .dep(d)
            .build();
        if taken {
            self.pc = site.target;
        }
        inst
    }

    fn pick_site(&mut self) -> BranchSite {
        // Biased sites are hot (loop branches execute often): weight them
        // by the profile's biased fraction of *dynamic* branches. Biased
        // sites occupy `..biased_count`, the data-dependent ones the rest;
        // the ranges are fixed, so this draws the same random sequence the
        // old index-vector implementation did without rebuilding (and
        // heap-allocating) those vectors on every branch.
        let biased_len = self.biased_count;
        let random_len = self.sites.len() - biased_len;
        let use_biased = biased_len > 0
            && (random_len == 0 || self.rng.gen_bool(self.profile.branches.biased_frac));
        let (first, len) = if use_biased {
            (0, biased_len)
        } else {
            (biased_len, random_len)
        };
        let idx = first + self.rng.gen_range(0..len);
        self.sites[idx]
    }

    fn gen_alu(&mut self, pc: u64, class: InstClass) -> DecodedInst {
        let dest = if class.is_fp() {
            RegClass::Fp
        } else {
            RegClass::Int
        };
        let d1 = self.dep_distance();
        let mut b = DecodedInst::builder(class, pc).dest(dest).dep(d1);
        if self.rng.gen_bool(0.25) {
            let d2 = self.dep_distance();
            b = b.dep(d2);
        }
        b.build()
    }
}

/// `ln(1 - 1/mean)`, the denominator of the geometric sampler (`NaN` for
/// `mean <= 1`, where the sampler short-circuits before using it).
fn ln_one_minus_inv(mean: f64) -> f64 {
    let p = 1.0 / mean;
    (1.0 - p).ln()
}

/// Samples a geometric-like positive integer with the given mean.
fn sample_geometric(rng: &mut SmallRng, mean: f64) -> u64 {
    sample_geometric_with(rng, mean, ln_one_minus_inv(mean))
}

/// [`sample_geometric`] with the `ln(1 - 1/mean)` denominator precomputed
/// by the caller — bit-identical to recomputing it (same expression, same
/// division), minus one `ln` per sample on the per-instruction hot path.
fn sample_geometric_with(rng: &mut SmallRng, mean: f64, ln_one_minus_p: f64) -> u64 {
    if mean <= 1.0 {
        return 1;
    }
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    (u.ln() / ln_one_minus_p).ceil().max(1.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec;
    use std::collections::HashMap;

    #[test]
    fn deterministic_for_same_seed() {
        let p = spec::profile("gcc").unwrap();
        let mut a = TraceGenerator::new(p, 123, 1);
        let mut b = TraceGenerator::new(p, 123, 1);
        for _ in 0..5_000 {
            assert_eq!(a.next_inst(), b.next_inst());
        }
    }

    /// The table-driven dependence-distance fast path must agree with the
    /// direct `ceil(ln(u)/ln(1-p))` expression draw for draw — the rng
    /// stream and the sampled values are both pinned.
    #[test]
    fn table_sampler_matches_ln_expression() {
        for bench in ["gcc", "mcf", "art", "gzip", "swim"] {
            let p = spec::profile(bench).unwrap();
            let mut g = TraceGenerator::new(p, 123, 0);
            let mut reference_rng = g.rng.clone();
            let l = g.dep_ln_one_minus_p;
            for i in 0..200_000 {
                let expect =
                    sample_geometric_with(&mut reference_rng, p.dep_mean, l).clamp(1, 512) as u32;
                let got = g.dep_distance();
                assert_eq!(got, expect, "{bench}: draw {i} diverged");
            }
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let p = spec::profile("gcc").unwrap();
        let mut a = TraceGenerator::new(p, 1, 0);
        let mut b = TraceGenerator::new(p, 2, 0);
        let differs = (0..1000).any(|_| a.next_inst() != b.next_inst());
        assert!(differs);
    }

    #[test]
    fn mix_roughly_matches_profile() {
        let p = spec::profile("gzip").unwrap();
        let mut g = TraceGenerator::new(p, 42, 0);
        let mut counts: HashMap<InstClass, u64> = HashMap::new();
        let n = 200_000;
        for _ in 0..n {
            *counts.entry(g.next_inst().class).or_default() += 1;
        }
        let total = p.mix.total();
        let load_frac = *counts.get(&InstClass::Load).unwrap_or(&0) as f64 / n as f64;
        assert!(
            (load_frac - p.mix.load / total).abs() < 0.02,
            "load fraction {load_frac} vs profile {}",
            p.mix.load / total
        );
        let br_frac = *counts.get(&InstClass::Branch).unwrap_or(&0) as f64 / n as f64;
        assert!((br_frac - p.mix.branch / total).abs() < 0.02);
    }

    #[test]
    fn integer_profile_emits_no_fp() {
        let p = spec::profile("mcf").unwrap();
        let mut g = TraceGenerator::new(p, 9, 0);
        for _ in 0..50_000 {
            let i = g.next_inst();
            assert!(!i.class.is_fp(), "integer benchmark emitted {}", i.class);
            if let Some(dest) = i.dest {
                assert_ne!(dest, RegClass::Fp);
            }
        }
    }

    #[test]
    fn fp_profile_emits_fp_work() {
        let p = spec::profile("swim").unwrap();
        let mut g = TraceGenerator::new(p, 9, 0);
        let fp = (0..50_000).filter(|_| g.next_inst().class.is_fp()).count();
        assert!(fp > 5_000, "FP benchmark generated only {fp} FP ops");
    }

    #[test]
    fn phases_alternate() {
        let p = spec::profile("mcf").unwrap();
        let mut g = TraceGenerator::new(p, 3, 0);
        let mut mem_insts = 0u64;
        let n = 100_000;
        for _ in 0..n {
            g.next_inst();
            if g.in_memory_phase() {
                mem_insts += 1;
            }
        }
        assert!(mem_insts > 0, "never entered a memory phase");
        assert!(mem_insts < n, "never left the memory phase");
    }

    #[test]
    fn memory_instructions_carry_addresses() {
        let p = spec::profile("art").unwrap();
        let mut g = TraceGenerator::new(p, 5, 2);
        for _ in 0..20_000 {
            let i = g.next_inst();
            if i.class.is_mem() {
                let m = i.mem.expect("memory inst without address");
                assert!(m.addr >= 0x1000_0000, "address below data base");
            }
            if i.class == InstClass::Branch {
                assert!(i.branch.is_some());
            }
        }
    }

    #[test]
    fn thread_slots_do_not_overlap() {
        let p = spec::profile("art").unwrap();
        let mut a = TraceGenerator::new(p, 5, 0);
        let mut b = TraceGenerator::new(p, 5, 1);
        let addr_of = |g: &mut TraceGenerator| loop {
            let i = g.next_inst();
            if let Some(m) = i.mem {
                return m.addr;
            }
        };
        for _ in 0..100 {
            let (x, y) = (addr_of(&mut a), addr_of(&mut b));
            assert_ne!(x >> 36, y >> 36, "thread footprints must be disjoint");
        }
    }

    #[test]
    fn geometric_mean_is_close() {
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 100_000;
        let sum: u64 = (0..n).map(|_| sample_geometric(&mut rng, 8.0)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 8.0).abs() < 0.5, "geometric mean off: {mean}");
    }
}
