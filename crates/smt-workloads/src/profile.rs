//! Statistical benchmark profiles.

use serde::{Deserialize, Serialize};

/// Which SPEC2000 sub-suite a benchmark belongs to (determines default
/// instruction mix and whether the thread ever touches FP resources —
/// integer programs are *inactive* for FP resources in DCRA's
/// classification, Section 3.1.2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Suite {
    /// SPECint2000-like.
    Int,
    /// SPECfp2000-like.
    Fp,
}

/// Instruction-class mix as sampling weights (need not sum to 1; they are
/// normalised at sampling time).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InstMix {
    /// Loads.
    pub load: f64,
    /// Stores.
    pub store: f64,
    /// Branches (conditional + calls/returns/jumps).
    pub branch: f64,
    /// Simple integer ALU.
    pub int_alu: f64,
    /// Integer multiply.
    pub int_mul: f64,
    /// FP add/compare.
    pub fp_alu: f64,
    /// FP multiply.
    pub fp_mul: f64,
    /// FP divide/sqrt.
    pub fp_div: f64,
}

impl InstMix {
    /// Typical integer-program mix.
    pub fn integer() -> Self {
        InstMix {
            load: 0.24,
            store: 0.10,
            branch: 0.14,
            int_alu: 0.47,
            int_mul: 0.05,
            fp_alu: 0.0,
            fp_mul: 0.0,
            fp_div: 0.0,
        }
    }

    /// Typical FP-program mix.
    pub fn floating_point() -> Self {
        InstMix {
            load: 0.28,
            store: 0.10,
            branch: 0.05,
            int_alu: 0.22,
            int_mul: 0.01,
            fp_alu: 0.20,
            fp_mul: 0.12,
            fp_div: 0.02,
        }
    }

    /// Sum of all weights.
    pub fn total(&self) -> f64 {
        self.load
            + self.store
            + self.branch
            + self.int_alu
            + self.int_mul
            + self.fp_alu
            + self.fp_mul
            + self.fp_div
    }

    /// `true` if any FP class has non-zero weight.
    pub fn uses_fp(&self) -> bool {
        self.fp_alu > 0.0 || self.fp_mul > 0.0 || self.fp_div > 0.0
    }
}

/// Memory behaviour: a nested-working-set model.
///
/// Data accesses draw from three regions:
///
/// * a **hot** region sized to stay L1-resident,
/// * a **warm** region sized to fit the L2 but not the L1,
/// * a **cold** region far larger than the L2.
///
/// The steady-state L1 miss ratio is then ≈ `warm_frac + cold_frac` and the
/// L2 (local) miss ratio ≈ `cold_frac / (warm_frac + cold_frac)`, which
/// makes the Table-3 calibration direct. `pointer_chase` controls how many
/// cold loads depend on the previous cold load — serial misses (mcf-like,
/// no memory parallelism) versus independent misses (art/swim-like, high
/// memory parallelism).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemBehavior {
    /// Bytes of the L1-resident hot region.
    pub hot_bytes: u64,
    /// Bytes of the L2-resident, L1-conflicting warm region (arranged as a
    /// conflict set: 4 tags per L1 set, so warm accesses always miss the
    /// L1 and always hit the L2 once warm).
    pub warm_bytes: u64,
    /// Bytes of the beyond-L2 cold region.
    pub cold_bytes: u64,
    /// Fraction of accesses to the warm region (baseline, compute phase).
    pub warm_frac: f64,
    /// Fraction of accesses to the cold region (baseline, compute phase).
    pub cold_frac: f64,
    /// Fraction of cold *loads* that chase pointers (depend on the previous
    /// cold load).
    pub pointer_chase: f64,
    /// Fraction of warm/cold accesses that stream sequentially (spatial
    /// locality within a line) rather than jump randomly.
    pub streaming: f64,
}

impl MemBehavior {
    /// A cache-friendly default: everything hits the L1 hot set.
    pub fn cache_friendly() -> Self {
        MemBehavior {
            hot_bytes: 8 * 1024,
            warm_bytes: 8 * 1024,
            cold_bytes: 16 * 1024 * 1024,
            warm_frac: 0.01,
            cold_frac: 0.0005,
            pointer_chase: 0.1,
            streaming: 0.5,
        }
    }
}

/// Branch behaviour: a population of synthetic static branch sites.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BranchBehavior {
    /// Number of static conditional-branch sites.
    pub sites: usize,
    /// Fraction of dynamic conditional branches coming from *biased* sites
    /// (strongly taken, easily learned by gshare); the remainder come from
    /// data-dependent sites with `random_taken_rate`.
    pub biased_frac: f64,
    /// Taken probability of the data-dependent sites.
    pub random_taken_rate: f64,
    /// Fraction of branch instructions that are calls (matched by returns).
    pub call_frac: f64,
    /// Code footprint in bytes (drives I-cache behaviour).
    pub code_bytes: u64,
}

impl BranchBehavior {
    /// Loop-heavy, predictable control flow.
    pub fn predictable() -> Self {
        BranchBehavior {
            sites: 64,
            biased_frac: 0.92,
            random_taken_rate: 0.5,
            call_frac: 0.05,
            code_bytes: 24 * 1024,
        }
    }
}

/// Memory/compute phase alternation.
///
/// Programs alternate **compute** phases (baseline region fractions scaled
/// down) and **memory** phases (scaled up). The alternation produces the
/// fast/slow phase mixture that the paper's Table 5 measures and that DCRA's
/// continuous re-classification exploits.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseBehavior {
    /// Mean length (instructions) of a compute phase.
    pub compute_len: f64,
    /// Mean length (instructions) of a memory phase.
    pub mem_len: f64,
    /// Multiplier applied to `warm_frac`/`cold_frac` during memory phases.
    pub mem_boost: f64,
    /// Multiplier applied during compute phases (≤ 1).
    pub compute_damp: f64,
}

impl PhaseBehavior {
    /// Mild phase behaviour for compute-bound programs.
    pub fn mild() -> Self {
        PhaseBehavior {
            compute_len: 4000.0,
            mem_len: 400.0,
            mem_boost: 3.0,
            compute_damp: 0.6,
        }
    }
}

/// Error returned when a profile fails validation.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileError(String);

impl std::fmt::Display for ProfileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid benchmark profile: {}", self.0)
    }
}

impl std::error::Error for ProfileError {}

/// A complete statistical description of one benchmark.
///
/// Build with [`BenchmarkProfile::builder`]; ready-made SPEC2000-like
/// profiles live in [`crate::spec`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkProfile {
    /// Benchmark name (paper's naming, e.g. `"mcf"`, `"perl"`).
    pub name: String,
    /// Sub-suite (integer or FP).
    pub suite: Suite,
    /// Instruction mix.
    pub mix: InstMix,
    /// Memory behaviour.
    pub mem: MemBehavior,
    /// Branch behaviour.
    pub branches: BranchBehavior,
    /// Phase alternation.
    pub phases: PhaseBehavior,
    /// Mean dependence distance (instructions); larger = more ILP.
    pub dep_mean: f64,
    /// Fraction of loads whose destination is an FP register (FP suites).
    pub fp_load_frac: f64,
    /// Whether this benchmark is memory-bounded by the paper's Table-3
    /// criterion (L2 miss rate above 1%). Defaults to an analytic estimate
    /// from the working-set fractions; the calibrated profiles in
    /// [`crate::spec`] set it explicitly from the paper's measurements.
    pub mem_bound: bool,
}

impl BenchmarkProfile {
    /// Starts building a profile with suite-appropriate defaults.
    pub fn builder(name: impl Into<String>, suite: Suite) -> BenchmarkProfileBuilder {
        let mix = match suite {
            Suite::Int => InstMix::integer(),
            Suite::Fp => InstMix::floating_point(),
        };
        BenchmarkProfileBuilder {
            profile: BenchmarkProfile {
                name: name.into(),
                suite,
                mix,
                mem: MemBehavior::cache_friendly(),
                branches: BranchBehavior::predictable(),
                phases: PhaseBehavior::mild(),
                dep_mean: 6.0,
                fp_load_frac: if suite == Suite::Fp { 0.6 } else { 0.0 },
                mem_bound: false,
            },
            mem_bound_set: false,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError`] if any fraction is outside `[0, 1]`, the
    /// region fractions exceed 1 even after the phase boost, the mix is
    /// empty, or a region is empty while carrying weight.
    pub fn validate(&self) -> Result<(), ProfileError> {
        let frac = |v: f64, what: &str| {
            if !(0.0..=1.0).contains(&v) {
                Err(ProfileError(format!("{what} = {v} outside [0,1]")))
            } else {
                Ok(())
            }
        };
        frac(self.mem.warm_frac, "warm_frac")?;
        frac(self.mem.cold_frac, "cold_frac")?;
        frac(self.mem.pointer_chase, "pointer_chase")?;
        frac(self.mem.streaming, "streaming")?;
        frac(self.branches.biased_frac, "biased_frac")?;
        frac(self.branches.random_taken_rate, "random_taken_rate")?;
        frac(self.branches.call_frac, "call_frac")?;
        frac(self.fp_load_frac, "fp_load_frac")?;
        for (weight, class) in [
            (self.mix.load, "load"),
            (self.mix.store, "store"),
            (self.mix.branch, "branch"),
            (self.mix.int_alu, "int_alu"),
            (self.mix.int_mul, "int_mul"),
            (self.mix.fp_alu, "fp_alu"),
            (self.mix.fp_mul, "fp_mul"),
            (self.mix.fp_div, "fp_div"),
        ] {
            if !weight.is_finite() || weight < 0.0 {
                return Err(ProfileError(format!(
                    "mix weight {class} = {weight} must be finite and non-negative"
                )));
            }
        }
        if self.mix.total() <= 0.0 {
            return Err(ProfileError("instruction mix has zero total weight".into()));
        }
        if self.mem.warm_frac + self.mem.cold_frac > 1.0 {
            return Err(ProfileError("warm_frac + cold_frac exceeds 1".into()));
        }
        if self.dep_mean < 1.0 {
            return Err(ProfileError(format!(
                "dep_mean {} must be >= 1",
                self.dep_mean
            )));
        }
        if self.branches.sites == 0 {
            return Err(ProfileError("need at least one branch site".into()));
        }
        if self.mem.hot_bytes < 64 || self.mem.warm_bytes < 64 || self.mem.cold_bytes < 64 {
            return Err(ProfileError(
                "memory regions must hold at least a line".into(),
            ));
        }
        Ok(())
    }

    /// `true` if, by Table 3's criterion, this profile is memory-bounded
    /// (L2 miss rate above 1%).
    pub fn is_mem_bound(&self) -> bool {
        self.mem_bound
    }

    /// Analytic estimate of memory-boundedness from the working-set
    /// fractions, used as the default when a builder does not set
    /// [`BenchmarkProfileBuilder::mem_bound`] explicitly.
    pub fn estimate_mem_bound(&self) -> bool {
        let l1_miss = self.mem.warm_frac + self.mem.cold_frac;
        if l1_miss <= 0.0 {
            return false;
        }
        let l2_local = self.mem.cold_frac / l1_miss;
        l2_local > 0.02 && self.mem.cold_frac > 0.0015
    }
}

/// Builder for [`BenchmarkProfile`]; see [`BenchmarkProfile::builder`].
#[derive(Debug, Clone)]
pub struct BenchmarkProfileBuilder {
    profile: BenchmarkProfile,
    mem_bound_set: bool,
}

impl BenchmarkProfileBuilder {
    /// Overrides the instruction mix.
    pub fn mix(mut self, mix: InstMix) -> Self {
        self.profile.mix = mix;
        self
    }

    /// Overrides the memory behaviour.
    pub fn mem(mut self, mem: MemBehavior) -> Self {
        self.profile.mem = mem;
        self
    }

    /// Overrides the branch behaviour.
    pub fn branches(mut self, b: BranchBehavior) -> Self {
        self.profile.branches = b;
        self
    }

    /// Overrides the phase behaviour.
    pub fn phases(mut self, p: PhaseBehavior) -> Self {
        self.profile.phases = p;
        self
    }

    /// Sets the mean dependence distance.
    pub fn dep_mean(mut self, d: f64) -> Self {
        self.profile.dep_mean = d;
        self
    }

    /// Sets the FP-load fraction.
    pub fn fp_load_frac(mut self, f: f64) -> Self {
        self.profile.fp_load_frac = f;
        self
    }

    /// Explicitly marks the benchmark as memory-bounded (or not) instead of
    /// relying on the analytic estimate.
    pub fn mem_bound(mut self, mem_bound: bool) -> Self {
        self.profile.mem_bound = mem_bound;
        self.mem_bound_set = true;
        self
    }

    /// Finishes and validates the profile.
    ///
    /// # Errors
    ///
    /// Propagates [`BenchmarkProfile::validate`] failures.
    pub fn build(self) -> Result<BenchmarkProfile, ProfileError> {
        let mut profile = self.profile;
        if !self.mem_bound_set {
            profile.mem_bound = profile.estimate_mem_bound();
        }
        profile.validate()?;
        Ok(profile)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_valid_defaults() {
        let p = BenchmarkProfile::builder("test", Suite::Int)
            .build()
            .unwrap();
        assert_eq!(p.name, "test");
        assert!(!p.mix.uses_fp());
        p.validate().unwrap();
    }

    #[test]
    fn fp_suite_uses_fp() {
        let p = BenchmarkProfile::builder("fp", Suite::Fp).build().unwrap();
        assert!(p.mix.uses_fp());
        assert!(p.fp_load_frac > 0.0);
    }

    #[test]
    fn validation_rejects_bad_fractions() {
        let mut p = BenchmarkProfile::builder("bad", Suite::Int)
            .build()
            .unwrap();
        p.mem.cold_frac = 1.5;
        assert!(p.validate().is_err());

        let mut p2 = BenchmarkProfile::builder("bad2", Suite::Int)
            .build()
            .unwrap();
        p2.mem.warm_frac = 0.8;
        p2.mem.cold_frac = 0.5;
        assert!(p2.validate().is_err());
    }

    #[test]
    fn validation_rejects_degenerate_shapes() {
        let mut p = BenchmarkProfile::builder("bad", Suite::Int)
            .build()
            .unwrap();
        p.dep_mean = 0.0;
        assert!(p.validate().is_err());

        let mut p2 = BenchmarkProfile::builder("bad", Suite::Int)
            .build()
            .unwrap();
        p2.branches.sites = 0;
        assert!(p2.validate().is_err());
    }

    #[test]
    fn mem_bound_criterion_tracks_cold_fraction() {
        let mut p = BenchmarkProfile::builder("m", Suite::Int).build().unwrap();
        p.mem.warm_frac = 0.15;
        p.mem.cold_frac = 0.05;
        assert!(p.estimate_mem_bound());
        p.mem.cold_frac = 0.0;
        assert!(!p.estimate_mem_bound());
    }

    #[test]
    fn explicit_mem_bound_overrides_estimate() {
        let p = BenchmarkProfile::builder("m", Suite::Int)
            .mem_bound(true)
            .build()
            .unwrap();
        assert!(p.is_mem_bound());
        assert!(!p.estimate_mem_bound(), "default shape is cache friendly");
    }

    #[test]
    fn error_display_is_informative() {
        let e = ProfileError("warm_frac = 2 outside [0,1]".to_string());
        assert!(e.to_string().contains("warm_frac"));
    }
}
