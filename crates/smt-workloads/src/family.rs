//! Seeded scenario families: whole batches of simulator-ready workload
//! mixes generated from a single `u64` seed plus a [`FamilySpec`].
//!
//! The paper's evaluation sweeps 12 hand-curated Table-4 mixes per thread
//! count. A *family* generalises that: from one seed the generator emits an
//! arbitrary number of distinct, deterministic mixes in one of three
//! profiles —
//!
//! * [`ScenarioProfile::Expected`] — parameter-jittered variants of the
//!   paper's ILP/MIX/MEM Table-4 workloads, staying within each base
//!   benchmark's calibrated envelope;
//! * [`ScenarioProfile::Stress`] — pathological shapes (MSHR pressure from
//!   independent-miss floods, TLB thrash over a huge random footprint,
//!   100%-MEM mixes, branchy rapid phase flips) that push the machine far
//!   outside the Table-4 envelope;
//! * [`ScenarioProfile::Adversarial`] — one dedicated antagonist per
//!   fetch/allocation policy, built to exploit that policy's specific
//!   heuristic (e.g. loads that stall just under FLUSH's L2-miss trigger,
//!   FP bursts spaced just past DCRA's activity window).
//!
//! Determinism contract: `generate(spec, seed)` is a pure function — the
//! same spec and seed reproduce bit-identical mixes (and therefore
//! bit-identical traces) regardless of call site, thread count or
//! generation order. Each mix derives its own seed from
//! `(family seed, profile tag, mix index)`, so mixes can be produced
//! independently and in parallel without changing the result; the
//! `scenario_determinism` integration suite pins all of this.
//!
//! # Examples
//!
//! ```
//! use smt_workloads::{FamilySpec, ScenarioFamily};
//!
//! let spec = FamilySpec::expected(4);
//! let fam = ScenarioFamily::generate(&spec, 42).unwrap();
//! assert_eq!(fam.mixes().len(), 4);
//! let again = ScenarioFamily::generate(&spec, 42).unwrap();
//! assert_eq!(fam.mixes()[0].profiles, again.mixes()[0].profiles);
//! ```

use crate::profile::{
    BenchmarkProfile, BranchBehavior, InstMix, MemBehavior, PhaseBehavior, Suite,
};
use crate::spec;
use crate::workload::{table4_workloads, Workload};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Largest thread count a family may request; mirrors
/// `smt_isa::ThreadId::MAX_THREADS` (pinned by a sync test in `smt-sim`,
/// which can see both crates).
pub const MAX_FAMILY_THREADS: usize = 8;

/// DCRA's activity-window length in cycles (the counter reset value a
/// thread's FP activity decays from). Mirrors
/// `smt_sim::knobs::DCRA_ACTIVITY_WINDOW`; the DCRA antagonist spaces its
/// FP bursts just past this window so the thread's FP share is always
/// being reclaimed at the moment it is needed. A sync test in `smt-sim`
/// pins the two constants equal.
pub const DCRA_ACTIVITY_WINDOW: u32 = 256;

/// FLUSH++'s pressure-window length in cycles. Mirrors
/// `smt_sim::knobs::FLUSHPP_PRESSURE_WINDOW` (sync-tested there); the
/// FLUSH++ antagonist flips its memory/compute phases at roughly this
/// period so the policy's cached classification is always one window
/// stale.
pub const FLUSHPP_PRESSURE_WINDOW: u64 = 4096;

/// Baseline L2-hit latency in cycles — the delay after which an L2 *miss*
/// is detected and reported to the policy, i.e. the trigger threshold of
/// the STALL/FLUSH family. Mirrors `SimConfig::l2_detect_delay()` on the
/// baseline machine (sync-tested in `smt-sim`); the STALL/FLUSH/DG
/// antagonists generate loads that stall for about this long (L1 miss, L2
/// hit) and therefore never trip the trigger.
pub const L2_DETECT_DELAY: u32 = 20;

/// The nine canonical policies, as targets for adversarial generation.
///
/// This mirrors `smt-experiments`' `PolicyKind` name-for-name (that crate
/// sits *above* this one, so the target enum lives here); use
/// [`PolicyTarget::name`] / [`PolicyTarget::from_name`] to cross between
/// the two.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyTarget {
    /// ROUND-ROBIN fetch.
    RoundRobin,
    /// ICOUNT fetch.
    Icount,
    /// STALL (ICOUNT + stall on detected L2 miss).
    Stall,
    /// FLUSH (ICOUNT + flush on detected L2 miss).
    Flush,
    /// FLUSH++ (adaptive STALL/FLUSH).
    FlushPlusPlus,
    /// Data Gating (stall on pending L1 data miss).
    DataGating,
    /// Predictive Data Gating.
    PredictiveDataGating,
    /// Static even partitioning.
    Sra,
    /// The paper's DCRA.
    Dcra,
}

impl PolicyTarget {
    /// All nine targets in the paper's presentation order.
    pub const ALL: [PolicyTarget; 9] = [
        PolicyTarget::RoundRobin,
        PolicyTarget::Icount,
        PolicyTarget::Stall,
        PolicyTarget::Flush,
        PolicyTarget::FlushPlusPlus,
        PolicyTarget::DataGating,
        PolicyTarget::PredictiveDataGating,
        PolicyTarget::Sra,
        PolicyTarget::Dcra,
    ];

    /// The paper's name for the targeted policy (matches
    /// `PolicyKind::name` in `smt-experiments`).
    pub fn name(&self) -> &'static str {
        match self {
            PolicyTarget::RoundRobin => "RR",
            PolicyTarget::Icount => "ICOUNT",
            PolicyTarget::Stall => "STALL",
            PolicyTarget::Flush => "FLUSH",
            PolicyTarget::FlushPlusPlus => "FLUSH++",
            PolicyTarget::DataGating => "DG",
            PolicyTarget::PredictiveDataGating => "PDG",
            PolicyTarget::Sra => "SRA",
            PolicyTarget::Dcra => "DCRA",
        }
    }

    /// Inverse of [`PolicyTarget::name`], case-insensitive, accepting the
    /// same shell-friendly `FLUSH++` spellings as `PolicyKind::from_name`.
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name.to_ascii_uppercase().as_str() {
            "RR" => PolicyTarget::RoundRobin,
            "ICOUNT" => PolicyTarget::Icount,
            "STALL" => PolicyTarget::Stall,
            "FLUSH" => PolicyTarget::Flush,
            "FLUSH++" | "FLUSHPP" | "FLUSH_PP" => PolicyTarget::FlushPlusPlus,
            "DG" => PolicyTarget::DataGating,
            "PDG" => PolicyTarget::PredictiveDataGating,
            "SRA" => PolicyTarget::Sra,
            "DCRA" => PolicyTarget::Dcra,
            _ => return None,
        })
    }
}

/// Which of the three scenario profiles a family draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScenarioProfile {
    /// Jittered variants of the paper's Table-4 mixes.
    Expected,
    /// Pathological machine-pressure shapes.
    Stress,
    /// A dedicated antagonist for one policy's heuristic.
    Adversarial(PolicyTarget),
}

impl ScenarioProfile {
    /// Stable identifier used in mix ids, manifests and seed derivation,
    /// e.g. `"expected"` or `"adversarial-DCRA"`.
    pub fn tag(&self) -> String {
        match self {
            ScenarioProfile::Expected => "expected".to_string(),
            ScenarioProfile::Stress => "stress".to_string(),
            ScenarioProfile::Adversarial(t) => format!("adversarial-{}", t.name()),
        }
    }
}

/// Declarative description of a scenario family: which profile to draw
/// from, how many mixes to emit, and the allowed thread-count range.
#[derive(Debug, Clone, PartialEq)]
pub struct FamilySpec {
    /// Family name (used in manifests and mix ids).
    pub name: String,
    /// Which scenario profile the mixes are drawn from.
    pub profile: ScenarioProfile,
    /// Number of mixes to generate.
    pub mixes: usize,
    /// Smallest thread count a mix may have.
    pub min_threads: usize,
    /// Largest thread count a mix may have (<= [`MAX_FAMILY_THREADS`]).
    pub max_threads: usize,
}

impl FamilySpec {
    /// An expected-profile family of `mixes` mixes over the paper's 2–4
    /// thread range.
    pub fn expected(mixes: usize) -> Self {
        FamilySpec {
            name: "expected".into(),
            profile: ScenarioProfile::Expected,
            mixes,
            min_threads: 2,
            max_threads: 4,
        }
    }

    /// A stress-profile family of `mixes` mixes.
    pub fn stress(mixes: usize) -> Self {
        FamilySpec {
            name: "stress".into(),
            profile: ScenarioProfile::Stress,
            mixes,
            min_threads: 2,
            max_threads: 4,
        }
    }

    /// An adversarial family of `mixes` mixes targeting one policy.
    pub fn adversarial(target: PolicyTarget, mixes: usize) -> Self {
        FamilySpec {
            name: format!("adversarial-{}", target.name()),
            profile: ScenarioProfile::Adversarial(target),
            mixes,
            min_threads: 2,
            max_threads: 4,
        }
    }

    /// Validates the spec.
    ///
    /// # Errors
    ///
    /// Returns a message when the mix count is zero, the thread range is
    /// empty or exceeds [`MAX_FAMILY_THREADS`], or (for the expected
    /// profile) no Table-4 workload fits the thread range.
    pub fn validate(&self) -> Result<(), String> {
        if self.mixes == 0 {
            return Err("family needs at least one mix".into());
        }
        if self.min_threads == 0 {
            return Err("min_threads must be at least 1".into());
        }
        if self.min_threads > self.max_threads {
            return Err(format!(
                "empty thread range {}..={}",
                self.min_threads, self.max_threads
            ));
        }
        if self.max_threads > MAX_FAMILY_THREADS {
            return Err(format!(
                "max_threads {} exceeds the supported maximum {MAX_FAMILY_THREADS}",
                self.max_threads
            ));
        }
        if self.profile == ScenarioProfile::Expected
            && !table4_workloads()
                .iter()
                .any(|w| (self.min_threads..=self.max_threads).contains(&w.threads()))
        {
            return Err(format!(
                "no Table-4 workload has {}..={} threads",
                self.min_threads, self.max_threads
            ));
        }
        Ok(())
    }
}

/// One generated workload mix: a batch of per-thread profiles plus the
/// seed its trace generators must use. Feed it to a simulator by pairing
/// `profiles` with a `SimConfig` whose `threads == mix.threads()` and
/// passing `seed` through (`smt-experiments`' `RunSpec::for_mix` does
/// exactly that).
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioMix {
    /// Stable identifier, e.g. `"expected-s42-m017"`.
    pub id: String,
    /// Index of this mix within its family.
    pub index: usize,
    /// Trace-generator seed for this mix (derived, not the family seed).
    pub seed: u64,
    /// One profile per hardware thread.
    pub profiles: Vec<BenchmarkProfile>,
}

impl ScenarioMix {
    /// Number of hardware threads this mix occupies.
    pub fn threads(&self) -> usize {
        self.profiles.len()
    }

    /// Per-thread benchmark names (jittered profiles keep their base
    /// benchmark's name; synthesized antagonists carry `adv-*`/`stress-*`
    /// names).
    pub fn benchmark_names(&self) -> Vec<&str> {
        self.profiles.iter().map(|p| p.name.as_str()).collect()
    }
}

/// A generated family: the spec and seed it came from plus the mixes.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioFamily {
    spec: FamilySpec,
    seed: u64,
    mixes: Vec<ScenarioMix>,
}

impl ScenarioFamily {
    /// Generates the family `spec` describes from `seed`. Pure: identical
    /// inputs produce identical output.
    ///
    /// # Errors
    ///
    /// Propagates [`FamilySpec::validate`] failures.
    pub fn generate(spec: &FamilySpec, seed: u64) -> Result<ScenarioFamily, String> {
        spec.validate()?;
        let mixes = (0..spec.mixes)
            .map(|i| generate_mix(spec, seed, i))
            .collect();
        Ok(ScenarioFamily {
            spec: spec.clone(),
            seed,
            mixes,
        })
    }

    /// The spec this family was generated from.
    pub fn spec(&self) -> &FamilySpec {
        &self.spec
    }

    /// The family seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The generated mixes, in index order.
    pub fn mixes(&self) -> &[ScenarioMix] {
        &self.mixes
    }
}

/// Generates mix `index` of the family — public so parallel manifest
/// builders can produce mixes independently; `ScenarioFamily::generate`
/// is a loop over this function.
///
/// # Panics
///
/// Panics if `index >= spec.mixes` or the spec would fail
/// [`FamilySpec::validate`] (callers validate first).
pub fn generate_mix(spec: &FamilySpec, family_seed: u64, index: usize) -> ScenarioMix {
    assert!(index < spec.mixes, "mix index out of range");
    let tag = spec.profile.tag();
    let seed = mix_seed(family_seed, &tag, index);
    // The *shape* rng drives which workload/archetype/parameters the mix
    // gets; the trace generators later re-seed from `seed` themselves, so
    // shape draws and trace draws never interleave.
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xa076_1d64_78bd_642f);
    let profiles = match spec.profile {
        ScenarioProfile::Expected => expected_profiles(spec, &mut rng),
        ScenarioProfile::Stress => stress_profiles(spec, index, &mut rng),
        ScenarioProfile::Adversarial(target) => adversarial_profiles(spec, target, &mut rng),
    };
    for p in &profiles {
        p.validate()
            .unwrap_or_else(|e| panic!("generated profile {} invalid: {e}", p.name));
    }
    ScenarioMix {
        id: format!("{tag}-s{family_seed}-m{index:03}"),
        index,
        seed,
        profiles,
    }
}

/// Derives the per-mix seed from `(family seed, profile tag, index)`:
/// FNV-1a over the tag, mixed with the seed and index through a SplitMix64
/// finalizer. Stable across releases — manifests pin it.
fn mix_seed(family_seed: u64, tag: &str, index: usize) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in tag.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut z = family_seed
        .wrapping_add(h)
        .wrapping_add((index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Multiplies `v` by a uniform factor in `[1-frac, 1+frac)`.
fn jitter(rng: &mut SmallRng, v: f64, frac: f64) -> f64 {
    v * rng.gen_range((1.0 - frac)..(1.0 + frac))
}

/// Uniform integer in `[lo, hi]` (inclusive).
fn pick(rng: &mut SmallRng, lo: usize, hi: usize) -> usize {
    if lo >= hi {
        lo
    } else {
        rng.gen_range(lo..hi + 1)
    }
}

// ---------------------------------------------------------------------------
// Expected: jittered Table-4 mixes.

/// Jitters one calibrated benchmark profile within its envelope. The base
/// name is kept so manifests stay readable; only the numeric parameters
/// move, and every result still satisfies `BenchmarkProfile::validate`.
fn jitter_profile(rng: &mut SmallRng, base: &BenchmarkProfile) -> BenchmarkProfile {
    let mut p = base.clone();
    p.mem.warm_frac = jitter(rng, p.mem.warm_frac, 0.2).clamp(0.0, 0.6);
    p.mem.cold_frac = jitter(rng, p.mem.cold_frac, 0.2).clamp(0.0, 0.3);
    if p.mem.warm_frac + p.mem.cold_frac > 0.9 {
        p.mem.warm_frac = 0.9 - p.mem.cold_frac;
    }
    p.mem.pointer_chase = jitter(rng, p.mem.pointer_chase.max(0.01), 0.2).clamp(0.0, 1.0);
    p.mem.streaming = jitter(rng, p.mem.streaming.max(0.01), 0.2).clamp(0.0, 1.0);
    p.dep_mean = jitter(rng, p.dep_mean, 0.15).max(1.5);
    p.branches.biased_frac = jitter(rng, p.branches.biased_frac, 0.03).clamp(0.5, 0.99);
    p.phases.compute_len = jitter(rng, p.phases.compute_len, 0.25).max(50.0);
    p.phases.mem_len = jitter(rng, p.phases.mem_len, 0.25).max(50.0);
    p
}

fn expected_profiles(spec: &FamilySpec, rng: &mut SmallRng) -> Vec<BenchmarkProfile> {
    let pool: Vec<Workload> = table4_workloads()
        .into_iter()
        .filter(|w| (spec.min_threads..=spec.max_threads).contains(&w.threads()))
        .collect();
    let w = &pool[rng.gen_range(0..pool.len())];
    w.benchmarks
        .iter()
        .map(|b| {
            let base = spec::profile(b).expect("Table-4 benchmark has a profile");
            jitter_profile(rng, base)
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Stress: pathological machine-pressure shapes.

/// The four stress archetypes, cycled deterministically over the mix index
/// so every family covers all of them.
#[derive(Debug, Clone, Copy)]
enum StressArchetype {
    /// Floods the MSHRs with independent cold misses.
    MshrPressure,
    /// Random jumps over a footprint far larger than the DTLB reach.
    TlbThrash,
    /// Every thread an extreme MEM profile (100% MEM mix).
    AllMem,
    /// Short, violent memory/compute flips with hostile control flow.
    BranchyFlips,
}

const STRESS_ARCHETYPES: [StressArchetype; 4] = [
    StressArchetype::MshrPressure,
    StressArchetype::TlbThrash,
    StressArchetype::AllMem,
    StressArchetype::BranchyFlips,
];

fn stress_profiles(spec: &FamilySpec, index: usize, rng: &mut SmallRng) -> Vec<BenchmarkProfile> {
    let archetype = STRESS_ARCHETYPES[index % STRESS_ARCHETYPES.len()];
    let threads = pick(rng, spec.min_threads, spec.max_threads);
    (0..threads)
        .map(|slot| stress_profile(archetype, slot, rng))
        .collect()
}

fn stress_profile(archetype: StressArchetype, slot: usize, rng: &mut SmallRng) -> BenchmarkProfile {
    match archetype {
        StressArchetype::MshrPressure => {
            BenchmarkProfile::builder(format!("stress-mshr-t{slot}"), Suite::Int)
                .mem(MemBehavior {
                    hot_bytes: 8 * 1024,
                    warm_bytes: 8 * 1024,
                    cold_bytes: 64 * 1024 * 1024,
                    warm_frac: jitter(rng, 0.05, 0.3),
                    // Many cold misses with *no* pointer chasing: every one
                    // is independent, so the MSHR file fills as deep as the
                    // window allows.
                    cold_frac: rng.gen_range(0.10..0.20),
                    pointer_chase: rng.gen_range(0.0..0.05),
                    streaming: rng.gen_range(0.05..0.2),
                })
                .dep_mean(rng.gen_range(12.0..16.0))
                .phases(PhaseBehavior {
                    compute_len: rng.gen_range(300.0..800.0),
                    mem_len: rng.gen_range(3000.0..6000.0),
                    mem_boost: 1.5,
                    compute_damp: 0.2,
                })
                .mem_bound(true)
                .build()
                .expect("stress-mshr profile validates")
        }
        StressArchetype::TlbThrash => {
            BenchmarkProfile::builder(format!("stress-tlb-t{slot}"), Suite::Int)
                .mem(MemBehavior {
                    hot_bytes: 8 * 1024,
                    warm_bytes: 8 * 1024,
                    // A footprint of tens of thousands of pages, touched at
                    // random (streaming 0): nearly every cold access is a
                    // DTLB miss on top of the L2 miss.
                    cold_bytes: 256 * 1024 * 1024,
                    warm_frac: jitter(rng, 0.04, 0.3),
                    cold_frac: rng.gen_range(0.08..0.15),
                    pointer_chase: rng.gen_range(0.05..0.15),
                    streaming: 0.0,
                })
                .dep_mean(rng.gen_range(6.0..10.0))
                .phases(PhaseBehavior {
                    compute_len: rng.gen_range(500.0..1500.0),
                    mem_len: rng.gen_range(2000.0..5000.0),
                    mem_boost: 1.5,
                    compute_damp: 0.2,
                })
                .mem_bound(true)
                .build()
                .expect("stress-tlb profile validates")
        }
        StressArchetype::AllMem => {
            // An extreme jittered clone of one of the paper's four heaviest
            // MEM benchmarks; with every thread drawing one, the mix is
            // 100% MEM.
            let base_name = ["mcf", "art", "swim", "equake"][rng.gen_range(0..4usize)];
            let base = spec::profile(base_name).expect("MEM benchmark profile");
            let mut p = jitter_profile(rng, base);
            p.name = format!("stress-mem-{base_name}-t{slot}");
            p.mem.cold_frac = (p.mem.cold_frac * 1.5).min(0.3);
            p.mem_bound = true;
            p
        }
        StressArchetype::BranchyFlips => {
            BenchmarkProfile::builder(format!("stress-branchy-t{slot}"), Suite::Int)
                .branches(BranchBehavior {
                    sites: 384,
                    // Less than half the dynamic branches come from
                    // learnable sites: the predictor is wrong often, and
                    // the huge code footprint thrashes the I-cache on
                    // every excursion.
                    biased_frac: rng.gen_range(0.4..0.6),
                    random_taken_rate: 0.5,
                    call_frac: 0.08,
                    code_bytes: 256 * 1024 + rng.gen_range(0..256u64) * 1024,
                })
                .mem(MemBehavior {
                    hot_bytes: 8 * 1024,
                    warm_bytes: 8 * 1024,
                    cold_bytes: 24 * 1024 * 1024,
                    warm_frac: jitter(rng, 0.08, 0.3),
                    cold_frac: jitter(rng, 0.01, 0.3),
                    pointer_chase: 0.3,
                    streaming: 0.2,
                })
                .dep_mean(rng.gen_range(3.0..5.0))
                .phases(PhaseBehavior {
                    // Rapid flips: phases of a few hundred instructions,
                    // with a violent miss-density swing between them.
                    compute_len: rng.gen_range(150.0..400.0),
                    mem_len: rng.gen_range(150.0..400.0),
                    mem_boost: 4.0,
                    compute_damp: 0.1,
                })
                .mem_bound(true)
                .build()
                .expect("stress-branchy profile validates")
        }
    }
}

// ---------------------------------------------------------------------------
// Adversarial: one antagonist per policy heuristic.

fn adversarial_profiles(
    spec: &FamilySpec,
    target: PolicyTarget,
    rng: &mut SmallRng,
) -> Vec<BenchmarkProfile> {
    let threads = pick(rng, spec.min_threads.max(2), spec.max_threads.max(2));
    let mut profiles = Vec::with_capacity(threads);
    profiles.push(antagonist(target, rng));
    // Victims: jittered high-ILP co-runners — the threads whose progress
    // the antagonist is built to tax through the targeted policy.
    let victims = ["gzip", "gcc", "bzip2", "wupwise", "mesa", "eon"];
    for _ in 1..threads {
        let base = spec::profile(victims[rng.gen_range(0..victims.len())])
            .expect("victim benchmark profile");
        profiles.push(jitter_profile(rng, base));
    }
    profiles
}

/// Builds the dedicated antagonist profile for `target`. Each shape
/// exploits the specific signal the policy acts on; the knob constants
/// ([`L2_DETECT_DELAY`], [`FLUSHPP_PRESSURE_WINDOW`],
/// [`DCRA_ACTIVITY_WINDOW`]) anchor the timing-sensitive ones.
fn antagonist(target: PolicyTarget, rng: &mut SmallRng) -> BenchmarkProfile {
    let name = format!("adv-{}", target.name().to_ascii_lowercase());
    match target {
        // RR hands the stalled thread its full fetch share every rotation;
        // ICOUNT only counts pre-issue instructions, so a pointer-chasing
        // thread whose loads sit *post-issue* waiting on memory looks
        // cheap and is fetched into the shared window until it clogs it.
        PolicyTarget::RoundRobin | PolicyTarget::Icount => {
            let chase = if target == PolicyTarget::Icount {
                rng.gen_range(0.9..0.99)
            } else {
                rng.gen_range(0.8..0.95)
            };
            BenchmarkProfile::builder(name, Suite::Int)
                .mem(MemBehavior {
                    hot_bytes: 8 * 1024,
                    warm_bytes: 8 * 1024,
                    cold_bytes: 64 * 1024 * 1024,
                    warm_frac: jitter(rng, 0.10, 0.2),
                    cold_frac: rng.gen_range(0.05..0.10),
                    pointer_chase: chase,
                    streaming: 0.05,
                })
                .dep_mean(rng.gen_range(2.0..3.0))
                .phases(PhaseBehavior {
                    compute_len: rng.gen_range(300.0..700.0),
                    mem_len: rng.gen_range(3000.0..6000.0),
                    mem_boost: 1.5,
                    compute_damp: 0.2,
                })
                .mem_bound(true)
                .build()
                .expect("RR/ICOUNT antagonist validates")
        }
        // STALL and FLUSH trigger only on *detected L2 misses*
        // (L2_DETECT_DELAY cycles after issue); DG gates on pending L1
        // misses. A warm-region-heavy thread misses the L1 on most loads
        // but always hits the L2 — each load stalls for just under the
        // trigger latency, the thread crawls, and STALL/FLUSH never fire
        // (while DG fires *constantly* for misses too cheap to be worth
        // gating).
        PolicyTarget::Stall | PolicyTarget::Flush | PolicyTarget::DataGating => {
            let cold = if target == PolicyTarget::Flush {
                // FLUSH additionally gets frequent independent L2 misses:
                // each detection throws away a window of overlapping work
                // (a flush storm), on top of the under-threshold crawl.
                rng.gen_range(0.03..0.06)
            } else {
                rng.gen_range(0.0..0.001)
            };
            BenchmarkProfile::builder(name, Suite::Int)
                .mem(MemBehavior {
                    hot_bytes: 8 * 1024,
                    warm_bytes: 8 * 1024,
                    cold_bytes: 64 * 1024 * 1024,
                    warm_frac: rng.gen_range(0.5..0.65),
                    cold_frac: cold,
                    pointer_chase: 0.0,
                    streaming: 0.3,
                })
                .dep_mean(rng.gen_range(2.5..4.0))
                .phases(PhaseBehavior {
                    compute_len: rng.gen_range(400.0..900.0),
                    mem_len: rng.gen_range(2000.0..4000.0),
                    mem_boost: 1.3,
                    compute_damp: 0.3,
                })
                .mem_bound(target == PolicyTarget::Flush)
                .build()
                .expect("STALL/FLUSH/DG antagonist validates")
        }
        // FLUSH++ reclassifies at a fixed cycle period; phases that flip
        // at about that period keep its cached pressure count one window
        // stale, so it stalls when it should flush and flushes when it
        // should stall.
        PolicyTarget::FlushPlusPlus => {
            // ~1.5 IPC turns the cycle window into an instruction count.
            let window_insts = FLUSHPP_PRESSURE_WINDOW as f64 * 1.5;
            BenchmarkProfile::builder(name, Suite::Int)
                .mem(MemBehavior {
                    hot_bytes: 8 * 1024,
                    warm_bytes: 8 * 1024,
                    cold_bytes: 64 * 1024 * 1024,
                    warm_frac: jitter(rng, 0.12, 0.2),
                    cold_frac: rng.gen_range(0.02..0.05),
                    pointer_chase: 0.2,
                    streaming: 0.2,
                })
                .dep_mean(rng.gen_range(4.0..7.0))
                .phases(PhaseBehavior {
                    compute_len: jitter(rng, window_insts, 0.3),
                    mem_len: jitter(rng, window_insts, 0.3),
                    mem_boost: 3.0,
                    compute_damp: 0.05,
                })
                .mem_bound(true)
                .build()
                .expect("FLUSH++ antagonist validates")
        }
        // PDG predicts per-PC whether a load will miss; a thread whose
        // loads miss the L1 about a third of the time, interleaved at
        // random from the same sites, keeps the predictor near maximum
        // entropy — it gates hits and lets misses through.
        PolicyTarget::PredictiveDataGating => BenchmarkProfile::builder(name, Suite::Int)
            .mem(MemBehavior {
                hot_bytes: 8 * 1024,
                warm_bytes: 8 * 1024,
                cold_bytes: 24 * 1024 * 1024,
                warm_frac: rng.gen_range(0.3..0.45),
                cold_frac: rng.gen_range(0.001..0.004),
                pointer_chase: 0.1,
                streaming: 0.5,
            })
            .dep_mean(rng.gen_range(5.0..7.0))
            .phases(PhaseBehavior {
                compute_len: rng.gen_range(800.0..1600.0),
                mem_len: rng.gen_range(800.0..1600.0),
                mem_boost: 1.2,
                compute_damp: 0.8,
            })
            .mem_bound(false)
            .build()
            .expect("PDG antagonist validates"),
        // SRA carves the machine into equal static shares; a thread that
        // can't use its share (serial pointer chase, dependence distance
        // ~2) wastes it while the co-runners are starved of the entries
        // they could turn into throughput.
        PolicyTarget::Sra => BenchmarkProfile::builder(name, Suite::Int)
            .mem(MemBehavior {
                hot_bytes: 8 * 1024,
                warm_bytes: 8 * 1024,
                cold_bytes: 64 * 1024 * 1024,
                warm_frac: jitter(rng, 0.08, 0.2),
                cold_frac: rng.gen_range(0.04..0.08),
                pointer_chase: rng.gen_range(0.85..0.95),
                streaming: 0.05,
            })
            .dep_mean(2.0)
            .phases(PhaseBehavior {
                compute_len: rng.gen_range(200.0..500.0),
                mem_len: rng.gen_range(4000.0..8000.0),
                mem_boost: 1.3,
                compute_damp: 0.2,
            })
            .mem_bound(true)
            .build()
            .expect("SRA antagonist validates"),
        // DCRA tracks FP activity with a decaying counter reset on every
        // FP allocation; FP ops spaced to arrive at about one per activity
        // window keep the thread flickering between FP-active and
        // FP-inactive, so its FP share is perpetually being reclaimed and
        // re-granted while memory phases flip underneath.
        PolicyTarget::Dcra => {
            // ~1.5 IPC: one FP op per window-and-a-bit of cycles.
            let gap_insts = f64::from(DCRA_ACTIVITY_WINDOW) * 1.5 * rng.gen_range(0.9..1.3);
            let fp_weight = 1.0 / gap_insts;
            let mix = InstMix {
                load: 0.26,
                store: 0.10,
                branch: 0.12,
                int_alu: 0.48 - fp_weight,
                int_mul: 0.04,
                fp_alu: fp_weight,
                fp_mul: 0.0,
                fp_div: 0.0,
            };
            BenchmarkProfile::builder(name, Suite::Fp)
                .mix(mix)
                .mem(MemBehavior {
                    hot_bytes: 8 * 1024,
                    warm_bytes: 8 * 1024,
                    cold_bytes: 64 * 1024 * 1024,
                    warm_frac: jitter(rng, 0.10, 0.2),
                    cold_frac: rng.gen_range(0.02..0.05),
                    pointer_chase: 0.4,
                    streaming: 0.2,
                })
                .dep_mean(rng.gen_range(3.0..5.0))
                .fp_load_frac(0.05)
                .phases(PhaseBehavior {
                    compute_len: rng.gen_range(250.0..500.0),
                    mem_len: rng.gen_range(250.0..500.0),
                    mem_boost: 2.5,
                    compute_damp: 0.2,
                })
                .mem_bound(true)
                .build()
                .expect("DCRA antagonist validates")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_pure() {
        for profile in [
            ScenarioProfile::Expected,
            ScenarioProfile::Stress,
            ScenarioProfile::Adversarial(PolicyTarget::Dcra),
        ] {
            let spec = FamilySpec {
                name: profile.tag(),
                profile,
                mixes: 6,
                min_threads: 2,
                max_threads: 4,
            };
            let a = ScenarioFamily::generate(&spec, 7).unwrap();
            let b = ScenarioFamily::generate(&spec, 7).unwrap();
            assert_eq!(a, b, "{} family must be pure", profile.tag());
        }
    }

    #[test]
    fn mixes_can_be_generated_independently() {
        let spec = FamilySpec::stress(8);
        let fam = ScenarioFamily::generate(&spec, 11).unwrap();
        for (i, mix) in fam.mixes().iter().enumerate() {
            assert_eq!(*mix, generate_mix(&spec, 11, i), "mix {i} order-dependent");
        }
    }

    #[test]
    fn seeds_move_the_mixes() {
        let spec = FamilySpec::expected(4);
        let a = ScenarioFamily::generate(&spec, 1).unwrap();
        let b = ScenarioFamily::generate(&spec, 2).unwrap();
        assert_ne!(a.mixes(), b.mixes());
    }

    #[test]
    fn every_generated_profile_validates() {
        let mut specs = vec![FamilySpec::expected(12), FamilySpec::stress(12)];
        specs.extend(PolicyTarget::ALL.map(|t| FamilySpec::adversarial(t, 4)));
        for spec in specs {
            let fam = ScenarioFamily::generate(&spec, 3).unwrap();
            for mix in fam.mixes() {
                assert!((2..=4).contains(&mix.threads()), "{} thread count", mix.id);
                for p in &mix.profiles {
                    p.validate()
                        .unwrap_or_else(|e| panic!("{}: {}: {e}", mix.id, p.name));
                }
            }
        }
    }

    #[test]
    fn adversarial_antagonist_rides_thread_zero() {
        for target in PolicyTarget::ALL {
            let spec = FamilySpec::adversarial(target, 3);
            let fam = ScenarioFamily::generate(&spec, 5).unwrap();
            for mix in fam.mixes() {
                assert!(
                    mix.profiles[0].name.starts_with("adv-"),
                    "{}: thread 0 is {}",
                    mix.id,
                    mix.profiles[0].name
                );
            }
        }
    }

    #[test]
    fn stress_family_covers_all_archetypes() {
        let fam = ScenarioFamily::generate(&FamilySpec::stress(8), 9).unwrap();
        for marker in ["stress-mshr", "stress-tlb", "stress-mem", "stress-branchy"] {
            assert!(
                fam.mixes()
                    .iter()
                    .any(|m| m.profiles.iter().any(|p| p.name.starts_with(marker))),
                "no {marker} mix generated"
            );
        }
    }

    #[test]
    fn policy_target_names_round_trip() {
        for t in PolicyTarget::ALL {
            assert_eq!(PolicyTarget::from_name(t.name()), Some(t));
        }
        assert_eq!(
            PolicyTarget::from_name("flush_pp"),
            Some(PolicyTarget::FlushPlusPlus)
        );
        assert_eq!(PolicyTarget::from_name("NOPE"), None);
    }

    #[test]
    fn spec_validation_rejects_degenerate_shapes() {
        let mut s = FamilySpec::expected(0);
        assert!(s.validate().is_err(), "zero mixes");
        s.mixes = 4;
        s.min_threads = 5;
        s.max_threads = 4;
        assert!(s.validate().is_err(), "empty thread range");
        s.min_threads = 2;
        s.max_threads = MAX_FAMILY_THREADS + 1;
        assert!(s.validate().is_err(), "beyond MAX_FAMILY_THREADS");
        s.max_threads = 4;
        assert!(s.validate().is_ok());
        // Expected families need a Table-4 workload in range; 5..=8 has
        // none (Table 4 stops at 4 threads).
        let mut e = FamilySpec::expected(4);
        e.min_threads = 5;
        e.max_threads = 8;
        assert!(e.validate().is_err());
        // Stress families synthesize their own shapes at any thread count.
        let mut st = FamilySpec::stress(4);
        st.min_threads = 5;
        st.max_threads = 8;
        assert!(st.validate().is_ok());
    }
}
