//! Family manifests: a compact, byte-stable description of every mix a
//! [`ScenarioFamily`] generates, including a fingerprint of each thread's
//! actual instruction trace.
//!
//! The manifest is the determinism artifact: CI regenerates the expected
//! family twice with the same seed and diffs the JSON byte-for-byte, and
//! the thread-count-invariance test checks that
//! [`FamilyManifest::generate_with_workers`] emits identical bytes for any
//! worker count. Fingerprints are FNV-1a over a prefix of each thread's
//! generated stream (pc, class, dependences, addresses, branch outcomes),
//! so any behavioural drift in the trace generator — not just in the mix
//! parameters — shows up as a manifest diff.

use crate::family::{generate_mix, FamilySpec, ScenarioFamily, ScenarioMix};
use crate::generator::TraceGenerator;
use smt_isa::InstClass;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Instructions hashed per thread when fingerprinting a mix. Long enough
/// to cover several phase flips of every profile shape, short enough to
/// keep manifest generation cheap.
pub const FINGERPRINT_INSTS: usize = 2048;

/// Manifest entry for one generated mix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MixManifest {
    /// The mix's stable id (`ScenarioMix::id`).
    pub id: String,
    /// Index within the family.
    pub index: usize,
    /// Trace-generator seed of the mix.
    pub seed: u64,
    /// Per-thread benchmark/profile names.
    pub benchmarks: Vec<String>,
    /// Per-thread FNV-1a fingerprint of the first [`FINGERPRINT_INSTS`]
    /// generated instructions.
    pub trace_fingerprints: Vec<u64>,
}

impl MixManifest {
    /// Builds the manifest entry for `mix`, generating and hashing each
    /// thread's trace prefix.
    pub fn from_mix(mix: &ScenarioMix) -> MixManifest {
        let trace_fingerprints = mix
            .profiles
            .iter()
            .enumerate()
            .map(|(slot, profile)| {
                let mut generator = TraceGenerator::new(profile, mix.seed, slot as u64);
                let mut hash = Fnv::new();
                for _ in 0..FINGERPRINT_INSTS {
                    let inst = generator.next_inst();
                    hash.write_u64(inst.pc);
                    hash.write_u64(u64::from(class_code(inst.class)));
                    for dep in inst.deps() {
                        hash.write_u64(u64::from(dep.unwrap_or(0)));
                    }
                    if let Some(mem) = inst.mem {
                        hash.write_u64(mem.addr);
                        hash.write_u64(u64::from(mem.size));
                    }
                    if let Some(branch) = inst.branch {
                        hash.write_u64(u64::from(branch.taken));
                        hash.write_u64(branch.target);
                    }
                }
                hash.finish()
            })
            .collect();
        MixManifest {
            id: mix.id.clone(),
            index: mix.index,
            seed: mix.seed,
            benchmarks: mix.profiles.iter().map(|p| p.name.clone()).collect(),
            trace_fingerprints,
        }
    }
}

/// The manifest of a whole family: header plus one entry per mix, in
/// index order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FamilyManifest {
    /// Family name from the spec.
    pub family: String,
    /// Profile tag (`expected`, `stress`, `adversarial-<POLICY>`).
    pub tag: String,
    /// Family seed.
    pub seed: u64,
    /// One entry per mix, index order.
    pub mixes: Vec<MixManifest>,
}

impl FamilyManifest {
    /// Manifests an already-generated family.
    pub fn from_family(family: &ScenarioFamily) -> FamilyManifest {
        FamilyManifest {
            family: family.spec().name.clone(),
            tag: family.spec().profile.tag(),
            seed: family.seed(),
            mixes: family.mixes().iter().map(MixManifest::from_mix).collect(),
        }
    }

    /// Generates the family described by `spec` from `seed` and manifests
    /// it in one pass (single-threaded).
    ///
    /// # Errors
    ///
    /// Propagates [`FamilySpec::validate`] failures.
    pub fn generate(spec: &FamilySpec, seed: u64) -> Result<FamilyManifest, String> {
        let family = ScenarioFamily::generate(spec, seed)?;
        Ok(FamilyManifest::from_family(&family))
    }

    /// Like [`FamilyManifest::generate`], but fans the per-mix work out
    /// over `workers` threads through an index work queue. Because each
    /// mix's seed depends only on `(seed, tag, index)`, the result — down
    /// to the JSON bytes — is identical for every worker count; the
    /// end-to-end suite pins this.
    ///
    /// # Errors
    ///
    /// Propagates [`FamilySpec::validate`] failures; rejects `workers == 0`.
    pub fn generate_with_workers(
        spec: &FamilySpec,
        seed: u64,
        workers: usize,
    ) -> Result<FamilyManifest, String> {
        if workers == 0 {
            return Err("need at least one worker".into());
        }
        spec.validate()?;
        let slots: Mutex<Vec<Option<MixManifest>>> = Mutex::new(vec![None; spec.mixes]);
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers.min(spec.mixes) {
                scope.spawn(|| loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    if index >= spec.mixes {
                        break;
                    }
                    let entry = MixManifest::from_mix(&generate_mix(spec, seed, index));
                    slots.lock().expect("manifest sink poisoned")[index] = Some(entry);
                });
            }
        });
        let mixes = slots
            .into_inner()
            .expect("manifest sink poisoned")
            .into_iter()
            .map(|slot| slot.expect("every index processed"))
            .collect();
        Ok(FamilyManifest {
            family: spec.name.clone(),
            tag: spec.profile.tag(),
            seed,
            mixes,
        })
    }

    /// One FNV-1a hash over the whole manifest (header and every per-thread
    /// fingerprint) — a single number to compare or log.
    pub fn fingerprint(&self) -> u64 {
        let mut hash = Fnv::new();
        hash.write_str(&self.family);
        hash.write_str(&self.tag);
        hash.write_u64(self.seed);
        for mix in &self.mixes {
            hash.write_str(&mix.id);
            hash.write_u64(mix.seed);
            for name in &mix.benchmarks {
                hash.write_str(name);
            }
            for fp in &mix.trace_fingerprints {
                hash.write_u64(*fp);
            }
        }
        hash.finish()
    }

    /// Serialises the manifest to a stable, human-diffable JSON document.
    /// Key order, spacing and number formatting are fixed, so equal
    /// manifests produce byte-identical strings (what CI diffs).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.mixes.len() * 256);
        out.push_str("{\n");
        out.push_str(&format!("  \"family\": {},\n", json_str(&self.family)));
        out.push_str(&format!("  \"profile\": {},\n", json_str(&self.tag)));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!(
            "  \"fingerprint\": \"{:016x}\",\n",
            self.fingerprint()
        ));
        out.push_str("  \"mixes\": [\n");
        for (i, mix) in self.mixes.iter().enumerate() {
            out.push_str("    { ");
            out.push_str(&format!("\"id\": {}, ", json_str(&mix.id)));
            out.push_str(&format!("\"index\": {}, ", mix.index));
            out.push_str(&format!("\"seed\": {}, ", mix.seed));
            out.push_str("\"benchmarks\": [");
            for (j, name) in mix.benchmarks.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&json_str(name));
            }
            out.push_str("], \"trace_fingerprints\": [");
            for (j, fp) in mix.trace_fingerprints.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("\"{fp:016x}\""));
            }
            out.push_str("] }");
            if i + 1 < self.mixes.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// JSON string literal with the minimal escaping our controlled names need.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Stable discriminant for hashing an [`InstClass`] (independent of enum
/// layout, so fingerprints survive reorderings of the declaration).
fn class_code(class: InstClass) -> u8 {
    match class {
        InstClass::IntAlu => 0,
        InstClass::IntMul => 1,
        InstClass::FpAlu => 2,
        InstClass::FpMul => 3,
        InstClass::FpDiv => 4,
        InstClass::Load => 5,
        InstClass::Store => 6,
        InstClass::Branch => 7,
    }
}

/// Minimal FNV-1a accumulator (the workspace's standard trick for stable,
/// dependency-free fingerprints).
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn write_str(&mut self, s: &str) {
        for b in s.as_bytes() {
            self.0 ^= u64::from(*b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // Length terminator so "ab"+"c" != "a"+"bc".
        self.write_u64(s.len() as u64);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::PolicyTarget;

    #[test]
    fn manifest_is_reproducible() {
        let spec = FamilySpec::expected(6);
        let a = FamilyManifest::generate(&spec, 42).unwrap();
        let b = FamilyManifest::generate(&spec, 42).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn worker_count_does_not_change_the_bytes() {
        let spec = FamilySpec::adversarial(PolicyTarget::Flush, 5);
        let serial = FamilyManifest::generate(&spec, 9).unwrap();
        for workers in [1, 2, 7] {
            let parallel = FamilyManifest::generate_with_workers(&spec, 9, workers).unwrap();
            assert_eq!(serial.to_json(), parallel.to_json(), "{workers} workers");
        }
    }

    #[test]
    fn different_seeds_move_the_fingerprint() {
        let spec = FamilySpec::stress(4);
        let a = FamilyManifest::generate(&spec, 1).unwrap();
        let b = FamilyManifest::generate(&spec, 2).unwrap();
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn json_shape_is_sane() {
        let spec = FamilySpec::expected(2);
        let m = FamilyManifest::generate(&spec, 3).unwrap();
        let json = m.to_json();
        assert!(json.starts_with("{\n"));
        assert!(json.ends_with("}\n"));
        assert!(json.contains("\"family\": \"expected\""));
        assert!(json.contains("\"mixes\": ["));
        assert_eq!(json.matches("\"id\":").count(), 2);
    }

    #[test]
    fn zero_workers_is_rejected() {
        let spec = FamilySpec::expected(2);
        assert!(FamilyManifest::generate_with_workers(&spec, 1, 0).is_err());
    }

    #[test]
    fn json_escapes_control_and_quote_chars() {
        assert_eq!(json_str("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_str("x\ny"), "\"x\\u000ay\"");
    }
}
