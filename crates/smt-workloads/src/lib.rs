//! Synthetic workload substrate for the DCRA-SMT reproduction.
//!
//! The paper drives its simulator with Alpha traces of the SPEC2000 suite
//! (300M-instruction representative segments). Those traces are proprietary,
//! so this crate substitutes **statistical trace generators**: each of the
//! paper's 20 benchmarks is described by a [`BenchmarkProfile`] (instruction
//! mix, dependence-distance distribution, nested working sets, branch-site
//! behaviour, memory/compute phase alternation) and a [`TraceGenerator`]
//! expands a profile into a deterministic, infinite stream of
//! [`smt_isa::DecodedInst`]. The generated address and branch streams drive
//! the *real* cache and predictor substrates, so miss rates and
//! mispredictions are produced by the modelled hardware, not sampled.
//!
//! # Calibration methodology
//!
//! Profiles are calibrated so single-threaded runs reproduce the paper's
//! Table 3 (the L2 miss rate and the MEM/ILP split). The memory model that
//! makes this calibration *direct* has three parts:
//!
//! * a **hot** region that stays L1-resident (the bulk of accesses),
//! * a **warm** region built as an L1 *conflict set* — 4 tags per L1 set,
//!   so every warm access misses the 2-way L1 by construction and hits the
//!   L2 once warm; its touches mix short and long reuse distances so L2
//!   residency degrades gradually under co-runner pressure,
//! * a **cold** region far larger than the L2, whose accesses miss both
//!   levels (streamed or pointer-chased per benchmark).
//!
//! With this structure the profile's `warm_frac`/`cold_frac` map almost
//! one-to-one onto the measured L1 miss rate and L2 miss rate, and the
//! `pointer_chase` knob controls memory-level parallelism (mcf's serial
//! misses vs art/swim's independent ones). Phase alternation concentrates
//! the misses into memory phases so the paper's fast/slow classification
//! has something to classify (Table 5).
//!
//! # Examples
//!
//! ```
//! use smt_workloads::{spec, TraceGenerator};
//!
//! let profile = spec::profile("mcf").expect("known benchmark");
//! let mut generator = TraceGenerator::new(profile, 42, 0);
//! let inst = generator.next_inst();
//! assert!(inst.pc > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod family;
mod generator;
pub mod manifest;
mod profile;
pub mod spec;
mod store;
mod workload;

pub use family::{
    generate_mix, FamilySpec, PolicyTarget, ScenarioFamily, ScenarioMix, ScenarioProfile,
};
pub use generator::TraceGenerator;
pub use manifest::{FamilyManifest, MixManifest};
pub use profile::{
    BenchmarkProfile, BenchmarkProfileBuilder, BranchBehavior, InstMix, MemBehavior, PhaseBehavior,
    ProfileError, Suite,
};
pub use store::{ThreadTrace, TraceRecord, MAX_PREFIX_BLOCKS, TRACE_BLOCK};
pub use workload::{table4_workloads, workloads_of, Workload, WorkloadType};
