//! Ready-made profiles for the paper's 20 SPEC2000 benchmarks.
//!
//! The paper (Table 3) splits benchmarks by L2 miss rate: MEM benchmarks
//! miss in the L2 more than 1% of the time, ILP benchmarks less. The
//! profiles below are calibrated so single-threaded simulation reproduces
//! that split (verified by the `table3` experiment); absolute rates are
//! approximate, the ordering and the MEM/ILP classification are preserved.
//!
//! # Examples
//!
//! ```
//! use smt_workloads::spec;
//!
//! let mcf = spec::profile("mcf").unwrap();
//! assert!(mcf.is_mem_bound());
//! let gzip = spec::profile("gzip").unwrap();
//! assert!(!gzip.is_mem_bound());
//! ```

use crate::profile::{
    BenchmarkProfile, BranchBehavior, InstMix, MemBehavior, PhaseBehavior, Suite,
};
use std::collections::BTreeMap;
use std::sync::OnceLock;

/// Shape parameters for one benchmark, expanded into a full profile.
struct Shape {
    name: &'static str,
    suite: Suite,
    /// Paper Table 3 L2 miss rate (percent), kept for reference/reporting.
    paper_l2_pct: f64,
    warm_frac: f64,
    cold_frac: f64,
    pointer_chase: f64,
    streaming: f64,
    dep_mean: f64,
    biased_frac: f64,
    code_kb: u64,
    mem_len: f64,
    compute_len: f64,
}

const SHAPES: &[Shape] = &[
    // ---- MEM benchmarks (Table 3a) ----
    Shape {
        name: "mcf",
        suite: Suite::Int,
        paper_l2_pct: 29.6,
        warm_frac: 0.12,
        cold_frac: 0.05,
        pointer_chase: 0.85,
        streaming: 0.05,
        dep_mean: 3.0,
        biased_frac: 0.87,
        code_kb: 16,
        mem_len: 2500.0,
        compute_len: 900.0,
    },
    Shape {
        name: "art",
        suite: Suite::Fp,
        paper_l2_pct: 18.6,
        warm_frac: 0.13,
        cold_frac: 0.03,
        pointer_chase: 0.05,
        streaming: 0.30,
        dep_mean: 10.0,
        biased_frac: 0.97,
        code_kb: 16,
        mem_len: 2000.0,
        compute_len: 1200.0,
    },
    Shape {
        name: "swim",
        suite: Suite::Fp,
        paper_l2_pct: 11.4,
        warm_frac: 0.14,
        cold_frac: 0.018,
        pointer_chase: 0.02,
        streaming: 0.65,
        dep_mean: 12.0,
        biased_frac: 0.97,
        code_kb: 12,
        mem_len: 1800.0,
        compute_len: 1500.0,
    },
    Shape {
        name: "lucas",
        suite: Suite::Fp,
        paper_l2_pct: 7.47,
        warm_frac: 0.135,
        cold_frac: 0.011,
        pointer_chase: 0.02,
        streaming: 0.65,
        dep_mean: 10.0,
        biased_frac: 0.97,
        code_kb: 12,
        mem_len: 1200.0,
        compute_len: 1800.0,
    },
    Shape {
        name: "equake",
        suite: Suite::Fp,
        paper_l2_pct: 4.72,
        warm_frac: 0.12,
        cold_frac: 0.0059,
        pointer_chase: 0.30,
        streaming: 0.40,
        dep_mean: 7.0,
        biased_frac: 0.97,
        code_kb: 24,
        mem_len: 900.0,
        compute_len: 2200.0,
    },
    Shape {
        name: "twolf",
        suite: Suite::Int,
        paper_l2_pct: 2.9,
        warm_frac: 0.1,
        cold_frac: 0.003,
        pointer_chase: 0.45,
        streaming: 0.20,
        dep_mean: 4.0,
        biased_frac: 0.91,
        code_kb: 32,
        mem_len: 700.0,
        compute_len: 2600.0,
    },
    Shape {
        name: "vpr",
        suite: Suite::Int,
        paper_l2_pct: 1.9,
        warm_frac: 0.1,
        cold_frac: 0.00194,
        pointer_chase: 0.40,
        streaming: 0.25,
        dep_mean: 4.5,
        biased_frac: 0.93,
        code_kb: 32,
        mem_len: 600.0,
        compute_len: 2800.0,
    },
    Shape {
        name: "parser",
        suite: Suite::Int,
        paper_l2_pct: 1.0,
        warm_frac: 0.1,
        cold_frac: 0.0014,
        pointer_chase: 0.35,
        streaming: 0.30,
        dep_mean: 5.0,
        biased_frac: 0.93,
        code_kb: 40,
        mem_len: 500.0,
        compute_len: 3000.0,
    },
    // ---- ILP benchmarks (Table 3b) ----
    Shape {
        name: "gap",
        suite: Suite::Int,
        paper_l2_pct: 0.7,
        warm_frac: 0.045,
        cold_frac: 0.00038,
        pointer_chase: 0.2,
        streaming: 0.5,
        dep_mean: 7.0,
        biased_frac: 0.97,
        code_kb: 48,
        mem_len: 400.0,
        compute_len: 3600.0,
    },
    Shape {
        name: "vortex",
        suite: Suite::Int,
        paper_l2_pct: 0.3,
        warm_frac: 0.035,
        cold_frac: 0.00018,
        pointer_chase: 0.2,
        streaming: 0.5,
        dep_mean: 7.0,
        biased_frac: 0.97,
        code_kb: 48,
        mem_len: 300.0,
        compute_len: 4200.0,
    },
    Shape {
        name: "gcc",
        suite: Suite::Int,
        paper_l2_pct: 0.3,
        warm_frac: 0.035,
        cold_frac: 0.00018,
        pointer_chase: 0.25,
        streaming: 0.45,
        dep_mean: 6.5,
        biased_frac: 0.95,
        code_kb: 48,
        mem_len: 350.0,
        compute_len: 4000.0,
    },
    Shape {
        name: "perl",
        suite: Suite::Int,
        paper_l2_pct: 0.1,
        warm_frac: 0.025,
        cold_frac: 5e-05,
        pointer_chase: 0.2,
        streaming: 0.5,
        dep_mean: 7.0,
        biased_frac: 0.97,
        code_kb: 48,
        mem_len: 250.0,
        compute_len: 4500.0,
    },
    Shape {
        name: "bzip2",
        suite: Suite::Int,
        paper_l2_pct: 0.1,
        warm_frac: 0.025,
        cold_frac: 5e-05,
        pointer_chase: 0.1,
        streaming: 0.6,
        dep_mean: 8.0,
        biased_frac: 0.97,
        code_kb: 16,
        mem_len: 250.0,
        compute_len: 4500.0,
    },
    Shape {
        name: "crafty",
        suite: Suite::Int,
        paper_l2_pct: 0.1,
        warm_frac: 0.025,
        cold_frac: 5e-05,
        pointer_chase: 0.1,
        streaming: 0.4,
        dep_mean: 8.5,
        biased_frac: 0.95,
        code_kb: 48,
        mem_len: 200.0,
        compute_len: 5000.0,
    },
    Shape {
        name: "gzip",
        suite: Suite::Int,
        paper_l2_pct: 0.1,
        warm_frac: 0.025,
        cold_frac: 5e-05,
        pointer_chase: 0.1,
        streaming: 0.6,
        dep_mean: 9.0,
        biased_frac: 0.97,
        code_kb: 12,
        mem_len: 200.0,
        compute_len: 5000.0,
    },
    Shape {
        name: "eon",
        suite: Suite::Int,
        paper_l2_pct: 0.0,
        warm_frac: 0.02,
        cold_frac: 2e-05,
        pointer_chase: 0.1,
        streaming: 0.5,
        dep_mean: 9.0,
        biased_frac: 0.97,
        code_kb: 48,
        mem_len: 150.0,
        compute_len: 6000.0,
    },
    Shape {
        name: "apsi",
        suite: Suite::Fp,
        paper_l2_pct: 0.9,
        warm_frac: 0.04,
        cold_frac: 0.00042,
        pointer_chase: 0.05,
        streaming: 0.7,
        dep_mean: 11.0,
        biased_frac: 0.97,
        code_kb: 32,
        mem_len: 400.0,
        compute_len: 3500.0,
    },
    Shape {
        name: "wupwise",
        suite: Suite::Fp,
        paper_l2_pct: 0.9,
        warm_frac: 0.04,
        cold_frac: 0.00042,
        pointer_chase: 0.05,
        streaming: 0.7,
        dep_mean: 12.0,
        biased_frac: 0.97,
        code_kb: 24,
        mem_len: 400.0,
        compute_len: 3500.0,
    },
    Shape {
        name: "mesa",
        suite: Suite::Fp,
        paper_l2_pct: 0.1,
        warm_frac: 0.025,
        cold_frac: 5e-05,
        pointer_chase: 0.05,
        streaming: 0.6,
        dep_mean: 10.0,
        biased_frac: 0.97,
        code_kb: 40,
        mem_len: 200.0,
        compute_len: 5000.0,
    },
    Shape {
        name: "fma3d",
        suite: Suite::Fp,
        paper_l2_pct: 0.0,
        warm_frac: 0.02,
        cold_frac: 2e-05,
        pointer_chase: 0.05,
        streaming: 0.6,
        dep_mean: 11.0,
        biased_frac: 0.97,
        code_kb: 48,
        mem_len: 150.0,
        compute_len: 6000.0,
    },
];

/// Compute-phase multiplier on the miss fractions (phases are sharp: a
/// compute phase has a tenth of the average miss density).
const DAMP: f64 = 0.1;

fn expand(shape: &Shape) -> BenchmarkProfile {
    // Choose the memory-phase boost so the *time-weighted average* of the
    // phase multipliers is 1 (capped at 5x so phase fractions stay sane),
    // then rescale the base fractions by the realised average.
    let w_mem = shape.mem_len / (shape.mem_len + shape.compute_len);
    let w_comp = 1.0 - w_mem;
    let boost = ((1.0 - w_comp * DAMP) / w_mem).min(5.0);
    let effective = w_mem * boost + w_comp * DAMP;
    let scale = 1.0 / effective;
    let mix = match shape.suite {
        Suite::Int => InstMix::integer(),
        Suite::Fp => InstMix::floating_point(),
    };
    BenchmarkProfile::builder(shape.name, shape.suite)
        .mix(mix)
        .mem(MemBehavior {
            hot_bytes: 8 * 1024,
            warm_bytes: 8 * 1024,
            cold_bytes: 24 * 1024 * 1024,
            // The shape carries *average* miss fractions; the generator
            // applies the phase multipliers below, so rescale the base
            // fractions to preserve the average. Sharp phases matter: the
            // paper's slow/fast classification (pending L1 misses) only
            // discriminates if misses cluster into memory phases, as they
            // do in real programs (Table 5).
            warm_frac: shape.warm_frac * scale,
            cold_frac: shape.cold_frac * scale,
            pointer_chase: shape.pointer_chase,
            streaming: shape.streaming,
        })
        .branches(BranchBehavior {
            sites: 96,
            biased_frac: shape.biased_frac,
            random_taken_rate: 0.5,
            call_frac: 0.04,
            code_bytes: shape.code_kb * 1024,
        })
        .phases(PhaseBehavior {
            compute_len: shape.compute_len,
            mem_len: shape.mem_len,
            mem_boost: boost,
            compute_damp: DAMP,
        })
        .dep_mean(shape.dep_mean)
        .fp_load_frac(match shape.suite {
            Suite::Fp => 0.6,
            Suite::Int => 0.0,
        })
        .mem_bound(shape.paper_l2_pct >= 1.0)
        .build()
        .expect("built-in profile must validate")
}

// BTreeMap rather than HashMap: lookup is cold (once per RunSpec), and a
// deterministic iteration order means no future consumer can accidentally
// pick up RandomState ordering (DET-HASH-001 in `smt-lint`).
fn registry() -> &'static BTreeMap<&'static str, BenchmarkProfile> {
    static REGISTRY: OnceLock<BTreeMap<&'static str, BenchmarkProfile>> = OnceLock::new();
    REGISTRY.get_or_init(|| SHAPES.iter().map(|s| (s.name, expand(s))).collect())
}

/// Looks up a benchmark profile by the paper's name (e.g. `"mcf"`).
pub fn profile(name: &str) -> Option<&'static BenchmarkProfile> {
    registry().get(name)
}

/// All 20 benchmark names in Table-3 order (MEM first, then ILP).
pub fn names() -> Vec<&'static str> {
    SHAPES.iter().map(|s| s.name).collect()
}

/// Names of the MEM benchmarks (paper Table 3a).
pub fn mem_names() -> Vec<&'static str> {
    SHAPES
        .iter()
        .filter(|s| s.paper_l2_pct >= 1.0)
        .map(|s| s.name)
        .collect()
}

/// Names of the ILP benchmarks (paper Table 3b).
pub fn ilp_names() -> Vec<&'static str> {
    SHAPES
        .iter()
        .filter(|s| s.paper_l2_pct < 1.0)
        .map(|s| s.name)
        .collect()
}

/// The L2 miss rate (percent) the paper reports for `name` in Table 3,
/// used by the calibration report.
pub fn paper_l2_miss_pct(name: &str) -> Option<f64> {
    SHAPES
        .iter()
        .find(|s| s.name == name)
        .map(|s| s.paper_l2_pct)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_twenty_benchmarks_present() {
        assert_eq!(names().len(), 20);
        assert_eq!(mem_names().len(), 8);
        assert_eq!(ilp_names().len(), 12);
    }

    #[test]
    fn every_profile_validates() {
        for name in names() {
            let p = profile(name).unwrap();
            p.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn mem_ilp_split_matches_table3() {
        for name in mem_names() {
            assert!(
                profile(name).unwrap().is_mem_bound(),
                "{name} should classify as MEM"
            );
        }
        for name in ilp_names() {
            assert!(
                !profile(name).unwrap().is_mem_bound(),
                "{name} should classify as ILP"
            );
        }
    }

    #[test]
    fn integer_benchmarks_never_touch_fp() {
        for name in names() {
            let p = profile(name).unwrap();
            if p.suite == crate::Suite::Int {
                assert!(!p.mix.uses_fp(), "{name} is INT but has FP weight");
                assert_eq!(p.fp_load_frac, 0.0);
            }
        }
    }

    #[test]
    fn mcf_is_pointer_chaser_art_is_not() {
        let mcf = profile("mcf").unwrap();
        let art = profile("art").unwrap();
        assert!(mcf.mem.pointer_chase > 0.5, "mcf must serialise misses");
        assert!(art.mem.pointer_chase < 0.2, "art must overlap misses");
    }

    #[test]
    fn unknown_benchmark_is_none() {
        assert!(profile("doom3").is_none());
    }

    #[test]
    fn paper_rates_ordered_like_table3() {
        assert!(paper_l2_miss_pct("mcf").unwrap() > paper_l2_miss_pct("art").unwrap());
        assert!(paper_l2_miss_pct("art").unwrap() > paper_l2_miss_pct("twolf").unwrap());
        assert_eq!(paper_l2_miss_pct("eon").unwrap(), 0.0);
    }
}
