//! Replayable per-thread trace block store.
//!
//! [`TraceGenerator`] expands a profile into an infinite stream one
//! instruction at a time. The simulator's fetch stage used to invoke it
//! *inline*, on the critical path, once per fetched instruction, and threw
//! the decoded records away at commit — so a nine-policy sweep over the
//! same workload regenerated the identical stream nine times.
//!
//! [`ThreadTrace`] moves generation off the critical path and makes the
//! stream replayable:
//!
//! * instructions are pre-generated in **blocks** of [`TRACE_BLOCK`]
//!   records, packed into 16-byte [`PackedInst`]s with the cold
//!   [`MemAccess`]/[`BranchInfo`] payloads in per-block sidecar
//!   struct-of-arrays lanes,
//! * a persistent **prefix** of up to [`MAX_PREFIX_BLOCKS`] blocks is kept
//!   across [`ThreadTrace::rebind`] calls: when the next run uses the same
//!   (profile, seed, slot), its blocks are *reused*, not regenerated —
//!   which is exactly the sweep case (nine policies over one workload),
//! * past the prefix cap the stream continues through a small **ring** of
//!   tail blocks sized to the caller's maximum lookback, regenerated from
//!   a generator snapshot frozen at the cap boundary, so memory stays
//!   bounded on arbitrarily long runs.
//!
//! The store is bit-exact: replayed records unpack to precisely what
//! [`TraceGenerator::next_inst`] streams, and the per-instruction
//! memory-phase bits reproduce the generator's lazily-observed phase
//! signal (see [`ThreadTrace::in_memory_phase`]).

use crate::generator::TraceGenerator;
use crate::profile::BenchmarkProfile;
use smt_isa::{BranchInfo, MemAccess, PackedInst};

/// Instructions per trace block. A power of two so seq→block arithmetic
/// is a shift and the in-block offset a mask.
pub const TRACE_BLOCK: usize = 256;

/// Upper bound of persistently retained blocks per thread (2¹⁰ blocks =
/// 262 144 instructions). Blocks are allocated on demand, so short runs
/// pay only for what they touch. The cap is deliberately *small*: it
/// covers the fetch frontier of sweep-length runs (the reuse case), while
/// longer single runs cross into the tail ring and recycle a handful of
/// cache-hot block buffers instead of growing cold freshly-allocated
/// memory for the rest of the run — a continuous multi-100k-cycle run
/// with an unbounded prefix measured several percent *slower* than the
/// recycling ring.
pub const MAX_PREFIX_BLOCKS: usize = 1_024;

const BLOCK_SHIFT: u32 = TRACE_BLOCK.trailing_zeros();
const BLOCK_MASK: u64 = TRACE_BLOCK as u64 - 1;
const PHASE_WORDS: usize = TRACE_BLOCK / 64;

/// One pre-generated block of [`TRACE_BLOCK`] consecutive instructions:
/// the packed hot lane plus sidecar payload lanes indexed by
/// [`PackedInst::aux`] (mem and branch payloads are mutually exclusive in
/// generated streams, so one index serves both lanes).
#[derive(Debug, Default, Clone)]
struct TraceBlock {
    /// Sequence number of `insts[0]`.
    base_seq: u64,
    insts: Vec<PackedInst>,
    mem: Vec<MemAccess>,
    branches: Vec<BranchInfo>,
    /// Per-instruction memory-phase bit: the generator's phase *after*
    /// generating that instruction (the signal the lazily-generating
    /// pre-store code observed at its generation frontier).
    phase: [u64; PHASE_WORDS],
}

impl TraceBlock {
    /// (Re)fills this block with the next [`TRACE_BLOCK`] instructions of
    /// `gen`, reusing the lane allocations.
    fn fill(&mut self, gen: &mut TraceGenerator, base_seq: u64) {
        self.base_seq = base_seq;
        self.insts.clear();
        self.mem.clear();
        self.branches.clear();
        self.phase = [0; PHASE_WORDS];
        for i in 0..TRACE_BLOCK {
            let d = gen.next_inst();
            debug_assert!(
                d.mem.is_none() || d.branch.is_none(),
                "generated record carries both payloads"
            );
            let aux = if let Some(m) = d.mem {
                self.mem.push(m);
                self.mem.len() - 1
            } else if let Some(b) = d.branch {
                self.branches.push(b);
                self.branches.len() - 1
            } else {
                0
            };
            self.insts.push(PackedInst::pack(&d, aux as u16));
            if gen.in_memory_phase() {
                self.phase[i / 64] |= 1 << (i % 64);
            }
        }
    }

    #[inline]
    fn phase_bit(&self, off: usize) -> bool {
        self.phase[off / 64] & (1 << (off % 64)) != 0
    }
}

/// One instruction as served to the fetch stage: the packed hot core plus
/// its cold payloads read out of the sidecar lanes in the same block
/// lookup.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceRecord {
    /// The 16-byte hot core.
    pub packed: PackedInst,
    /// Memory payload, for loads and stores.
    pub mem: Option<MemAccess>,
    /// Control-flow payload, for branches.
    pub branch: Option<BranchInfo>,
}

impl TraceRecord {
    /// Reassembles the full decoded record (tests and diagnostics; the
    /// pipeline consumes the parts directly).
    pub fn unpack(&self) -> smt_isa::DecodedInst {
        self.packed.unpack(self.mem, self.branch)
    }
}

/// A replayable, block-buffered view of one thread's trace.
///
/// Reads are seq-indexed and may revisit any sequence number within
/// `max_lookback` of the newest one served (the simulator's squash path
/// re-fetches squashed sequence numbers; records must replay
/// bit-identically). Reads at or past the generation frontier extend it
/// one whole block at a time — generation runs off the per-instruction
/// critical path.
///
/// # Examples
///
/// ```
/// use smt_workloads::{spec, ThreadTrace, TraceGenerator};
///
/// let p = spec::profile("gzip").unwrap();
/// let mut store = ThreadTrace::new(p, 7, 0, 512);
/// let mut stream = TraceGenerator::new(p, 7, 0);
/// for seq in 0..1000 {
///     assert_eq!(store.record(seq).unpack(), stream.next_inst());
/// }
/// // Rebinding to the same workload replays the retained blocks.
/// assert!(store.rebind(p, 7, 0));
/// assert_eq!(store.record(0).unpack().pc, {
///     TraceGenerator::new(p, 7, 0).next_inst().pc
/// });
/// ```
#[derive(Debug)]
pub struct ThreadTrace {
    profile: BenchmarkProfile,
    seed: u64,
    slot: u64,
    /// Generator positioned exactly at the prefix frontier
    /// (`prefix.len() * TRACE_BLOCK` instructions generated). Frozen at
    /// the cap once the prefix is full; the tail clones it from there.
    prefix_gen: TraceGenerator,
    /// Persistently retained blocks `0..prefix.len()`, grown on demand and
    /// kept across same-key rebinds.
    prefix: Vec<TraceBlock>,
    /// Ring of tail blocks past the prefix cap, overlaid by block index.
    ring: Vec<TraceBlock>,
    /// Tail generator, cloned from the frozen `prefix_gen` when the
    /// current run first crosses the cap; dropped on rebind.
    tail_gen: Option<TraceGenerator>,
    /// Next tail block index (≥ [`MAX_PREFIX_BLOCKS`]) to generate.
    tail_next_block: u64,
    /// One past the newest sequence number served to the current run —
    /// the generation frontier the pre-store lazy path exposed, tracked
    /// for [`ThreadTrace::in_memory_phase`].
    requested_tip: u64,
    /// The generator's phase before the first instruction.
    initial_mem_phase: bool,
}

impl ThreadTrace {
    /// Creates a store for `profile`, seeded with `seed` on thread slot
    /// `slot` (the [`TraceGenerator::new`] parameters). `max_lookback`
    /// bounds how far behind the newest served sequence number reads may
    /// reach — the simulator's in-flight window span.
    ///
    /// # Panics
    ///
    /// Panics if the profile fails [`BenchmarkProfile::validate`].
    pub fn new(profile: &BenchmarkProfile, seed: u64, slot: u64, max_lookback: u64) -> Self {
        let gen = TraceGenerator::new(profile, seed, slot);
        let ring_len = (max_lookback >> BLOCK_SHIFT) as usize + 2;
        ThreadTrace {
            profile: profile.clone(),
            seed,
            slot,
            initial_mem_phase: gen.in_memory_phase(),
            prefix_gen: gen,
            prefix: Vec::new(),
            ring: vec![TraceBlock::default(); ring_len],
            tail_gen: None,
            tail_next_block: MAX_PREFIX_BLOCKS as u64,
            requested_tip: 0,
        }
    }

    /// Rebinds the store for a fresh run. When the workload key
    /// (profile, seed, slot) is unchanged the retained prefix blocks are
    /// *reused* — the sweep case: nine policies replay one workload —
    /// and the call returns `true`. Otherwise the store restarts from a
    /// fresh generator (retained blocks are discarded) and returns
    /// `false`. Either way the replay position rewinds to sequence 0.
    pub fn rebind(&mut self, profile: &BenchmarkProfile, seed: u64, slot: u64) -> bool {
        let reused = self.seed == seed && self.slot == slot && self.profile == *profile;
        if !reused {
            let gen = TraceGenerator::new(profile, seed, slot);
            self.profile = profile.clone();
            self.seed = seed;
            self.slot = slot;
            self.initial_mem_phase = gen.in_memory_phase();
            self.prefix_gen = gen;
            self.prefix.clear();
        }
        // Tail blocks always regenerate (their ring slots are overwritten
        // before first use: any past-cap read first advances
        // `tail_next_block` from the cap).
        self.tail_gen = None;
        self.tail_next_block = MAX_PREFIX_BLOCKS as u64;
        self.requested_tip = 0;
        reused
    }

    /// The profile driving this trace.
    pub fn profile(&self) -> &BenchmarkProfile {
        &self.profile
    }

    /// A decorrelated generator twin over the same regions (functional
    /// cache warm-up; see [`TraceGenerator::decorrelated`]).
    pub fn decorrelated(&self, salt: u64) -> TraceGenerator {
        self.prefix_gen.decorrelated(salt)
    }

    /// `true` while the generation frontier of the *served* stream sits in
    /// a memory phase — bit-identical to what the pre-store lazy path
    /// reported: the generator's phase after generating the newest served
    /// instruction (or the initial phase before anything was served).
    /// Ground truth for the Table-5 experiment.
    pub fn in_memory_phase(&self) -> bool {
        if self.requested_tip == 0 {
            return self.initial_mem_phase;
        }
        let seq = self.requested_tip - 1;
        let block = self.block_ref(seq >> BLOCK_SHIFT);
        block.phase_bit((seq & BLOCK_MASK) as usize)
    }

    /// The packed record at `seq`, extending the generation frontier by
    /// whole blocks as needed. 16 bytes out of a contiguous lane — the
    /// burst-fetch hot call.
    #[inline]
    pub fn packed(&mut self, seq: u64) -> PackedInst {
        let block = self.block(seq >> BLOCK_SHIFT);
        let p = block.insts[(seq & BLOCK_MASK) as usize];
        self.served(seq);
        p
    }

    /// The fetch stage's hot read: the packed record at `seq` plus the
    /// effective address for loads/stores (0 otherwise), in one block
    /// lookup and at most 24 bytes moved. Branch payloads are *not*
    /// touched — the minority of records that need one fetch it with
    /// [`ThreadTrace::branch_payload`].
    #[inline]
    pub fn entry(&mut self, seq: u64) -> (PackedInst, u64) {
        let block = self.block(seq >> BLOCK_SHIFT);
        let packed = block.insts[(seq & BLOCK_MASK) as usize];
        let addr = if packed.has_mem() {
            block.mem[usize::from(packed.aux())].addr
        } else {
            0
        };
        self.served(seq);
        (packed, addr)
    }

    /// The branch payload of the record at `seq`, whose sidecar index the
    /// caller read from the packed record ([`PackedInst::aux`]). Only
    /// valid for records with [`PackedInst::has_branch`] set; the block
    /// must already be materialised (it was — the caller just read the
    /// packed record out of it).
    #[inline]
    pub fn branch_payload(&self, seq: u64, aux: u16) -> BranchInfo {
        self.block_ref(seq >> BLOCK_SHIFT).branches[usize::from(aux)]
    }

    /// The packed record *and* its sidecar payloads at `seq`, in one block
    /// lookup.
    #[inline]
    pub fn record(&mut self, seq: u64) -> TraceRecord {
        let block = self.block(seq >> BLOCK_SHIFT);
        let off = (seq & BLOCK_MASK) as usize;
        let packed = block.insts[off];
        let aux = usize::from(packed.aux());
        let (mem, branch) = if packed.has_mem() {
            (Some(block.mem[aux]), None)
        } else if packed.has_branch() {
            (None, Some(block.branches[aux]))
        } else {
            (None, None)
        };
        self.served(seq);
        TraceRecord {
            packed,
            mem,
            branch,
        }
    }

    #[inline]
    fn served(&mut self, seq: u64) {
        self.requested_tip = self.requested_tip.max(seq + 1);
    }

    /// Resident block `b`, generating forward to materialise it if needed.
    #[inline]
    fn block(&mut self, b: u64) -> &TraceBlock {
        if b < MAX_PREFIX_BLOCKS as u64 {
            while self.prefix.len() as u64 <= b {
                let base = (self.prefix.len() as u64) << BLOCK_SHIFT;
                let mut blk = TraceBlock::default();
                blk.fill(&mut self.prefix_gen, base);
                self.prefix.push(blk);
            }
            &self.prefix[b as usize]
        } else {
            while self.tail_next_block <= b {
                // The prefix is necessarily full here (reads are within
                // `max_lookback` of the monotone frontier, which crossed
                // the cap), so `prefix_gen` is frozen at the cap.
                debug_assert_eq!(self.prefix.len(), MAX_PREFIX_BLOCKS);
                let tail = self.tail_gen.get_or_insert_with(|| self.prefix_gen.clone());
                let idx = self.tail_next_block;
                let slot = (idx % self.ring.len() as u64) as usize;
                self.ring[slot].fill(tail, idx << BLOCK_SHIFT);
                self.tail_next_block += 1;
            }
            self.ring_ref(b)
        }
    }

    /// Resident block `b` without generating (the block must already be
    /// materialised — used by phase queries on the served frontier).
    #[inline]
    fn block_ref(&self, b: u64) -> &TraceBlock {
        if b < MAX_PREFIX_BLOCKS as u64 {
            &self.prefix[b as usize]
        } else {
            self.ring_ref(b)
        }
    }

    #[inline]
    fn ring_ref(&self, b: u64) -> &TraceBlock {
        let blk = &self.ring[(b % self.ring.len() as u64) as usize];
        debug_assert_eq!(
            blk.base_seq,
            b << BLOCK_SHIFT,
            "tail block evicted: read outside the declared max_lookback"
        );
        blk
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec;

    fn gzip() -> &'static BenchmarkProfile {
        spec::profile("gzip").expect("registry profile")
    }

    #[test]
    fn replays_the_generator_stream_bit_identically() {
        let p = gzip();
        let mut store = ThreadTrace::new(p, 42, 0, 512);
        let mut gen = TraceGenerator::new(p, 42, 0);
        for seq in 0..5_000u64 {
            assert_eq!(store.record(seq).unpack(), gen.next_inst(), "seq {seq}");
        }
        // Lookback within the declared window replays identically.
        let again = store.record(4_600).unpack();
        let mut gen2 = TraceGenerator::new(p, 42, 0);
        for _ in 0..4_600 {
            gen2.next_inst();
        }
        assert_eq!(again, gen2.next_inst());
    }

    #[test]
    fn tail_ring_continues_past_the_prefix_cap() {
        let p = gzip();
        let cap = (MAX_PREFIX_BLOCKS * TRACE_BLOCK) as u64;
        let total = cap + 3 * TRACE_BLOCK as u64 + 17;
        let mut store = ThreadTrace::new(p, 11, 0, 512);
        let mut gen = TraceGenerator::new(p, 11, 0);
        for seq in 0..total {
            assert_eq!(store.record(seq).unpack(), gen.next_inst(), "seq {seq}");
            if seq > cap && seq % 173 == 0 {
                // Lookback re-reads across and past the cap boundary stay
                // bit-identical while within the declared window.
                let back = seq - 100;
                let a = store.record(back);
                let b = store.record(back);
                assert_eq!(a, b, "lookback at seq {back}");
            }
        }
        // A same-key rebind replays the retained prefix and regenerates
        // the tail identically.
        assert!(store.rebind(p, 11, 0), "same key must reuse");
        let mut gen2 = TraceGenerator::new(p, 11, 0);
        for seq in 0..total {
            assert_eq!(
                store.record(seq).unpack(),
                gen2.next_inst(),
                "replay seq {seq}"
            );
        }
    }

    #[test]
    fn same_key_rebind_reuses_blocks_and_replays() {
        let p = gzip();
        let mut store = ThreadTrace::new(p, 7, 1, 512);
        let first: Vec<_> = (0..2_000).map(|s| store.record(s).unpack()).collect();
        assert!(store.rebind(p, 7, 1), "same key must reuse");
        let second: Vec<_> = (0..2_000).map(|s| store.record(s).unpack()).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn different_seed_rebind_regenerates() {
        let p = gzip();
        let mut store = ThreadTrace::new(p, 1, 0, 512);
        let a: Vec<_> = (0..1_000).map(|s| store.record(s).unpack()).collect();
        assert!(!store.rebind(p, 2, 0), "changed seed must not reuse");
        let b: Vec<_> = (0..1_000).map(|s| store.record(s).unpack()).collect();
        assert_ne!(a, b, "different seeds must diverge");
        let mut gen = TraceGenerator::new(p, 2, 0);
        for (s, inst) in b.iter().enumerate() {
            assert_eq!(*inst, gen.next_inst(), "seq {s}");
        }
    }

    #[test]
    fn phase_signal_matches_lazy_generation() {
        let p = spec::profile("mcf").expect("registry profile");
        let mut store = ThreadTrace::new(p, 3, 0, 512);
        let mut gen = TraceGenerator::new(p, 3, 0);
        assert_eq!(store.in_memory_phase(), gen.in_memory_phase());
        for seq in 0..20_000u64 {
            let _ = store.packed(seq);
            gen.next_inst();
            assert_eq!(
                store.in_memory_phase(),
                gen.in_memory_phase(),
                "phase diverged at seq {seq}"
            );
        }
    }

    #[test]
    fn decorrelated_twin_matches_generator_twin() {
        let p = gzip();
        let store = ThreadTrace::new(p, 9, 2, 512);
        let gen = TraceGenerator::new(p, 9, 2);
        let mut a = store.decorrelated(0xCAFE);
        let mut b = gen.decorrelated(0xCAFE);
        for _ in 0..500 {
            assert_eq!(a.next_inst(), b.next_inst());
        }
    }

    #[test]
    fn record_parts_match_unpacked_payloads() {
        let p = spec::profile("art").expect("registry profile");
        let mut store = ThreadTrace::new(p, 5, 0, 512);
        for seq in 0..2_000u64 {
            let r = store.record(seq);
            let d = r.unpack();
            assert_eq!(r.mem, d.mem);
            assert_eq!(r.branch, d.branch);
            assert_eq!(r.packed.pc, d.pc);
            assert_eq!(r.packed.class(), d.class);
        }
    }
}
