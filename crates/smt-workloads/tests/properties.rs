//! Property-based tests of the trace-generation substrate.

use proptest::prelude::*;
use smt_workloads::{spec, BenchmarkProfile, Suite, ThreadTrace, TraceGenerator};

fn any_builtin() -> impl Strategy<Value = &'static BenchmarkProfile> {
    let names = spec::names();
    (0..names.len()).prop_map(move |i| spec::profile(names[i]).expect("registry"))
}

proptest! {
    /// Every generated instruction is internally consistent: memory ops
    /// carry addresses, branches carry targets, destinations match class.
    #[test]
    fn generated_instructions_are_well_formed(
        profile in any_builtin(),
        seed in 0u64..1000,
        n in 100usize..2000,
    ) {
        let mut g = TraceGenerator::new(profile, seed, 0);
        for _ in 0..n {
            let i = g.next_inst();
            if i.class.is_mem() {
                prop_assert!(i.mem.is_some());
            }
            if i.class == smt_isa::InstClass::Branch {
                prop_assert!(i.branch.is_some());
                prop_assert!(i.dest.is_none());
            }
            if i.class.is_fp() {
                prop_assert_eq!(i.dest, Some(smt_isa::RegClass::Fp));
            }
            for d in i.deps().into_iter().flatten() {
                prop_assert!(d >= 1, "dependence distance must be positive");
            }
        }
    }

    /// Determinism: same (profile, seed, slot) gives identical streams.
    #[test]
    fn streams_are_reproducible(profile in any_builtin(), seed in 0u64..100) {
        let mut a = TraceGenerator::new(profile, seed, 1);
        let mut b = TraceGenerator::new(profile, seed, 1);
        for _ in 0..500 {
            prop_assert_eq!(a.next_inst(), b.next_inst());
        }
    }

    /// Integer-suite profiles never generate FP work or FP destinations.
    #[test]
    fn integer_profiles_stay_integer(seed in 0u64..100) {
        for name in spec::names() {
            let p = spec::profile(name).unwrap();
            if p.suite != Suite::Int {
                continue;
            }
            let mut g = TraceGenerator::new(p, seed, 0);
            for _ in 0..500 {
                let i = g.next_inst();
                prop_assert!(!i.class.is_fp(), "{name} generated {}", i.class);
                prop_assert_ne!(i.dest, Some(smt_isa::RegClass::Fp));
            }
        }
    }

    /// Thread slots give disjoint address spaces.
    #[test]
    fn slots_partition_the_address_space(
        profile in any_builtin(),
        seed in 0u64..100,
        slot_a in 0u64..4,
        slot_b in 0u64..4,
    ) {
        prop_assume!(slot_a != slot_b);
        let mut a = TraceGenerator::new(profile, seed, slot_a);
        let mut b = TraceGenerator::new(profile, seed ^ 1, slot_b);
        for _ in 0..300 {
            let (x, y) = (a.next_inst(), b.next_inst());
            if let (Some(ma), Some(mb)) = (x.mem, y.mem) {
                prop_assert_ne!(ma.addr >> 36, mb.addr >> 36);
            }
        }
    }

    /// Store-replayed traces are bit-identical to streamed generation:
    /// for any profile/seed/slot, every record the block store serves
    /// unpacks to exactly what a fresh generator streams — including
    /// within-window lookback re-reads (the squash path) and the
    /// memory-phase signal at every step.
    #[test]
    fn store_replay_matches_streamed_generation(
        profile in any_builtin(),
        seed in 0u64..1000,
        slot in 0u64..4,
        n in 300u64..2000,
    ) {
        let mut store = ThreadTrace::new(profile, seed, slot, 64);
        let mut gen = TraceGenerator::new(profile, seed, slot);
        prop_assert_eq!(store.in_memory_phase(), gen.in_memory_phase());
        for seq in 0..n {
            let rec = store.record(seq);
            prop_assert_eq!(rec.unpack(), gen.next_inst(), "seq {}", seq);
            prop_assert_eq!(
                store.in_memory_phase(),
                gen.in_memory_phase(),
                "phase diverged at seq {}", seq
            );
            if seq >= 32 && seq % 97 == 0 {
                // Lookback re-read (squash path) replays identically.
                let back = seq - 32;
                let again = store.record(back);
                prop_assert_eq!(again, store.record(back));
            }
        }
    }

    /// Rebinding the store replays identically: a same-key rebind reuses
    /// the retained blocks, a changed key regenerates — and in both cases
    /// the served stream equals fresh generation for the bound key.
    #[test]
    fn store_rebind_replays_each_key_exactly(
        profile in any_builtin(),
        seed in 0u64..500,
        slot in 0u64..4,
    ) {
        let mut store = ThreadTrace::new(profile, seed, slot, 64);
        let first: Vec<_> = (0..600).map(|s| store.record(s).unpack()).collect();
        prop_assert!(store.rebind(profile, seed, slot), "same key must reuse");
        let replay: Vec<_> = (0..600).map(|s| store.record(s).unpack()).collect();
        prop_assert_eq!(&first, &replay);
        prop_assert!(!store.rebind(profile, seed ^ 0xdead, slot));
        let mut gen = TraceGenerator::new(profile, seed ^ 0xdead, slot);
        for seq in 0..600 {
            prop_assert_eq!(store.record(seq).unpack(), gen.next_inst(), "seq {}", seq);
        }
    }

    /// A decorrelated twin visits the same regions but a different cold
    /// path: its stream differs, yet stays well-formed.
    #[test]
    fn decorrelated_twin_differs(profile in any_builtin(), seed in 0u64..100) {
        let base = TraceGenerator::new(profile, seed, 0);
        let mut twin = base.decorrelated(7);
        let mut orig = base.clone();
        let mut diff = false;
        for _ in 0..500 {
            if orig.next_inst() != twin.next_inst() {
                diff = true;
                break;
            }
        }
        prop_assert!(diff, "decorrelated stream must diverge");
    }
}
