//! The resource-allocation / fetch-policy interface.
//!
//! The simulator consults a [`Policy`] at three points every cycle —
//! fetch ordering, fetch gating, dispatch gating — and notifies it of the
//! events the paper's policies key on (dispatch-time allocation, L1 data
//! misses, L2 miss detection, miss service). Instruction-fetch policies
//! (ICOUNT, STALL, FLUSH, DG, PDG, FLUSH++) use only the gates and events;
//! *allocation* policies (SRA, DCRA) additionally use the per-thread
//! resource-usage counters in the [`CycleView`] — exactly the distinction
//! Section 3.3 of the paper draws.
//!
//! The [`CycleView`] is stored *struct-of-arrays*: one contiguous lane per
//! per-thread quantity (icount, pending-miss counters, usage, commit
//! counters). Policies that rank or scan threads every cycle — the ICOUNT
//! sort, DCRA's classification pass, FLUSH++'s window rollover — read the
//! lane they need via the batch accessors ([`CycleView::icounts`],
//! [`CycleView::l1d_pendings`], ...) instead of striding over an
//! array-of-structs, so the per-cycle scans touch only the bytes they use.
//! [`ThreadView`] remains as the *record* form: views are built from (and
//! tests construct them with) per-thread records via [`CycleView::new`].
//!
//! This crate sits *below* both the concrete policy crates (`smt-policies`,
//! `dcra`) and the simulator (`smt-sim`), so the simulator can depend on
//! the concrete policies and dispatch them statically through its
//! `AnyPolicy` enum. `smt-sim` re-exports everything here under
//! `smt_sim::policy`, which remains the canonical import path for
//! simulator users.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use smt_isa::{PackedInst, PerResource, QueueKind, RegClass, ResourceKind, ThreadId};
use smt_mem::HitLevel;

/// Per-thread state visible to policies each cycle, in record form.
///
/// These correspond to the hardware counters of Section 3.4: per-thread
/// queue/register occupancy and the pending-L1-miss counter, plus the
/// ICOUNT-style pre-issue instruction count that fetch policies use.
///
/// Inside a [`CycleView`] the same quantities are stored as per-field
/// lanes; this struct is the unit views are built from ([`CycleView::new`],
/// [`CycleView::set_thread`]).
#[derive(Debug, Clone, Default)]
pub struct ThreadView {
    /// Instructions in pre-issue stages (fetch queue + issue queues).
    pub icount: u32,
    /// Currently allocated entries of each controlled resource.
    pub usage: PerResource<u32>,
    /// Loads with an outstanding L1 data miss.
    pub l1d_pending: u32,
    /// Loads with a *detected* outstanding L2 miss (detection lags the
    /// access by the L2 latency, as in the paper's STALL discussion).
    pub l2_pending: u32,
    /// Instructions committed so far.
    pub committed: u64,
    /// L2 misses so far (for FLUSH++'s workload pressure heuristic).
    pub l2_misses: u64,
    /// Loads executed so far.
    pub loads: u64,
}

/// Machine-wide state visible to policies each cycle.
///
/// Stored struct-of-arrays: one lane per per-thread field, so per-cycle
/// policy scans (the ICOUNT sort, DCRA's classification, gating sweeps)
/// are contiguous. The simulator owns long-lived `CycleView` buffers and
/// refreshes them in place each cycle (no per-cycle allocation); policies
/// only ever see a shared reference.
///
/// # Examples
///
/// ```
/// use smt_policy_core::{CycleView, ThreadView};
/// use smt_isa::{PerResource, ThreadId};
///
/// let view = CycleView::new(
///     7,
///     PerResource::filled(80),
///     &[
///         ThreadView { icount: 3, ..ThreadView::default() },
///         ThreadView { icount: 9, ..ThreadView::default() },
///     ],
/// );
/// assert_eq!(view.thread_count(), 2);
/// assert_eq!(view.icount(ThreadId::new(1)), 9);
/// assert_eq!(view.icounts(), &[3, 9]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CycleView {
    /// Current cycle.
    pub now: u64,
    /// Total entries of each controlled resource.
    pub totals: PerResource<u32>,
    icount: Vec<u32>,
    l1d_pending: Vec<u32>,
    l2_pending: Vec<u32>,
    usage: Vec<PerResource<u32>>,
    committed: Vec<u64>,
    l2_misses: Vec<u64>,
    loads: Vec<u64>,
}

impl CycleView {
    /// Builds a view from per-thread records.
    pub fn new(now: u64, totals: PerResource<u32>, threads: &[ThreadView]) -> Self {
        let mut v = CycleView {
            now,
            totals,
            ..CycleView::default()
        };
        v.resize(threads.len());
        for (i, tv) in threads.iter().enumerate() {
            v.set_thread(i, tv);
        }
        v
    }

    /// Resizes every lane to `n` threads (new entries zeroed). Existing
    /// entries are retained; the simulator overwrites them all each cycle.
    pub fn resize(&mut self, n: usize) {
        self.icount.resize(n, 0);
        self.l1d_pending.resize(n, 0);
        self.l2_pending.resize(n, 0);
        self.usage.resize(n, PerResource::default());
        self.committed.resize(n, 0);
        self.l2_misses.resize(n, 0);
        self.loads.resize(n, 0);
    }

    /// Scatters one thread's record into the lanes.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range (call [`CycleView::resize`] first).
    pub fn set_thread(&mut self, i: usize, tv: &ThreadView) {
        self.set_hot(i, tv.icount, tv.usage, tv.l1d_pending, tv.l2_pending);
        self.set_progress(i, tv.committed, tv.l2_misses, tv.loads);
    }

    /// Refreshes one thread's per-cycle ("hot") lanes: icount, usage and
    /// the pending-miss counters. The progress counters are refreshed
    /// separately ([`CycleView::set_progress`]) so a caller can skip them
    /// for policies that never read them
    /// ([`Policy::wants_progress_counters`]).
    #[inline]
    pub fn set_hot(
        &mut self,
        i: usize,
        icount: u32,
        usage: PerResource<u32>,
        l1d_pending: u32,
        l2_pending: u32,
    ) {
        self.icount[i] = icount;
        self.usage[i] = usage;
        self.l1d_pending[i] = l1d_pending;
        self.l2_pending[i] = l2_pending;
    }

    /// Refreshes one thread's cumulative progress lanes (committed, L2
    /// misses, loads). Only meaningful to policies that opted in via
    /// [`Policy::wants_progress_counters`]; for everyone else the caller
    /// may leave these lanes stale.
    #[inline]
    pub fn set_progress(&mut self, i: usize, committed: u64, l2_misses: u64, loads: u64) {
        self.committed[i] = committed;
        self.l2_misses[i] = l2_misses;
        self.loads[i] = loads;
    }

    /// Number of hardware threads.
    #[inline]
    pub fn thread_count(&self) -> usize {
        self.icount.len()
    }

    // ------------------------------------------------- per-thread accessors

    /// Pre-issue instruction count of thread `t` (the ICOUNT key).
    #[inline]
    pub fn icount(&self, t: ThreadId) -> u32 {
        self.icount[t.index()]
    }

    /// Pending L1 data misses of thread `t`.
    #[inline]
    pub fn l1d_pending(&self, t: ThreadId) -> u32 {
        self.l1d_pending[t.index()]
    }

    /// Detected pending L2 misses of thread `t`.
    #[inline]
    pub fn l2_pending(&self, t: ThreadId) -> u32 {
        self.l2_pending[t.index()]
    }

    /// Resource usage of thread `t`.
    #[inline]
    pub fn usage(&self, t: ThreadId) -> &PerResource<u32> {
        &self.usage[t.index()]
    }

    /// Instructions committed by thread `t` so far.
    #[inline]
    pub fn committed(&self, t: ThreadId) -> u64 {
        self.committed[t.index()]
    }

    /// L2 misses of thread `t` so far.
    #[inline]
    pub fn l2_misses(&self, t: ThreadId) -> u64 {
        self.l2_misses[t.index()]
    }

    /// Loads executed by thread `t` so far.
    #[inline]
    pub fn loads(&self, t: ThreadId) -> u64 {
        self.loads[t.index()]
    }

    // ------------------------------------------------------ batch accessors

    /// All threads' pre-issue instruction counts, indexed by thread id —
    /// the lane the ICOUNT priority sort scans.
    #[inline]
    pub fn icounts(&self) -> &[u32] {
        &self.icount
    }

    /// All threads' pending-L1-data-miss counters (DCRA's fast/slow
    /// classification input).
    #[inline]
    pub fn l1d_pendings(&self) -> &[u32] {
        &self.l1d_pending
    }

    /// All threads' detected-pending-L2-miss counters.
    #[inline]
    pub fn l2_pendings(&self) -> &[u32] {
        &self.l2_pending
    }

    /// All threads' resource-usage counters (allocation-policy gating
    /// sweeps).
    #[inline]
    pub fn usages(&self) -> &[PerResource<u32>] {
        &self.usage
    }

    /// All threads' committed-instruction counters.
    #[inline]
    pub fn committed_counts(&self) -> &[u64] {
        &self.committed
    }

    /// All threads' L2-miss counters.
    #[inline]
    pub fn l2_miss_counts(&self) -> &[u64] {
        &self.l2_misses
    }

    /// All threads' executed-load counters.
    #[inline]
    pub fn load_counts(&self) -> &[u64] {
        &self.loads
    }

    /// Increments the usage mirror of thread `t` for `kind` — used by the
    /// simulator's dispatch stage so hard-partition policies see
    /// same-cycle allocations immediately.
    #[inline]
    pub fn bump_usage(&mut self, t: ThreadId, kind: ResourceKind) {
        self.usage[t.index()][kind] += 1;
    }
}

/// Reaction to a detected L2 miss (Tullsen & Brown's STALL vs FLUSH).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MissResponse {
    /// Do nothing special.
    Continue,
    /// Stop fetching from the thread until the miss is serviced.
    Stall,
    /// Squash every instruction of the thread younger than the missing load
    /// and stall fetch until the miss is serviced.
    Flush,
}

/// A fetch/resource-allocation policy.
///
/// Implementations must be deterministic: the simulator is fully
/// reproducible for a given seed and the experiments depend on it.
pub trait Policy {
    /// Short name used in reports (e.g. `"DCRA"`, `"FLUSH++"`).
    fn name(&self) -> &str;

    /// Called once at the start of every cycle, before any stage runs.
    fn begin_cycle(&mut self, _view: &CycleView) {}

    /// Appends the threads in fetch-priority order (best first) to
    /// `order`. Threads omitted are not fetched this cycle.
    ///
    /// The buffer arrives cleared and is reused by the simulator across
    /// cycles, so implementations stay allocation-free in steady state.
    fn fetch_order(&mut self, view: &CycleView, order: &mut Vec<ThreadId>);

    /// `true` if thread `t` may fetch this cycle. Called only for threads
    /// in the fetch order. This is the *response action* of stalling
    /// policies (STALL, DG, PDG) and the enforcement point of DCRA.
    fn fetch_gate(&mut self, _t: ThreadId, _view: &CycleView) -> bool {
        true
    }

    /// `true` if thread `t` may dispatch (rename) an instruction occupying
    /// `queue` and optionally a `dest` rename register. Hard-partition
    /// policies (SRA) enforce their limits here.
    fn may_dispatch(
        &self,
        _t: ThreadId,
        _queue: QueueKind,
        _dest: Option<RegClass>,
        _view: &CycleView,
    ) -> bool {
        true
    }

    /// Notification: thread `t` fetched `inst` (PDG trains its miss
    /// predictor here). The record is the 16-byte packed hot core — class,
    /// pc, dest and dependence deltas; cold mem/branch payloads stay in
    /// the trace store's sidecar lanes and are not part of this view.
    fn on_fetch_inst(&mut self, _t: ThreadId, _inst: &PackedInst) {}

    /// Notification: thread `t` dispatched an instruction into `queue`,
    /// allocating a `dest`-class rename register if `Some` (DCRA resets its
    /// activity counters here).
    fn on_dispatch(&mut self, _t: ThreadId, _queue: QueueKind, _dest: Option<RegClass>) {}

    /// Notification: a load of thread `t` at `pc` missed in the L1 data
    /// cache (DG/PDG input).
    fn on_l1d_miss(&mut self, _t: ThreadId, _pc: u64) {}

    /// A load of thread `t` has been *detected* to miss in the L2 (the
    /// detection happens one L2 latency after issue). The returned
    /// [`MissResponse`] is applied by the simulator.
    fn on_l2_miss_detected(&mut self, _t: ThreadId, _view: &CycleView) -> MissResponse {
        MissResponse::Continue
    }

    /// Notification: an outstanding miss of thread `t` was serviced.
    /// `level` is the deepest level the miss went to.
    fn on_miss_resolved(&mut self, _t: ThreadId, _pc: u64, _level: HitLevel) {}

    /// Notification: a load of thread `t` completed. `l1_missed` reports
    /// whether it had missed the L1 (PDG trains and releases its gate
    /// here, covering loads its predictor flagged that actually hit).
    fn on_load_complete(&mut self, _t: ThreadId, _pc: u64, _l1_missed: bool) {}

    /// Notification: an in-flight instruction of thread `t` was squashed
    /// (branch misprediction or policy flush). Lets stateful policies
    /// release bookkeeping tied to the instruction.
    fn on_squash_inst(&mut self, _t: ThreadId, _inst: &PackedInst) {}

    /// `true` if the policy reads the [`CycleView`] in
    /// [`Policy::may_dispatch`]. Allocation policies (SRA, DCRA) override
    /// this; for everything else the simulator skips the mid-cycle view
    /// refresh that `may_dispatch` would otherwise need every cycle.
    fn wants_dispatch_view(&self) -> bool {
        false
    }

    /// `true` if the policy's [`Policy::may_dispatch`] can ever refuse a
    /// dispatch. When `false` (the default, correct for every policy that
    /// leaves `may_dispatch` at its always-`true` default), the simulator's
    /// dispatch stage skips the per-instruction policy call entirely and
    /// dispatches each thread's burst against the structural limits alone.
    /// Defaults to [`Policy::wants_dispatch_view`], which is exact for the
    /// canonical nine (only SRA gates dispatch, and it needs the view).
    fn wants_dispatch_gate(&self) -> bool {
        self.wants_dispatch_view()
    }

    /// `true` if the policy reads the cumulative progress counters of the
    /// view — [`CycleView::committed`], [`CycleView::l2_misses`],
    /// [`CycleView::loads`] or their batch lanes. When `false` (the
    /// default) the simulator skips refreshing those lanes each cycle;
    /// policies that read them without overriding this hint see stale
    /// values. FLUSH++ (window pressure) and the degenerate-case DCRA
    /// variants override it.
    fn wants_progress_counters(&self) -> bool {
        false
    }

    /// `true` if the policy consumes [`Policy::on_squash_inst`]. The
    /// simulator skips the packed-record lookup for every squashed
    /// instruction when the notification would be a no-op (squash rates
    /// run at roughly half of fetch, so this is a measurable hot-path
    /// saving); override alongside `on_squash_inst`.
    fn wants_squash_inst(&self) -> bool {
        false
    }

    /// Fast-forward hook: replay up to `n` *idle* cycles' worth of
    /// per-cycle policy side effects arithmetically and return how many
    /// were replayed.
    ///
    /// The simulator calls this after a cycle in which the whole machine
    /// was provably idle — no event delivered, nothing committed, issued,
    /// dispatched or fetched — and it has computed that the machine state
    /// cannot change before `view.now + n` (next event-wheel deadline,
    /// dispatch eligibility, I-cache stall expiry and MSHR fill arrival
    /// are all at least `n` cycles away). `view` is the machine state the
    /// skipped cycles would all observe; `view.now` is the first skipped
    /// cycle.
    ///
    /// A policy returning `k > 0` asserts that for the cycles
    /// `view.now .. view.now + k`:
    ///
    /// * [`Policy::begin_cycle`] and [`Policy::fetch_order`] would have
    ///   had no *externally observable* effect beyond what this call
    ///   replays internally (rotation state, decay counters, window
    ///   rollovers, ...), and
    /// * every [`Policy::fetch_gate`] decision would have been identical
    ///   to the decision made in the idle cycle just executed (the
    ///   simulator replays `gated_cycles` statistics under that
    ///   assumption), and
    /// * every [`Policy::may_dispatch`] decision would have been identical
    ///   too (the simulator replays `blocked_policy` charges and assumes a
    ///   refused dispatch stays refused for the whole span), and
    /// * [`Policy::fetch_order`] would have listed the same *set* of
    ///   threads (the permutation is irrelevant on an idle cycle).
    ///
    /// Returning less than `n` ends the fast-forward early (the simulator
    /// resumes stepping, so a policy whose decisions change mid-span —
    /// e.g. DCRA when an activity counter is about to flip a thread
    /// inactive — simply caps the jump). The default returns `0`: a policy
    /// that does not override this never fast-forwards, which is always
    /// correct, only slower. Policies that replay should override this
    /// *and* [`Policy::wants_fast_forward`] together.
    fn on_idle_cycles(&mut self, _n: u64, _view: &CycleView) -> u64 {
        0
    }

    /// `true` if [`Policy::on_idle_cycles`] can ever accept a span. When
    /// `false` (the default — matching `on_idle_cycles`'s declining
    /// default, so an un-audited policy is both safe *and* free), the
    /// simulator's fast-forward path bails out before computing the idle
    /// deadline (an O(threads) scan plus event-wheel and MSHR probes)
    /// whose result the policy would discard every idle cycle. Override
    /// to `true` alongside `on_idle_cycles`.
    fn wants_fast_forward(&self) -> bool {
        false
    }
}

/// Round-robin over runnable threads — the simplest possible fetch order,
/// used as the default and as the paper's ROUND-ROBIN baseline.
#[derive(Debug, Clone, Default)]
pub struct RoundRobin {
    start: usize,
}

impl Policy for RoundRobin {
    fn name(&self) -> &str {
        "RR"
    }

    fn fetch_order(&mut self, view: &CycleView, order: &mut Vec<ThreadId>) {
        let n = view.thread_count();
        let start = self.start;
        self.start = (self.start + 1) % n.max(1);
        order.extend((0..n).map(|i| ThreadId::new((start + i) % n)));
    }

    fn on_idle_cycles(&mut self, n: u64, view: &CycleView) -> u64 {
        // The only per-cycle state is the rotation origin, which advances
        // once per `fetch_order` call; RR never gates, so the order
        // permutation is the sole effect and it is invisible on idle
        // cycles.
        let m = view.thread_count().max(1);
        self.start = (self.start + (n % m as u64) as usize) % m;
        n
    }

    fn wants_fast_forward(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(n: usize) -> CycleView {
        CycleView::new(0, PerResource::filled(80), &vec![ThreadView::default(); n])
    }

    #[test]
    fn round_robin_rotates() {
        let mut rr = RoundRobin::default();
        let v = view(3);
        let mut a = Vec::new();
        let mut b = Vec::new();
        rr.fetch_order(&v, &mut a);
        rr.fetch_order(&v, &mut b);
        assert_eq!(a[0].index(), 0);
        assert_eq!(b[0].index(), 1);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn default_gates_are_open() {
        let mut rr = RoundRobin::default();
        let v = view(2);
        assert!(rr.fetch_gate(ThreadId::new(0), &v));
        assert!(rr.may_dispatch(ThreadId::new(0), QueueKind::Int, Some(RegClass::Int), &v));
        assert!(!rr.wants_dispatch_gate());
        assert_eq!(
            rr.on_l2_miss_detected(ThreadId::new(0), &v),
            MissResponse::Continue
        );
    }

    #[test]
    fn idle_replay_matches_stepped_rotation() {
        // Skipping k idle cycles must leave RR in exactly the state k
        // fetch_order calls would have — including spans far larger than
        // the thread count, where the `n % threads` arithmetic carries
        // the load.
        let v = view(3);
        for warm in [0usize, 1, 2, 5] {
            for k in [0u64, 1, 2, 3, 7, 50, 4_099, 1_000_003] {
                let mut stepped = RoundRobin::default();
                let mut jumped = RoundRobin::default();
                // Desynchronise the starting origin from zero.
                for _ in 0..warm {
                    let (mut buf, mut buf2) = (Vec::new(), Vec::new());
                    stepped.fetch_order(&v, &mut buf);
                    jumped.fetch_order(&v, &mut buf2);
                }
                for _ in 0..k {
                    let mut buf = Vec::new();
                    stepped.fetch_order(&v, &mut buf);
                }
                assert_eq!(jumped.on_idle_cycles(k, &v), k);
                let (mut a, mut b) = (Vec::new(), Vec::new());
                stepped.fetch_order(&v, &mut a);
                jumped.fetch_order(&v, &mut b);
                assert_eq!(a, b, "rotation drifted after replaying {k} cycles");
            }
        }
    }

    #[test]
    fn default_idle_replay_declines() {
        // A policy that does not override the hook must never be
        // fast-forwarded past.
        struct Plain;
        impl Policy for Plain {
            fn name(&self) -> &str {
                "PLAIN"
            }
            fn fetch_order(&mut self, view: &CycleView, order: &mut Vec<ThreadId>) {
                order.extend((0..view.thread_count()).map(ThreadId::new));
            }
        }
        assert_eq!(Plain.on_idle_cycles(1_000, &view(2)), 0);
        assert!(
            !Plain.wants_fast_forward(),
            "declining default must also opt out of the deadline computation"
        );
        assert!(RoundRobin::default().wants_fast_forward());
    }

    #[test]
    fn lanes_mirror_records() {
        let threads = [
            ThreadView {
                icount: 4,
                l1d_pending: 1,
                l2_pending: 2,
                committed: 30,
                l2_misses: 5,
                loads: 11,
                ..ThreadView::default()
            },
            ThreadView::default(),
        ];
        let mut v = CycleView::new(9, PerResource::filled(80), &threads);
        assert_eq!(v.icounts(), &[4, 0]);
        assert_eq!(v.l1d_pendings(), &[1, 0]);
        assert_eq!(v.l2_pendings(), &[2, 0]);
        assert_eq!(v.committed_counts(), &[30, 0]);
        assert_eq!(v.l2_miss_counts(), &[5, 0]);
        assert_eq!(v.load_counts(), &[11, 0]);
        let t0 = ThreadId::new(0);
        assert_eq!(v.icount(t0), 4);
        assert_eq!(v.committed(t0), 30);
        v.bump_usage(t0, ResourceKind::IntQueue);
        assert_eq!(v.usage(t0)[ResourceKind::IntQueue], 1);
        assert_eq!(v.usages()[0][ResourceKind::IntQueue], 1);
    }
}
