//! The resource-allocation / fetch-policy interface.
//!
//! The simulator consults a [`Policy`] at three points every cycle —
//! fetch ordering, fetch gating, dispatch gating — and notifies it of the
//! events the paper's policies key on (dispatch-time allocation, L1 data
//! misses, L2 miss detection, miss service). Instruction-fetch policies
//! (ICOUNT, STALL, FLUSH, DG, PDG, FLUSH++) use only the gates and events;
//! *allocation* policies (SRA, DCRA) additionally use the per-thread
//! resource-usage counters in the [`CycleView`] — exactly the distinction
//! Section 3.3 of the paper draws.
//!
//! This crate sits *below* both the concrete policy crates (`smt-policies`,
//! `dcra`) and the simulator (`smt-sim`), so the simulator can depend on
//! the concrete policies and dispatch them statically through its
//! `AnyPolicy` enum. `smt-sim` re-exports everything here under
//! `smt_sim::policy`, which remains the canonical import path for
//! simulator users.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use smt_isa::{DecodedInst, PerResource, QueueKind, RegClass, ThreadId};
use smt_mem::HitLevel;

/// Per-thread state visible to policies each cycle.
///
/// These correspond to the hardware counters of Section 3.4: per-thread
/// queue/register occupancy and the pending-L1-miss counter, plus the
/// ICOUNT-style pre-issue instruction count that fetch policies use.
#[derive(Debug, Clone, Default)]
pub struct ThreadView {
    /// Instructions in pre-issue stages (fetch queue + issue queues).
    pub icount: u32,
    /// Currently allocated entries of each controlled resource.
    pub usage: PerResource<u32>,
    /// Loads with an outstanding L1 data miss.
    pub l1d_pending: u32,
    /// Loads with a *detected* outstanding L2 miss (detection lags the
    /// access by the L2 latency, as in the paper's STALL discussion).
    pub l2_pending: u32,
    /// Instructions committed so far.
    pub committed: u64,
    /// Data-cache accesses and L2 misses so far (for FLUSH++'s workload
    /// pressure heuristic).
    pub l2_misses: u64,
    /// Loads executed so far.
    pub loads: u64,
}

/// Machine-wide state visible to policies each cycle.
///
/// The simulator owns long-lived `CycleView` buffers and refreshes them in
/// place each cycle (no per-cycle allocation); policies only ever see a
/// shared reference.
#[derive(Debug, Clone, Default)]
pub struct CycleView {
    /// Current cycle.
    pub now: u64,
    /// Per-thread state, indexed by [`ThreadId::index`].
    pub threads: Vec<ThreadView>,
    /// Total entries of each controlled resource.
    pub totals: PerResource<u32>,
}

impl CycleView {
    /// Convenience accessor.
    pub fn thread(&self, t: ThreadId) -> &ThreadView {
        &self.threads[t.index()]
    }

    /// Number of hardware threads.
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }
}

/// Reaction to a detected L2 miss (Tullsen & Brown's STALL vs FLUSH).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MissResponse {
    /// Do nothing special.
    Continue,
    /// Stop fetching from the thread until the miss is serviced.
    Stall,
    /// Squash every instruction of the thread younger than the missing load
    /// and stall fetch until the miss is serviced.
    Flush,
}

/// A fetch/resource-allocation policy.
///
/// Implementations must be deterministic: the simulator is fully
/// reproducible for a given seed and the experiments depend on it.
pub trait Policy {
    /// Short name used in reports (e.g. `"DCRA"`, `"FLUSH++"`).
    fn name(&self) -> &str;

    /// Called once at the start of every cycle, before any stage runs.
    fn begin_cycle(&mut self, _view: &CycleView) {}

    /// Appends the threads in fetch-priority order (best first) to
    /// `order`. Threads omitted are not fetched this cycle.
    ///
    /// The buffer arrives cleared and is reused by the simulator across
    /// cycles, so implementations stay allocation-free in steady state.
    fn fetch_order(&mut self, view: &CycleView, order: &mut Vec<ThreadId>);

    /// `true` if thread `t` may fetch this cycle. Called only for threads
    /// in the fetch order. This is the *response action* of stalling
    /// policies (STALL, DG, PDG) and the enforcement point of DCRA.
    fn fetch_gate(&mut self, _t: ThreadId, _view: &CycleView) -> bool {
        true
    }

    /// `true` if thread `t` may dispatch (rename) an instruction occupying
    /// `queue` and optionally a `dest` rename register. Hard-partition
    /// policies (SRA) enforce their limits here.
    fn may_dispatch(
        &self,
        _t: ThreadId,
        _queue: QueueKind,
        _dest: Option<RegClass>,
        _view: &CycleView,
    ) -> bool {
        true
    }

    /// Notification: thread `t` fetched `inst` (PDG trains its miss
    /// predictor here).
    fn on_fetch_inst(&mut self, _t: ThreadId, _inst: &DecodedInst) {}

    /// Notification: thread `t` dispatched an instruction into `queue`,
    /// allocating a `dest`-class rename register if `Some` (DCRA resets its
    /// activity counters here).
    fn on_dispatch(&mut self, _t: ThreadId, _queue: QueueKind, _dest: Option<RegClass>) {}

    /// Notification: a load of thread `t` at `pc` missed in the L1 data
    /// cache (DG/PDG input).
    fn on_l1d_miss(&mut self, _t: ThreadId, _pc: u64) {}

    /// A load of thread `t` has been *detected* to miss in the L2 (the
    /// detection happens one L2 latency after issue). The returned
    /// [`MissResponse`] is applied by the simulator.
    fn on_l2_miss_detected(&mut self, _t: ThreadId, _view: &CycleView) -> MissResponse {
        MissResponse::Continue
    }

    /// Notification: an outstanding miss of thread `t` was serviced.
    /// `level` is the deepest level the miss went to.
    fn on_miss_resolved(&mut self, _t: ThreadId, _pc: u64, _level: HitLevel) {}

    /// Notification: a load of thread `t` completed. `l1_missed` reports
    /// whether it had missed the L1 (PDG trains and releases its gate
    /// here, covering loads its predictor flagged that actually hit).
    fn on_load_complete(&mut self, _t: ThreadId, _pc: u64, _l1_missed: bool) {}

    /// Notification: an in-flight instruction of thread `t` was squashed
    /// (branch misprediction or policy flush). Lets stateful policies
    /// release bookkeeping tied to the instruction.
    fn on_squash_inst(&mut self, _t: ThreadId, _inst: &DecodedInst) {}

    /// `true` if the policy reads the [`CycleView`] in
    /// [`Policy::may_dispatch`]. Allocation policies (SRA, DCRA) override
    /// this; for everything else the simulator skips the mid-cycle view
    /// refresh that `may_dispatch` would otherwise need every cycle.
    fn wants_dispatch_view(&self) -> bool {
        false
    }

    /// `true` if the policy consumes [`Policy::on_squash_inst`]. The
    /// simulator skips the decoded-record lookup for every squashed
    /// instruction when the notification would be a no-op (squash rates
    /// run at roughly half of fetch, so this is a measurable hot-path
    /// saving); override alongside `on_squash_inst`.
    fn wants_squash_inst(&self) -> bool {
        false
    }
}

/// Round-robin over runnable threads — the simplest possible fetch order,
/// used as the default and as the paper's ROUND-ROBIN baseline.
#[derive(Debug, Clone, Default)]
pub struct RoundRobin {
    start: usize,
}

impl Policy for RoundRobin {
    fn name(&self) -> &str {
        "RR"
    }

    fn fetch_order(&mut self, view: &CycleView, order: &mut Vec<ThreadId>) {
        let n = view.thread_count();
        let start = self.start;
        self.start = (self.start + 1) % n.max(1);
        order.extend((0..n).map(|i| ThreadId::new((start + i) % n)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(n: usize) -> CycleView {
        CycleView {
            now: 0,
            threads: vec![ThreadView::default(); n],
            totals: PerResource::filled(80),
        }
    }

    #[test]
    fn round_robin_rotates() {
        let mut rr = RoundRobin::default();
        let v = view(3);
        let mut a = Vec::new();
        let mut b = Vec::new();
        rr.fetch_order(&v, &mut a);
        rr.fetch_order(&v, &mut b);
        assert_eq!(a[0].index(), 0);
        assert_eq!(b[0].index(), 1);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn default_gates_are_open() {
        let mut rr = RoundRobin::default();
        let v = view(2);
        assert!(rr.fetch_gate(ThreadId::new(0), &v));
        assert!(rr.may_dispatch(ThreadId::new(0), QueueKind::Int, Some(RegClass::Int), &v));
        assert_eq!(
            rr.on_l2_miss_detected(ThreadId::new(0), &v),
            MissResponse::Continue
        );
    }
}
