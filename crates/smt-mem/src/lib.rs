//! Memory-hierarchy substrate for the DCRA-SMT simulator.
//!
//! Models the paper's memory system (Table 2): 64KB 2-way L1 instruction and
//! data caches (1-cycle), a shared 512KB 8-way L2 (20-cycle), a fixed-latency
//! main memory (300 cycles in the baseline, swept 100/300/500 in Section 5.3)
//! and a per-thread data TLB with a 160-cycle miss penalty.
//!
//! Outstanding L2 misses are tracked in an [`MshrFile`]; accesses to a line
//! whose fill is still in flight *coalesce* with the pending miss and pay
//! only the remaining latency. The MSHR file is also the source of the
//! memory-level-parallelism (overlapping L2 misses) statistic the paper
//! reports in Section 5.2.
//!
//! # Examples
//!
//! ```
//! use smt_mem::{MemoryConfig, MemoryHierarchy, HitLevel};
//! use smt_isa::ThreadId;
//!
//! let mut mem = MemoryHierarchy::new(&MemoryConfig::default(), 2);
//! let t = ThreadId::new(0);
//! let first = mem.access_data(t, 0x10_0000, false, 0);
//! assert_eq!(first.level, HitLevel::Memory); // cold miss goes to memory
//! let again = mem.access_data(t, 0x10_0000, false, first.ready_at());
//! assert_eq!(again.level, HitLevel::L1);     // line now resident
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod mshr;
mod tlb;

pub use cache::{Cache, CacheConfig, CacheStats};
pub use mshr::{MshrFile, OutstandingMiss};
pub use tlb::{Tlb, TlbStats};

use serde::{Deserialize, Serialize};
use smt_isa::ThreadId;

/// Which level of the hierarchy serviced an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HitLevel {
    /// Serviced by the L1 (or coalesced with an L1-resident state).
    L1,
    /// L1 miss, L2 hit.
    L2,
    /// L1 and L2 miss, serviced by main memory.
    Memory,
}

/// Result of a data or instruction access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Total latency in cycles, including TLB penalty if any.
    pub latency: u32,
    /// Deepest level that had to service the access.
    pub level: HitLevel,
    /// `true` if the access missed in the data TLB.
    pub tlb_miss: bool,
    /// Cycle at which the access was initiated.
    pub issued_at: u64,
}

impl AccessOutcome {
    /// Cycle at which the data is available.
    #[inline]
    pub fn ready_at(&self) -> u64 {
        self.issued_at + u64::from(self.latency)
    }

    /// `true` if the access missed in the L1 (i.e. was serviced by L2 or
    /// memory, or coalesced with such a miss in flight).
    #[inline]
    pub fn l1_miss(&self) -> bool {
        self.level != HitLevel::L1
    }

    /// `true` if the access missed in the L2.
    #[inline]
    pub fn l2_miss(&self) -> bool {
        self.level == HitLevel::Memory
    }
}

/// Baseline unified-L2 hit latency in cycles (Table 2).
///
/// Named (rather than inlined in [`MemoryConfig::default`]) because it is
/// the anchor of a cross-crate mirror chain: `smt-sim/knobs.rs` re-exports
/// it as `L2_DETECT_DELAY` — the cycle at which a policy *detects* an L2
/// miss — and `smt-workloads/family.rs` mirrors that value for adversarial
/// scenario timing. The static mirror check (`cargo run -p smt-lint`) and
/// the `knob_mirrors_stay_in_sync` test both pin the chain.
pub const DEFAULT_L2_LATENCY: u32 = 20;

/// Configuration of the full memory hierarchy.
///
/// Defaults are the paper's baseline (Table 2).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemoryConfig {
    /// L1 instruction cache geometry.
    pub il1: CacheConfig,
    /// L1 data cache geometry.
    pub dl1: CacheConfig,
    /// Unified L2 geometry.
    pub l2: CacheConfig,
    /// Main-memory latency in cycles (baseline 300; swept 100/300/500).
    pub memory_latency: u32,
    /// Data TLB entries per thread.
    pub dtlb_entries: usize,
    /// Page size in bytes.
    pub page_bytes: u64,
    /// TLB miss penalty in cycles.
    pub tlb_miss_penalty: u32,
    /// When `true` the data L1 never misses (used by the paper's Figure 2
    /// resource-sensitivity experiment, which assumes a perfect data L1).
    pub perfect_dl1: bool,
}

impl Default for MemoryConfig {
    fn default() -> Self {
        MemoryConfig {
            il1: CacheConfig {
                size_bytes: 64 * 1024,
                ways: 2,
                line_bytes: 64,
                latency: 1,
                banks: 8,
            },
            dl1: CacheConfig {
                size_bytes: 64 * 1024,
                ways: 2,
                line_bytes: 64,
                latency: 1,
                banks: 8,
            },
            l2: CacheConfig {
                size_bytes: 512 * 1024,
                ways: 8,
                line_bytes: 64,
                latency: DEFAULT_L2_LATENCY,
                banks: 8,
            },
            memory_latency: 300,
            dtlb_entries: 128,
            page_bytes: 8 * 1024,
            tlb_miss_penalty: 160,
            perfect_dl1: false,
        }
    }
}

/// Per-thread memory statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThreadMemStats {
    /// Data accesses issued.
    pub accesses: u64,
    /// Data accesses that missed in the L1.
    pub l1_misses: u64,
    /// L2 lookups caused by this thread's data accesses.
    pub l2_accesses: u64,
    /// L2 lookups that missed.
    pub l2_misses: u64,
    /// TLB misses.
    pub tlb_misses: u64,
}

impl ThreadMemStats {
    /// L1 data miss rate (`misses / accesses`), in `[0, 1]`.
    pub fn l1_miss_rate(&self) -> f64 {
        ratio(self.l1_misses, self.accesses)
    }

    /// L2 miss rate (`L2 misses / L2 accesses`), in `[0, 1]`. This is the
    /// metric of the paper's Table 3 (mcf 29.6%, art 18.6%, ...).
    pub fn l2_miss_rate(&self) -> f64 {
        ratio(self.l2_misses, self.l2_accesses)
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// The complete memory hierarchy: IL1 + DL1 + shared L2 + memory + TLBs.
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    il1: Cache,
    dl1: Cache,
    l2: Cache,
    mshr: MshrFile,
    dtlb: Vec<Tlb>,
    config: MemoryConfig,
    stats: Vec<ThreadMemStats>,
}

impl MemoryHierarchy {
    /// Builds the hierarchy for `threads` hardware contexts.
    pub fn new(config: &MemoryConfig, threads: usize) -> Self {
        MemoryHierarchy {
            il1: Cache::new(&config.il1),
            dl1: Cache::new(&config.dl1),
            l2: Cache::new(&config.l2),
            mshr: MshrFile::new(),
            dtlb: (0..threads)
                .map(|_| Tlb::new(config.dtlb_entries, config.page_bytes))
                .collect(),
            config: config.clone(),
            stats: vec![ThreadMemStats::default(); threads],
        }
    }

    /// Performs a data access (load or store address check) for thread `t`
    /// at cycle `now` and returns the latency/level outcome.
    ///
    /// Misses to a line already being filled coalesce with the outstanding
    /// miss and pay the remaining latency only.
    pub fn access_data(
        &mut self,
        t: ThreadId,
        addr: u64,
        is_write: bool,
        now: u64,
    ) -> AccessOutcome {
        let st = &mut self.stats[t.index()];
        st.accesses += 1;

        let tlb_miss = !self.dtlb[t.index()].access(addr);
        let tlb_penalty = if tlb_miss {
            st.tlb_misses += 1;
            self.config.tlb_miss_penalty
        } else {
            0
        };

        if self.config.perfect_dl1 {
            return AccessOutcome {
                latency: self.config.dl1.latency + tlb_penalty,
                level: HitLevel::L1,
                tlb_miss,
                issued_at: now,
            };
        }

        // Line size is a power of two (checked by `Cache::new`), so the
        // MSHR line id is a shift, not a division.
        let line = addr >> self.config.dl1.line_bytes.trailing_zeros();
        if self.dl1.access(addr, is_write) {
            // L1 hit, unless the fill is still in flight (then coalesce).
            if let Some(remaining) = self.mshr.remaining(line, now) {
                let level = self.mshr.level_of(line);
                return AccessOutcome {
                    latency: self.config.dl1.latency + remaining + tlb_penalty,
                    level,
                    tlb_miss,
                    issued_at: now,
                };
            }
            return AccessOutcome {
                latency: self.config.dl1.latency + tlb_penalty,
                level: HitLevel::L1,
                tlb_miss,
                issued_at: now,
            };
        }

        // L1 miss.
        st.l1_misses += 1;
        st.l2_accesses += 1;
        let (level, fill_latency) = if self.l2.access(addr, is_write) {
            (
                HitLevel::L2,
                self.config.dl1.latency + self.config.l2.latency,
            )
        } else {
            st.l2_misses += 1;
            #[cfg(feature = "trace-l2")]
            eprintln!("L2MISS t={} addr={addr:#x} now={now}", t.index());
            (
                HitLevel::Memory,
                self.config.dl1.latency + self.config.l2.latency + self.config.memory_latency,
            )
        };
        self.mshr
            .allocate(line, t, level, now + u64::from(fill_latency));
        AccessOutcome {
            latency: fill_latency + tlb_penalty,
            level,
            tlb_miss,
            issued_at: now,
        }
    }

    /// Performs an instruction fetch access for the cache block containing
    /// `pc`. Returns the fetch latency and the deepest level touched.
    pub fn access_inst(&mut self, _t: ThreadId, pc: u64, now: u64) -> AccessOutcome {
        if self.il1.access(pc, false) {
            return AccessOutcome {
                latency: self.config.il1.latency,
                level: HitLevel::L1,
                tlb_miss: false,
                issued_at: now,
            };
        }
        let (level, latency) = if self.l2.access(pc, false) {
            (
                HitLevel::L2,
                self.config.il1.latency + self.config.l2.latency,
            )
        } else {
            (
                HitLevel::Memory,
                self.config.il1.latency + self.config.l2.latency + self.config.memory_latency,
            )
        };
        AccessOutcome {
            latency,
            level,
            tlb_miss: false,
            issued_at: now,
        }
    }

    /// Number of L2 misses currently in flight for each thread at `now`,
    /// the quantity behind the paper's memory-parallelism measurements.
    pub fn outstanding_l2_misses(&mut self, now: u64) -> Vec<u32> {
        self.mshr.outstanding_per_thread(now, self.stats.len())
    }

    /// Allocation-free variant of [`Self::outstanding_l2_misses`]: fills
    /// `counts` (one slot per thread) in place. The simulator calls this
    /// every cycle, so it must not allocate.
    pub fn outstanding_l2_misses_into(&mut self, now: u64, counts: &mut [u32]) {
        self.mshr.outstanding_into(now, counts);
    }

    /// Earliest cycle at which any in-flight *memory-level* fill
    /// completes, or `None` when none is outstanding. Strictly before
    /// this cycle the per-thread outstanding-miss counts cannot change
    /// (they track memory-level fills only), which is what lets the
    /// simulator fast-forward through stalled spans without losing
    /// per-cycle MLP samples.
    pub fn next_fill_ready_at(&mut self) -> Option<u64> {
        self.mshr.next_ready_at()
    }

    /// Collects every fill whose deadline is at or before `now` — exactly
    /// what the per-cycle MLP sampling does as a side effect in a stepped
    /// run. The simulator calls this after a fast-forward jump so the MSHR
    /// map matches the stepped core's state cycle for cycle: L2-level
    /// fills may expire *inside* a skipped span, and a dead entry left in
    /// the map would block re-allocation of the same line on the resumed
    /// cycle (see [`MshrFile::purge_expired`]).
    pub fn collect_expired_fills(&mut self, now: u64) {
        self.mshr.purge_expired(now);
    }

    /// Per-thread statistics.
    pub fn thread_stats(&self, t: ThreadId) -> ThreadMemStats {
        self.stats[t.index()]
    }

    /// Clears accumulated hit/miss statistics while keeping all cache and
    /// TLB state. Used when a measurement window starts after warm-up.
    pub fn reset_stats(&mut self) {
        for s in &mut self.stats {
            *s = ThreadMemStats::default();
        }
        self.il1.reset_stats();
        self.dl1.reset_stats();
        self.l2.reset_stats();
    }

    /// Returns the whole hierarchy to its power-on state — cold caches and
    /// TLBs, no in-flight fills, zeroed statistics — while retaining every
    /// allocation. A hierarchy that is `reset_cold` behaves bit-identically
    /// to one freshly built with [`MemoryHierarchy::new`]; simulation
    /// sessions rely on this to reuse one hierarchy across many runs.
    pub fn reset_cold(&mut self) {
        self.il1.reset_cold();
        self.dl1.reset_cold();
        self.l2.reset_cold();
        self.mshr.reset_cold();
        for tlb in &mut self.dtlb {
            tlb.reset_cold();
        }
        for s in &mut self.stats {
            *s = ThreadMemStats::default();
        }
    }

    /// Raw cache statistics `(il1, dl1, l2)`.
    pub fn cache_stats(&self) -> (CacheStats, CacheStats, CacheStats) {
        (self.il1.stats(), self.dl1.stats(), self.l2.stats())
    }

    /// The configuration this hierarchy was built with.
    pub fn config(&self) -> &MemoryConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> MemoryConfig {
        MemoryConfig {
            dl1: CacheConfig {
                size_bytes: 1024,
                ways: 2,
                line_bytes: 64,
                latency: 1,
                banks: 1,
            },
            l2: CacheConfig {
                size_bytes: 8 * 1024,
                ways: 4,
                line_bytes: 64,
                latency: 20,
                banks: 1,
            },
            memory_latency: 300,
            ..MemoryConfig::default()
        }
    }

    #[test]
    fn cold_miss_pays_full_latency() {
        let mut mem = MemoryHierarchy::new(&small_config(), 1);
        let t = ThreadId::new(0);
        let out = mem.access_data(t, 0x4000_0000, false, 0);
        assert_eq!(out.level, HitLevel::Memory);
        // 1 (L1) + 20 (L2) + 300 (mem) + 160 (cold TLB miss)
        assert_eq!(out.latency, 1 + 20 + 300 + 160);
    }

    #[test]
    fn second_access_hits_l1() {
        let mut mem = MemoryHierarchy::new(&small_config(), 1);
        let t = ThreadId::new(0);
        let first = mem.access_data(t, 0x1000, false, 0);
        let out = mem.access_data(t, 0x1008, false, first.ready_at());
        assert_eq!(out.level, HitLevel::L1);
        assert_eq!(out.latency, 1);
    }

    #[test]
    fn in_flight_miss_coalesces() {
        let mut mem = MemoryHierarchy::new(&small_config(), 1);
        let t = ThreadId::new(0);
        let first = mem.access_data(t, 0x1000, false, 0);
        assert!(first.l2_miss());
        // Same line, 10 cycles later, fill still in flight: remaining
        // latency only (plus L1 access), still counted at memory level.
        let second = mem.access_data(t, 0x1010, false, 10);
        assert_eq!(second.level, HitLevel::Memory);
        assert!(second.latency < first.latency);
        // The fill was launched at cycle 0 and completes after the full
        // L1+L2+memory path (the TLB penalty delays the instruction, not
        // the fill). The coalesced access pays the remaining fill time
        // plus its own L1 access.
        let fill_ready: u64 = 1 + 20 + 300;
        assert_eq!(
            u64::from(second.latency),
            fill_ready - 10 + 1,
            "coalesced access waits for the fill"
        );
        // Stats: only one real L1/L2 miss.
        let st = mem.thread_stats(t);
        assert_eq!(st.l1_misses, 1);
        assert_eq!(st.l2_misses, 1);
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let cfg = small_config();
        let mut mem = MemoryHierarchy::new(&cfg, 1);
        let t = ThreadId::new(0);
        // DL1: 1KB 2-way 64B lines -> 8 sets. Fill set 0 with 3 conflicting
        // lines; first one is evicted from L1 but still in L2.
        let stride = 8 * 64; // set-0 stride
        let base = 0x10_0000;
        let mut now = 0;
        for i in 0..3u64 {
            let out = mem.access_data(t, base + i * stride, false, now);
            now = out.ready_at();
        }
        let out = mem.access_data(t, base, false, now);
        assert_eq!(out.level, HitLevel::L2, "evicted L1 line should hit in L2");
        assert_eq!(out.latency, 1 + 20);
    }

    #[test]
    fn perfect_dl1_never_misses() {
        let mut cfg = small_config();
        cfg.perfect_dl1 = true;
        let mut mem = MemoryHierarchy::new(&cfg, 1);
        let t = ThreadId::new(0);
        let mut now = 0;
        for i in 0..1000u64 {
            let out = mem.access_data(t, i * 0x1_0000, false, now);
            assert_eq!(out.level, HitLevel::L1);
            now = out.ready_at();
        }
        assert_eq!(mem.thread_stats(t).l1_misses, 0);
    }

    #[test]
    fn outstanding_misses_counted_per_thread() {
        let mut mem = MemoryHierarchy::new(&small_config(), 2);
        let t0 = ThreadId::new(0);
        let t1 = ThreadId::new(1);
        mem.access_data(t0, 0x100_0000, false, 0);
        mem.access_data(t0, 0x200_0000, false, 0);
        mem.access_data(t1, 0x300_0000, false, 0);
        let out = mem.outstanding_l2_misses(5);
        assert_eq!(out, vec![2, 1]);
        // Long after the fills, nothing is outstanding.
        let out = mem.outstanding_l2_misses(10_000);
        assert_eq!(out, vec![0, 0]);
    }

    #[test]
    fn inst_accesses_use_il1() {
        let mut mem = MemoryHierarchy::new(&MemoryConfig::default(), 1);
        let t = ThreadId::new(0);
        let first = mem.access_inst(t, 0x40_0000, 0);
        assert_eq!(first.level, HitLevel::Memory);
        let second = mem.access_inst(t, 0x40_0000, first.ready_at());
        assert_eq!(second.level, HitLevel::L1);
        assert_eq!(second.latency, 1);
    }
}
