//! Data translation lookaside buffer.

use serde::{Deserialize, Serialize};

/// TLB hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbStats {
    /// Translations requested.
    pub accesses: u64,
    /// Translations that missed.
    pub misses: u64,
}

/// A fully-associative, LRU data TLB (one per hardware thread).
///
/// # Examples
///
/// ```
/// use smt_mem::Tlb;
///
/// let mut tlb = Tlb::new(4, 8192);
/// assert!(!tlb.access(0x0));      // cold miss
/// assert!(tlb.access(0x1fff));    // same 8KB page
/// assert!(!tlb.access(0x2000));   // next page
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    pages: Vec<u64>,
    lru: Vec<u64>,
    page_shift: u32,
    tick: u64,
    stats: TlbStats,
}

impl Tlb {
    /// Creates a TLB with `entries` slots and `page_bytes`-sized pages.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or `page_bytes` is not a power of two.
    pub fn new(entries: usize, page_bytes: u64) -> Self {
        assert!(entries > 0, "TLB needs at least one entry");
        assert!(
            page_bytes.is_power_of_two(),
            "page size must be a power of two"
        );
        Tlb {
            pages: vec![u64::MAX; entries],
            lru: vec![0; entries],
            page_shift: page_bytes.trailing_zeros(),
            tick: 0,
            stats: TlbStats::default(),
        }
    }

    /// Translates `addr`; on miss, installs the page (evicting LRU).
    /// Returns `true` on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.stats.accesses += 1;
        self.tick += 1;
        let page = addr >> self.page_shift;
        let mut victim = 0;
        let mut oldest = u64::MAX;
        for i in 0..self.pages.len() {
            if self.pages[i] == page {
                self.lru[i] = self.tick;
                return true;
            }
            if self.lru[i] < oldest {
                oldest = self.lru[i];
                victim = i;
            }
        }
        self.stats.misses += 1;
        self.pages[victim] = page;
        self.lru[victim] = self.tick;
        false
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_page_hits() {
        let mut t = Tlb::new(8, 4096);
        assert!(!t.access(0x1000));
        assert!(t.access(0x1ffc));
        assert!(!t.access(0x2000));
    }

    #[test]
    fn lru_eviction() {
        let mut t = Tlb::new(2, 4096);
        t.access(0x0000); // page 0
        t.access(0x1000); // page 1
        t.access(0x0000); // refresh page 0
        t.access(0x2000); // evicts page 1
        assert!(t.access(0x0000));
        assert!(!t.access(0x1000), "page 1 was LRU-evicted");
    }

    #[test]
    fn stats_accumulate() {
        let mut t = Tlb::new(4, 4096);
        for i in 0..8u64 {
            t.access(i * 4096);
        }
        assert_eq!(t.stats().accesses, 8);
        assert_eq!(t.stats().misses, 8);
    }
}
