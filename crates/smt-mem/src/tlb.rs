//! Data translation lookaside buffer.

use fxhash::FxHashMap;
use serde::{Deserialize, Serialize};

/// TLB hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbStats {
    /// Translations requested.
    pub accesses: u64,
    /// Translations that missed.
    pub misses: u64,
}

/// A fully-associative, LRU data TLB (one per hardware thread).
///
/// The TLB is probed on every data access, so the lookup is O(1): a hashed
/// page table plus an intrusive doubly-linked recency list, instead of a
/// linear scan over all entries. True-LRU replacement is preserved exactly
/// (the evicted page is the unique least-recently-used one), so the
/// hit/miss sequence is identical to the scan-based implementation.
///
/// # Examples
///
/// ```
/// use smt_mem::Tlb;
///
/// let mut tlb = Tlb::new(4, 8192);
/// assert!(!tlb.access(0x0));      // cold miss
/// assert!(tlb.access(0x1fff));    // same 8KB page
/// assert!(!tlb.access(0x2000));   // next page
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    /// Resident page → slot index.
    map: FxHashMap<u64, u32>,
    /// Page stored in each allocated slot.
    pages: Vec<u64>,
    /// Recency list links per slot (`NONE` at the ends).
    prev: Vec<u32>,
    next: Vec<u32>,
    /// Most- and least-recently-used slots (`NONE` while empty).
    head: u32,
    tail: u32,
    capacity: usize,
    page_shift: u32,
    stats: TlbStats,
}

const NONE: u32 = u32::MAX;

impl Tlb {
    /// Creates a TLB with `entries` slots and `page_bytes`-sized pages.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or `page_bytes` is not a power of two.
    pub fn new(entries: usize, page_bytes: u64) -> Self {
        assert!(entries > 0, "TLB needs at least one entry");
        assert!(
            page_bytes.is_power_of_two(),
            "page size must be a power of two"
        );
        Tlb {
            map: FxHashMap::default(),
            pages: Vec::with_capacity(entries),
            prev: Vec::with_capacity(entries),
            next: Vec::with_capacity(entries),
            head: NONE,
            tail: NONE,
            capacity: entries,
            page_shift: page_bytes.trailing_zeros(),
            stats: TlbStats::default(),
        }
    }

    /// Unlinks `slot` from the recency list.
    fn unlink(&mut self, slot: u32) {
        let (p, n) = (self.prev[slot as usize], self.next[slot as usize]);
        if p == NONE {
            self.head = n;
        } else {
            self.next[p as usize] = n;
        }
        if n == NONE {
            self.tail = p;
        } else {
            self.prev[n as usize] = p;
        }
    }

    /// Links `slot` in as the most recently used entry.
    fn push_front(&mut self, slot: u32) {
        self.prev[slot as usize] = NONE;
        self.next[slot as usize] = self.head;
        if self.head != NONE {
            self.prev[self.head as usize] = slot;
        }
        self.head = slot;
        if self.tail == NONE {
            self.tail = slot;
        }
    }

    /// Translates `addr`; on miss, installs the page (evicting LRU).
    /// Returns `true` on hit.
    #[inline]
    pub fn access(&mut self, addr: u64) -> bool {
        self.stats.accesses += 1;
        let page = addr >> self.page_shift;
        // Most accesses touch the most-recent page; a head hit needs no
        // hash lookup and no relink, so answer it from the recency list
        // directly (identical hit/miss and LRU behaviour).
        if self.head != NONE && self.pages[self.head as usize] == page {
            return true;
        }
        if let Some(&slot) = self.map.get(&page) {
            if self.head != slot {
                self.unlink(slot);
                self.push_front(slot);
            }
            return true;
        }
        self.stats.misses += 1;
        let slot = if self.pages.len() < self.capacity {
            let slot = self.pages.len() as u32;
            self.pages.push(page);
            self.prev.push(NONE);
            self.next.push(NONE);
            slot
        } else {
            let victim = self.tail;
            self.unlink(victim);
            self.map.remove(&self.pages[victim as usize]);
            self.pages[victim as usize] = page;
            victim
        };
        self.map.insert(page, slot);
        self.push_front(slot);
        false
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Returns the TLB to its power-on state (no resident pages, zeroed
    /// counters) while keeping the slot allocations. Behaviour after the
    /// call is bit-identical to a freshly constructed TLB.
    pub fn reset_cold(&mut self) {
        self.map.clear();
        self.pages.clear();
        self.prev.clear();
        self.next.clear();
        self.head = NONE;
        self.tail = NONE;
        self.stats = TlbStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_page_hits() {
        let mut t = Tlb::new(8, 4096);
        assert!(!t.access(0x1000));
        assert!(t.access(0x1ffc));
        assert!(!t.access(0x2000));
    }

    #[test]
    fn lru_eviction() {
        let mut t = Tlb::new(2, 4096);
        t.access(0x0000); // page 0
        t.access(0x1000); // page 1
        t.access(0x0000); // refresh page 0
        t.access(0x2000); // evicts page 1
        assert!(t.access(0x0000));
        assert!(!t.access(0x1000), "page 1 was LRU-evicted");
    }

    #[test]
    fn stats_accumulate() {
        let mut t = Tlb::new(4, 4096);
        for i in 0..8u64 {
            t.access(i * 4096);
        }
        assert_eq!(t.stats().accesses, 8);
        assert_eq!(t.stats().misses, 8);
    }

    #[test]
    fn matches_reference_scan_lru() {
        // Differential test against a straightforward timestamp-scan LRU:
        // the hit/miss sequence must be identical for a pseudo-random
        // access stream with heavy reuse.
        struct Reference {
            pages: Vec<u64>,
            lru: Vec<u64>,
            tick: u64,
        }
        impl Reference {
            fn access(&mut self, page: u64) -> bool {
                self.tick += 1;
                let mut victim = 0;
                let mut oldest = u64::MAX;
                for i in 0..self.pages.len() {
                    if self.pages[i] == page {
                        self.lru[i] = self.tick;
                        return true;
                    }
                    if self.lru[i] < oldest {
                        oldest = self.lru[i];
                        victim = i;
                    }
                }
                self.pages[victim] = page;
                self.lru[victim] = self.tick;
                false
            }
        }
        let mut reference = Reference {
            pages: vec![u64::MAX; 16],
            lru: vec![0; 16],
            tick: 0,
        };
        let mut tlb = Tlb::new(16, 4096);
        let mut state = 0x1234_5678_9abc_def0u64;
        for i in 0..20_000u64 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // ~24 distinct pages over a 16-entry TLB: plenty of reuse.
            let page = (state >> 40) % 24;
            assert_eq!(
                tlb.access(page * 4096),
                reference.access(page),
                "divergence at access {i} (page {page})"
            );
        }
    }
}
