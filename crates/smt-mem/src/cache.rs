//! Set-associative cache with LRU replacement.

use serde::{Deserialize, Serialize};

/// Geometry and timing of one cache.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: u32,
    /// Access latency in cycles.
    pub latency: u32,
    /// Number of banks (informational; accesses are modelled unported).
    pub banks: usize,
}

/// Hit/miss counters of one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups performed.
    pub accesses: u64,
    /// Lookups that missed.
    pub misses: u64,
}

impl CacheStats {
    /// Miss rate in `[0, 1]`.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// One way of a set: its resident tag and LRU stamp, stored interleaved
/// so a set lookup walks one contiguous run of memory (a 2-way set is a
/// single 32-byte span) instead of two parallel arrays.
#[derive(Debug, Clone, Copy)]
struct Way {
    /// Resident tag; `u64::MAX` = invalid.
    tag: u64,
    /// LRU stamp.
    lru: u64,
}

/// A set-associative, write-allocate cache with true-LRU replacement.
///
/// The cache stores tags only (the simulator is trace-driven; no data is
/// moved). Misses allocate immediately — fill timing is handled by the
/// MSHR file in the hierarchy.
///
/// # Examples
///
/// ```
/// use smt_mem::{Cache, CacheConfig};
///
/// let mut c = Cache::new(&CacheConfig {
///     size_bytes: 4096, ways: 2, line_bytes: 64, latency: 1, banks: 1,
/// });
/// assert!(!c.access(0x1000, false)); // cold miss
/// assert!(c.access(0x1000, false));  // now resident
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    /// `sets × ways` tag+LRU array, way-major within each set.
    slots: Vec<Way>,
    sets: usize,
    ways: usize,
    line_shift: u32,
    /// `log2(sets)` — the set count is a power of two, so the tag is
    /// `line >> set_shift` instead of a per-access integer division.
    set_shift: u32,
    tick: u64,
    stats: CacheStats,
}

impl Cache {
    /// Builds a cache from its geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (zero ways, capacity not a
    /// multiple of `ways × line_bytes`, or a non-power-of-two set count or
    /// line size).
    pub fn new(config: &CacheConfig) -> Self {
        assert!(config.ways > 0, "cache needs at least one way");
        assert!(
            config.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        let way_bytes = config.ways * config.line_bytes as usize;
        assert!(
            config.size_bytes.is_multiple_of(way_bytes),
            "capacity must be a multiple of ways × line size"
        );
        let sets = config.size_bytes / way_bytes;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Cache {
            slots: vec![
                Way {
                    tag: u64::MAX,
                    lru: 0
                };
                sets * config.ways
            ],
            sets,
            ways: config.ways,
            line_shift: config.line_bytes.trailing_zeros(),
            set_shift: sets.trailing_zeros(),
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// Looks up `addr`; on a miss, allocates the line (evicting LRU).
    /// Returns `true` on hit.
    #[inline]
    pub fn access(&mut self, addr: u64, _is_write: bool) -> bool {
        self.stats.accesses += 1;
        self.tick += 1;
        let tick = self.tick;
        let line = addr >> self.line_shift;
        let set = (line as usize) & (self.sets - 1);
        let tag = line >> self.set_shift;
        let base = set * self.ways;
        // One bounds check for the whole set, then a contiguous walk.
        let set_ways = &mut self.slots[base..base + self.ways];

        let mut victim = 0;
        let mut oldest = u64::MAX;
        for (way, w) in set_ways.iter_mut().enumerate() {
            if w.tag == tag {
                w.lru = tick;
                return true;
            }
            if w.lru < oldest {
                oldest = w.lru;
                victim = way;
            }
        }
        self.stats.misses += 1;
        set_ways[victim] = Way { tag, lru: tick };
        false
    }

    /// Probes without allocating or updating LRU. Returns `true` on hit.
    pub fn probe(&self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set = (line as usize) & (self.sets - 1);
        let tag = line >> self.set_shift;
        let base = set * self.ways;
        self.slots[base..base + self.ways]
            .iter()
            .any(|w| w.tag == tag)
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Clears the hit/miss counters (cache contents are kept).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Returns the cache to its power-on state — every line invalid, LRU
    /// stamps and counters zeroed — without releasing the tag arrays.
    /// After this call the cache behaves bit-identically to a freshly
    /// constructed one.
    pub fn reset_cold(&mut self) {
        self.slots.fill(Way {
            tag: u64::MAX,
            lru: 0,
        });
        self.tick = 0;
        self.stats = CacheStats::default();
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets × 2 ways × 64B = 512B
        Cache::new(&CacheConfig {
            size_bytes: 512,
            ways: 2,
            line_bytes: 64,
            latency: 1,
            banks: 1,
        })
    }

    #[test]
    fn hit_after_allocate() {
        let mut c = tiny();
        assert!(!c.access(0x0, false));
        assert!(c.access(0x0, false));
        assert!(c.access(0x3f, false), "same line");
        assert!(!c.access(0x40, false), "next line is a different set/line");
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        let stride = 4 * 64; // same-set stride
        c.access(0, false);
        c.access(stride, false);
        c.access(0, false); // refresh line 0
        c.access(2 * stride, false); // evicts `stride`
        assert!(c.probe(0));
        assert!(!c.probe(stride));
        assert!(c.probe(2 * stride));
    }

    #[test]
    fn probe_does_not_allocate() {
        let mut c = tiny();
        assert!(!c.probe(0x80));
        assert!(!c.access(0x80, false), "probe must not have allocated");
    }

    #[test]
    fn stats_track_miss_rate() {
        let mut c = tiny();
        c.access(0, false);
        c.access(0, false);
        c.access(64, false);
        c.access(64, false);
        let s = c.stats();
        assert_eq!(s.accesses, 4);
        assert_eq!(s.misses, 2);
        assert!((s.miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let mut c = tiny();
        // 3× capacity working set, sequential scan repeated: every access
        // within one pass is a cold/capacity miss on re-scan.
        let lines = 3 * 8;
        for _pass in 0..4 {
            for i in 0..lines {
                c.access(i * 64, false);
            }
        }
        let s = c.stats();
        assert!(
            s.miss_rate() > 0.9,
            "streaming over 3× capacity should thrash, rate={}",
            s.miss_rate()
        );
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_line_size_rejected() {
        let _ = Cache::new(&CacheConfig {
            size_bytes: 512,
            ways: 2,
            line_bytes: 48,
            latency: 1,
            banks: 1,
        });
    }
}
