//! Miss-status handling registers: outstanding-fill tracking and
//! memory-level-parallelism accounting.

use crate::HitLevel;
use smt_isa::ThreadId;
use std::collections::HashMap;

/// One outstanding cache fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutstandingMiss {
    /// Cycle at which the fill completes.
    pub ready_at: u64,
    /// Thread that initiated the miss.
    pub owner: ThreadId,
    /// Level the fill is coming from (L2 or memory).
    pub level: HitLevel,
}

/// The MSHR file: a map from line address to its in-flight fill.
///
/// Lines are inserted when a miss leaves the L1 and removed lazily once
/// their `ready_at` has passed. The file answers two questions the rest of
/// the simulator needs:
///
/// 1. *Coalescing*: "is this line already being fetched, and how long until
///    it arrives?" ([`MshrFile::remaining`]).
/// 2. *MLP accounting*: "how many L2 misses does each thread have in flight
///    right now?" ([`MshrFile::outstanding_per_thread`]), the statistic
///    behind the paper's Section 5.2 memory-parallelism comparison.
#[derive(Debug, Clone, Default)]
pub struct MshrFile {
    entries: HashMap<u64, OutstandingMiss>,
}

impl MshrFile {
    /// Creates an empty MSHR file.
    pub fn new() -> Self {
        MshrFile::default()
    }

    /// Registers a fill for `line`, owned by `owner`, completing at
    /// `ready_at`. An existing in-flight entry for the same line is kept
    /// (first requester wins, as hardware MSHRs merge secondary misses).
    pub fn allocate(&mut self, line: u64, owner: ThreadId, level: HitLevel, ready_at: u64) {
        self.entries.entry(line).or_insert(OutstandingMiss {
            ready_at,
            owner,
            level,
        });
    }

    /// Remaining cycles until `line`'s fill completes, or `None` if no fill
    /// is in flight at `now`. Completed entries are garbage-collected.
    pub fn remaining(&mut self, line: u64, now: u64) -> Option<u32> {
        match self.entries.get(&line) {
            Some(e) if e.ready_at > now => Some((e.ready_at - now) as u32),
            Some(_) => {
                self.entries.remove(&line);
                None
            }
            None => None,
        }
    }

    /// Fill level of an in-flight line (L1 hit-under-miss classification).
    /// Returns [`HitLevel::L1`] if the line is not tracked.
    pub fn level_of(&self, line: u64) -> HitLevel {
        self.entries
            .get(&line)
            .map(|e| e.level)
            .unwrap_or(HitLevel::L1)
    }

    /// Number of *memory-level* (L2-miss) fills in flight per thread at
    /// `now`. Expired entries are purged as a side effect.
    pub fn outstanding_per_thread(&mut self, now: u64, threads: usize) -> Vec<u32> {
        self.entries.retain(|_, e| e.ready_at > now);
        let mut counts = vec![0u32; threads];
        for e in self.entries.values() {
            if e.level == HitLevel::Memory {
                counts[e.owner.index()] += 1;
            }
        }
        counts
    }

    /// Number of tracked in-flight fills (any level).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no fills are in flight.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remaining_counts_down_and_expires() {
        let mut m = MshrFile::new();
        m.allocate(42, ThreadId::new(0), HitLevel::Memory, 100);
        assert_eq!(m.remaining(42, 60), Some(40));
        assert_eq!(m.remaining(42, 100), None, "fill completed at 100");
        assert!(m.is_empty(), "expired entry is collected");
    }

    #[test]
    fn first_requester_wins_on_merge() {
        let mut m = MshrFile::new();
        m.allocate(7, ThreadId::new(0), HitLevel::Memory, 50);
        m.allocate(7, ThreadId::new(1), HitLevel::L2, 90);
        assert_eq!(m.remaining(7, 0), Some(50));
        assert_eq!(m.level_of(7), HitLevel::Memory);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn mlp_counts_only_memory_level_fills() {
        let mut m = MshrFile::new();
        m.allocate(1, ThreadId::new(0), HitLevel::Memory, 400);
        m.allocate(2, ThreadId::new(0), HitLevel::L2, 400);
        m.allocate(3, ThreadId::new(1), HitLevel::Memory, 400);
        assert_eq!(m.outstanding_per_thread(0, 2), vec![1, 1]);
    }

    #[test]
    fn outstanding_purges_expired() {
        let mut m = MshrFile::new();
        m.allocate(1, ThreadId::new(0), HitLevel::Memory, 10);
        m.allocate(2, ThreadId::new(0), HitLevel::Memory, 500);
        assert_eq!(m.outstanding_per_thread(100, 1), vec![1]);
        assert_eq!(m.len(), 1);
    }
}
