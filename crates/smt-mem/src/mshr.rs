//! Miss-status handling registers: outstanding-fill tracking and
//! memory-level-parallelism accounting.

use crate::HitLevel;
use fxhash::FxHashMap;
use smt_isa::ThreadId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One outstanding cache fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutstandingMiss {
    /// Cycle at which the fill completes.
    pub ready_at: u64,
    /// Thread that initiated the miss.
    pub owner: ThreadId,
    /// Level the fill is coming from (L2 or memory).
    pub level: HitLevel,
}

/// The MSHR file: a map from line address to its in-flight fill.
///
/// Lines are inserted when a miss leaves the L1 and removed lazily once
/// their `ready_at` has passed. The file answers two questions the rest of
/// the simulator needs:
///
/// 1. *Coalescing*: "is this line already being fetched, and how long until
///    it arrives?" ([`MshrFile::remaining`]).
/// 2. *MLP accounting*: "how many L2 misses does each thread have in flight
///    right now?" ([`MshrFile::outstanding_per_thread`]), the statistic
///    behind the paper's Section 5.2 memory-parallelism comparison.
///
/// Lookups happen on every data access, so the map uses the vendored
/// FxHash (one multiply per key) instead of SipHash; iteration order is
/// never observed, only per-key lookups and order-independent sums. MLP
/// accounting is incremental — per-thread memory-level fill counts are
/// maintained on insert/remove and expired entries are collected through
/// a ready-time-ordered expiry queue — so the per-cycle sampling never
/// walks the map.
#[derive(Debug, Clone, Default)]
pub struct MshrFile {
    entries: FxHashMap<u64, OutstandingMiss>,
    /// `(ready_at, line)` of every insert, oldest fill first. Lazy mirror
    /// of `entries`: an entry removed early (by [`MshrFile::remaining`])
    /// leaves its node behind, which is recognised and skipped when it
    /// surfaces.
    expiry: BinaryHeap<Reverse<(u64, u64)>>,
    /// `(ready_at, line)` of *memory-level* inserts only — the fills the
    /// MLP counters track. Same lazy-mirror discipline as `expiry`; read
    /// (and pruned) exclusively by [`MshrFile::next_ready_at`], so popping
    /// its stale nodes never disturbs the main expiry bookkeeping.
    mem_expiry: BinaryHeap<Reverse<(u64, u64)>>,
    /// Memory-level fills currently tracked, per thread (grown on demand).
    mem_inflight: Vec<u32>,
}

impl MshrFile {
    /// Creates an empty MSHR file.
    pub fn new() -> Self {
        MshrFile::default()
    }

    /// Registers a fill for `line`, owned by `owner`, completing at
    /// `ready_at`. An existing in-flight entry for the same line is kept
    /// (first requester wins, as hardware MSHRs merge secondary misses).
    pub fn allocate(&mut self, line: u64, owner: ThreadId, level: HitLevel, ready_at: u64) {
        let mut inserted = false;
        self.entries.entry(line).or_insert_with(|| {
            inserted = true;
            OutstandingMiss {
                ready_at,
                owner,
                level,
            }
        });
        if inserted {
            self.expiry.push(Reverse((ready_at, line)));
            if level == HitLevel::Memory {
                self.mem_expiry.push(Reverse((ready_at, line)));
                let slot = owner.index();
                if slot >= self.mem_inflight.len() {
                    self.mem_inflight.resize(slot + 1, 0);
                }
                self.mem_inflight[slot] += 1;
            }
        }
    }

    /// Drops `line`'s entry, keeping the per-thread MLP counts in sync.
    fn evict(&mut self, line: u64) {
        if let Some(e) = self.entries.remove(&line) {
            if e.level == HitLevel::Memory {
                self.mem_inflight[e.owner.index()] -= 1;
            }
        }
    }

    /// Pops every expiry-queue node at or before `now`, removing the map
    /// entries that are genuinely done. A node whose map entry is missing
    /// (collected early by [`MshrFile::remaining`]) or was re-allocated
    /// with a later deadline is skipped.
    ///
    /// Public because the simulator's fast-forward must replay it: the
    /// stepped core purges once per cycle (via
    /// [`MshrFile::outstanding_into`]), and a dead entry left behind by a
    /// skipped purge would block [`MshrFile::allocate`]'s insert for a
    /// re-missed line — observably diverging from the stepped run.
    pub fn purge_expired(&mut self, now: u64) {
        while let Some(&Reverse((ready_at, line))) = self.expiry.peek() {
            if ready_at > now {
                break;
            }
            self.expiry.pop();
            if self.entries.get(&line).is_some_and(|e| e.ready_at <= now) {
                self.evict(line);
            }
        }
    }

    /// Remaining cycles until `line`'s fill completes, or `None` if no fill
    /// is in flight at `now`. Completed entries are garbage-collected.
    #[inline]
    pub fn remaining(&mut self, line: u64, now: u64) -> Option<u32> {
        match self.entries.get(&line) {
            Some(e) if e.ready_at > now => Some((e.ready_at - now) as u32),
            Some(_) => {
                self.evict(line);
                None
            }
            None => None,
        }
    }

    /// Fill level of an in-flight line (L1 hit-under-miss classification).
    /// Returns [`HitLevel::L1`] if the line is not tracked.
    #[inline]
    pub fn level_of(&self, line: u64) -> HitLevel {
        self.entries
            .get(&line)
            .map(|e| e.level)
            .unwrap_or(HitLevel::L1)
    }

    /// Number of *memory-level* (L2-miss) fills in flight per thread at
    /// `now`. Expired entries are purged as a side effect.
    pub fn outstanding_per_thread(&mut self, now: u64, threads: usize) -> Vec<u32> {
        let mut counts = vec![0u32; threads];
        self.outstanding_into(now, &mut counts);
        counts
    }

    /// Allocation-free variant of [`MshrFile::outstanding_per_thread`]:
    /// writes the per-thread counts into `counts` (zeroed first), sized by
    /// the caller. Used by the simulator's per-cycle MLP sampling — after
    /// the expired fills are purged this is a copy of the incrementally
    /// maintained counters, not a walk over the MSHR map.
    pub fn outstanding_into(&mut self, now: u64, counts: &mut [u32]) {
        self.purge_expired(now);
        counts.fill(0);
        let n = counts.len().min(self.mem_inflight.len());
        counts[..n].copy_from_slice(&self.mem_inflight[..n]);
    }

    /// Earliest completion cycle of any in-flight *memory-level* fill, or
    /// `None` when none is in flight. Stale nodes (fills collected early
    /// by [`MshrFile::remaining`], or lines re-allocated with a different
    /// deadline or level) are discarded on the way.
    ///
    /// This is the fast-forward bound for the simulator's per-cycle MLP
    /// sampling: the MLP counters track memory-level fills only, so
    /// strictly before this cycle the per-thread outstanding-miss counts
    /// are provably constant — L2-level fills may expire mid-span without
    /// observable effect (their lazy map cleanup happens on the next
    /// purge or touch either way).
    pub fn next_ready_at(&mut self) -> Option<u64> {
        while let Some(&Reverse((ready_at, line))) = self.mem_expiry.peek() {
            // A live node always matches its map entry exactly: `allocate`
            // pushes the node together with the entry, and entries never
            // change deadline or level. Anything else is stale.
            let live = self
                .entries
                .get(&line)
                .is_some_and(|e| e.ready_at == ready_at && e.level == HitLevel::Memory);
            if live {
                return Some(ready_at);
            }
            self.mem_expiry.pop();
        }
        None
    }

    /// Drops every tracked fill and zeroes the MLP counters, keeping the
    /// map/heap allocations. Bit-identical to a fresh MSHR file.
    pub fn reset_cold(&mut self) {
        self.entries.clear();
        self.expiry.clear();
        self.mem_expiry.clear();
        self.mem_inflight.clear();
    }

    /// Number of tracked in-flight fills (any level).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no fills are in flight.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remaining_counts_down_and_expires() {
        let mut m = MshrFile::new();
        m.allocate(42, ThreadId::new(0), HitLevel::Memory, 100);
        assert_eq!(m.remaining(42, 60), Some(40));
        assert_eq!(m.remaining(42, 100), None, "fill completed at 100");
        assert!(m.is_empty(), "expired entry is collected");
    }

    #[test]
    fn first_requester_wins_on_merge() {
        let mut m = MshrFile::new();
        m.allocate(7, ThreadId::new(0), HitLevel::Memory, 50);
        m.allocate(7, ThreadId::new(1), HitLevel::L2, 90);
        assert_eq!(m.remaining(7, 0), Some(50));
        assert_eq!(m.level_of(7), HitLevel::Memory);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn mlp_counts_only_memory_level_fills() {
        let mut m = MshrFile::new();
        m.allocate(1, ThreadId::new(0), HitLevel::Memory, 400);
        m.allocate(2, ThreadId::new(0), HitLevel::L2, 400);
        m.allocate(3, ThreadId::new(1), HitLevel::Memory, 400);
        assert_eq!(m.outstanding_per_thread(0, 2), vec![1, 1]);
    }

    #[test]
    fn next_ready_at_tracks_memory_level_fills_only() {
        let mut m = MshrFile::new();
        assert_eq!(m.next_ready_at(), None);
        // An L2-level fill is invisible to the MLP counters and must not
        // bound the fast-forward span.
        m.allocate(2, ThreadId::new(0), HitLevel::L2, 40);
        assert_eq!(m.next_ready_at(), None);
        m.allocate(1, ThreadId::new(0), HitLevel::Memory, 100);
        m.allocate(3, ThreadId::new(1), HitLevel::Memory, 60);
        assert_eq!(m.next_ready_at(), Some(60));
        // Drain the earliest memory fill: the next one takes over.
        assert_eq!(m.remaining(3, 60), None);
        assert_eq!(m.next_ready_at(), Some(100));
        assert_eq!(m.remaining(1, 100), None);
        assert_eq!(m.next_ready_at(), None);
    }

    #[test]
    fn next_ready_at_skips_stale_and_relevelled_nodes() {
        let mut m = MshrFile::new();
        m.allocate(7, ThreadId::new(0), HitLevel::Memory, 50);
        assert_eq!(m.next_ready_at(), Some(50));
        // Early-collect line 7 and re-allocate it as an L2 fill with the
        // *same* deadline: the old memory-level node is stale (level
        // mismatch) and must be skipped.
        assert_eq!(m.remaining(7, 50), None);
        m.allocate(7, ThreadId::new(1), HitLevel::L2, 50);
        assert_eq!(m.next_ready_at(), None);
        // Re-allocate as memory with a later deadline after collection.
        assert_eq!(m.remaining(7, 50), None);
        m.allocate(7, ThreadId::new(1), HitLevel::Memory, 90);
        assert_eq!(m.next_ready_at(), Some(90));
    }

    #[test]
    fn dead_entry_blocks_reallocation_until_purged() {
        // The per-cycle purge is part of the simulator's observable
        // semantics: a fill that expired but was never purged (its line's
        // purge cycles were fast-forwarded over) blocks `allocate`'s
        // insert for the same line. The fast-forward path therefore
        // replays the purge up to the cycle before the resumed one; this
        // pins the mechanism at the MSHR level.
        let mut m = MshrFile::new();
        m.allocate(5, ThreadId::new(0), HitLevel::L2, 100);
        // No purge ran between cycles 100 and 150 (skipped span): the
        // dead entry still occupies the slot and swallows the new fill.
        let mut blocked = m.clone();
        blocked.allocate(5, ThreadId::new(0), HitLevel::Memory, 450);
        assert_eq!(
            blocked.outstanding_per_thread(150, 1),
            vec![0],
            "dead entry must swallow the re-allocation (documented hazard)"
        );
        // With the purge replayed first, the re-allocation lands.
        m.purge_expired(149);
        m.allocate(5, ThreadId::new(0), HitLevel::Memory, 450);
        assert_eq!(m.outstanding_per_thread(150, 1), vec![1]);
        assert_eq!(m.next_ready_at(), Some(450));
    }

    #[test]
    fn outstanding_purges_expired() {
        let mut m = MshrFile::new();
        m.allocate(1, ThreadId::new(0), HitLevel::Memory, 10);
        m.allocate(2, ThreadId::new(0), HitLevel::Memory, 500);
        assert_eq!(m.outstanding_per_thread(100, 1), vec![1]);
        assert_eq!(m.len(), 1);
    }
}
