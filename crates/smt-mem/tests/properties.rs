//! Property-based tests of the memory substrate's invariants.

use proptest::prelude::*;
use smt_isa::ThreadId;
use smt_mem::{Cache, CacheConfig, MemoryConfig, MemoryHierarchy, MshrFile, Tlb};

fn tiny_cache() -> Cache {
    Cache::new(&CacheConfig {
        size_bytes: 1024,
        ways: 2,
        line_bytes: 64,
        latency: 1,
        banks: 1,
    })
}

proptest! {
    /// A line is always resident immediately after being accessed.
    #[test]
    fn access_installs_line(addrs in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut c = tiny_cache();
        for a in addrs {
            c.access(a, false);
            prop_assert!(c.probe(a), "line for {a:#x} must be resident after access");
        }
    }

    /// Misses never exceed accesses, and re-accessing the same address
    /// twice in a row always hits the second time.
    #[test]
    fn miss_accounting_is_sane(addrs in proptest::collection::vec(0u64..100_000, 1..200)) {
        let mut c = tiny_cache();
        for a in &addrs {
            c.access(*a, false);
            let misses_before = c.stats().misses;
            prop_assert!(c.access(*a, false), "immediate re-access must hit");
            prop_assert_eq!(c.stats().misses, misses_before);
        }
        prop_assert!(c.stats().misses <= c.stats().accesses);
    }

    /// The TLB covers at least as many consecutive bytes as one page.
    #[test]
    fn tlb_page_granularity(base in 0u64..u64::MAX / 2, off in 0u64..8192) {
        let mut t = Tlb::new(8, 8192);
        let page_start = base & !8191;
        t.access(page_start);
        prop_assert!(t.access(page_start + off), "same page must hit");
    }

    /// MSHR remaining-time monotonically decreases and expires exactly at
    /// the deadline.
    #[test]
    fn mshr_remaining_counts_down(ready in 1u64..1000, step in 1u64..100) {
        let mut m = MshrFile::new();
        m.allocate(1, ThreadId::new(0), smt_mem::HitLevel::Memory, ready);
        let mut last = u32::MAX;
        let mut now = 0;
        while now < ready {
            if let Some(r) = m.remaining(1, now) {
                prop_assert!(r <= last);
                prop_assert_eq!(u64::from(r), ready - now);
                last = r;
            } else {
                prop_assert!(false, "entry disappeared early at {now}");
            }
            now += step;
        }
        prop_assert_eq!(m.remaining(1, ready), None);
    }

    /// Hierarchy latencies are bounded by the full miss path and at least
    /// the L1 latency; levels are consistent with latencies.
    #[test]
    fn hierarchy_latency_bounds(addrs in proptest::collection::vec(0u64..10_000_000, 1..100)) {
        let cfg = MemoryConfig::default();
        let max = cfg.dl1.latency + cfg.l2.latency + cfg.memory_latency + cfg.tlb_miss_penalty;
        let mut mem = MemoryHierarchy::new(&cfg, 1);
        let mut now = 0;
        for a in addrs {
            let out = mem.access_data(ThreadId::new(0), a, false, now);
            prop_assert!(out.latency >= cfg.dl1.latency);
            prop_assert!(out.latency <= max, "latency {} above path maximum", out.latency);
            now = out.ready_at();
        }
    }
}
