//! Property-based tests of the metric definitions.

use proptest::prelude::*;
use smt_metrics::{hmean, improvement_pct, speedups, throughput, weighted_speedup};

proptest! {
    /// Hmean is bounded above by the arithmetic mean (weighted speedup):
    /// the harmonic mean never exceeds the arithmetic mean.
    #[test]
    fn hmean_below_weighted_speedup(
        pairs in proptest::collection::vec((0.01f64..8.0, 0.1f64..8.0), 1..6)
    ) {
        let multi: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let single: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let h = hmean(&multi, &single);
        let w = weighted_speedup(&multi, &single);
        prop_assert!(h <= w + 1e-9, "hmean {h} above weighted speedup {w}");
    }

    /// Scaling all multi-thread IPCs by k scales both metrics by k.
    #[test]
    fn metrics_are_homogeneous(
        pairs in proptest::collection::vec((0.01f64..8.0, 0.1f64..8.0), 1..6),
        k in 0.1f64..4.0,
    ) {
        let multi: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let scaled: Vec<f64> = multi.iter().map(|m| m * k).collect();
        let single: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        prop_assert!((hmean(&scaled, &single) - k * hmean(&multi, &single)).abs() < 1e-9);
        prop_assert!(
            (weighted_speedup(&scaled, &single) - k * weighted_speedup(&multi, &single)).abs()
                < 1e-9
        );
        prop_assert!((throughput(&scaled) - k * throughput(&multi)).abs() < 1e-9);
    }

    /// Starving any single thread drives Hmean below the fair value, while
    /// the weighted speedup barely notices — the reason the paper prefers
    /// Hmean (Section 5).
    #[test]
    fn hmean_is_starvation_sensitive(n in 2usize..5, victim in 0usize..5) {
        let victim = victim % n;
        let single = vec![2.0; n];
        let fair = vec![1.0; n];
        let mut starved = fair.clone();
        starved[victim] = 0.01;
        prop_assert!(hmean(&starved, &single) < hmean(&fair, &single) / 5.0);
    }

    /// Improvement percentages invert consistently: if A is x% better than
    /// B, B is worse than A.
    #[test]
    fn improvement_antisymmetry(a in 0.1f64..10.0, b in 0.1f64..10.0) {
        let ab = improvement_pct(a, b);
        let ba = improvement_pct(b, a);
        prop_assert_eq!(ab > 0.0, ba < 0.0);
        // Round trip: (1 + ab)(1 + ba) == 1.
        prop_assert!(((1.0 + ab / 100.0) * (1.0 + ba / 100.0) - 1.0).abs() < 1e-9);
    }

    /// Speedups are element-wise and order-preserving.
    #[test]
    fn speedups_elementwise(multi in proptest::collection::vec(0.0f64..8.0, 1..6)) {
        let single: Vec<f64> = multi.iter().map(|_| 2.0).collect();
        let sp = speedups(&multi, &single);
        for (s, m) in sp.iter().zip(&multi) {
            prop_assert!((s - m / 2.0).abs() < 1e-12);
        }
    }
}
