//! SMT performance metrics used by the paper's evaluation (Section 5).
//!
//! * **IPC throughput** — the sum of per-thread IPCs; measures how
//!   effectively resources are used, but can be gamed by starving slow
//!   threads.
//! * **Hmean** (Luo, Gummaraju & Franklin, ISPASS'01) — the harmonic mean
//!   of each thread's speedup relative to running alone, the paper's
//!   fairness/throughput-balance metric.
//! * **Weighted speedup** (Tullsen & Brown) — the arithmetic mean of the
//!   relative IPCs, reported for completeness.
//! * **MLP** — average overlapping L2 misses while at least one is
//!   outstanding (Section 5.2's memory-parallelism measurements).
//! * **Front-end activity** — fetched instructions, including flush-induced
//!   refetch (the 108%-extra-fetch comparison of Section 5.2).
//!
//! # Examples
//!
//! ```
//! use smt_metrics::{hmean, throughput};
//!
//! let multi = [1.2, 0.3];   // IPCs running together
//! let single = [2.4, 0.6];  // IPCs running alone
//! assert_eq!(throughput(&multi), 1.5);
//! assert!((hmean(&multi, &single) - 0.5).abs() < 1e-12); // both at half speed
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use smt_sim::SimResult;

/// IPC throughput: the sum of per-thread IPCs.
pub fn throughput(ipcs: &[f64]) -> f64 {
    ipcs.iter().sum()
}

/// Per-thread relative IPCs (speedups vs single-thread execution).
///
/// # Panics
///
/// Panics if the slices have different lengths or a baseline IPC is not
/// positive (a benchmark cannot have zero single-thread IPC).
pub fn speedups(multi_ipcs: &[f64], single_ipcs: &[f64]) -> Vec<f64> {
    assert_eq!(
        multi_ipcs.len(),
        single_ipcs.len(),
        "need one baseline IPC per thread"
    );
    multi_ipcs
        .iter()
        .zip(single_ipcs)
        .map(|(&m, &s)| {
            assert!(s > 0.0, "single-thread baseline IPC must be positive");
            m / s
        })
        .collect()
}

/// The Hmean metric: harmonic mean of per-thread speedups. Exposes
/// "artificial" throughput obtained by starving slow threads — a policy
/// that runs one thread at full speed and another at zero scores 0.
///
/// Guarded against the degenerate inputs partial sweeps can produce: an
/// empty slice scores 0 (not NaN from 0/0), a zero-IPC thread scores the
/// whole workload 0 (its reciprocal speedup is treated as infinite), and
/// NaN can never propagate out of the reduction.
pub fn hmean(multi_ipcs: &[f64], single_ipcs: &[f64]) -> f64 {
    let sp = speedups(multi_ipcs, single_ipcs);
    if sp.is_empty() {
        return 0.0;
    }
    let n = sp.len() as f64;
    let denom: f64 = sp
        .iter()
        .map(|&s| if s > 0.0 { 1.0 / s } else { f64::INFINITY })
        .sum();
    if denom.is_infinite() || denom.is_nan() || denom <= 0.0 {
        // Infinite: some thread is fully starved -> 0 by definition.
        // Non-positive or NaN cannot arise from positive speedups, but a
        // guarded 0 beats poisoning a whole figure bin.
        0.0
    } else {
        n / denom
    }
}

/// Weighted speedup: arithmetic mean of per-thread speedups. An empty
/// slice scores 0 (not NaN).
pub fn weighted_speedup(multi_ipcs: &[f64], single_ipcs: &[f64]) -> f64 {
    let sp = speedups(multi_ipcs, single_ipcs);
    if sp.is_empty() {
        return 0.0;
    }
    sp.iter().sum::<f64>() / sp.len() as f64
}

/// Non-panicking [`speedups`]: `None` on mismatched lengths or a
/// non-positive baseline IPC. For aggregating over partially-failed
/// sweeps, where a missing or corrupt baseline must skip the row rather
/// than abort the report.
pub fn try_speedups(multi_ipcs: &[f64], single_ipcs: &[f64]) -> Option<Vec<f64>> {
    if multi_ipcs.len() != single_ipcs.len() {
        return None;
    }
    multi_ipcs
        .iter()
        .zip(single_ipcs)
        .map(|(&m, &s)| (s > 0.0).then(|| m / s))
        .collect()
}

/// Non-panicking [`hmean`]: `None` exactly when [`try_speedups`] fails;
/// otherwise identical to [`hmean`] (including the guarded zeros).
pub fn try_hmean(multi_ipcs: &[f64], single_ipcs: &[f64]) -> Option<f64> {
    try_speedups(multi_ipcs, single_ipcs)?;
    Some(hmean(multi_ipcs, single_ipcs))
}

/// Non-panicking [`weighted_speedup`]: `None` exactly when
/// [`try_speedups`] fails.
pub fn try_weighted_speedup(multi_ipcs: &[f64], single_ipcs: &[f64]) -> Option<f64> {
    try_speedups(multi_ipcs, single_ipcs)?;
    Some(weighted_speedup(multi_ipcs, single_ipcs))
}

/// Relative improvement of `ours` over `baseline`, in percent.
pub fn improvement_pct(ours: f64, baseline: f64) -> f64 {
    if baseline == 0.0 {
        0.0
    } else {
        (ours / baseline - 1.0) * 100.0
    }
}

/// Workload-level memory parallelism: average of the per-thread MLP values
/// over threads that had any outstanding L2 miss.
pub fn workload_mlp(result: &SimResult) -> f64 {
    let vals: Vec<f64> = result
        .threads
        .iter()
        .filter(|t| t.mlp_cycles > 0)
        .map(|t| t.mlp())
        .collect();
    if vals.is_empty() {
        0.0
    } else {
        vals.iter().sum::<f64>() / vals.len() as f64
    }
}

/// Extra front-end activity of `ours` relative to `baseline`, in percent
/// (the paper's "FLUSH++ fetches 108% more instructions than DCRA").
pub fn extra_fetch_pct(ours: &SimResult, baseline: &SimResult) -> f64 {
    // Normalise per committed instruction so runs of different lengths
    // compare fairly.
    let ours_rate = ours.total_fetched() as f64 / ours.total_committed().max(1) as f64;
    let base_rate = baseline.total_fetched() as f64 / baseline.total_committed().max(1) as f64;
    improvement_pct(ours_rate, base_rate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_sim::ThreadStats;

    #[test]
    fn throughput_sums() {
        assert_eq!(throughput(&[1.0, 2.0, 0.5]), 3.5);
        assert_eq!(throughput(&[]), 0.0);
    }

    #[test]
    fn hmean_penalises_starvation() {
        let single = [2.0, 2.0];
        // Balanced halving.
        let fair = hmean(&[1.0, 1.0], &single);
        assert!((fair - 0.5).abs() < 1e-12);
        // Same total IPC, but one thread starved: Hmean collapses.
        let unfair = hmean(&[2.0, 0.001], &single);
        assert!(unfair < fair / 10.0, "unfair={unfair} fair={fair}");
        // Fully starved thread -> 0.
        assert_eq!(hmean(&[2.0, 0.0], &single), 0.0);
    }

    #[test]
    fn weighted_speedup_is_arithmetic_mean() {
        let ws = weighted_speedup(&[1.0, 1.0], &[2.0, 4.0]);
        assert!((ws - 0.375).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_baseline_rejected() {
        let _ = speedups(&[1.0], &[0.0]);
    }

    #[test]
    fn try_variants_reject_instead_of_panicking() {
        assert_eq!(try_speedups(&[1.0], &[0.0]), None, "zero baseline");
        assert_eq!(try_speedups(&[1.0, 2.0], &[2.0]), None, "length mismatch");
        assert_eq!(try_hmean(&[1.0], &[0.0]), None);
        assert_eq!(try_weighted_speedup(&[1.0, 2.0], &[2.0]), None);
        // On valid input they agree exactly with the panicking originals.
        let (multi, single) = ([1.2, 0.3], [2.4, 0.6]);
        assert_eq!(
            try_speedups(&multi, &single),
            Some(speedups(&multi, &single))
        );
        assert_eq!(try_hmean(&multi, &single), Some(hmean(&multi, &single)));
        assert_eq!(
            try_weighted_speedup(&multi, &single),
            Some(weighted_speedup(&multi, &single))
        );
        // Guarded zeros survive: empty input is valid, scores 0.
        assert_eq!(try_hmean(&[], &[]), Some(0.0));
    }

    #[test]
    fn empty_inputs_score_zero_not_nan() {
        // Empty or fully-starved inputs must yield finite, zero scores —
        // a NaN here used to poison whole figure bins in partial sweeps.
        assert_eq!(hmean(&[], &[]), 0.0);
        assert_eq!(weighted_speedup(&[], &[]), 0.0);
        assert!(hmean(&[], &[]).is_finite());
    }

    #[test]
    fn zero_ipc_threads_never_produce_inf_or_nan() {
        let single = [2.0, 2.0, 2.0];
        for multi in [[0.0, 0.0, 0.0], [1.0, 0.0, 1.0], [0.0, 1.0, 0.0]] {
            let h = hmean(&multi, &single);
            assert_eq!(h, 0.0, "starved thread must zero the Hmean");
            assert!(h.is_finite());
            let w = weighted_speedup(&multi, &single);
            assert!(w.is_finite(), "weighted speedup must stay finite");
        }
    }

    #[test]
    fn improvement_pct_signs() {
        assert!((improvement_pct(1.08, 1.0) - 8.0).abs() < 1e-9);
        assert!(improvement_pct(0.9, 1.0) < 0.0);
        assert_eq!(improvement_pct(1.0, 0.0), 0.0);
    }

    fn result_with(fetched: &[u64], committed: &[u64]) -> SimResult {
        SimResult {
            cycles: 1000,
            policy: "X".into(),
            threads: fetched
                .iter()
                .zip(committed)
                .map(|(&f, &c)| ThreadStats {
                    fetched: f,
                    committed: c,
                    ..ThreadStats::default()
                })
                .collect(),
        }
    }

    #[test]
    fn extra_fetch_is_relative_to_useful_work() {
        let flushy = result_with(&[4000], &[1000]);
        let lean = result_with(&[2000], &[1000]);
        let extra = extra_fetch_pct(&flushy, &lean);
        assert!((extra - 100.0).abs() < 1e-9, "got {extra}");
    }

    #[test]
    fn workload_mlp_averages_busy_threads() {
        let mut r = result_with(&[0, 0], &[1, 1]);
        r.threads[0].mlp_sum = 40;
        // Thread 0 has MLP 4; thread 1 never missed, so it is excluded.
        r.threads[0].mlp_cycles = 10;
        assert!((workload_mlp(&r) - 4.0).abs() < 1e-12);
    }
}
