//! Minimal text-table formatting for experiment reports.

/// A simple left-padded text table.
///
/// # Examples
///
/// ```
/// use smt_experiments::tables::TextTable;
///
/// let mut t = TextTable::new(&["bench", "IPC"]);
/// t.row(&["gzip", "2.31"]);
/// let s = t.to_string();
/// assert!(s.contains("gzip"));
/// assert!(s.contains("IPC"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: &[&str]) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match header"
        );
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
    }

    /// Appends a row of already-owned cells.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl std::fmt::Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let write_row = |f: &mut std::fmt::Formatter<'_>, cells: &[String]| -> std::fmt::Result {
            for (c, cell) in cells.iter().take(cols).enumerate() {
                if c > 0 {
                    write!(f, "  ")?;
                }
                let width = widths.get(c).copied().unwrap_or(0);
                write!(f, "{cell:>width$}")?;
            }
            writeln!(f)
        };
        write_row(f, &self.header)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * cols.saturating_sub(1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float with 2 decimal places (helper for table cells).
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a float with 3 decimal places.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a percentage with 1 decimal place.
pub fn pct(v: f64) -> String {
    format!("{v:+.1}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(&["a", "long-header"]);
        t.row(&["xxxx", "1"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with('-'));
        assert!(lines[2].contains("xxxx"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(&["only-one"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f2(1.2345), "1.23");
        assert_eq!(f3(1.2345), "1.234");
        assert_eq!(pct(7.89), "+7.9%");
        assert_eq!(pct(-3.21), "-3.2%");
    }

    #[test]
    fn len_tracks_rows() {
        let mut t = TextTable::new(&["x"]);
        assert!(t.is_empty());
        t.row_owned(vec!["1".into()]);
        assert_eq!(t.len(), 1);
    }
}
