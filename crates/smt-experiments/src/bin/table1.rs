//! Regenerates paper Table 1 (pre-computed DCRA allocations).

#![forbid(unsafe_code)]

fn main() {
    println!("Table 1 — DCRA allocations, 32-entry resource, 4 threads (C = 1/A)\n");
    println!("{}", smt_experiments::table1::report());
}
