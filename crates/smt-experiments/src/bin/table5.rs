//! Regenerates paper Table 5 (phase distribution of 2-thread workloads).
use smt_experiments::table5;
fn main() {
    let rows = table5::run(150_000);
    println!("Table 5 — % of cycles in each phase combination (2 threads)\n");
    println!("{}", table5::report(&rows));
}
