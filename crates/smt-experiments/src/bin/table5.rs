//! Regenerates paper Table 5 (phase distribution of 2-thread workloads).

#![forbid(unsafe_code)]

use smt_experiments::table5;
fn main() {
    let rows = table5::run(150_000).unwrap_or_else(|e| {
        eprintln!("table 5 sweep failed: {e}");
        std::process::exit(1);
    });
    println!("Table 5 — % of cycles in each phase combination (2 threads)\n");
    println!("{}", table5::report(&rows));
}
