//! Regenerates paper Figure 6 (register-file size sensitivity).

#![forbid(unsafe_code)]

use smt_experiments::{fig6, Runner};
fn main() {
    let runner = Runner::new();
    let result = fig6::run(&runner).unwrap_or_else(|e| {
        eprintln!("figure 6 sweep failed: {e}");
        std::process::exit(1);
    });
    println!("Figure 6 — Hmean improvement of DCRA vs register pool size\n");
    println!("{}", fig6::report(&result));
}
