//! Regenerates paper Figure 6 (register-file size sensitivity).
use smt_experiments::{fig6, Runner};
fn main() {
    let runner = Runner::new();
    let result = fig6::run(&runner);
    println!("Figure 6 — Hmean improvement of DCRA vs register pool size\n");
    println!("{}", fig6::report(&result));
}
