//! Paired A/B throughput probe over the 12 four-thread Table-4 mixes.
//!
//! Measures simulated cycles per wall-clock second for a nine-policy
//! sweep over each 4-thread workload of the paper's Table 4 (ILP4, MIX4
//! and MEM4 — 12 mixes), reusing one simulator per mix across the
//! policies exactly like production sweeps do. Prints one line per mix
//! and a final `mean` line, machine-greppable:
//!
//! ```text
//! cargo run --release -p smt-experiments --bin ab_table4 -- [--cycles N]
//! ```
//!
//! Intended use is paired same-host interleaved A/B: build this bin at
//! two revisions, alternate invocations, and compare the means.

#![forbid(unsafe_code)]

use smt_experiments::PolicyKind;
use smt_sim::{SimConfig, Simulator};
use smt_workloads::{spec, workloads_of, WorkloadType};
use std::time::Instant;

fn policies() -> Vec<PolicyKind> {
    [
        "RR", "ICOUNT", "STALL", "FLUSH", "FLUSH++", "DG", "PDG", "SRA", "DCRA",
    ]
    .iter()
    .map(|n| PolicyKind::from_name(n).expect("canonical policy"))
    .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cycles: u64 = args
        .iter()
        .position(|a| a == "--cycles")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--cycles takes an integer"))
        .unwrap_or(30_000);

    let mixes: Vec<_> = WorkloadType::ALL
        .into_iter()
        .flat_map(|kind| workloads_of(kind, 4))
        .collect();
    let mut sum = 0.0;
    for w in &mixes {
        let benches: Vec<&str> = w.benchmarks.iter().map(String::as_str).collect();
        let profiles: Vec<_> = benches
            .iter()
            .map(|b| spec::profile(b).expect("known benchmark"))
            .collect();
        let mut sim = Simulator::new(
            SimConfig::baseline(benches.len()),
            &profiles,
            policies()[0].build(),
            42,
        );
        let mut simulated = 0u64;
        let mut elapsed = 0.0f64;
        for policy in policies() {
            sim.reset(&profiles, policy.build(), 42);
            sim.prewarm(20_000);
            sim.run_cycles(2_000); // warm the caches/predictors
            let t0 = Instant::now();
            sim.run_cycles(cycles);
            elapsed += t0.elapsed().as_secs_f64();
            simulated += cycles;
        }
        let rate = simulated as f64 / elapsed;
        println!("mix={} rate={rate:.0}", w.id());
        sum += rate;
    }
    println!("mean={:.0}", sum / mixes.len() as f64);
}
