//! Runs the DCRA design-choice ablations (activity-counter window, sharing
//! factor, degenerate-case detection, table-driven implementation).

#![forbid(unsafe_code)]

use smt_experiments::{ablation, Runner};
fn main() {
    let runner = Runner::new();
    let rows = ablation::run(&runner, 200_000).unwrap_or_else(|e| {
        eprintln!("ablation sweep failed: {e}");
        std::process::exit(1);
    });
    println!("DCRA ablations — MIX2+MEM2 workloads, baseline machine\n");
    println!("{}", ablation::report(&rows));
}
