//! Regenerates paper Table 3 (per-benchmark L2 miss rates / MEM-ILP split).

#![forbid(unsafe_code)]

use smt_experiments::{table3, Runner};
fn main() {
    let runner = Runner::new();
    let rows = table3::run(&runner).unwrap_or_else(|e| {
        eprintln!("table 3 calibration failed: {e}");
        std::process::exit(1);
    });
    println!("Table 3 — benchmark cache behaviour (single-thread)\n");
    println!("{}", table3::report(&rows));
}
