//! Ad-hoc diagnostic runner: run one workload under one policy with full
//! per-thread statistics. Usage:
//!
//! ```text
//! cargo run --release -p smt-experiments --bin diagnose -- POLICY bench [bench ...]
//! ```

#![forbid(unsafe_code)]

use smt_experiments::{PolicyKind, RunSpec, Runner};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (policy, benches): (PolicyKind, Vec<&str>) = if args.len() >= 2 {
        let p = PolicyKind::from_name(&args[0]).unwrap_or_else(|| {
            eprintln!("unknown policy `{}`", args[0]);
            std::process::exit(2);
        });
        (p, args[1..].iter().map(|s| s.as_str()).collect())
    } else {
        (PolicyKind::dcra_for_latency(300), vec!["gzip", "mcf"])
    };

    let runner = Runner::new();
    let spec = RunSpec::new(&benches, policy);
    let out = runner.run(&spec).unwrap_or_else(|e| {
        eprintln!("diagnostic run failed: {e}");
        std::process::exit(1);
    });
    println!(
        "{} on {}: throughput {:.3} IPC over {} cycles",
        spec.policy.name(),
        benches.join("+"),
        out.throughput(),
        out.result.cycles
    );
    for (i, b) in benches.iter().enumerate() {
        let t = &out.result.threads[i];
        let m = &out.mem[i];
        println!(
            "  T{i} {b:8} ipc={:.3} fetched={} committed={} squashed={} mispred={} \
             gated={} l1d%={:.1} l2%={:.1} mlp={:.2} blk(rob/iq/reg/pol)={}/{}/{}/{}",
            t.ipc(out.result.cycles),
            t.fetched,
            t.committed,
            t.squashed,
            t.mispredicts,
            t.gated_cycles,
            m.l1_miss_rate() * 100.0,
            m.l2_miss_rate() * 100.0,
            t.mlp(),
            t.blocked_rob,
            t.blocked_iq,
            t.blocked_regs,
            t.blocked_policy,
        );
    }
}
