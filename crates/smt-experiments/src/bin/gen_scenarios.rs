//! Generates a scenario family and emits its JSON manifest.
//!
//! Usage:
//!
//! ```text
//! gen_scenarios [--family NAME] [--seed N] [--mixes N] [--workers N] [--out PATH]
//! ```
//!
//! `NAME` is `expected`, `stress`, or `adversarial-<POLICY>` with POLICY
//! one of RR, ICOUNT, STALL, FLUSH, FLUSH++ (also FLUSHPP/FLUSH_PP), DG,
//! PDG, SRA, DCRA. Defaults: `--family expected --seed 42 --mixes 60
//! --workers 1`, manifest to stdout. The output is byte-stable: the same
//! family, seed and mix count produce identical bytes for any worker
//! count — CI generates the expected family twice and diffs the files.

#![forbid(unsafe_code)]

use smt_workloads::{FamilyManifest, FamilySpec, PolicyTarget};

fn usage() -> ! {
    eprintln!(
        "usage: gen_scenarios [--family expected|stress|adversarial-<POLICY>] \
         [--seed N] [--mixes N] [--workers N] [--out PATH]"
    );
    std::process::exit(2);
}

fn parse_family(name: &str, mixes: usize) -> Option<FamilySpec> {
    match name {
        "expected" => Some(FamilySpec::expected(mixes)),
        "stress" => Some(FamilySpec::stress(mixes)),
        _ => {
            let policy = name.strip_prefix("adversarial-")?;
            Some(FamilySpec::adversarial(
                PolicyTarget::from_name(policy)?,
                mixes,
            ))
        }
    }
}

fn main() {
    let mut family = "expected".to_string();
    let mut seed: u64 = 42;
    let mut mixes: usize = 60;
    let mut workers: usize = 1;
    let mut out: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--family" => family = value(),
            "--seed" => seed = value().parse().unwrap_or_else(|_| usage()),
            "--mixes" => mixes = value().parse().unwrap_or_else(|_| usage()),
            "--workers" => workers = value().parse().unwrap_or_else(|_| usage()),
            "--out" => out = Some(value()),
            _ => usage(),
        }
    }

    let spec = parse_family(&family, mixes).unwrap_or_else(|| {
        eprintln!("unknown family `{family}`");
        usage();
    });
    let manifest =
        FamilyManifest::generate_with_workers(&spec, seed, workers).unwrap_or_else(|e| {
            eprintln!("invalid family spec: {e}");
            std::process::exit(2);
        });
    let json = manifest.to_json();
    match out {
        Some(path) => {
            std::fs::write(&path, &json).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            });
            eprintln!(
                "wrote {} ({} mixes, fingerprint {:016x})",
                path,
                manifest.mixes.len(),
                manifest.fingerprint()
            );
        }
        None => print!("{json}"),
    }
}
