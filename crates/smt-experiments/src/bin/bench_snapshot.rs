//! Records simulator throughput (simulated cycles per wall-clock second)
//! for every policy on the standard 4-thread sweep configuration, and
//! appends the snapshot to a JSON trajectory file (`BENCH_core.json`).
//!
//! This is the number that determines how long paper-scale sweeps take;
//! tracking it per PR keeps performance regressions visible. Usage:
//!
//! ```text
//! cargo run --release -p smt-experiments --bin bench_snapshot -- \
//!     [--smoke] [--label NAME] [--out PATH]
//! ```
//!
//! `--smoke` shrinks the measured run for CI smoke coverage; `--out`
//! defaults to `BENCH_core.json` in the current directory. The file keeps
//! one snapshot per line inside a `"snapshots"` array, so successive runs
//! append without a JSON parser.

use smt_experiments::PolicyKind;
use smt_sim::{SimConfig, Simulator};
use smt_workloads::spec;
use std::time::Instant;

/// The 4-thread mix the `policies` Criterion bench and this snapshot share.
const BENCHES: [&str; 4] = ["art", "gcc", "twolf", "swim"];

fn policies() -> Vec<PolicyKind> {
    [
        "RR", "ICOUNT", "STALL", "FLUSH", "FLUSH++", "DG", "PDG", "SRA", "DCRA",
    ]
    .iter()
    .map(|n| PolicyKind::from_name(n).expect("canonical policy"))
    .collect()
}

fn prepared(policy: &PolicyKind) -> Simulator {
    let profiles: Vec<_> = BENCHES
        .iter()
        .map(|b| spec::profile(b).expect("known benchmark"))
        .collect();
    let mut sim = Simulator::new(
        SimConfig::baseline(BENCHES.len()),
        &profiles,
        policy.build(),
        42,
    );
    sim.prewarm(100_000);
    sim.run_cycles(5_000);
    sim.reset_stats();
    sim
}

/// Median wall-clock cycles/second over `reps` chunks of `cycles` each.
fn measure(policy: &PolicyKind, cycles: u64, reps: usize) -> f64 {
    let mut sim = prepared(policy);
    let mut rates: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            sim.run_cycles(cycles);
            cycles as f64 / t0.elapsed().as_secs_f64()
        })
        .collect();
    rates.sort_by(|a, b| a.partial_cmp(b).expect("finite rates"));
    rates[rates.len() / 2]
}

/// Existing snapshot lines of `path` (one JSON object per line, as written
/// by this tool). Unknown or absent files yield no lines.
fn existing_snapshots(path: &str) -> Vec<String> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .map(str::trim)
        .filter(|l| l.starts_with("{ \"label\""))
        .map(|l| l.trim_end_matches(',').to_string())
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let label = flag("--label").unwrap_or_else(|| "current".to_string());
    let out = flag("--out").unwrap_or_else(|| "BENCH_core.json".to_string());
    let (cycles, reps) = if smoke { (5_000, 1) } else { (100_000, 3) };

    let mut fields = Vec::new();
    let mut sum = 0.0;
    for policy in policies() {
        let rate = measure(&policy, cycles, reps);
        eprintln!("{:>8}: {:>12.0} cycles/s", policy.name(), rate);
        fields.push(format!("\"{}\": {:.0}", policy.name(), rate));
        sum += rate;
    }
    let mean = sum / fields.len() as f64;
    eprintln!("{:>8}: {:>12.0} cycles/s", "mean", mean);

    let snapshot = format!(
        "{{ \"label\": \"{label}\", \"smoke\": {smoke}, \"measured_cycles\": {cycles}, \
         \"mean_cycles_per_sec\": {mean:.0}, \"cycles_per_sec\": {{ {} }} }}",
        fields.join(", ")
    );
    let mut lines = existing_snapshots(&out);
    lines.retain(|l| !l.contains(&format!("\"label\": \"{label}\"")));
    lines.push(snapshot);

    let body = lines
        .iter()
        .map(|l| format!("  {l}"))
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{ \"schema\": \"bench_core.v1\",\n  \"bench\": \"policies/mix4 {}\",\n  \
         \"note\": \"simulated cycles per wall-clock second, median of {reps} x {cycles}-cycle runs per policy; maintained by scripts/bench_snapshot.sh\",\n  \
         \"snapshots\": [\n{body}\n] }}\n",
        BENCHES.join("+"),
    );
    std::fs::write(&out, json).expect("write snapshot file");
    println!(
        "recorded {} policies into {out} (label \"{label}\")",
        fields.len()
    );
}
