//! Records simulator throughput (simulated cycles per wall-clock second)
//! for every policy on the standard 4-thread sweep configuration, and
//! appends the snapshot to a JSON trajectory file (`BENCH_core.json`).
//!
//! This is the number that determines how long paper-scale sweeps take;
//! tracking it per PR keeps performance regressions visible. Usage:
//!
//! ```text
//! cargo run --release -p smt-experiments --bin bench_snapshot -- \
//!     [--smoke] [--label NAME] [--out PATH]
//! ```
//!
//! `--smoke` shrinks the measured run for CI smoke coverage; `--out`
//! defaults to `BENCH_core.json` in the current directory. The file keeps
//! one snapshot per line inside a `"snapshots"` array, so successive runs
//! append without a JSON parser. `--check PATH` validates that a file is
//! well-formed JSON and exits (used by `scripts/bench_snapshot.sh` to
//! refuse to append to a corrupt trajectory file), and every normal run
//! performs the same validation on an existing `--out` before rewriting
//! it.
//!
//! Besides per-policy simulated-cycles/sec, each snapshot records the
//! sweep setup cost: how many short same-configuration runs per second a
//! reused [`SimSession`] sustains versus building a fresh simulator per
//! run.

#![forbid(unsafe_code)]

use smt_experiments::scenarios::{policy_for_target, specs_for_family, ScenarioLengths};
use smt_experiments::{PolicyKind, RunSpec, SimSession};
use smt_sim::{SimConfig, Simulator, StageProfile};
use smt_workloads::{spec, workloads_of, FamilySpec, PolicyTarget, ScenarioFamily, WorkloadType};
use std::time::Instant;

/// The 4-thread mix the `policies` Criterion bench and this snapshot share.
const BENCHES: [&str; 4] = ["art", "gcc", "twolf", "swim"];

/// A 4-thread MEM-class mix (every thread memory-bound): the workload
/// family where stalled cycles dominate and the multi-cycle fast-forward
/// path carries the run, tracked separately so its trajectory is visible.
const MEM_BENCHES: [&str; 4] = ["mcf", "art", "swim", "twolf"];

fn policies() -> Vec<PolicyKind> {
    [
        "RR", "ICOUNT", "STALL", "FLUSH", "FLUSH++", "DG", "PDG", "SRA", "DCRA",
    ]
    .iter()
    .map(|n| PolicyKind::from_name(n).expect("canonical policy"))
    .collect()
}

fn prepared_mix(policy: &PolicyKind, benches: &[&str]) -> Simulator {
    let profiles: Vec<_> = benches
        .iter()
        .map(|b| spec::profile(b).expect("known benchmark"))
        .collect();
    let mut sim = Simulator::new(
        SimConfig::baseline(benches.len()),
        &profiles,
        policy.build(),
        42,
    );
    sim.prewarm(100_000);
    sim.run_cycles(5_000);
    sim.reset_stats();
    sim
}

/// Median wall-clock cycles/second over `reps` chunks of `cycles` each.
fn measure_mix(policy: &PolicyKind, benches: &[&str], cycles: u64, reps: usize) -> f64 {
    let mut sim = prepared_mix(policy, benches);
    let mut rates: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            sim.run_cycles(cycles);
            cycles as f64 / t0.elapsed().as_secs_f64()
        })
        .collect();
    rates.sort_by(|a, b| a.partial_cmp(b).expect("finite rates"));
    rates[rates.len() / 2]
}

fn measure(policy: &PolicyKind, cycles: u64, reps: usize) -> f64 {
    measure_mix(policy, &BENCHES, cycles, reps)
}

/// Per-stage cycle-cost breakdown: runs every policy for `cycles` cycles
/// through [`Simulator::run_cycles_profiled`] (the fast-forwarding loop,
/// i.e. exactly what `run_cycles` executes) and accumulates one aggregate
/// [`StageProfile`], so the snapshot records where the cycle loop spends
/// its time (and future PRs can see which stage an optimisation moved).
/// `skipped` counts the cycles covered by fast-forward jumps.
///
/// Measured in the shape production sweeps run — one simulator reset
/// across all nine policies over the same workload (since PR 8 that shape
/// replays the trace store's retained blocks instead of regenerating, so a
/// per-policy fresh simulator would misattribute generation cost that the
/// fig4–fig7 sweeps never pay).
fn measure_stage_breakdown(cycles: u64) -> StageProfile {
    let profiles: Vec<_> = BENCHES
        .iter()
        .map(|b| spec::profile(b).expect("known benchmark"))
        .collect();
    let mut profile = StageProfile::default();
    let mut sim = Simulator::new(
        SimConfig::baseline(profiles.len()),
        &profiles,
        policies()[0].build(),
        42,
    );
    for policy in policies() {
        sim.reset(&profiles, policy.build(), 42);
        sim.prewarm(20_000);
        sim.run_cycles(2_000);
        sim.run_cycles_profiled(cycles, &mut profile);
    }
    profile
}

/// Mean sweep throughput over the 12 four-thread Table-4 mixes (ILP4,
/// MIX4, MEM4): per mix, one simulator is reset across all nine policies —
/// the fig4–fig7 pattern, and the pattern the trace store's block reuse
/// targets — and the simulated-cycles-per-second over the whole sweep is
/// averaged across mixes. This is the paired-A/B protocol PR 8's
/// acceptance was measured with (`ab_table4`).
fn measure_table4_sweep(cycles: u64) -> f64 {
    let mixes: Vec<_> = WorkloadType::ALL
        .into_iter()
        .flat_map(|kind| workloads_of(kind, 4))
        .collect();
    let mut sum = 0.0;
    for w in &mixes {
        let profiles: Vec<_> = w
            .benchmarks
            .iter()
            .map(|b| spec::profile(b).expect("known benchmark"))
            .collect();
        let mut sim = Simulator::new(
            SimConfig::baseline(profiles.len()),
            &profiles,
            policies()[0].build(),
            42,
        );
        let mut simulated = 0u64;
        let mut elapsed = 0.0f64;
        for policy in policies() {
            sim.reset(&profiles, policy.build(), 42);
            sim.prewarm(20_000);
            sim.run_cycles(2_000);
            let t0 = Instant::now();
            sim.run_cycles(cycles);
            elapsed += t0.elapsed().as_secs_f64();
            simulated += cycles;
        }
        sum += simulated as f64 / elapsed;
    }
    sum / mixes.len() as f64
}

/// Measures sweep setup cost: `runs`-run queues of *very short*
/// same-config simulations (so per-run setup dominates, which is the
/// quantity of interest), once through a reused [`SimSession`] and once
/// through a fresh session (= fresh `Simulator`) per run. Both modes are
/// sampled three times and the best rate kept, the usual guard against
/// one-off scheduler noise. Returns `(session_runs_per_sec,
/// fresh_runs_per_sec)`.
fn measure_sweep_setup(runs: usize) -> (f64, f64) {
    let specs: Vec<RunSpec> = (0..runs)
        .map(|i| {
            let names = [
                "RR", "ICOUNT", "STALL", "FLUSH", "FLUSH++", "DG", "PDG", "SRA", "DCRA",
            ];
            let mut s = RunSpec::new(
                &["art", "gcc", "twolf", "swim"],
                PolicyKind::from_name(names[i % names.len()]).expect("canonical policy"),
            );
            s.seed = 42 + i as u64;
            s.prewarm_insts = 1_000;
            s.warmup_cycles = 100;
            s.measure_cycles = 500;
            s
        })
        .collect();

    let mut session_rate = 0.0f64;
    let mut fresh_rate = 0.0f64;
    for _ in 0..3 {
        let t0 = Instant::now();
        let mut session = SimSession::new();
        for spec in &specs {
            let _ = session.run(spec);
        }
        session_rate = session_rate.max(specs.len() as f64 / t0.elapsed().as_secs_f64());

        let t0 = Instant::now();
        for spec in &specs {
            let _ = SimSession::new().run(spec);
        }
        fresh_rate = fresh_rate.max(specs.len() as f64 / t0.elapsed().as_secs_f64());
    }
    (session_rate, fresh_rate)
}

/// Seed the scenario-family section always benches at, so the rates are
/// comparable across snapshots.
const SCENARIO_SEED: u64 = 42;

/// Scenario-family sweep rates: one small family per profile (expected,
/// stress, adversarial-DCRA), swept under DCRA through a reused
/// [`SimSession`] queue, reported as simulated cycles per wall-clock
/// second. Generated mixes exercise the `profile_overrides` path the
/// registry benchmarks never touch, so their trajectory is tracked
/// separately. Returns `(family_name, mean sim-cycles/s)` per profile.
fn measure_scenario_families(mixes: usize, lengths: ScenarioLengths) -> Vec<(String, f64)> {
    let policy = policy_for_target(PolicyTarget::Dcra);
    [
        FamilySpec::expected(mixes),
        FamilySpec::stress(mixes),
        FamilySpec::adversarial(PolicyTarget::Dcra, mixes),
    ]
    .iter()
    .map(|spec| {
        let family = ScenarioFamily::generate(spec, SCENARIO_SEED).expect("valid family spec");
        let run_specs = specs_for_family(&family, &policy, lengths);
        let mut session = SimSession::new();
        let timed_cycles = (lengths.warmup_cycles + lengths.measure_cycles) * mixes as u64;
        let t0 = Instant::now();
        for run_spec in &run_specs {
            let _ = session.run(run_spec);
        }
        (
            spec.name.clone(),
            timed_cycles as f64 / t0.elapsed().as_secs_f64(),
        )
    })
    .collect()
}

/// Minimal strict JSON well-formedness check (the build has no JSON crate;
/// the trajectory file is precious, so appending to a corrupt one must
/// fail loudly rather than silently salvage lines).
fn validate_json(text: &str) -> Result<(), String> {
    struct P<'a> {
        b: &'a [u8],
        i: usize,
    }
    impl P<'_> {
        fn ws(&mut self) {
            while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
                self.i += 1;
            }
        }
        fn peek(&self) -> Option<u8> {
            self.b.get(self.i).copied()
        }
        fn eat(&mut self, c: u8) -> Result<(), String> {
            if self.peek() == Some(c) {
                self.i += 1;
                Ok(())
            } else {
                Err(format!("expected `{}` at byte {}", c as char, self.i))
            }
        }
        fn value(&mut self) -> Result<(), String> {
            self.ws();
            match self.peek() {
                Some(b'{') => self.object(),
                Some(b'[') => self.array(),
                Some(b'"') => self.string(),
                Some(b't') => self.lit("true"),
                Some(b'f') => self.lit("false"),
                Some(b'n') => self.lit("null"),
                Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
                _ => Err(format!("unexpected byte {}", self.i)),
            }
        }
        fn lit(&mut self, word: &str) -> Result<(), String> {
            if self.b[self.i..].starts_with(word.as_bytes()) {
                self.i += word.len();
                Ok(())
            } else {
                Err(format!("bad literal at byte {}", self.i))
            }
        }
        fn number(&mut self) -> Result<(), String> {
            let start = self.i;
            if self.peek() == Some(b'-') {
                self.i += 1;
            }
            while self
                .peek()
                .is_some_and(|c| c.is_ascii_digit() || b".eE+-".contains(&c))
            {
                self.i += 1;
            }
            if self.i == start {
                return Err(format!("empty number at byte {start}"));
            }
            Ok(())
        }
        fn string(&mut self) -> Result<(), String> {
            self.eat(b'"')?;
            while let Some(c) = self.peek() {
                self.i += 1;
                match c {
                    b'"' => return Ok(()),
                    b'\\' => {
                        self.i += 1; // skip the escaped byte
                    }
                    _ => {}
                }
            }
            Err("unterminated string".to_string())
        }
        fn array(&mut self) -> Result<(), String> {
            self.eat(b'[')?;
            self.ws();
            if self.peek() == Some(b']') {
                self.i += 1;
                return Ok(());
            }
            loop {
                self.value()?;
                self.ws();
                match self.peek() {
                    Some(b',') => self.i += 1,
                    Some(b']') => {
                        self.i += 1;
                        return Ok(());
                    }
                    _ => return Err(format!("bad array at byte {}", self.i)),
                }
            }
        }
        fn object(&mut self) -> Result<(), String> {
            self.eat(b'{')?;
            self.ws();
            if self.peek() == Some(b'}') {
                self.i += 1;
                return Ok(());
            }
            loop {
                self.ws();
                self.string()?;
                self.ws();
                self.eat(b':')?;
                self.value()?;
                self.ws();
                match self.peek() {
                    Some(b',') => self.i += 1,
                    Some(b'}') => {
                        self.i += 1;
                        return Ok(());
                    }
                    _ => return Err(format!("bad object at byte {}", self.i)),
                }
            }
        }
    }
    let mut p = P {
        b: text.as_bytes(),
        i: 0,
    };
    p.value()?;
    p.ws();
    if p.i != p.b.len() {
        return Err(format!("trailing garbage at byte {}", p.i));
    }
    Ok(())
}

/// The stage-attribution keys every *freshly measured* snapshot's
/// `stage_pct` map must carry (mirrors `StageProfile::shares`). A missing
/// key means the tool dropped a stage — the before/after comparisons this
/// file exists for would silently misattribute time, so both `--check`
/// and the append path fail loudly instead.
const STAGE_KEYS: [&str; 8] = [
    "policy", "events", "commit", "issue", "dispatch", "fetch", "forward", "other",
];

/// The keys required of *historical* snapshots: stage attribution shipped
/// in PR 4, but `forward` only exists since PR 5's fast-forward stage, so
/// the PR 4-era entry legitimately lacks it.
const STAGE_KEYS_HISTORIC: [&str; 7] = [
    "policy", "events", "commit", "issue", "dispatch", "fetch", "other",
];

/// Validates that a snapshot line carrying a `stage_pct` object has all
/// of `required` present (lines without `stage_pct` predate stage
/// attribution and pass).
fn validate_stage_keys(snapshot: &str, required: &[&str]) -> Result<(), String> {
    let Some(start) = snapshot.find("\"stage_pct\"") else {
        return Ok(()); // pre-PR-4 snapshots have no stage attribution
    };
    let rest = &snapshot[start..];
    let open = rest
        .find('{')
        .ok_or_else(|| "stage_pct is not an object".to_string())?;
    // The map holds flat numeric values, so the first `}` closes it.
    let close = rest[open..]
        .find('}')
        .ok_or_else(|| "unterminated stage_pct object".to_string())?;
    let body = &rest[open..open + close + 1];
    let missing: Vec<&str> = required
        .iter()
        .filter(|k| !body.contains(&format!("\"{k}\":")))
        .copied()
        .collect();
    if missing.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "stage_pct is missing key(s): {}",
            missing.join(", ")
        ))
    }
}

/// Strips characters that would need JSON escaping; host strings are
/// embedded in hand-built JSON lines.
fn json_safe(s: &str) -> String {
    s.chars()
        .filter(|c| !c.is_control() && *c != '"' && *c != '\\')
        .collect::<String>()
        .trim()
        .to_string()
}

/// Host fingerprint `(cpu_model, governor)`: enough to attribute
/// cross-host baseline drift (PR 4 saw ~3% between hosts) when comparing
/// snapshot entries. Both degrade to `"unknown"` off Linux or in
/// containers that hide the files.
fn host_fingerprint() -> (String, String) {
    let cpu = std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|text| {
            text.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1))
                .map(json_safe)
        })
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string());
    let governor = std::fs::read_to_string("/sys/devices/system/cpu/cpu0/cpufreq/scaling_governor")
        .map(|s| json_safe(&s))
        .ok()
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string());
    (cpu, governor)
}

/// Existing snapshot lines of `path` (one JSON object per line, as written
/// by this tool). Unknown or absent files yield no lines.
fn existing_snapshots(path: &str) -> Vec<String> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .map(str::trim)
        .filter(|l| l.starts_with("{ \"label\""))
        .map(|l| l.trim_end_matches(',').to_string())
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    if let Some(path) = flag("--check") {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("--check: cannot read {path}: {e}"));
        if let Err(e) = validate_json(&text) {
            eprintln!("{path} is not valid JSON: {e}");
            std::process::exit(1);
        }
        for line in existing_snapshots(&path) {
            if let Err(e) = validate_stage_keys(&line, &STAGE_KEYS_HISTORIC) {
                let label = line.split('"').nth(3).unwrap_or("<unlabelled>").to_string();
                eprintln!("{path}: snapshot \"{label}\": {e}");
                std::process::exit(1);
            }
        }
        println!("{path}: valid JSON, stage_pct keys complete");
        return;
    }
    let label = flag("--label").unwrap_or_else(|| "current".to_string());
    let out = flag("--out").unwrap_or_else(|| "BENCH_core.json".to_string());
    // Refuse to rewrite a trajectory file that is no longer valid JSON —
    // appending to it would bake the corruption in.
    if let Ok(existing) = std::fs::read_to_string(&out) {
        if !existing.trim().is_empty() {
            if let Err(e) = validate_json(&existing) {
                eprintln!("refusing to append: {out} is not valid JSON ({e})");
                std::process::exit(1);
            }
        }
    }
    let (cycles, reps) = if smoke { (5_000, 1) } else { (100_000, 3) };

    let mut fields = Vec::new();
    let mut sum = 0.0;
    for policy in policies() {
        let rate = measure(&policy, cycles, reps);
        eprintln!("{:>8}: {:>12.0} cycles/s", policy.name(), rate);
        fields.push(format!("\"{}\": {:.0}", policy.name(), rate));
        sum += rate;
    }
    let mean = sum / fields.len() as f64;
    eprintln!("{:>8}: {:>12.0} cycles/s", "mean", mean);
    let mut mem_fields = Vec::new();
    let mut mem_sum = 0.0;
    for policy in policies() {
        let rate = measure_mix(&policy, &MEM_BENCHES, cycles, reps);
        eprintln!("{:>8}: {:>12.0} cycles/s (MEM mix)", policy.name(), rate);
        mem_fields.push(format!("\"{}\": {:.0}", policy.name(), rate));
        mem_sum += rate;
    }
    let mem_mean = mem_sum / mem_fields.len() as f64;
    eprintln!("{:>8}: {:>12.0} cycles/s (MEM mix)", "mem mean", mem_mean);
    let (session_rate, fresh_rate) = measure_sweep_setup(if smoke { 9 } else { 27 });
    eprintln!(
        "{:>8}: {session_rate:>12.1} runs/s reused session, {fresh_rate:.1} fresh",
        "sweep"
    );
    let table4_rate = measure_table4_sweep(if smoke { 5_000 } else { 100_000 });
    eprintln!(
        "{:>8}: {table4_rate:>12.0} cycles/s (Table-4 4-thread sweep)",
        "table4"
    );
    let profile = measure_stage_breakdown(if smoke { 2_000 } else { 30_000 });
    // `stage_pct` stays a pure share map (sums to ~100); the skipped-cycle
    // fraction is a sibling top-level field.
    let stage_fields: Vec<String> = profile
        .shares()
        .iter()
        .map(|(name, share)| format!("\"{name}\": {:.1}", share * 100.0))
        .collect();
    let skipped_pct = 100.0 * profile.skipped as f64 / profile.cycles.max(1) as f64;
    eprintln!(
        "{:>8}: {}",
        "stages",
        profile
            .shares()
            .iter()
            .map(|(n, s)| format!("{n} {:.0}%", s * 100.0))
            .collect::<Vec<_>>()
            .join(", ")
    );

    let scenario_mixes = if smoke { 2 } else { 4 };
    let scenario_lengths = if smoke {
        ScenarioLengths {
            prewarm_insts: 20_000,
            warmup_cycles: 1_000,
            measure_cycles: 5_000,
        }
    } else {
        ScenarioLengths::measure()
    };
    let scenario = measure_scenario_families(scenario_mixes, scenario_lengths);
    for (name, rate) in &scenario {
        eprintln!("{:>8}: {rate:>12.0} cycles/s (scenario {name})", "family");
    }
    let scenario_fields: Vec<String> = scenario
        .iter()
        .map(|(name, rate)| format!("\"{name}\": {rate:.0}"))
        .collect();

    let (host_cpu, host_governor) = host_fingerprint();
    eprintln!("{:>8}: {host_cpu} (governor {host_governor})", "host");
    let snapshot = format!(
        "{{ \"label\": \"{label}\", \"smoke\": {smoke}, \"measured_cycles\": {cycles}, \
         \"host\": {{ \"cpu\": \"{host_cpu}\", \"governor\": \"{host_governor}\" }}, \
         \"mean_cycles_per_sec\": {mean:.0}, \
         \"mem_mean_cycles_per_sec\": {mem_mean:.0}, \
         \"table4_sweep_cycles_per_sec\": {table4_rate:.0}, \
         \"sweep_session_runs_per_sec\": {session_rate:.1}, \
         \"sweep_fresh_runs_per_sec\": {fresh_rate:.1}, \
         \"skipped_cycles_pct\": {skipped_pct:.1}, \
         \"scenario_families\": {{ \"seed\": {SCENARIO_SEED}, \"mixes\": {scenario_mixes}, \
         \"policy\": \"DCRA\", \"cycles_per_sec\": {{ {} }} }}, \
         \"stage_pct\": {{ {} }}, \
         \"cycles_per_sec\": {{ {} }}, \
         \"mem_cycles_per_sec\": {{ {} }} }}",
        scenario_fields.join(", "),
        stage_fields.join(", "),
        fields.join(", "),
        mem_fields.join(", ")
    );
    // Self-check the freshly built snapshot before it touches the file:
    // a stage renamed or dropped upstream must fail here, not corrupt the
    // trajectory.
    if let Err(e) = validate_stage_keys(&snapshot, &STAGE_KEYS) {
        eprintln!("refusing to record snapshot: {e}");
        std::process::exit(1);
    }
    let mut lines = existing_snapshots(&out);
    lines.retain(|l| !l.contains(&format!("\"label\": \"{label}\"")));
    lines.push(snapshot);

    let body = lines
        .iter()
        .map(|l| format!("  {l}"))
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{ \"schema\": \"bench_core.v1\",\n  \"bench\": \"policies/mix4 {}\",\n  \
         \"note\": \"simulated cycles per wall-clock second, median of {reps} x {cycles}-cycle runs per policy; maintained by scripts/bench_snapshot.sh\",\n  \
         \"snapshots\": [\n{body}\n] }}\n",
        BENCHES.join("+"),
    );
    std::fs::write(&out, json).expect("write snapshot file");
    println!(
        "recorded {} policies into {out} (label \"{label}\")",
        fields.len()
    );
}
