//! Regenerates paper Figure 2 (single-thread speed vs resource share).

#![forbid(unsafe_code)]

use smt_experiments::{fig2, Runner};
fn main() {
    let runner = Runner::new();
    let results = fig2::run(&runner, 80_000).unwrap_or_else(|e| {
        eprintln!("figure 2 sweep failed: {e}");
        std::process::exit(1);
    });
    println!("Figure 2 — fraction of full speed vs % of one resource (perfect DL1)\n");
    println!("{}", fig2::report(&results));
}
