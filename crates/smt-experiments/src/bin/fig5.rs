//! Regenerates paper Figure 5 (DCRA vs ICOUNT/DG/FLUSH++).

#![forbid(unsafe_code)]

use smt_experiments::{fig5, Runner};
fn main() {
    let runner = Runner::new();
    let result = fig5::run(&runner).unwrap_or_else(|e| {
        eprintln!("figure 5 sweep failed: {e}");
        std::process::exit(1);
    });
    println!("Figure 5(a) — IPC throughput per workload class\n");
    println!("{}", fig5::report_throughput(&result));
    println!("\nFigure 5(b) — Hmean improvement of DCRA\n");
    println!("{}", fig5::report_hmean(&result));
    println!(
        "\navg throughput improvement: vs ICOUNT {:+.1}%  vs DG {:+.1}%  vs FLUSH++ {:+.1}%",
        result.avg_throughput_improvement(&result.icount),
        result.avg_throughput_improvement(&result.dg),
        result.avg_throughput_improvement(&result.flushpp),
    );
}
