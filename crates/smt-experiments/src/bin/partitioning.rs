//! Partial-partitioning study: which resources should be statically split?

#![forbid(unsafe_code)]

use smt_experiments::{partitioning, Runner};
fn main() {
    let runner = Runner::new();
    let rows = partitioning::run(&runner, 200_000).unwrap_or_else(|e| {
        eprintln!("partitioning study failed: {e}");
        std::process::exit(1);
    });
    println!("Partial partitioning vs dynamic allocation — MIX2+MEM2 workloads\n");
    println!("{}", partitioning::report(&rows));
}
