//! Partial-partitioning study: which resources should be statically split?
use smt_experiments::{partitioning, Runner};
fn main() {
    let runner = Runner::new();
    let rows = partitioning::run(&runner, 200_000);
    println!("Partial partitioning vs dynamic allocation — MIX2+MEM2 workloads\n");
    println!("{}", partitioning::report(&rows));
}
