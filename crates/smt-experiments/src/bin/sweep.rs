//! Runs one policy over the paper's 36 Table-4 workloads and prints the
//! per-class aggregate metrics (the raw material behind Figures 4 and 5).
//!
//! Usage: `sweep [POLICY]` where POLICY is one of RR, ICOUNT, STALL,
//! FLUSH, FLUSH++, DG, PDG, SRA, DCRA (default DCRA).

#![forbid(unsafe_code)]

use smt_experiments::runner::{PolicyKind, Runner};
use smt_experiments::sweep::{sweep_lengths, sweep_policy};
use smt_sim::SimConfig;

fn main() {
    let arg = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "DCRA".to_string());
    let policy = PolicyKind::from_name(&arg).unwrap_or_else(|| {
        eprintln!("unknown policy `{arg}`; expected RR, ICOUNT, STALL, FLUSH, FLUSH++, DG, PDG, SRA or DCRA");
        std::process::exit(2);
    });

    let runner = Runner::new();
    let config = SimConfig::baseline(2);
    let sweep = sweep_policy(&runner, &policy, &config, &sweep_lengths()).unwrap_or_else(|e| {
        eprintln!("policy sweep failed: {e}");
        std::process::exit(1);
    });

    println!(
        "Policy sweep — {} over the 36 Table-4 workloads\n",
        sweep.policy
    );
    println!(
        "{:<10} {:>6} {:>12} {:>8} {:>12} {:>8}",
        "class", "thrds", "throughput", "hmean", "fetch/commit", "MLP"
    );
    for (threads, kind, m) in &sweep.classes {
        println!(
            "{:<10} {:>6} {:>12.3} {:>8.3} {:>12.3} {:>8.3}",
            format!("{kind:?}"),
            threads,
            m.throughput,
            m.hmean,
            m.fetch_per_commit,
            m.mlp
        );
    }
    let avg = sweep.average();
    println!(
        "\naverage    {:>6} {:>12.3} {:>8.3} {:>12.3} {:>8.3}",
        "-", avg.throughput, avg.hmean, avg.fetch_per_commit, avg.mlp
    );
}
