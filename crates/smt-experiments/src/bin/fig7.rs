//! Regenerates paper Figure 7 (memory latency sensitivity).

#![forbid(unsafe_code)]

use smt_experiments::{fig7, Runner};
fn main() {
    let runner = Runner::new();
    let result = fig7::run(&runner).unwrap_or_else(|e| {
        eprintln!("figure 7 sweep failed: {e}");
        std::process::exit(1);
    });
    println!("Figure 7 — Hmean improvement of DCRA vs memory latency\n");
    println!("{}", fig7::report(&result));
}
