//! Prints paper Table 4 (the 36 multiprogrammed workloads).

#![forbid(unsafe_code)]

use smt_workloads::table4_workloads;
fn main() {
    println!("Table 4 — workloads\n");
    for w in table4_workloads() {
        println!("{w}");
    }
}
