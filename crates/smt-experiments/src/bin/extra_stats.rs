//! Regenerates the Section-5.2 in-text measurements (front-end activity,
//! memory parallelism).

#![forbid(unsafe_code)]

use smt_experiments::{extra, Runner};
fn main() {
    let runner = Runner::new();
    let result = extra::run(&runner).unwrap_or_else(|e| {
        eprintln!("section 5.2 sweep failed: {e}");
        std::process::exit(1);
    });
    println!("Section 5.2 — front-end activity and memory parallelism\n");
    println!("{}", extra::report(&result));
}
