//! Regenerates paper Figure 4 (DCRA vs SRA).

#![forbid(unsafe_code)]

use smt_experiments::{fig4, Runner};
fn main() {
    let runner = Runner::new();
    let result = fig4::run(&runner).unwrap_or_else(|e| {
        eprintln!("figure 4 sweep failed: {e}");
        std::process::exit(1);
    });
    println!("Figure 4 — DCRA improvement over static resource allocation\n");
    println!("{}", fig4::report(&result));
}
