//! Partial-partitioning study (the Section-5.1 discussion).
//!
//! The paper engages with Raasch & Reinhardt's finding that statically
//! partitioning the issue queues barely matters, and argues the win comes
//! from *dynamic, phase-aware* non-uniform allocation. This experiment
//! makes that discussion concrete: it statically partitions each subset of
//! the resource classes (none, queues only, registers only, both) and
//! compares against DCRA's dynamic allocation on the same workloads.

use crate::fault::RunError;
use crate::runner::{PolicyKind, RunSpec, Runner};
use crate::tables::{f3, TextTable};
use smt_isa::{PerResource, ResourceKind};
use smt_metrics::hmean;
use smt_workloads::{workloads_of, Workload, WorkloadType};

/// Which resource classes a variant statically partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Partition {
    /// Nothing partitioned: fully shared pool under ICOUNT.
    None,
    /// Issue queues split `R/T`, registers shared.
    QueuesOnly,
    /// Registers split `R/T`, queues shared.
    RegistersOnly,
    /// Everything split `R/T` (the paper's SRA).
    All,
    /// DCRA's dynamic allocation, for reference.
    Dynamic,
}

impl Partition {
    /// All variants, in presentation order.
    pub const ALL: [Partition; 5] = [
        Partition::None,
        Partition::QueuesOnly,
        Partition::RegistersOnly,
        Partition::All,
        Partition::Dynamic,
    ];

    /// Label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Partition::None => "shared (ICOUNT)",
            Partition::QueuesOnly => "partition IQs",
            Partition::RegistersOnly => "partition regs",
            Partition::All => "partition all (SRA)",
            Partition::Dynamic => "dynamic (DCRA)",
        }
    }

    /// The policy realising this variant on a machine with `threads`
    /// contexts and `totals` resource entries.
    pub fn policy(self, threads: u32, totals: &PerResource<u32>) -> PolicyKind {
        let caps_for = |kinds: &[ResourceKind]| {
            let mut caps = PerResource::<Option<u32>>::default();
            for k in kinds {
                caps[*k] = Some((totals[*k] / threads).max(1));
            }
            caps
        };
        match self {
            Partition::None => PolicyKind::Icount,
            Partition::QueuesOnly => PolicyKind::SraCapped(caps_for(&[
                ResourceKind::IntQueue,
                ResourceKind::FpQueue,
                ResourceKind::LsQueue,
            ])),
            Partition::RegistersOnly => {
                PolicyKind::SraCapped(caps_for(&[ResourceKind::IntRegs, ResourceKind::FpRegs]))
            }
            Partition::All => PolicyKind::Sra,
            Partition::Dynamic => PolicyKind::dcra_for_latency(300),
        }
    }
}

/// One variant's average metrics over the study workloads.
#[derive(Debug, Clone)]
pub struct PartitionRow {
    /// Variant.
    pub partition: Partition,
    /// Mean IPC throughput.
    pub throughput: f64,
    /// Mean Hmean.
    pub hmean: f64,
}

/// The MIX2 + MEM2 workloads (where partitioning choices matter).
pub fn study_workloads() -> Vec<Workload> {
    let mut w = workloads_of(WorkloadType::Mix, 2);
    w.extend(workloads_of(WorkloadType::Mem, 2));
    w
}

/// Runs the study.
pub fn run(runner: &Runner, measure_cycles: u64) -> Result<Vec<PartitionRow>, RunError> {
    let workloads = study_workloads();
    let mut rows = Vec::new();
    for &partition in Partition::ALL.iter() {
        let mut tput = 0.0;
        let mut hm = 0.0;
        for w in &workloads {
            let mut spec = RunSpec::for_workload(
                w,
                partition.policy(
                    w.threads() as u32,
                    &smt_sim::SimConfig::baseline(w.threads()).resource_totals(),
                ),
            );
            spec.measure_cycles = measure_cycles;
            let out = runner.run(&spec)?;
            let singles = runner.single_ipcs(w, &spec.config, &spec)?;
            tput += out.throughput();
            hm += hmean(&out.ipcs(), &singles);
        }
        let n = workloads.len() as f64;
        rows.push(PartitionRow {
            partition,
            throughput: tput / n,
            hmean: hm / n,
        });
    }
    Ok(rows)
}

/// Formats the study.
pub fn report(rows: &[PartitionRow]) -> TextTable {
    let mut t = TextTable::new(&["variant", "throughput", "hmean"]);
    for r in rows {
        t.row_owned(vec![
            r.partition.label().to_string(),
            f3(r.throughput),
            f3(r.hmean),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_produce_distinct_policies() {
        let totals = smt_sim::SimConfig::baseline(2).resource_totals();
        let kinds: Vec<PolicyKind> = Partition::ALL
            .iter()
            .map(|p| p.policy(2, &totals))
            .collect();
        assert_eq!(kinds[0].name(), "ICOUNT");
        assert_eq!(kinds[3].name(), "SRA");
        assert_eq!(kinds[4].name(), "DCRA");
        // Queue-only caps leave registers unlimited.
        if let PolicyKind::SraCapped(caps) = &kinds[1] {
            assert!(caps[ResourceKind::IntQueue].is_some());
            assert!(caps[ResourceKind::IntRegs].is_none());
        } else {
            panic!("queues-only variant must be SraCapped");
        }
    }

    #[test]
    fn study_covers_mix_and_mem() {
        let w = study_workloads();
        assert_eq!(w.len(), 8);
        assert!(w.iter().any(|w| w.kind == WorkloadType::Mix));
        assert!(w.iter().any(|w| w.kind == WorkloadType::Mem));
    }
}
