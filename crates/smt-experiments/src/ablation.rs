//! Ablation studies of DCRA's design choices — the knobs the paper
//! mentions tuning but does not fully tabulate:
//!
//! * the **activity-counter reset value** (§3.4 footnote: "several values
//!   for this parameter ranging from 64 to 8192" — 256 wins),
//! * the **sharing factor** `C` (§3.2/§5.3: `1/A`, `1/(A+4)`, `0`),
//! * the **classification inputs** themselves: what happens if phase
//!   classification is disabled (all threads slow) or activity
//!   classification is disabled (all threads active)?
//! * the **degenerate-case detector** of [`dcra::DcraDc`] (the paper's
//!   future work).

use crate::fault::RunError;
use crate::runner::{PolicyKind, RunSpec, Runner};
use crate::tables::{f3, TextTable};
use dcra::{DcraConfig, DcraDc, DegenerateConfig, SharingConfig, SharingFactor};
use smt_metrics::hmean;
use smt_sim::policy::AnyPolicy;
use smt_sim::Simulator;
use smt_workloads::{spec, workloads_of, Workload, WorkloadType};

/// The MIX workloads used for the ablations (where DCRA's choices matter
/// most: a mixture of fast and slow threads).
pub fn ablation_workloads() -> Vec<Workload> {
    let mut w = workloads_of(WorkloadType::Mix, 2);
    w.extend(workloads_of(WorkloadType::Mem, 2));
    w
}

/// One ablation variant: a label and the policy it builds.
pub struct Variant {
    /// Human-readable label.
    pub label: String,
    /// Policy factory (a fresh policy per run). DCRA variants dispatch
    /// statically; the experimental policies (DCRA-DC, the table-driven
    /// ROM) ride the [`AnyPolicy::Boxed`] escape hatch.
    pub build: Box<dyn Fn() -> AnyPolicy + Sync>,
}

/// The full variant list.
pub fn variants() -> Vec<Variant> {
    let mut v: Vec<Variant> = Vec::new();
    // Activity-counter sweep (paper: 64..8192, 256 best).
    for init in [64u32, 256, 1024, 8192] {
        v.push(Variant {
            label: format!("activity init {init}"),
            build: Box::new(move || {
                AnyPolicy::from(dcra::Dcra::new(DcraConfig {
                    activity_init: init,
                    ..DcraConfig::default()
                }))
            }),
        });
    }
    // Sharing-factor sweep.
    for (label, f) in [
        ("C = 1/A", SharingFactor::Inverse),
        ("C = 1/(A+4)", SharingFactor::InversePlus4),
        ("C = 0", SharingFactor::Zero),
    ] {
        v.push(Variant {
            label: format!("sharing {label}"),
            build: Box::new(move || {
                AnyPolicy::from(dcra::Dcra::new(DcraConfig {
                    sharing: SharingConfig {
                        queue_factor: f,
                        reg_factor: f,
                    },
                    ..DcraConfig::default()
                }))
            }),
        });
    }
    // Degenerate-case detector (future work).
    v.push(Variant {
        label: "DCRA-DC (degenerate detection)".to_string(),
        build: Box::new(|| {
            AnyPolicy::Boxed(Box::new(DcraDc::new(
                DcraConfig::default(),
                DegenerateConfig::default(),
            )))
        }),
    });
    // Table-driven implementation (must match the combinational one).
    v.push(Variant {
        label: "table-driven ROM".to_string(),
        build: Box::new(|| AnyPolicy::Boxed(Box::new(dcra::TableDcra::default()))),
    });
    v
}

/// Result row: variant label, average throughput and Hmean over the
/// ablation workloads.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Variant label.
    pub label: String,
    /// Mean IPC throughput.
    pub throughput: f64,
    /// Mean Hmean.
    pub hmean: f64,
}

/// Runs every variant over the ablation workload set.
pub fn run(runner: &Runner, measure_cycles: u64) -> Result<Vec<AblationRow>, RunError> {
    let workloads = ablation_workloads();
    let lengths = {
        let mut s = RunSpec::new(&["gzip"], PolicyKind::Icount);
        s.measure_cycles = measure_cycles;
        s
    };
    let mut rows = Vec::new();
    for variant in variants() {
        let mut tput = 0.0;
        let mut hm = 0.0;
        for w in &workloads {
            let profiles = w
                .benchmarks
                .iter()
                .map(|b| {
                    spec::profile(b).ok_or_else(|| RunError::UnknownBenchmark { bench: b.clone() })
                })
                .collect::<Result<Vec<_>, RunError>>()?;
            let mut sim = Simulator::new(
                smt_sim::SimConfig::baseline(w.threads()),
                &profiles,
                (variant.build)(),
                42,
            );
            sim.prewarm(400_000);
            sim.run_cycles(30_000);
            sim.reset_stats();
            sim.run_cycles(measure_cycles);
            let r = sim.result();
            let singles = runner.single_ipcs(w, sim.config(), &lengths)?;
            tput += r.throughput();
            hm += hmean(&r.ipcs(), &singles);
        }
        let n = workloads.len() as f64;
        rows.push(AblationRow {
            label: variant.label,
            throughput: tput / n,
            hmean: hm / n,
        });
    }
    Ok(rows)
}

/// Formats the ablation table.
pub fn report(rows: &[AblationRow]) -> TextTable {
    let mut t = TextTable::new(&["variant", "throughput", "hmean"]);
    for r in rows {
        t.row_owned(vec![r.label.clone(), f3(r.throughput), f3(r.hmean)]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_list_covers_all_knobs() {
        let labels: Vec<String> = variants().into_iter().map(|v| v.label).collect();
        assert!(labels.iter().any(|l| l.contains("activity init 256")));
        assert!(labels.iter().any(|l| l.contains("C = 0")));
        assert!(labels.iter().any(|l| l.contains("DCRA-DC")));
        assert!(labels.iter().any(|l| l.contains("ROM")));
        assert_eq!(labels.len(), 9);
    }

    #[test]
    fn ablation_workloads_are_two_threaded() {
        for w in ablation_workloads() {
            assert_eq!(w.threads(), 2);
        }
        assert_eq!(ablation_workloads().len(), 8);
    }
}
