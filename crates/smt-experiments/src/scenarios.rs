//! Scenario-family sweeps: run generated [`ScenarioFamily`] mixes through
//! the policy runner and summarise per-family behaviour.
//!
//! This is the bridge between `smt-workloads`' family generator (which
//! knows nothing about policies or machines) and the [`Runner`]: each
//! [`ScenarioMix`](smt_workloads::ScenarioMix) becomes a [`RunSpec`]
//! via [`RunSpec::for_mix`], the
//! family sweeps through the parallel work queue, and the summary carries
//! the finiteness/throughput numbers the scenario-determinism suite and
//! `bench_snapshot` assert on. [`PolicyTarget`]s (defined down in
//! `smt-workloads` so the adversarial generator can name its victim) are
//! mapped back to [`PolicyKind`]s here by name.

use crate::fault::RunError;
use crate::runner::{PolicyKind, RunSpec, Runner};
use smt_workloads::{FamilySpec, PolicyTarget, ScenarioFamily};

/// Run lengths for scenario sweeps. Families hold tens of mixes, so the
/// default is far shorter than the paper-scale 250k-cycle measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioLengths {
    /// Functional cache warm-up (instructions per thread).
    pub prewarm_insts: u64,
    /// Timed warm-up cycles (discarded).
    pub warmup_cycles: u64,
    /// Measured cycles.
    pub measure_cycles: u64,
}

impl ScenarioLengths {
    /// Smoke-test lengths: enough cycles for every policy to reach steady
    /// state on every mix shape, short enough to sweep a whole family in
    /// seconds.
    pub fn smoke() -> Self {
        ScenarioLengths {
            prewarm_insts: 60_000,
            warmup_cycles: 5_000,
            measure_cycles: 30_000,
        }
    }

    /// Measurement lengths for bench snapshots and degradation checks.
    pub fn measure() -> Self {
        ScenarioLengths {
            prewarm_insts: 120_000,
            warmup_cycles: 10_000,
            measure_cycles: 60_000,
        }
    }

    fn apply(&self, mut spec: RunSpec) -> RunSpec {
        spec.prewarm_insts = self.prewarm_insts;
        spec.warmup_cycles = self.warmup_cycles;
        spec.measure_cycles = self.measure_cycles;
        spec
    }
}

/// Maps a generator-side [`PolicyTarget`] to the runnable [`PolicyKind`].
/// Total by construction — an exhaustive match, so a new target variant
/// is a compile error here rather than a runtime panic; the unit test
/// still pins the name round trip over all nine targets.
pub fn policy_for_target(target: PolicyTarget) -> PolicyKind {
    match target {
        PolicyTarget::RoundRobin => PolicyKind::RoundRobin,
        PolicyTarget::Icount => PolicyKind::Icount,
        PolicyTarget::Stall => PolicyKind::Stall,
        PolicyTarget::Flush => PolicyKind::Flush,
        PolicyTarget::FlushPlusPlus => PolicyKind::FlushPlusPlus,
        PolicyTarget::DataGating => PolicyKind::DataGating,
        PolicyTarget::PredictiveDataGating => PolicyKind::PredictiveDataGating,
        PolicyTarget::Sra => PolicyKind::Sra,
        PolicyTarget::Dcra => PolicyKind::Dcra(dcra::DcraConfig::default()),
    }
}

/// Expands a generated family into one [`RunSpec`] per mix (index order),
/// all under `policy` at the given lengths.
pub fn specs_for_family(
    family: &ScenarioFamily,
    policy: &PolicyKind,
    lengths: ScenarioLengths,
) -> Vec<RunSpec> {
    family
        .mixes()
        .iter()
        .map(|mix| lengths.apply(RunSpec::for_mix(mix, policy.clone())))
        .collect()
}

/// Per-mix outcome digest within a [`FamilySweepSummary`].
#[derive(Debug, Clone, PartialEq)]
pub struct MixOutcome {
    /// The mix's stable id.
    pub id: String,
    /// IPC throughput over the measured window.
    pub throughput: f64,
    /// Per-thread IPCs.
    pub ipcs: Vec<f64>,
}

/// A mix whose run failed inside a family sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct MixFailure {
    /// Index of the mix within the family.
    pub index: usize,
    /// The mix's stable id.
    pub id: String,
    /// Why the run failed.
    pub error: RunError,
}

/// Summary of one family swept under one policy.
#[derive(Debug, Clone, PartialEq)]
pub struct FamilySweepSummary {
    /// Family name.
    pub family: String,
    /// Profile tag (`expected` / `stress` / `adversarial-<POLICY>`).
    pub tag: String,
    /// Name of the policy the family ran under.
    pub policy: String,
    /// Family seed.
    pub seed: u64,
    /// Per-mix outcomes of the completed runs, index order.
    pub mixes: Vec<MixOutcome>,
    /// Mixes whose run failed, index order. Excluded from `mixes` and from
    /// [`FamilySweepSummary::mean_throughput`] — partial results are
    /// explicitly partial.
    pub failures: Vec<MixFailure>,
}

impl FamilySweepSummary {
    /// Arithmetic mean IPC throughput over the family's mixes.
    pub fn mean_throughput(&self) -> f64 {
        if self.mixes.is_empty() {
            return 0.0;
        }
        self.mixes.iter().map(|m| m.throughput).sum::<f64>() / self.mixes.len() as f64
    }

    /// `true` when every throughput and per-thread IPC in the sweep is
    /// finite (no NaN/infinity) — the invariant the full-family smoke
    /// tests assert for all nine policies.
    pub fn all_finite(&self) -> bool {
        self.mixes
            .iter()
            .all(|m| m.throughput.is_finite() && m.ipcs.iter().all(|i| i.is_finite()))
    }
}

/// Sweeps `family` under `policy` on the runner's default worker pool.
pub fn sweep_family(
    runner: &Runner,
    family: &ScenarioFamily,
    policy: &PolicyKind,
    lengths: ScenarioLengths,
) -> FamilySweepSummary {
    let specs = specs_for_family(family, policy, lengths);
    let outcomes = runner.run_all_outcomes(&specs);
    let mut mixes = Vec::with_capacity(outcomes.len());
    let mut failures = Vec::new();
    for (index, (mix, outcome)) in family.mixes().iter().zip(outcomes).enumerate() {
        match outcome.into_stats() {
            Ok(out) => mixes.push(MixOutcome {
                id: mix.id.clone(),
                throughput: out.throughput(),
                ipcs: out.ipcs(),
            }),
            Err(error) => failures.push(MixFailure {
                index,
                id: mix.id.clone(),
                error,
            }),
        }
    }
    FamilySweepSummary {
        family: family.spec().name.clone(),
        tag: family.spec().profile.tag(),
        policy: policy.name().to_string(),
        seed: family.seed(),
        mixes,
        failures,
    }
}

/// Generates and sweeps a family in one call.
///
/// # Errors
///
/// Propagates [`FamilySpec::validate`] failures from generation.
pub fn sweep_spec(
    runner: &Runner,
    spec: &FamilySpec,
    seed: u64,
    policy: &PolicyKind,
    lengths: ScenarioLengths,
) -> Result<FamilySweepSummary, String> {
    let family = ScenarioFamily::generate(spec, seed)?;
    Ok(sweep_family(runner, &family, policy, lengths))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_policy_target_maps_to_a_kind() {
        for target in PolicyTarget::ALL {
            let kind = policy_for_target(target);
            assert_eq!(kind.name(), target.name(), "name round trip");
        }
    }

    #[test]
    fn specs_inherit_mix_seed_and_profiles() {
        let family = ScenarioFamily::generate(&FamilySpec::stress(3), 7).unwrap();
        let specs = specs_for_family(&family, &PolicyKind::Icount, ScenarioLengths::smoke());
        assert_eq!(specs.len(), 3);
        for (spec, mix) in specs.iter().zip(family.mixes()) {
            assert_eq!(spec.seed, mix.seed);
            assert_eq!(spec.benches.len(), mix.threads());
            assert_eq!(spec.config.threads, mix.threads());
            assert!(spec.profile_overrides.is_some());
        }
    }

    #[test]
    fn sweep_produces_finite_metrics() {
        let runner = Runner::new();
        let family = ScenarioFamily::generate(&FamilySpec::expected(2), 5).unwrap();
        let summary = sweep_family(
            &runner,
            &family,
            &PolicyKind::Icount,
            ScenarioLengths::smoke(),
        );
        assert_eq!(summary.mixes.len(), 2);
        assert!(summary.failures.is_empty());
        assert!(summary.all_finite());
        assert!(summary.mean_throughput() > 0.1);
    }
}
