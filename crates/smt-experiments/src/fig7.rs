//! Paper Figure 7: Hmean improvement of DCRA over ICOUNT, FLUSH++, DG and
//! SRA as the main-memory latency changes (100/300/500 cycles; L2 latency
//! 10/20/25), with DCRA's sharing factor re-tuned per latency as in
//! Section 5.3.

use crate::fault::RunError;
use crate::fig6::BASELINES;
use crate::runner::{PolicyKind, Runner};
use crate::sweep::{sensitivity_lengths, sweep_policy_threads};
use crate::tables::{pct, TextTable};
use smt_metrics::improvement_pct;
use smt_sim::SimConfig;

/// `(memory latency, L2 latency)` pairs the paper sweeps.
pub const LATENCIES: [(u32, u32); 3] = [(100, 10), (300, 20), (500, 25)];

/// For each latency: the average Hmean improvement of DCRA over each
/// baseline policy.
#[derive(Debug, Clone)]
pub struct Fig7Result {
    /// `(memory latency, [improvement % per BASELINES entry])`.
    pub rows: Vec<(u32, [f64; 4])>,
}

/// Runs the latency sensitivity sweep.
pub fn run(runner: &Runner) -> Result<Fig7Result, RunError> {
    let lengths = sensitivity_lengths();
    let mut rows = Vec::new();
    for (mem_lat, l2_lat) in LATENCIES {
        let mut config = SimConfig::baseline(2);
        config.mem.memory_latency = mem_lat;
        config.mem.l2.latency = l2_lat;
        // Section 5.3: DCRA's C is re-tuned for each latency.
        let dcra_kind = PolicyKind::dcra_for_latency(mem_lat);
        let dcra = sweep_policy_threads(runner, &dcra_kind, &config, &lengths, &[2])?;
        let mut imps = [0.0f64; 4];
        for (i, base) in BASELINES.iter().enumerate() {
            let sweep = sweep_policy_threads(runner, base, &config, &lengths, &[2])?;
            imps[i] = improvement_pct(dcra.average().hmean, sweep.average().hmean);
        }
        rows.push((mem_lat, imps));
    }
    Ok(Fig7Result { rows })
}

/// Formats the figure: one row per latency, one column per baseline.
pub fn report(result: &Fig7Result) -> TextTable {
    let mut t = TextTable::new(&["latency", "vs ICOUNT", "vs FLUSH++", "vs DG", "vs SRA"]);
    for (lat, imps) in &result.rows {
        t.row_owned(vec![
            lat.to_string(),
            pct(imps[0]),
            pct(imps[1]),
            pct(imps[2]),
            pct(imps[3]),
        ]);
    }
    t
}
