//! Shared machinery for the policy-comparison figures: run a policy over
//! the paper's 36 workloads and aggregate by workload class (the 9
//! ILP/MIX/MEM × 2/3/4 classes of Section 4).

use crate::fault::RunError;
use crate::runner::{PolicyKind, RunSpec, Runner};
use smt_metrics::hmean;
use smt_sim::SimConfig;
use smt_workloads::{table4_workloads, Workload, WorkloadType};

/// Aggregated metrics of one policy on one workload class.
///
/// The all-zero `Default` doubles as the guarded "no data" value: empty
/// classes and empty sweeps aggregate to zeros, never to NaN.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClassMetrics {
    /// Mean IPC throughput over the class's four groups.
    pub throughput: f64,
    /// Mean Hmean over the four groups.
    pub hmean: f64,
    /// Mean fetched-per-committed ratio (front-end activity).
    pub fetch_per_commit: f64,
    /// Mean workload MLP (average overlapping L2 misses).
    pub mlp: f64,
}

/// Results of a policy over all 9 classes, in `(threads, type)` order.
#[derive(Debug, Clone)]
pub struct PolicySweep {
    /// Policy name.
    pub policy: String,
    /// `(threads, type, metrics)` rows for the 9 classes.
    pub classes: Vec<(usize, WorkloadType, ClassMetrics)>,
    /// Workloads whose run failed, as `(spec_index, error)` pairs in spec
    /// order. Failed runs are *excluded* from the class averages above —
    /// a partial result is explicitly partial, never silently averaged in
    /// as zeros.
    pub failures: Vec<(usize, RunError)>,
}

impl PolicySweep {
    /// Metrics of one class, if the sweep covered it. Partial sweeps
    /// (restricted thread counts, filtered workloads, failed runs) simply
    /// lack some classes.
    pub fn try_class(&self, threads: usize, kind: WorkloadType) -> Option<ClassMetrics> {
        self.classes
            .iter()
            .find(|(t, k, _)| *t == threads && *k == kind)
            .map(|(_, _, m)| *m)
    }

    /// Metrics of one class. A class the sweep did not cover yields the
    /// all-zero [`ClassMetrics`] instead of panicking, so figure binaries
    /// render empty bins rather than dying on partial sweeps; use
    /// [`PolicySweep::try_class`] to distinguish "absent" from "zero".
    pub fn class(&self, threads: usize, kind: WorkloadType) -> ClassMetrics {
        self.try_class(threads, kind).unwrap_or_default()
    }

    /// Unweighted average over the covered classes. An empty sweep
    /// averages to the all-zero metrics, never to NaN.
    pub fn average(&self) -> ClassMetrics {
        if self.classes.is_empty() {
            return ClassMetrics::default();
        }
        let n = self.classes.len() as f64;
        ClassMetrics {
            throughput: self
                .classes
                .iter()
                .map(|(_, _, m)| m.throughput)
                .sum::<f64>()
                / n,
            hmean: self.classes.iter().map(|(_, _, m)| m.hmean).sum::<f64>() / n,
            fetch_per_commit: self
                .classes
                .iter()
                .map(|(_, _, m)| m.fetch_per_commit)
                .sum::<f64>()
                / n,
            mlp: self.classes.iter().map(|(_, _, m)| m.mlp).sum::<f64>() / n,
        }
    }
}

/// Runs `policy` over every Table-4 workload on `config` and aggregates per
/// class. `lengths` provides the prewarm/warmup/measure cycle counts.
///
/// Individual workload failures land in [`PolicySweep::failures`] and are
/// skipped by the class averages; the call itself only fails when the
/// single-thread baselines cannot be measured (the registry benchmarks are
/// trusted, so in practice only a broken `config` does that).
pub fn sweep_policy(
    runner: &Runner,
    policy: &PolicyKind,
    config: &SimConfig,
    lengths: &RunSpec,
) -> Result<PolicySweep, RunError> {
    sweep_policy_threads(runner, policy, config, lengths, &[2, 3, 4])
}

/// Like [`sweep_policy`], restricted to the given thread counts. The
/// sensitivity figures (6 and 7) use the 2-thread subset so the full
/// register/latency sweeps stay tractable on one core; the class structure
/// is unchanged.
pub fn sweep_policy_threads(
    runner: &Runner,
    policy: &PolicyKind,
    config: &SimConfig,
    lengths: &RunSpec,
    thread_counts: &[usize],
) -> Result<PolicySweep, RunError> {
    let workloads: Vec<Workload> = table4_workloads()
        .into_iter()
        .filter(|w| thread_counts.contains(&w.threads()))
        .collect();
    let specs: Vec<RunSpec> = workloads
        .iter()
        .map(|w| {
            let mut s = RunSpec::for_workload(w, policy.clone()).with_config(config.clone());
            s.prewarm_insts = lengths.prewarm_insts;
            s.warmup_cycles = lengths.warmup_cycles;
            s.measure_cycles = lengths.measure_cycles;
            s
        })
        .collect();

    // Single-thread baselines first (cached across sweeps), so the
    // streaming sink below stays cheap under its lock.
    let singles: Vec<Vec<f64>> = workloads
        .iter()
        .map(|w| runner.single_ipcs(w, config, lengths))
        .collect::<Result<_, _>>()?;

    // Stream outcomes into per-spec scalar metrics: the heavy 36-run
    // result vector is never materialised and metric extraction overlaps
    // the remaining simulations, but the class reduction below still sums
    // in fixed spec order — f64 addition is not associative, and a
    // completion-order sum would make identical sweeps differ in the last
    // ulp across runs.
    #[derive(Clone, Copy)]
    struct SpecMetrics {
        tput: f64,
        hm: f64,
        fpc: f64,
        mlp: f64,
    }
    let mut per_spec: Vec<Option<SpecMetrics>> = vec![None; specs.len()];
    let mut failures: Vec<(usize, RunError)> = Vec::new();
    runner.run_streaming(&specs, |i, outcome| match outcome.into_stats() {
        Ok(out) => {
            per_spec[i] = Some(SpecMetrics {
                tput: out.throughput(),
                hm: hmean(&out.ipcs(), &singles[i]),
                fpc: out.result.total_fetched() as f64 / out.result.total_committed().max(1) as f64,
                mlp: smt_metrics::workload_mlp(&out.result),
            });
        }
        Err(error) => failures.push((i, error)),
    });
    failures.sort_by_key(|(i, _)| *i);

    let classes = thread_counts
        .iter()
        .flat_map(|&t| WorkloadType::ALL.iter().map(move |&k| (t, k)))
        .filter_map(|(threads, kind)| {
            let group: Vec<&SpecMetrics> = workloads
                .iter()
                .zip(&per_spec)
                .filter(|(w, _)| w.threads() == threads && w.kind == kind)
                .filter_map(|(_, m)| m.as_ref())
                .collect();
            // A class with no surviving workloads — partial sweeps, or
            // every member failed — is omitted entirely: no 0/0 = NaN
            // row, and no all-zero placeholder silently dragging
            // `average()` down. `try_class` reports the absence,
            // `class()` renders it as an empty (zero) bin.
            if group.is_empty() {
                return None;
            }
            let n = group.len() as f64;
            Some((
                threads,
                kind,
                ClassMetrics {
                    throughput: group.iter().map(|m| m.tput).sum::<f64>() / n,
                    hmean: group.iter().map(|m| m.hm).sum::<f64>() / n,
                    fetch_per_commit: group.iter().map(|m| m.fpc).sum::<f64>() / n,
                    mlp: group.iter().map(|m| m.mlp).sum::<f64>() / n,
                },
            ))
        })
        .collect();
    Ok(PolicySweep {
        policy: policy.name().to_string(),
        classes,
        failures,
    })
}

/// Standard lengths for the figure sweeps (shorter than Table-3
/// calibration; 36 workloads × several policies must finish in minutes).
pub fn sweep_lengths() -> RunSpec {
    let mut s = RunSpec::new(&["gzip"], PolicyKind::Icount);
    s.prewarm_insts = 400_000;
    s.warmup_cycles = 30_000;
    s.measure_cycles = 250_000;
    s
}

/// Reduced lengths for the multi-point sensitivity sweeps (Figures 6/7
/// run 15 policy sweeps each).
pub fn sensitivity_lengths() -> RunSpec {
    let mut s = sweep_lengths();
    s.prewarm_insts = 300_000;
    s.warmup_cycles = 20_000;
    s.measure_cycles = 150_000;
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sweep_averages_to_zero_not_nan() {
        let sweep = PolicySweep {
            policy: "EMPTY".into(),
            classes: Vec::new(),
            failures: Vec::new(),
        };
        let avg = sweep.average();
        assert_eq!(avg.throughput, 0.0);
        assert_eq!(avg.hmean, 0.0);
        assert_eq!(avg.fetch_per_commit, 0.0);
        assert_eq!(avg.mlp, 0.0);
        assert!(avg.throughput.is_finite(), "no NaN rows from empty sweeps");
    }

    #[test]
    fn missing_class_yields_guarded_zero_metrics() {
        // A partial sweep (2-thread only) queried for a 4-thread bin must
        // not panic; it renders as an all-zero bin.
        let sweep = PolicySweep {
            policy: "PARTIAL".into(),
            classes: vec![(
                2,
                WorkloadType::Mem,
                ClassMetrics {
                    throughput: 1.5,
                    hmean: 0.4,
                    fetch_per_commit: 1.2,
                    mlp: 2.0,
                },
            )],
            failures: Vec::new(),
        };
        assert!(sweep.try_class(4, WorkloadType::Ilp).is_none());
        let absent = sweep.class(4, WorkloadType::Ilp);
        assert_eq!(absent.throughput, 0.0);
        assert!(absent.hmean.is_finite());
        let present = sweep.class(2, WorkloadType::Mem);
        assert_eq!(present.throughput, 1.5);
        let avg = sweep.average();
        assert!((avg.throughput - 1.5).abs() < 1e-12);
    }

    #[test]
    fn partial_thread_sweep_has_finite_rows() {
        // Restricting thread counts produces classes with no workloads in
        // some bins of custom filters; every row must stay finite.
        let runner = Runner::new();
        let mut lengths = sweep_lengths();
        lengths.prewarm_insts = 2_000;
        lengths.warmup_cycles = 200;
        lengths.measure_cycles = 1_000;
        let sweep = sweep_policy_threads(
            &runner,
            &PolicyKind::Icount,
            &SimConfig::baseline(2),
            &lengths,
            &[2],
        )
        .expect("baselines must measure");
        assert_eq!(sweep.classes.len(), 3, "three classes for one thread count");
        assert!(sweep.failures.is_empty());
        for (_, _, m) in &sweep.classes {
            assert!(m.throughput.is_finite());
            assert!(m.hmean.is_finite());
            assert!(m.fetch_per_commit.is_finite());
            assert!(m.mlp.is_finite());
        }
        assert!(sweep.average().throughput.is_finite());
    }

    #[test]
    fn sweep_aggregates_nine_classes() {
        // Tiny lengths: structure test, not a measurement.
        let runner = Runner::new();
        let mut lengths = sweep_lengths();
        lengths.prewarm_insts = 5_000;
        lengths.warmup_cycles = 500;
        lengths.measure_cycles = 2_000;
        let sweep = sweep_policy(
            &runner,
            &PolicyKind::Icount,
            &SimConfig::baseline(2),
            &lengths,
        )
        .expect("baselines must measure");
        assert_eq!(sweep.classes.len(), 9);
        assert!(sweep.failures.is_empty());
        let avg = sweep.average();
        assert!(avg.throughput > 0.0);
        let m = sweep.class(2, WorkloadType::Mem);
        assert!(m.throughput > 0.0);
    }
}
