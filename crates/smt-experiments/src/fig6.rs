//! Paper Figure 6: Hmean improvement of DCRA over ICOUNT, FLUSH++, DG and
//! SRA as the physical register pool grows (320/352/384 registers,
//! 80-entry queues, 300-cycle memory).

use crate::fault::RunError;
use crate::runner::{PolicyKind, Runner};
use crate::sweep::{sensitivity_lengths, sweep_policy_threads};
use crate::tables::{pct, TextTable};
use smt_metrics::improvement_pct;
use smt_sim::SimConfig;

/// The register-pool sizes the paper sweeps.
pub const REGISTER_SIZES: [u32; 3] = [320, 352, 384];

/// Baselines compared against, in the paper's column order.
pub const BASELINES: [PolicyKind; 4] = [
    PolicyKind::Icount,
    PolicyKind::FlushPlusPlus,
    PolicyKind::DataGating,
    PolicyKind::Sra,
];

/// For each register size: the average Hmean improvement of DCRA over each
/// baseline policy (all 36 workloads).
#[derive(Debug, Clone)]
pub struct Fig6Result {
    /// `(regs, [improvement % per BASELINES entry])`.
    pub rows: Vec<(u32, [f64; 4])>,
}

/// Runs the register-size sensitivity sweep.
pub fn run(runner: &Runner) -> Result<Fig6Result, RunError> {
    let lengths = sensitivity_lengths();
    let mut rows = Vec::new();
    for regs in REGISTER_SIZES {
        let mut config = SimConfig::baseline(2);
        config.phys_regs = regs;
        let dcra = sweep_policy_threads(
            runner,
            &PolicyKind::dcra_for_latency(300),
            &config,
            &lengths,
            &[2],
        )?;
        let mut imps = [0.0f64; 4];
        for (i, base) in BASELINES.iter().enumerate() {
            let sweep = sweep_policy_threads(runner, base, &config, &lengths, &[2])?;
            imps[i] = improvement_pct(dcra.average().hmean, sweep.average().hmean);
        }
        rows.push((regs, imps));
    }
    Ok(Fig6Result { rows })
}

/// Formats the figure: one row per register size, one column per baseline.
pub fn report(result: &Fig6Result) -> TextTable {
    let mut t = TextTable::new(&["regs", "vs ICOUNT", "vs FLUSH++", "vs DG", "vs SRA"]);
    for (regs, imps) in &result.rows {
        t.row_owned(vec![
            regs.to_string(),
            pct(imps[0]),
            pct(imps[1]),
            pct(imps[2]),
            pct(imps[3]),
        ]);
    }
    t
}
