//! Chaos harness: deterministic fault injection for the experiment
//! engine.
//!
//! A [`FaultPlan`] takes a clean batch of [`RunSpec`]s and sabotages a
//! seeded, reproducible subset of them — panicking policy wrappers,
//! invalid machine configurations, unknown benchmarks, budget-exhausting
//! workloads and sink poisoning — so soak tests can push hundreds of
//! mixed good/faulty runs through
//! [`Runner::run_isolated`](crate::runner::Runner::run_isolated) and
//! assert that every *good* run stays bit-identical to a fault-free
//! sweep while every fault surfaces as a typed
//! [`RunError`](crate::fault::RunError).
//!
//! Fault assignment is a pure function of `(seed, index)` via a
//! splitmix64 hash, so the same plan instruments the same specs on every
//! machine and worker count.

use crate::fault::InjectedFault;
use crate::runner::RunSpec;
use smt_sim::policy::{AnyPolicy, CycleView, MissResponse, Policy};
use smt_sim::RunBudget;
use std::sync::Once;

/// Marker embedded in every panic message the chaos harness produces.
/// [`silence_chaos_panics`] recognises it to keep expected panics out of
/// test output, and soak assertions use it to tell injected panics from
/// genuine bugs.
pub const CHAOS_MARKER: &str = "chaos-injected";

/// The kinds of sabotage a [`FaultPlan`] can assign to a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The policy panics on every attempt → the run fails
    /// [`RunError::Panicked`](crate::fault::RunError::Panicked).
    Panic,
    /// The policy panics on the first attempt only → with retries enabled
    /// the run completes on attempt 2, bit-identical to a clean run.
    TransientPanic,
    /// The spec's machine configuration is invalidated (zero-sized fetch
    /// queue) → [`RunError::InvalidSpec`](crate::fault::RunError::InvalidSpec).
    InvalidConfig,
    /// The first benchmark name is replaced with one outside the registry
    /// → [`RunError::UnknownBenchmark`](crate::fault::RunError::UnknownBenchmark).
    UnknownBenchmark,
    /// A one-cycle livelock window is attached → trips before the machine
    /// can possibly commit →
    /// [`RunError::Livelock`](crate::fault::RunError::Livelock).
    Livelock,
    /// A cycle cap far below the spec's warmup length is attached →
    /// [`RunError::CycleBudget`](crate::fault::RunError::CycleBudget).
    CycleCap,
    /// The spec itself is untouched; the *sink callback* is expected to
    /// panic for this index (the harness's caller arranges it via
    /// [`FaultPlan::poisons_sink`]) → the index lands in
    /// [`EngineReport::sink_panics`](crate::fault::EngineReport::sink_panics).
    PoisonedSink,
}

const ALL_KINDS: [FaultKind; 7] = [
    FaultKind::Panic,
    FaultKind::TransientPanic,
    FaultKind::InvalidConfig,
    FaultKind::UnknownBenchmark,
    FaultKind::Livelock,
    FaultKind::CycleCap,
    FaultKind::PoisonedSink,
];

/// Deterministic per-index fault assignment over a batch of runs.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    faults: Vec<Option<FaultKind>>,
}

/// splitmix64 — tiny, seedable, and already the idiom used by the
/// workload generator, so the chaos plan stays dependency-free.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// Assign faults to roughly `fault_share` (0.0–1.0) of `runs` run
    /// indices, cycling uniformly over every [`FaultKind`]. Assignment is
    /// a pure function of `(seed, index)`.
    pub fn seeded(seed: u64, runs: usize, fault_share: f64) -> Self {
        let share = fault_share.clamp(0.0, 1.0);
        let faults = (0..runs)
            .map(|i| {
                let h = splitmix64(seed ^ splitmix64(i as u64));
                // Top 53 bits → uniform in [0, 1).
                let x = (h >> 11) as f64 / (1u64 << 53) as f64;
                if x < share {
                    Some(ALL_KINDS[(h % ALL_KINDS.len() as u64) as usize])
                } else {
                    None
                }
            })
            .collect();
        FaultPlan { faults }
    }

    /// The fault assigned to run `i`, if any.
    pub fn fault_at(&self, i: usize) -> Option<FaultKind> {
        self.faults.get(i).copied().flatten()
    }

    /// Number of runs carrying a fault.
    pub fn fault_count(&self) -> usize {
        self.faults.iter().filter(|f| f.is_some()).count()
    }

    /// `true` when the sink callback is expected to panic for run `i`.
    pub fn poisons_sink(&self, i: usize) -> bool {
        self.fault_at(i) == Some(FaultKind::PoisonedSink)
    }

    /// Apply the plan: return a copy of `specs` with each planned fault
    /// baked into its spec. [`FaultKind::PoisonedSink`] leaves the spec
    /// untouched — that fault lives in the caller's sink.
    pub fn instrument(&self, specs: &[RunSpec]) -> Vec<RunSpec> {
        specs
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                let mut s = spec.clone();
                match self.fault_at(i) {
                    None | Some(FaultKind::PoisonedSink) => {}
                    Some(FaultKind::Panic) => {
                        s.fault = Some(InjectedFault::PanicAtCycle {
                            at_cycle: 64,
                            fail_attempts: u32::MAX,
                        });
                    }
                    Some(FaultKind::TransientPanic) => {
                        s.fault = Some(InjectedFault::PanicAtCycle {
                            at_cycle: 64,
                            fail_attempts: 1,
                        });
                    }
                    Some(FaultKind::InvalidConfig) => {
                        s.config.fetch_queue = 0;
                    }
                    Some(FaultKind::UnknownBenchmark) => {
                        s.benches[0] = "__chaos_unknown__".to_string();
                        s.profile_overrides = None;
                    }
                    Some(FaultKind::Livelock) => {
                        // A fresh machine cannot commit by cycle 1, so a
                        // one-cycle window trips deterministically.
                        s.budget = Some(RunBudget {
                            max_cycles: None,
                            livelock_window: Some(1),
                        });
                    }
                    Some(FaultKind::CycleCap) => {
                        s.budget = Some(RunBudget {
                            max_cycles: Some(50),
                            livelock_window: None,
                        });
                    }
                }
                s
            })
            .collect()
    }
}

/// A [`Policy`] wrapper that behaves exactly like its inner policy until
/// the simulation clock reaches `at_cycle`, then panics with a
/// [`CHAOS_MARKER`]-tagged message. Used by the engine to realise
/// [`InjectedFault::PanicAtCycle`].
#[derive(Debug)]
pub struct ChaosPolicy {
    inner: AnyPolicy,
    at_cycle: u64,
}

impl ChaosPolicy {
    /// Wrap `inner` to panic at (or after — fast-forward may skip the
    /// exact cycle) `at_cycle`.
    pub fn new(inner: AnyPolicy, at_cycle: u64) -> Self {
        ChaosPolicy { inner, at_cycle }
    }
}

impl Policy for ChaosPolicy {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn begin_cycle(&mut self, view: &CycleView) {
        if view.now >= self.at_cycle {
            panic!(
                "{CHAOS_MARKER}: policy {} detonated at cycle {}",
                self.inner.name(),
                view.now
            );
        }
        self.inner.begin_cycle(view);
    }

    fn fetch_order(&mut self, view: &CycleView, order: &mut Vec<smt_isa::ThreadId>) {
        self.inner.fetch_order(view, order);
    }

    fn fetch_gate(&mut self, t: smt_isa::ThreadId, view: &CycleView) -> bool {
        self.inner.fetch_gate(t, view)
    }

    fn may_dispatch(
        &self,
        t: smt_isa::ThreadId,
        queue: smt_isa::QueueKind,
        dest: Option<smt_isa::RegClass>,
        view: &CycleView,
    ) -> bool {
        self.inner.may_dispatch(t, queue, dest, view)
    }

    fn on_fetch_inst(&mut self, t: smt_isa::ThreadId, inst: &smt_isa::PackedInst) {
        self.inner.on_fetch_inst(t, inst);
    }

    fn on_dispatch(
        &mut self,
        t: smt_isa::ThreadId,
        queue: smt_isa::QueueKind,
        dest: Option<smt_isa::RegClass>,
    ) {
        self.inner.on_dispatch(t, queue, dest);
    }

    fn on_l1d_miss(&mut self, t: smt_isa::ThreadId, pc: u64) {
        self.inner.on_l1d_miss(t, pc);
    }

    fn on_l2_miss_detected(&mut self, t: smt_isa::ThreadId, view: &CycleView) -> MissResponse {
        self.inner.on_l2_miss_detected(t, view)
    }

    fn on_miss_resolved(&mut self, t: smt_isa::ThreadId, pc: u64, level: smt_mem::HitLevel) {
        self.inner.on_miss_resolved(t, pc, level);
    }

    fn on_load_complete(&mut self, t: smt_isa::ThreadId, pc: u64, l1_missed: bool) {
        self.inner.on_load_complete(t, pc, l1_missed);
    }

    fn on_squash_inst(&mut self, t: smt_isa::ThreadId, inst: &smt_isa::PackedInst) {
        self.inner.on_squash_inst(t, inst);
    }

    fn on_idle_cycles(&mut self, n: u64, view: &CycleView) -> u64 {
        // Never fast-forward past the detonation cycle, or the panic
        // could land at a run-dependent later cycle.
        let skip = self.inner.on_idle_cycles(n, view);
        let remaining = self.at_cycle.saturating_sub(view.now);
        skip.min(remaining)
    }

    fn wants_fast_forward(&self) -> bool {
        self.inner.wants_fast_forward()
    }

    fn wants_squash_inst(&self) -> bool {
        self.inner.wants_squash_inst()
    }

    fn wants_dispatch_view(&self) -> bool {
        self.inner.wants_dispatch_view()
    }

    fn wants_dispatch_gate(&self) -> bool {
        self.inner.wants_dispatch_gate()
    }

    fn wants_progress_counters(&self) -> bool {
        self.inner.wants_progress_counters()
    }
}

/// Install a process-global panic hook that suppresses the default
/// backtrace/location print for [`CHAOS_MARKER`]-tagged panics while
/// forwarding every other panic to the previously installed hook.
///
/// Chaos tests inject dozens of *expected* panics; without this, `cargo
/// test` output drowns in scary-but-harmless panic traces. Installation
/// happens once per process and is idempotent.
pub fn silence_chaos_panics() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let message = payload
                .downcast_ref::<&str>()
                .copied()
                .or_else(|| payload.downcast_ref::<String>().map(String::as_str));
            match message {
                Some(m) if m.contains(CHAOS_MARKER) => {}
                _ => previous(info),
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{PolicyKind, RunSpec};
    use smt_sim::policy::ThreadView;

    #[test]
    fn plans_are_deterministic_and_cover_all_kinds() {
        let a = FaultPlan::seeded(7, 400, 0.35);
        let b = FaultPlan::seeded(7, 400, 0.35);
        for i in 0..400 {
            assert_eq!(a.fault_at(i), b.fault_at(i));
        }
        // Share lands in a sane band around the request.
        let share = a.fault_count() as f64 / 400.0;
        assert!((0.25..=0.45).contains(&share), "share {share}");
        // Every kind shows up at this scale.
        for kind in ALL_KINDS {
            assert!(
                (0..400).any(|i| a.fault_at(i) == Some(kind)),
                "{kind:?} never assigned"
            );
        }
    }

    #[test]
    fn different_seeds_give_different_plans() {
        let a = FaultPlan::seeded(1, 200, 0.35);
        let b = FaultPlan::seeded(2, 200, 0.35);
        assert!((0..200).any(|i| a.fault_at(i) != b.fault_at(i)));
    }

    #[test]
    fn instrument_bakes_faults_into_specs() {
        let clean: Vec<RunSpec> = (0..ALL_KINDS.len())
            .map(|i| {
                let mut s = RunSpec::new(&["gzip", "mcf"], PolicyKind::Icount);
                s.seed = 42 + i as u64;
                s
            })
            .collect();
        // A plan that assigns each kind to one index, hand-rolled.
        let mut plan = FaultPlan {
            faults: ALL_KINDS.iter().copied().map(Some).collect(),
        };
        plan.faults[0] = Some(FaultKind::Panic);
        let specs = plan.instrument(&clean);
        assert!(matches!(
            specs[0].fault,
            Some(InjectedFault::PanicAtCycle {
                fail_attempts: u32::MAX,
                ..
            })
        ));
        let transient = ALL_KINDS
            .iter()
            .position(|k| *k == FaultKind::TransientPanic)
            .unwrap();
        assert!(matches!(
            specs[transient].fault,
            Some(InjectedFault::PanicAtCycle {
                fail_attempts: 1,
                ..
            })
        ));
        let invalid = ALL_KINDS
            .iter()
            .position(|k| *k == FaultKind::InvalidConfig)
            .unwrap();
        assert_eq!(specs[invalid].config.fetch_queue, 0);
        let unknown = ALL_KINDS
            .iter()
            .position(|k| *k == FaultKind::UnknownBenchmark)
            .unwrap();
        assert_eq!(specs[unknown].benches[0], "__chaos_unknown__");
        let livelock = ALL_KINDS
            .iter()
            .position(|k| *k == FaultKind::Livelock)
            .unwrap();
        assert_eq!(
            specs[livelock].budget.and_then(|b| b.livelock_window),
            Some(1)
        );
        let cap = ALL_KINDS
            .iter()
            .position(|k| *k == FaultKind::CycleCap)
            .unwrap();
        assert_eq!(specs[cap].budget.and_then(|b| b.max_cycles), Some(50));
        let sink = ALL_KINDS
            .iter()
            .position(|k| *k == FaultKind::PoisonedSink)
            .unwrap();
        assert_eq!(specs[sink], clean[sink], "sink poisoning leaves the spec");
        assert!(plan.poisons_sink(sink));
    }

    #[test]
    fn chaos_policy_delegates_until_detonation() {
        let view = |now: u64| {
            CycleView::new(
                now,
                smt_isa::PerResource::filled(80),
                &vec![ThreadView::default(); 2],
            )
        };
        let mut p = ChaosPolicy::new(AnyPolicy::from(smt_policies::Icount), 100);
        assert_eq!(p.name(), "ICOUNT");
        p.begin_cycle(&view(99)); // one cycle short: no panic
        let mut order = Vec::new();
        p.fetch_order(&view(99), &mut order);
        assert_eq!(order.len(), 2);
        // Fast-forward is clamped so the detonation cycle is never
        // skipped: from cycle 99 it may advance at most to cycle 100.
        assert!(p.on_idle_cycles(1_000, &view(99)) <= 1);
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.begin_cycle(&view(100));
        }));
        let payload = panicked.expect_err("must detonate at 100");
        let msg = payload.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains(CHAOS_MARKER));
    }
}
