//! Paper Figure 4: throughput and Hmean improvement of DCRA over static
//! resource allocation (SRA), per workload class.

use crate::fault::RunError;
use crate::runner::{PolicyKind, Runner};
use crate::sweep::{sweep_lengths, sweep_policy, PolicySweep};
use crate::tables::{pct, TextTable};
use smt_metrics::improvement_pct;
use smt_sim::SimConfig;
use smt_workloads::WorkloadType;

/// Both sweeps of the comparison.
#[derive(Debug, Clone)]
pub struct Fig4Result {
    /// DCRA over all 36 workloads.
    pub dcra: PolicySweep,
    /// SRA over all 36 workloads.
    pub sra: PolicySweep,
}

impl Fig4Result {
    /// `(threads, kind, throughput improvement %, hmean improvement %)`.
    pub fn improvements(&self) -> Vec<(usize, WorkloadType, f64, f64)> {
        self.dcra
            .classes
            .iter()
            .map(|(t, k, d)| {
                let s = self.sra.class(*t, *k);
                (
                    *t,
                    *k,
                    improvement_pct(d.throughput, s.throughput),
                    improvement_pct(d.hmean, s.hmean),
                )
            })
            .collect()
    }

    /// Average `(throughput %, hmean %)` improvement (paper: ~7%, ~8%).
    pub fn average_improvement(&self) -> (f64, f64) {
        let rows = self.improvements();
        let n = rows.len() as f64;
        (
            rows.iter().map(|r| r.2).sum::<f64>() / n,
            rows.iter().map(|r| r.3).sum::<f64>() / n,
        )
    }
}

/// Runs DCRA and SRA over the full Table-4 workload set.
pub fn run(runner: &Runner) -> Result<Fig4Result, RunError> {
    let config = SimConfig::baseline(2);
    let lengths = sweep_lengths();
    let dcra = sweep_policy(
        runner,
        &PolicyKind::dcra_for_latency(300),
        &config,
        &lengths,
    )?;
    let sra = sweep_policy(runner, &PolicyKind::Sra, &config, &lengths)?;
    Ok(Fig4Result { dcra, sra })
}

/// Formats the figure as a table of improvements per class.
pub fn report(result: &Fig4Result) -> TextTable {
    let mut t = TextTable::new(&["class", "DCRA tput", "SRA tput", "tput Δ", "hmean Δ"]);
    for (threads, kind, tput_imp, hmean_imp) in result.improvements() {
        let d = result.dcra.class(threads, kind);
        let s = result.sra.class(threads, kind);
        t.row_owned(vec![
            format!("{kind}{threads}"),
            format!("{:.2}", d.throughput),
            format!("{:.2}", s.throughput),
            pct(tput_imp),
            pct(hmean_imp),
        ]);
    }
    let (at, ah) = result.average_improvement();
    t.row_owned(vec![
        "avg".to_string(),
        String::new(),
        String::new(),
        pct(at),
        pct(ah),
    ]);
    t
}
