//! Section 5.2's in-text measurements: FLUSH++'s extra front-end activity
//! relative to DCRA, and DCRA's memory-parallelism (overlapping L2 miss)
//! advantage.

use crate::fault::RunError;
use crate::runner::{PolicyKind, Runner};
use crate::sweep::{sweep_lengths, sweep_policy, PolicySweep};
use crate::tables::{f2, pct, TextTable};
use smt_metrics::improvement_pct;
use smt_sim::SimConfig;
use smt_workloads::WorkloadType;

/// Front-end activity and MLP comparison between FLUSH++ and DCRA.
#[derive(Debug, Clone)]
pub struct ExtraResult {
    /// FLUSH++ sweep.
    pub flushpp: PolicySweep,
    /// DCRA sweep.
    pub dcra: PolicySweep,
}

impl ExtraResult {
    /// Extra fetched-per-committed work of FLUSH++ relative to DCRA, in
    /// percent (paper: +108% at 300-cycle latency).
    pub fn extra_frontend_pct(&self) -> f64 {
        improvement_pct(
            self.flushpp.average().fetch_per_commit,
            self.dcra.average().fetch_per_commit,
        )
    }

    /// MLP increase of DCRA over FLUSH++ per workload type, in percent
    /// (paper: ILP +22%, MIX +32%, MEM +0.5%; avg +18%).
    pub fn mlp_increase_by_type(&self) -> Vec<(WorkloadType, f64)> {
        WorkloadType::ALL
            .iter()
            .map(|&kind| {
                let avg = |s: &PolicySweep| {
                    let vals: Vec<f64> = s
                        .classes
                        .iter()
                        .filter(|(_, k, _)| *k == kind)
                        .map(|(_, _, m)| m.mlp)
                        .collect();
                    vals.iter().sum::<f64>() / vals.len() as f64
                };
                (kind, improvement_pct(avg(&self.dcra), avg(&self.flushpp)))
            })
            .collect()
    }
}

/// Runs FLUSH++ and DCRA over the full workload set.
pub fn run(runner: &Runner) -> Result<ExtraResult, RunError> {
    let config = SimConfig::baseline(2);
    let lengths = sweep_lengths();
    Ok(ExtraResult {
        flushpp: sweep_policy(runner, &PolicyKind::FlushPlusPlus, &config, &lengths)?,
        dcra: sweep_policy(
            runner,
            &PolicyKind::dcra_for_latency(300),
            &config,
            &lengths,
        )?,
    })
}

/// Formats both in-text measurements.
pub fn report(result: &ExtraResult) -> TextTable {
    let mut t = TextTable::new(&["metric", "FLUSH++", "DCRA", "Δ"]);
    t.row_owned(vec![
        "fetched / committed".to_string(),
        f2(result.flushpp.average().fetch_per_commit),
        f2(result.dcra.average().fetch_per_commit),
        pct(result.extra_frontend_pct()),
    ]);
    for (kind, imp) in result.mlp_increase_by_type() {
        let avg_mlp = |s: &PolicySweep| {
            let vals: Vec<f64> = s
                .classes
                .iter()
                .filter(|(_, k, _)| *k == kind)
                .map(|(_, _, m)| m.mlp)
                .collect();
            vals.iter().sum::<f64>() / vals.len() as f64
        };
        t.row_owned(vec![
            format!("MLP ({kind})"),
            f2(avg_mlp(&result.flushpp)),
            f2(avg_mlp(&result.dcra)),
            pct(imp),
        ]);
    }
    t
}
