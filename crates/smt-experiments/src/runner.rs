//! Simulation runner: builds simulators from declarative specs, runs them
//! (in parallel across OS threads, each worker owning one reusable
//! [`SimSession`]) and caches single-thread baselines for the Hmean metric.
//!
//! Every run executes inside its own **fault domain**: panics are caught
//! per run ([`std::panic::catch_unwind`]), budgets bound runaway runs, and
//! every failure mode surfaces as a typed
//! [`RunError`] inside [`RunOutcome::Failed`]
//! rather than tearing the sweep down. See `ARCHITECTURE.md`, "Fault
//! domains & error taxonomy".

use crate::chaos::ChaosPolicy;
use crate::fault::{EngineOptions, EngineReport, InjectedFault, RunError};
use dcra::{Dcra, DcraConfig, SharingConfig};
use smt_isa::{PerResource, ThreadId};
use smt_policies as pol;
use smt_sim::policy::AnyPolicy;
use smt_sim::watch::CommitWatchdog;
use smt_sim::{RunBudget, SimConfig, SimResult, Simulator};
use smt_workloads::{spec, BenchmarkProfile, ScenarioMix, Workload};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// Which policy to run. A declarative, `Clone`able stand-in for a built
/// policy so run specs can be sent across threads.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicyKind {
    /// ROUND-ROBIN fetch.
    RoundRobin,
    /// ICOUNT fetch (Tullsen et al.).
    Icount,
    /// STALL (ICOUNT + stall on detected L2 miss).
    Stall,
    /// FLUSH (ICOUNT + flush on detected L2 miss).
    Flush,
    /// FLUSH++ (adaptive STALL/FLUSH).
    FlushPlusPlus,
    /// Data Gating (stall on pending L1 data miss).
    DataGating,
    /// Predictive Data Gating.
    PredictiveDataGating,
    /// Static even partitioning of all controlled resources.
    Sra,
    /// Static partitioning with explicit per-resource caps (Figure 2).
    SraCapped(PerResource<Option<u32>>),
    /// The paper's proposal, with its sharing-factor configuration.
    Dcra(DcraConfig),
}

impl PolicyKind {
    /// The paper's name for this policy.
    pub fn name(&self) -> &'static str {
        match self {
            PolicyKind::RoundRobin => "RR",
            PolicyKind::Icount => "ICOUNT",
            PolicyKind::Stall => "STALL",
            PolicyKind::Flush => "FLUSH",
            PolicyKind::FlushPlusPlus => "FLUSH++",
            PolicyKind::DataGating => "DG",
            PolicyKind::PredictiveDataGating => "PDG",
            PolicyKind::Sra | PolicyKind::SraCapped(_) => "SRA",
            PolicyKind::Dcra(_) => "DCRA",
        }
    }

    /// The inverse of [`PolicyKind::name`] for the nine canonical
    /// policies (case-insensitive). `DCRA` maps to the default
    /// configuration; the capped-SRA and tuned-DCRA variants have no
    /// name of their own. Shell-friendly spellings of `FLUSH++`
    /// (`FLUSHPP`, `FLUSH_PP`) are accepted too.
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name.to_ascii_uppercase().as_str() {
            "RR" => PolicyKind::RoundRobin,
            "ICOUNT" => PolicyKind::Icount,
            "STALL" => PolicyKind::Stall,
            "FLUSH" => PolicyKind::Flush,
            "FLUSH++" | "FLUSHPP" | "FLUSH_PP" => PolicyKind::FlushPlusPlus,
            "DG" => PolicyKind::DataGating,
            "PDG" => PolicyKind::PredictiveDataGating,
            "SRA" => PolicyKind::Sra,
            "DCRA" => PolicyKind::Dcra(DcraConfig::default()),
            _ => return None,
        })
    }

    /// DCRA with the sharing factors tuned for `latency` (Section 5.3).
    pub fn dcra_for_latency(latency: u32) -> Self {
        PolicyKind::Dcra(DcraConfig {
            sharing: SharingConfig::for_memory_latency(latency),
            ..DcraConfig::default()
        })
    }

    /// Instantiates the policy. All nine canonical policies come back as
    /// statically-dispatched [`AnyPolicy`] variants; only external policies
    /// (none here) would need the boxed escape hatch.
    pub fn build(&self) -> AnyPolicy {
        match self {
            PolicyKind::RoundRobin => smt_sim::policy::RoundRobin::default().into(),
            PolicyKind::Icount => pol::Icount.into(),
            PolicyKind::Stall => pol::Stall.into(),
            PolicyKind::Flush => pol::Flush.into(),
            PolicyKind::FlushPlusPlus => pol::FlushPlusPlus::default().into(),
            PolicyKind::DataGating => pol::DataGating.into(),
            PolicyKind::PredictiveDataGating => pol::PredictiveDataGating::default().into(),
            PolicyKind::Sra => pol::StaticAllocation::new().into(),
            PolicyKind::SraCapped(caps) => pol::StaticAllocation::with_caps(*caps).into(),
            PolicyKind::Dcra(cfg) => Dcra::new(*cfg).into(),
        }
    }
}

/// One simulation to run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    /// Benchmark names, one per hardware thread.
    pub benches: Vec<String>,
    /// Policy to arbitrate them.
    pub policy: PolicyKind,
    /// Machine configuration (threads must equal `benches.len()`).
    pub config: SimConfig,
    /// Random seed for the trace generators.
    pub seed: u64,
    /// Functional cache warm-up (instructions per thread).
    pub prewarm_insts: u64,
    /// Timed warm-up cycles (discarded).
    pub warmup_cycles: u64,
    /// Measured cycles.
    pub measure_cycles: u64,
    /// Explicit per-thread profiles, overriding the registry lookup of
    /// `benches`. Set by [`RunSpec::for_mix`] so generated scenario mixes
    /// — whose jittered/synthesized profiles exist nowhere in
    /// [`smt_workloads::spec`] — run through the same machinery; `benches`
    /// then only carries the display names.
    pub profile_overrides: Option<Vec<BenchmarkProfile>>,
    /// Per-run budget overriding the engine default. `None` (the usual
    /// case) defers to [`EngineOptions::budget`] — or
    /// [`RunBudget::default`] for one-shot sessions.
    pub budget: Option<RunBudget>,
    /// Deterministic fault injection for chaos tests; `None` everywhere
    /// else. See [`crate::chaos`].
    pub fault: Option<InjectedFault>,
}

impl RunSpec {
    /// Standard measurement lengths: 400k-instruction functional warm-up,
    /// 30k-cycle timed warm-up, 250k measured cycles.
    pub fn new(benches: &[&str], policy: PolicyKind) -> Self {
        let mut config = SimConfig::baseline(benches.len());
        config.threads = benches.len();
        RunSpec {
            benches: benches.iter().map(|b| b.to_string()).collect(),
            policy,
            config,
            seed: 42,
            prewarm_insts: 400_000,
            warmup_cycles: 30_000,
            measure_cycles: 250_000,
            profile_overrides: None,
            budget: None,
            fault: None,
        }
    }

    /// Builds a spec for the benchmarks of a Table-4 workload.
    pub fn for_workload(workload: &Workload, policy: PolicyKind) -> Self {
        let names: Vec<&str> = workload.benchmarks.iter().map(|s| s.as_str()).collect();
        RunSpec::new(&names, policy)
    }

    /// Builds a spec for a generated [`ScenarioMix`]: the mix's profiles
    /// become the run's threads (bypassing the benchmark registry) and the
    /// mix's derived seed replaces the default.
    pub fn for_mix(mix: &ScenarioMix, policy: PolicyKind) -> Self {
        let names: Vec<&str> = mix.benchmark_names();
        let mut spec = RunSpec::new(&names, policy);
        spec.seed = mix.seed;
        spec.profile_overrides = Some(mix.profiles.clone());
        spec
    }

    /// Replaces the machine configuration (keeps `threads` consistent).
    pub fn with_config(mut self, mut config: SimConfig) -> Self {
        config.threads = self.benches.len();
        self.config = config;
        self
    }

    fn profiles(&self) -> Result<Vec<&BenchmarkProfile>, RunError> {
        match &self.profile_overrides {
            Some(overrides) => {
                if overrides.len() != self.benches.len() {
                    return Err(RunError::InvalidSpec {
                        message: format!(
                            "profile overrides cover {} threads, spec has {}",
                            overrides.len(),
                            self.benches.len()
                        ),
                    });
                }
                Ok(overrides.iter().collect())
            }
            None => self
                .benches
                .iter()
                .map(|b| {
                    spec::profile(b).ok_or_else(|| RunError::UnknownBenchmark { bench: b.clone() })
                })
                .collect(),
        }
    }
}

/// Statistics of one completed run: the pipeline-side result plus the
/// memory snapshot the experiments need.
#[derive(Debug, Clone, PartialEq)]
pub struct RunStats {
    /// Pipeline-side result (IPCs, fetch counts, MLP, ...).
    pub result: SimResult,
    /// Per-thread memory statistics (L1/L2 miss rates).
    pub mem: Vec<smt_mem::ThreadMemStats>,
}

impl RunStats {
    /// Convenience: per-thread IPCs.
    pub fn ipcs(&self) -> Vec<f64> {
        self.result.ipcs()
    }

    /// Convenience: IPC throughput.
    pub fn throughput(&self) -> f64 {
        self.result.throughput()
    }
}

/// What became of one run inside the fault-isolated engine: either the
/// statistics of a completed run or the typed error it failed with. In
/// both cases `attempts` counts executions (0 for admission-control
/// rejections that never ran).
#[derive(Debug, Clone, PartialEq)]
pub enum RunOutcome {
    /// The run completed and produced statistics.
    Completed {
        /// The run's statistics.
        stats: RunStats,
        /// Attempts consumed, retries included (1 = first try).
        attempts: u32,
    },
    /// The run failed on every permitted attempt (or was rejected).
    Failed {
        /// Why the final attempt failed.
        error: RunError,
        /// Attempts consumed (0 = rejected before running).
        attempts: u32,
    },
}

impl RunOutcome {
    /// The statistics, if the run completed.
    pub fn stats(&self) -> Option<&RunStats> {
        match self {
            RunOutcome::Completed { stats, .. } => Some(stats),
            RunOutcome::Failed { .. } => None,
        }
    }

    /// The error, if the run failed.
    pub fn error(&self) -> Option<&RunError> {
        match self {
            RunOutcome::Completed { .. } => None,
            RunOutcome::Failed { error, .. } => Some(error),
        }
    }

    /// `true` if the run completed.
    pub fn is_completed(&self) -> bool {
        matches!(self, RunOutcome::Completed { .. })
    }

    /// Attempts consumed (0 for admission-control rejections).
    pub fn attempts(&self) -> u32 {
        match self {
            RunOutcome::Completed { attempts, .. } | RunOutcome::Failed { attempts, .. } => {
                *attempts
            }
        }
    }

    /// Unwraps into `Result`, discarding the attempt count.
    pub fn into_stats(self) -> Result<RunStats, RunError> {
        match self {
            RunOutcome::Completed { stats, .. } => Ok(stats),
            RunOutcome::Failed { error, .. } => Err(error),
        }
    }
}

/// A reusable simulation session: owns one [`Simulator`] and replays run
/// specs through it.
///
/// A sweep issues hundreds of short runs; building a fresh simulator for
/// each one reallocates the instruction windows, cache tag arrays, event
/// wheel and predictor tables every time. A session instead calls
/// [`Simulator::reset`] whenever the next spec shares the previous spec's
/// machine configuration — trace generators and policy are re-seeded in
/// place, every allocation is retained, and the run is bit-identical to a
/// fresh simulator (guaranteed by the `reset` contract and pinned by the
/// session-equality test in `tests/determinism.rs`).
///
/// # Examples
///
/// ```
/// use smt_experiments::{PolicyKind, RunSpec, SimSession};
///
/// let mut session = SimSession::new();
/// let mut spec = RunSpec::new(&["gzip"], PolicyKind::Icount);
/// spec.prewarm_insts = 10_000;
/// spec.warmup_cycles = 1_000;
/// spec.measure_cycles = 5_000;
/// let first = session.run(&spec).expect("valid spec");   // builds the simulator
/// let second = session.run(&spec).expect("valid spec");  // reuses it in place
/// assert_eq!(first.result, second.result);
/// ```
#[derive(Debug, Default)]
pub struct SimSession {
    sim: Option<Simulator>,
}

impl SimSession {
    /// Creates an empty session; the first run builds its simulator.
    pub fn new() -> Self {
        SimSession::default()
    }

    /// Runs one spec to completion, reusing the owned simulator when the
    /// machine configuration matches.
    ///
    /// Unknown benchmarks, invalid machine configurations
    /// ([`SimConfig::validate`] — a hard check that holds in release
    /// builds, so e.g. a >8-thread config from a deserialized sweep file
    /// fails loudly here instead of corrupting issue ordering downstream)
    /// and budget breaches come back as typed [`RunError`]s. Panics from
    /// policy or simulator code propagate — one-shot callers that need
    /// containment go through the [`Runner`] engine instead, which wraps
    /// each attempt in [`std::panic::catch_unwind`].
    pub fn run(&mut self, spec: &RunSpec) -> Result<RunStats, RunError> {
        self.run_attempt(spec, 0, spec.budget.unwrap_or_default())
    }

    /// One attempt of `spec`. `attempt` is 0-based and only consulted by
    /// injected faults (a transient fault stops panicking once
    /// `attempt >= fail_attempts`); `default_budget` applies when the spec
    /// carries no budget of its own.
    fn run_attempt(
        &mut self,
        spec: &RunSpec,
        attempt: u32,
        default_budget: RunBudget,
    ) -> Result<RunStats, RunError> {
        spec.config
            .validate()
            .map_err(|e| RunError::InvalidSpec { message: e })?;
        let profiles = spec.profiles()?;
        let policy = match spec.fault {
            Some(InjectedFault::PanicAtCycle {
                at_cycle,
                fail_attempts,
            }) if attempt < fail_attempts => {
                AnyPolicy::Boxed(Box::new(ChaosPolicy::new(spec.policy.build(), at_cycle)))
            }
            _ => spec.policy.build(),
        };
        let sim = match &mut self.sim {
            Some(sim) if sim.config() == &spec.config => {
                sim.reset(&profiles, policy, spec.seed);
                sim
            }
            slot => slot.insert(Simulator::new(
                spec.config.clone(),
                &profiles,
                policy,
                spec.seed,
            )),
        };
        sim.prewarm(spec.prewarm_insts);
        let budget = spec.budget.unwrap_or(default_budget);
        if budget.is_unlimited() {
            sim.run_cycles(spec.warmup_cycles);
            sim.reset_stats();
            sim.run_cycles(spec.measure_cycles);
        } else {
            // One watchdog spans warm-up and measurement, so the cycle cap
            // bounds the whole run. A breach leaves the simulator in the
            // session: its allocations are fine, and the next run's
            // `reset` restores a clean machine.
            let mut watch = CommitWatchdog::new(budget);
            sim.run_cycles_budgeted(spec.warmup_cycles, &mut watch)
                .map_err(RunError::from_breach)?;
            sim.reset_stats();
            sim.run_cycles_budgeted(spec.measure_cycles, &mut watch)
                .map_err(RunError::from_breach)?;
        }
        let mem = (0..spec.benches.len())
            .map(|i| sim.memory().thread_stats(ThreadId::new(i)))
            .collect();
        Ok(RunStats {
            result: sim.result(),
            mem,
        })
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

/// Runs `spec` on `session` under the engine's fault domain: each attempt
/// is wrapped in `catch_unwind`, a caught panic discards the (possibly
/// corrupt) simulator, and transient failures retry per `opts.retry`.
fn execute_with_retry(
    session: &mut SimSession,
    spec: &RunSpec,
    opts: &EngineOptions,
) -> RunOutcome {
    let mut attempt = 0u32;
    loop {
        let result = catch_unwind(AssertUnwindSafe(|| {
            session.run_attempt(spec, attempt, opts.budget)
        }));
        attempt += 1;
        let error = match result {
            Ok(Ok(stats)) => {
                return RunOutcome::Completed {
                    stats,
                    attempts: attempt,
                }
            }
            Ok(Err(error)) => error,
            Err(payload) => {
                // The unwound simulator may hold arbitrary state; discard
                // it so the next run on this worker starts clean.
                *session = SimSession::new();
                RunError::Panicked {
                    message: panic_message(payload),
                }
            }
        };
        if attempt >= opts.retry.max_attempts || !error.is_transient() {
            return RunOutcome::Failed {
                error,
                attempts: attempt,
            };
        }
        let backoff = opts.retry.backoff_for(attempt);
        if !backoff.is_zero() {
            std::thread::sleep(backoff);
        }
    }
}

/// Cache key for single-thread baseline IPCs: the benchmark plus the
/// *complete* machine configuration it ran on (normalised to one thread,
/// which is how baselines are measured). Deriving the key from the full
/// [`SimConfig`] means configs differing in ROB size, cache geometry or any
/// other field can never collide — the old string key hashed only four
/// fields and silently returned wrong baselines for the rest.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct BaselineKey {
    bench: String,
    config: SimConfig,
}

/// Executes run specs and caches single-thread baseline IPCs.
///
/// # Examples
///
/// ```
/// use smt_experiments::{PolicyKind, Runner, RunSpec};
///
/// let runner = Runner::new();
/// let mut spec = RunSpec::new(&["gzip"], PolicyKind::Icount);
/// spec.prewarm_insts = 10_000; // tiny run for the example
/// spec.warmup_cycles = 1_000;
/// spec.measure_cycles = 5_000;
/// let out = runner.run(&spec).expect("valid spec");
/// assert!(out.throughput() > 0.0);
/// ```
#[derive(Debug, Default)]
pub struct Runner {
    baselines: Mutex<HashMap<BaselineKey, f64>>,
}

impl Runner {
    /// Creates a runner with an empty baseline cache.
    pub fn new() -> Self {
        Runner::default()
    }

    /// Runs one spec to completion in a one-shot session. Spec-level
    /// failures come back as [`RunError`]; panics propagate (use the
    /// worker-pool entry points for panic containment).
    pub fn run(&self, spec: &RunSpec) -> Result<RunStats, RunError> {
        SimSession::new().run(spec)
    }

    /// Runs many specs on a pool of worker threads fed from a shared work
    /// queue, streaming each [`RunOutcome`] into `sink` as it completes.
    ///
    /// Every worker owns one [`SimSession`], so consecutive specs with the
    /// same machine configuration reuse a simulator instead of building one
    /// per run — the dominant setup cost of the paper-scale sweeps. The
    /// sink receives `(spec_index, outcome)` pairs in *completion* order
    /// (not spec order) under an internal lock; completed outcomes are
    /// identical to sequential fresh-simulator runs, so consumers that
    /// aggregate incrementally (the sweep and figure binaries) never
    /// materialise the whole result vector.
    ///
    /// Each run executes in its own fault domain (see
    /// [`Runner::run_isolated`], which this delegates to with default
    /// [`EngineOptions`]).
    pub fn run_streaming<F>(&self, specs: &[RunSpec], sink: F) -> EngineReport
    where
        F: FnMut(usize, RunOutcome) + Send,
    {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        self.run_streaming_with_workers(specs, workers, sink)
    }

    /// [`Runner::run_streaming`] with an explicit worker count instead of
    /// the host's available parallelism. Outcomes are identical for every
    /// `workers >= 1` (each run is an isolated deterministic simulation;
    /// only completion order varies) — the end-to-end suite pins this.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero (with specs pending).
    pub fn run_streaming_with_workers<F>(
        &self,
        specs: &[RunSpec],
        workers: usize,
        sink: F,
    ) -> EngineReport
    where
        F: FnMut(usize, RunOutcome) + Send,
    {
        self.run_isolated(specs, workers, &EngineOptions::default(), sink)
    }

    /// The fault-isolated engine: runs `specs` on `workers` threads under
    /// explicit [`EngineOptions`], streaming `(spec_index, outcome)` pairs
    /// into `sink` in completion order.
    ///
    /// Fault-domain guarantees:
    ///
    /// * **Panic containment** — a panicking run (policy bug, corrupt
    ///   spec, injected chaos) is caught on its worker; the worker's
    ///   simulator is discarded and the queue keeps draining. The panic
    ///   surfaces as [`RunError::Panicked`].
    /// * **Budgets** — every run is bounded by its spec's budget or
    ///   `opts.budget`; breaches surface as [`RunError::CycleBudget`] /
    ///   [`RunError::Livelock`].
    /// * **Retry** — transient failures retry up to
    ///   `opts.retry.max_attempts` with deterministic replay (same seed,
    ///   same spec, fresh simulator).
    /// * **Admission control** — with `opts.queue_capacity = Some(cap)`,
    ///   spec indices `>= cap` are rejected up front as
    ///   [`RunError::QueueFull`] (attempts 0) and delivered to the sink
    ///   before any run executes.
    /// * **Sink isolation** — a panicking sink callback is caught too; the
    ///   shared sink lock is explicitly poison-recovered, sibling
    ///   deliveries proceed, and the affected indices are reported in
    ///   [`EngineReport::sink_panics`].
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero (with specs pending).
    pub fn run_isolated<F>(
        &self,
        specs: &[RunSpec],
        workers: usize,
        opts: &EngineOptions,
        sink: F,
    ) -> EngineReport
    where
        F: FnMut(usize, RunOutcome) + Send,
    {
        if specs.is_empty() {
            return EngineReport::default();
        }
        assert!(workers > 0, "need at least one worker");
        let admitted = opts
            .queue_capacity
            .map_or(specs.len(), |cap| specs.len().min(cap));
        let sink = Mutex::new(sink);
        let sink_panics: Mutex<Vec<usize>> = Mutex::new(Vec::new());
        let completed = AtomicUsize::new(0);
        let failed = AtomicUsize::new(0);

        // Holds the sink lock *outside* the catch_unwind closure: a panic
        // inside the callback unwinds only to the catch boundary, never
        // across the guard's scope, so the mutex is released cleanly (not
        // poisoned) and other workers keep delivering.
        let deliver = |i: usize, outcome: RunOutcome| {
            let mut guard = sink.lock().unwrap_or_else(PoisonError::into_inner);
            let delivery = catch_unwind(AssertUnwindSafe(|| (*guard)(i, outcome)));
            drop(guard);
            if delivery.is_err() {
                sink_panics
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push(i);
            }
        };

        // Admission control: rejections are decided and delivered before
        // any simulation starts, so a flooded queue fails fast.
        let rejected = specs.len() - admitted;
        for (i, _) in specs.iter().enumerate().skip(admitted) {
            failed.fetch_add(1, Ordering::Relaxed);
            deliver(
                i,
                RunOutcome::Failed {
                    error: RunError::QueueFull {
                        capacity: admitted,
                        depth: specs.len(),
                    },
                    attempts: 0,
                },
            );
        }

        if admitted > 0 {
            let workers = workers.min(admitted);
            let next = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| {
                        let mut session = SimSession::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= admitted {
                                break;
                            }
                            let outcome = execute_with_retry(&mut session, &specs[i], opts);
                            let counter = if outcome.is_completed() {
                                &completed
                            } else {
                                &failed
                            };
                            counter.fetch_add(1, Ordering::Relaxed);
                            deliver(i, outcome);
                        }
                    });
                }
            });
        }

        let mut sink_panics = sink_panics
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner);
        sink_panics.sort_unstable();
        EngineReport {
            completed: completed.into_inner(),
            failed: failed.into_inner(),
            rejected,
            sink_panics,
        }
    }

    /// Runs many specs in parallel and returns their statistics in spec
    /// order, or the first failure (by spec index). For partial results in
    /// the presence of failures use [`Runner::run_all_outcomes`].
    pub fn run_all(&self, specs: &[RunSpec]) -> Result<Vec<RunStats>, RunError> {
        let mut stats = Vec::with_capacity(specs.len());
        for outcome in self.run_all_outcomes(specs) {
            stats.push(outcome.into_stats()?);
        }
        Ok(stats)
    }

    /// Runs many specs in parallel (default worker count) and returns all
    /// outcomes — completed and failed — in spec order.
    pub fn run_all_outcomes(&self, specs: &[RunSpec]) -> Vec<RunOutcome> {
        let mut slots: Vec<Option<RunOutcome>> = specs.iter().map(|_| None).collect();
        self.run_streaming(specs, |i, outcome| slots[i] = Some(outcome));
        slots
            .into_iter()
            .map(|slot| slot.expect("worker pool covered every spec"))
            .collect()
    }

    /// [`Runner::run_all_outcomes`] with an explicit worker count; results
    /// are in spec order and independent of `workers`.
    pub fn run_all_with_workers(&self, specs: &[RunSpec], workers: usize) -> Vec<RunOutcome> {
        let mut slots: Vec<Option<RunOutcome>> = specs.iter().map(|_| None).collect();
        self.run_streaming_with_workers(specs, workers, |i, outcome| slots[i] = Some(outcome));
        slots
            .into_iter()
            .map(|slot| slot.expect("worker pool covered every spec"))
            .collect()
    }

    /// Single-thread baseline IPC of `bench` on `config` (ICOUNT, full
    /// machine), cached per (bench, complete one-thread machine config).
    pub fn single_ipc(
        &self,
        bench: &str,
        config: &SimConfig,
        lengths: &RunSpec,
    ) -> Result<f64, RunError> {
        let mut single = config.clone();
        single.threads = 1;
        let key = BaselineKey {
            bench: bench.to_string(),
            config: single.clone(),
        };
        if let Some(v) = self
            .baselines
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&key)
        {
            return Ok(*v);
        }
        let mut spec = RunSpec::new(&[bench], PolicyKind::Icount);
        spec.config = single;
        spec.prewarm_insts = lengths.prewarm_insts;
        spec.warmup_cycles = lengths.warmup_cycles;
        spec.measure_cycles = lengths.measure_cycles;
        let ipc = self.run(&spec)?.throughput();
        self.baselines
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(key, ipc);
        Ok(ipc)
    }

    /// Single-thread baselines for every benchmark of a workload.
    pub fn single_ipcs(
        &self,
        workload: &Workload,
        config: &SimConfig,
        lengths: &RunSpec,
    ) -> Result<Vec<f64>, RunError> {
        workload
            .benchmarks
            .iter()
            .map(|b| self.single_ipc(b, config, lengths))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::RetryPolicy;
    use smt_sim::policy::Policy as _;

    fn tiny(benches: &[&str], policy: PolicyKind) -> RunSpec {
        let mut s = RunSpec::new(benches, policy);
        s.prewarm_insts = 20_000;
        s.warmup_cycles = 2_000;
        s.measure_cycles = 10_000;
        s
    }

    #[test]
    fn policy_kinds_build_and_name() {
        for k in [
            PolicyKind::RoundRobin,
            PolicyKind::Icount,
            PolicyKind::Stall,
            PolicyKind::Flush,
            PolicyKind::FlushPlusPlus,
            PolicyKind::DataGating,
            PolicyKind::PredictiveDataGating,
            PolicyKind::Sra,
            PolicyKind::Dcra(DcraConfig::default()),
        ] {
            assert_eq!(k.build().name(), k.name());
        }
    }

    #[test]
    fn canonical_names_round_trip() {
        for name in [
            "RR", "ICOUNT", "STALL", "FLUSH", "FLUSH++", "DG", "PDG", "SRA", "DCRA",
        ] {
            let kind = PolicyKind::from_name(name)
                .unwrap_or_else(|| panic!("canonical policy {name} must parse"));
            assert_eq!(kind.name(), name, "name ↔ kind round trip");
        }
        assert!(PolicyKind::from_name("NOPE").is_none());
    }

    #[test]
    fn shell_friendly_flushpp_aliases() {
        for alias in ["FLUSHPP", "FLUSH_PP", "flushpp", "flush_pp", "FLUSH++"] {
            assert_eq!(
                PolicyKind::from_name(alias),
                Some(PolicyKind::FlushPlusPlus),
                "{alias} should parse as FLUSH++"
            );
        }
    }

    #[test]
    fn session_rejects_oversized_thread_configs() {
        // Release builds must refuse >MAX_THREADS configs with a clear
        // error: the ready-key packing (`seq << 3 | tid`) assumes tid < 8
        // and only debug-asserts it on the hot path.
        let mut spec = tiny(&["gzip", "mcf"], PolicyKind::Icount);
        spec.config.threads = smt_isa::ThreadId::MAX_THREADS + 1;
        spec.config.phys_regs = u32::MAX;
        assert!(matches!(
            SimSession::new().run(&spec),
            Err(RunError::InvalidSpec { .. })
        ));
    }

    #[test]
    fn session_rejects_zero_sized_queues() {
        let mut spec = tiny(&["gzip"], PolicyKind::Icount);
        spec.config.fetch_queue = 0;
        assert!(matches!(
            SimSession::new().run(&spec),
            Err(RunError::InvalidSpec { .. })
        ));
    }

    #[test]
    fn session_reports_unknown_benchmarks() {
        let spec = tiny(&["gzip", "no-such-bench"], PolicyKind::Icount);
        match SimSession::new().run(&spec) {
            Err(RunError::UnknownBenchmark { bench }) => assert_eq!(bench, "no-such-bench"),
            other => panic!("expected UnknownBenchmark, got {other:?}"),
        }
    }

    #[test]
    fn run_produces_progress() {
        let r = Runner::new();
        let out = r
            .run(&tiny(&["gzip", "twolf"], PolicyKind::Icount))
            .expect("valid spec");
        assert!(out.throughput() > 0.1);
        assert_eq!(out.mem.len(), 2);
    }

    #[test]
    fn run_all_matches_individual_runs() {
        let r = Runner::new();
        let specs = vec![
            tiny(&["gzip"], PolicyKind::Icount),
            tiny(&["twolf"], PolicyKind::Dcra(DcraConfig::default())),
        ];
        let batch = r.run_all(&specs).expect("valid specs");
        let solo0 = r.run(&specs[0]).expect("valid spec");
        let solo1 = r.run(&specs[1]).expect("valid spec");
        assert_eq!(
            batch[0].result, solo0.result,
            "parallel run must be deterministic"
        );
        assert_eq!(batch[1].result, solo1.result);
    }

    #[test]
    fn session_reuse_is_bit_identical_to_fresh_runs() {
        // One session runs a mixed queue of same-config specs back to
        // back; every outcome must match a fresh one-shot session.
        let specs = [
            tiny(&["gzip", "mcf"], PolicyKind::Icount),
            tiny(&["art", "gcc"], PolicyKind::Dcra(DcraConfig::default())),
            tiny(&["twolf", "swim"], PolicyKind::Flush),
        ];
        let mut session = SimSession::new();
        for spec in &specs {
            let reused = session.run(spec).expect("valid spec");
            let fresh = SimSession::new().run(spec).expect("valid spec");
            assert_eq!(reused.result, fresh.result, "session reuse drifted");
            assert_eq!(reused.mem, fresh.mem);
        }
    }

    #[test]
    fn run_streaming_covers_every_spec_incrementally() {
        let r = Runner::new();
        let specs = vec![
            tiny(&["gzip"], PolicyKind::Icount),
            tiny(&["mcf"], PolicyKind::Stall),
            tiny(&["art"], PolicyKind::Flush),
        ];
        let mut seen = vec![false; specs.len()];
        let mut outcomes: Vec<Option<RunStats>> = specs.iter().map(|_| None).collect();
        let report = r.run_streaming(&specs, |i, out| {
            seen[i] = true;
            outcomes[i] = Some(out.into_stats().expect("valid spec"));
        });
        assert!(seen.iter().all(|&s| s), "every spec must reach the sink");
        assert_eq!(report.completed, specs.len());
        assert_eq!(report.failed, 0);
        let batch = r.run_all(&specs).expect("valid specs");
        for (streamed, batched) in outcomes.iter().zip(&batch) {
            assert_eq!(streamed.as_ref().expect("seen").result, batched.result);
        }
    }

    #[test]
    fn failed_runs_do_not_poison_their_worker_session() {
        // A faulted run sandwiched between good runs must leave its worker
        // (and the shared sink) fully functional, and the good runs
        // bit-identical to a clean batch.
        crate::chaos::silence_chaos_panics();
        let good = [
            tiny(&["gzip", "mcf"], PolicyKind::Icount),
            tiny(&["art", "gcc"], PolicyKind::Flush),
        ];
        let mut bad = tiny(&["twolf", "swim"], PolicyKind::Stall);
        bad.fault = Some(InjectedFault::PanicAtCycle {
            at_cycle: 64,
            fail_attempts: u32::MAX,
        });
        let specs = vec![good[0].clone(), bad, good[1].clone()];
        let r = Runner::new();
        let outcomes = r.run_all_with_workers(&specs, 1);
        match &outcomes[1] {
            RunOutcome::Failed {
                error: RunError::Panicked { message },
                attempts: 1,
            } => assert!(message.contains("chaos-injected"), "{message}"),
            other => panic!("expected contained panic, got {other:?}"),
        }
        for (i, spec) in [(0usize, &good[0]), (2usize, &good[1])] {
            let clean = r.run(spec).expect("valid spec");
            let stats = outcomes[i].stats().expect("good run completed");
            assert_eq!(stats.result, clean.result, "spec {i} contaminated");
            assert_eq!(stats.mem, clean.mem);
        }
    }

    #[test]
    fn transient_faults_retry_to_a_bit_identical_completion() {
        crate::chaos::silence_chaos_panics();
        let mut spec = tiny(&["gzip", "mcf"], PolicyKind::Icount);
        spec.fault = Some(InjectedFault::PanicAtCycle {
            at_cycle: 64,
            fail_attempts: 1,
        });
        let opts = EngineOptions {
            retry: RetryPolicy::immediate(2),
            ..EngineOptions::default()
        };
        let mut session = SimSession::new();
        let outcome = execute_with_retry(&mut session, &spec, &opts);
        let (stats, attempts) = match outcome {
            RunOutcome::Completed { stats, attempts } => (stats, attempts),
            other => panic!("retry should complete, got {other:?}"),
        };
        assert_eq!(attempts, 2, "first attempt panics, second succeeds");
        let mut clean = spec.clone();
        clean.fault = None;
        let reference = Runner::new().run(&clean).expect("valid spec");
        assert_eq!(stats.result, reference.result, "retry must replay exactly");
        assert_eq!(stats.mem, reference.mem);
    }

    #[test]
    fn without_retries_a_transient_fault_still_fails_typed() {
        crate::chaos::silence_chaos_panics();
        let mut spec = tiny(&["gzip"], PolicyKind::Icount);
        spec.fault = Some(InjectedFault::PanicAtCycle {
            at_cycle: 64,
            fail_attempts: 1,
        });
        let outcome = execute_with_retry(
            &mut SimSession::new(),
            &spec,
            &EngineOptions::default(), // RetryPolicy::none()
        );
        assert!(
            matches!(
                outcome,
                RunOutcome::Failed {
                    error: RunError::Panicked { .. },
                    attempts: 1,
                }
            ),
            "got {outcome:?}"
        );
    }

    #[test]
    fn admission_control_rejects_past_capacity() {
        let r = Runner::new();
        let specs = vec![
            tiny(&["gzip"], PolicyKind::Icount),
            tiny(&["mcf"], PolicyKind::Stall),
            tiny(&["art"], PolicyKind::Flush),
        ];
        let opts = EngineOptions {
            queue_capacity: Some(2),
            ..EngineOptions::default()
        };
        let mut outcomes: Vec<Option<RunOutcome>> = specs.iter().map(|_| None).collect();
        let report = r.run_isolated(&specs, 2, &opts, |i, o| outcomes[i] = Some(o));
        assert_eq!(report.completed, 2);
        assert_eq!(report.failed, 1);
        assert_eq!(report.rejected, 1);
        assert!(outcomes[0].as_ref().expect("ran").is_completed());
        assert!(outcomes[1].as_ref().expect("ran").is_completed());
        match outcomes[2].as_ref().expect("delivered") {
            RunOutcome::Failed {
                error: RunError::QueueFull { capacity, depth },
                attempts: 0,
            } => {
                assert_eq!((*capacity, *depth), (2, 3));
            }
            other => panic!("expected QueueFull, got {other:?}"),
        }
    }

    #[test]
    fn sink_panics_are_contained_and_reported() {
        crate::chaos::silence_chaos_panics();
        let r = Runner::new();
        let specs = vec![
            tiny(&["gzip"], PolicyKind::Icount),
            tiny(&["mcf"], PolicyKind::Stall),
            tiny(&["art"], PolicyKind::Flush),
        ];
        let mut delivered = Vec::new();
        let report = r.run_isolated(&specs, 2, &EngineOptions::default(), |i, o| {
            if i == 1 {
                panic!("chaos-injected sink failure for spec {i}");
            }
            delivered.push((i, o.is_completed()));
        });
        assert_eq!(report.sink_panics, vec![1]);
        assert_eq!(report.completed, 3, "the run itself completed");
        delivered.sort_unstable();
        assert_eq!(delivered, vec![(0, true), (2, true)]);
    }

    #[test]
    fn budget_breaches_surface_as_typed_errors() {
        let mut spec = tiny(&["gzip"], PolicyKind::Icount);
        spec.budget = Some(RunBudget {
            max_cycles: Some(50),
            livelock_window: None,
        });
        match SimSession::new().run(&spec) {
            Err(RunError::CycleBudget { limit: 50, .. }) => {}
            other => panic!("expected CycleBudget, got {other:?}"),
        }
        spec.budget = Some(RunBudget {
            max_cycles: None,
            livelock_window: Some(1),
        });
        match SimSession::new().run(&spec) {
            Err(RunError::Livelock { window: 1, .. }) => {}
            other => panic!("expected Livelock, got {other:?}"),
        }
    }

    #[test]
    fn default_budget_leaves_results_bit_identical() {
        // The default livelock watchdog must never perturb a healthy run.
        let spec = tiny(&["gzip", "mcf"], PolicyKind::Icount);
        let mut unbudgeted = spec.clone();
        unbudgeted.budget = Some(RunBudget::unlimited());
        let watched = SimSession::new().run(&spec).expect("valid spec");
        let free = SimSession::new().run(&unbudgeted).expect("valid spec");
        assert_eq!(watched.result, free.result);
        assert_eq!(watched.mem, free.mem);
    }

    #[test]
    fn baseline_cache_hits() {
        let r = Runner::new();
        let lengths = tiny(&["gzip"], PolicyKind::Icount);
        let cfg = SimConfig::baseline(1);
        let a = r.single_ipc("gzip", &cfg, &lengths).expect("known bench");
        let b = r.single_ipc("gzip", &cfg, &lengths).expect("known bench");
        assert_eq!(a, b);
        assert!(a > 0.5);
    }

    #[test]
    fn baseline_lookup_reports_unknown_benchmarks() {
        let r = Runner::new();
        let lengths = tiny(&["gzip"], PolicyKind::Icount);
        assert!(matches!(
            r.single_ipc("no-such-bench", &SimConfig::baseline(1), &lengths),
            Err(RunError::UnknownBenchmark { .. })
        ));
    }

    #[test]
    fn baseline_cache_distinguishes_rob_and_cache_geometry() {
        // Regression: the old string key hashed only registers, IQ size
        // and memory latencies, so a tiny-ROB config collided with the
        // baseline config and returned its cached (wrong) IPC.
        let r = Runner::new();
        let lengths = tiny(&["gzip"], PolicyKind::Icount);
        let full = SimConfig::baseline(1);
        let ipc_full = r.single_ipc("gzip", &full, &lengths).expect("known bench");
        let mut small_rob = full.clone();
        small_rob.rob_entries = 16;
        let ipc_small = r
            .single_ipc("gzip", &small_rob, &lengths)
            .expect("known bench");
        assert!(
            ipc_small < ipc_full,
            "16-entry ROB ({ipc_small}) must underperform the 512-entry baseline ({ipc_full})"
        );
        let mut small_l2 = full.clone();
        small_l2.mem.l2.size_bytes = 16 * 1024;
        let ipc_small_l2 = r
            .single_ipc("gzip", &small_l2, &lengths)
            .expect("known bench");
        assert_ne!(
            ipc_full, ipc_small_l2,
            "cache geometry must be part of the baseline key"
        );
    }

    #[test]
    fn baseline_cache_ignores_requesting_thread_count() {
        // Baselines always run one thread; a 2-thread and a 4-thread sweep
        // over the same machine shape share the cache entry.
        let r = Runner::new();
        let lengths = tiny(&["gzip"], PolicyKind::Icount);
        let a = r
            .single_ipc("gzip", &SimConfig::baseline(2), &lengths)
            .expect("known bench");
        let b = r
            .single_ipc("gzip", &SimConfig::baseline(4), &lengths)
            .expect("known bench");
        assert_eq!(a, b);
    }
}
