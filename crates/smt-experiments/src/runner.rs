//! Simulation runner: builds simulators from declarative specs, runs them
//! (in parallel across OS threads, each worker owning one reusable
//! [`SimSession`]) and caches single-thread baselines for the Hmean metric.

use dcra::{Dcra, DcraConfig, SharingConfig};
use smt_isa::{PerResource, ThreadId};
use smt_policies as pol;
use smt_sim::policy::AnyPolicy;
use smt_sim::{SimConfig, SimResult, Simulator};
use smt_workloads::{spec, BenchmarkProfile, ScenarioMix, Workload};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Which policy to run. A declarative, `Clone`able stand-in for a built
/// policy so run specs can be sent across threads.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicyKind {
    /// ROUND-ROBIN fetch.
    RoundRobin,
    /// ICOUNT fetch (Tullsen et al.).
    Icount,
    /// STALL (ICOUNT + stall on detected L2 miss).
    Stall,
    /// FLUSH (ICOUNT + flush on detected L2 miss).
    Flush,
    /// FLUSH++ (adaptive STALL/FLUSH).
    FlushPlusPlus,
    /// Data Gating (stall on pending L1 data miss).
    DataGating,
    /// Predictive Data Gating.
    PredictiveDataGating,
    /// Static even partitioning of all controlled resources.
    Sra,
    /// Static partitioning with explicit per-resource caps (Figure 2).
    SraCapped(PerResource<Option<u32>>),
    /// The paper's proposal, with its sharing-factor configuration.
    Dcra(DcraConfig),
}

impl PolicyKind {
    /// The paper's name for this policy.
    pub fn name(&self) -> &'static str {
        match self {
            PolicyKind::RoundRobin => "RR",
            PolicyKind::Icount => "ICOUNT",
            PolicyKind::Stall => "STALL",
            PolicyKind::Flush => "FLUSH",
            PolicyKind::FlushPlusPlus => "FLUSH++",
            PolicyKind::DataGating => "DG",
            PolicyKind::PredictiveDataGating => "PDG",
            PolicyKind::Sra | PolicyKind::SraCapped(_) => "SRA",
            PolicyKind::Dcra(_) => "DCRA",
        }
    }

    /// The inverse of [`PolicyKind::name`] for the nine canonical
    /// policies (case-insensitive). `DCRA` maps to the default
    /// configuration; the capped-SRA and tuned-DCRA variants have no
    /// name of their own. Shell-friendly spellings of `FLUSH++`
    /// (`FLUSHPP`, `FLUSH_PP`) are accepted too.
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name.to_ascii_uppercase().as_str() {
            "RR" => PolicyKind::RoundRobin,
            "ICOUNT" => PolicyKind::Icount,
            "STALL" => PolicyKind::Stall,
            "FLUSH" => PolicyKind::Flush,
            "FLUSH++" | "FLUSHPP" | "FLUSH_PP" => PolicyKind::FlushPlusPlus,
            "DG" => PolicyKind::DataGating,
            "PDG" => PolicyKind::PredictiveDataGating,
            "SRA" => PolicyKind::Sra,
            "DCRA" => PolicyKind::Dcra(DcraConfig::default()),
            _ => return None,
        })
    }

    /// DCRA with the sharing factors tuned for `latency` (Section 5.3).
    pub fn dcra_for_latency(latency: u32) -> Self {
        PolicyKind::Dcra(DcraConfig {
            sharing: SharingConfig::for_memory_latency(latency),
            ..DcraConfig::default()
        })
    }

    /// Instantiates the policy. All nine canonical policies come back as
    /// statically-dispatched [`AnyPolicy`] variants; only external policies
    /// (none here) would need the boxed escape hatch.
    pub fn build(&self) -> AnyPolicy {
        match self {
            PolicyKind::RoundRobin => smt_sim::policy::RoundRobin::default().into(),
            PolicyKind::Icount => pol::Icount.into(),
            PolicyKind::Stall => pol::Stall.into(),
            PolicyKind::Flush => pol::Flush.into(),
            PolicyKind::FlushPlusPlus => pol::FlushPlusPlus::default().into(),
            PolicyKind::DataGating => pol::DataGating.into(),
            PolicyKind::PredictiveDataGating => pol::PredictiveDataGating::default().into(),
            PolicyKind::Sra => pol::StaticAllocation::new().into(),
            PolicyKind::SraCapped(caps) => pol::StaticAllocation::with_caps(*caps).into(),
            PolicyKind::Dcra(cfg) => Dcra::new(*cfg).into(),
        }
    }
}

/// One simulation to run.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Benchmark names, one per hardware thread.
    pub benches: Vec<String>,
    /// Policy to arbitrate them.
    pub policy: PolicyKind,
    /// Machine configuration (threads must equal `benches.len()`).
    pub config: SimConfig,
    /// Random seed for the trace generators.
    pub seed: u64,
    /// Functional cache warm-up (instructions per thread).
    pub prewarm_insts: u64,
    /// Timed warm-up cycles (discarded).
    pub warmup_cycles: u64,
    /// Measured cycles.
    pub measure_cycles: u64,
    /// Explicit per-thread profiles, overriding the registry lookup of
    /// `benches`. Set by [`RunSpec::for_mix`] so generated scenario mixes
    /// — whose jittered/synthesized profiles exist nowhere in
    /// [`smt_workloads::spec`] — run through the same machinery; `benches`
    /// then only carries the display names.
    pub profile_overrides: Option<Vec<BenchmarkProfile>>,
}

impl RunSpec {
    /// Standard measurement lengths: 400k-instruction functional warm-up,
    /// 30k-cycle timed warm-up, 250k measured cycles.
    pub fn new(benches: &[&str], policy: PolicyKind) -> Self {
        let mut config = SimConfig::baseline(benches.len());
        config.threads = benches.len();
        RunSpec {
            benches: benches.iter().map(|b| b.to_string()).collect(),
            policy,
            config,
            seed: 42,
            prewarm_insts: 400_000,
            warmup_cycles: 30_000,
            measure_cycles: 250_000,
            profile_overrides: None,
        }
    }

    /// Builds a spec for the benchmarks of a Table-4 workload.
    pub fn for_workload(workload: &Workload, policy: PolicyKind) -> Self {
        let names: Vec<&str> = workload.benchmarks.iter().map(|s| s.as_str()).collect();
        RunSpec::new(&names, policy)
    }

    /// Builds a spec for a generated [`ScenarioMix`]: the mix's profiles
    /// become the run's threads (bypassing the benchmark registry) and the
    /// mix's derived seed replaces the default.
    pub fn for_mix(mix: &ScenarioMix, policy: PolicyKind) -> Self {
        let names: Vec<&str> = mix.benchmark_names();
        let mut spec = RunSpec::new(&names, policy);
        spec.seed = mix.seed;
        spec.profile_overrides = Some(mix.profiles.clone());
        spec
    }

    /// Replaces the machine configuration (keeps `threads` consistent).
    pub fn with_config(mut self, mut config: SimConfig) -> Self {
        config.threads = self.benches.len();
        self.config = config;
        self
    }

    fn profiles(&self) -> Vec<&BenchmarkProfile> {
        match &self.profile_overrides {
            Some(overrides) => {
                assert_eq!(
                    overrides.len(),
                    self.benches.len(),
                    "profile overrides must cover every thread"
                );
                overrides.iter().collect()
            }
            None => self
                .benches
                .iter()
                .map(|b| spec::profile(b).unwrap_or_else(|| panic!("unknown benchmark {b}")))
                .collect(),
        }
    }
}

/// Result of a run, with the memory statistics snapshot the experiments
/// need in addition to the pipeline statistics.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Pipeline-side result (IPCs, fetch counts, MLP, ...).
    pub result: SimResult,
    /// Per-thread memory statistics (L1/L2 miss rates).
    pub mem: Vec<smt_mem::ThreadMemStats>,
}

impl RunOutcome {
    /// Convenience: per-thread IPCs.
    pub fn ipcs(&self) -> Vec<f64> {
        self.result.ipcs()
    }

    /// Convenience: IPC throughput.
    pub fn throughput(&self) -> f64 {
        self.result.throughput()
    }
}

/// A reusable simulation session: owns one [`Simulator`] and replays run
/// specs through it.
///
/// A sweep issues hundreds of short runs; building a fresh simulator for
/// each one reallocates the instruction windows, cache tag arrays, event
/// wheel and predictor tables every time. A session instead calls
/// [`Simulator::reset`] whenever the next spec shares the previous spec's
/// machine configuration — trace generators and policy are re-seeded in
/// place, every allocation is retained, and the run is bit-identical to a
/// fresh simulator (guaranteed by the `reset` contract and pinned by the
/// session-equality test in `tests/determinism.rs`).
///
/// # Examples
///
/// ```
/// use smt_experiments::{PolicyKind, RunSpec, SimSession};
///
/// let mut session = SimSession::new();
/// let mut spec = RunSpec::new(&["gzip"], PolicyKind::Icount);
/// spec.prewarm_insts = 10_000;
/// spec.warmup_cycles = 1_000;
/// spec.measure_cycles = 5_000;
/// let first = session.run(&spec);   // builds the simulator
/// let second = session.run(&spec);  // reuses it in place
/// assert_eq!(first.result, second.result);
/// ```
#[derive(Debug, Default)]
pub struct SimSession {
    sim: Option<Simulator>,
}

impl SimSession {
    /// Creates an empty session; the first run builds its simulator.
    pub fn new() -> Self {
        SimSession::default()
    }

    /// Runs one spec to completion, reusing the owned simulator when the
    /// machine configuration matches.
    ///
    /// # Panics
    ///
    /// Panics if a benchmark name is unknown or the spec's machine
    /// configuration is invalid ([`SimConfig::validate`] — a hard check
    /// that holds in release builds, so e.g. a >8-thread config from a
    /// deserialized sweep file fails loudly here instead of corrupting
    /// issue ordering downstream).
    pub fn run(&mut self, spec: &RunSpec) -> RunOutcome {
        spec.config
            .validate()
            .unwrap_or_else(|e| panic!("invalid run spec configuration: {e}"));
        let profiles = spec.profiles();
        let sim = match &mut self.sim {
            Some(sim) if sim.config() == &spec.config => {
                sim.reset(&profiles, spec.policy.build(), spec.seed);
                sim
            }
            slot => slot.insert(Simulator::new(
                spec.config.clone(),
                &profiles,
                spec.policy.build(),
                spec.seed,
            )),
        };
        sim.prewarm(spec.prewarm_insts);
        sim.run_cycles(spec.warmup_cycles);
        sim.reset_stats();
        sim.run_cycles(spec.measure_cycles);
        let mem = (0..spec.benches.len())
            .map(|i| sim.memory().thread_stats(ThreadId::new(i)))
            .collect();
        RunOutcome {
            result: sim.result(),
            mem,
        }
    }
}

/// Cache key for single-thread baseline IPCs: the benchmark plus the
/// *complete* machine configuration it ran on (normalised to one thread,
/// which is how baselines are measured). Deriving the key from the full
/// [`SimConfig`] means configs differing in ROB size, cache geometry or any
/// other field can never collide — the old string key hashed only four
/// fields and silently returned wrong baselines for the rest.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct BaselineKey {
    bench: String,
    config: SimConfig,
}

/// Executes run specs and caches single-thread baseline IPCs.
///
/// # Examples
///
/// ```
/// use smt_experiments::{PolicyKind, Runner, RunSpec};
///
/// let runner = Runner::new();
/// let mut spec = RunSpec::new(&["gzip"], PolicyKind::Icount);
/// spec.prewarm_insts = 10_000; // tiny run for the example
/// spec.warmup_cycles = 1_000;
/// spec.measure_cycles = 5_000;
/// let out = runner.run(&spec);
/// assert!(out.throughput() > 0.0);
/// ```
#[derive(Debug, Default)]
pub struct Runner {
    baselines: Mutex<HashMap<BaselineKey, f64>>,
}

impl Runner {
    /// Creates a runner with an empty baseline cache.
    pub fn new() -> Self {
        Runner::default()
    }

    /// Runs one spec to completion in a one-shot session.
    ///
    /// # Panics
    ///
    /// Panics if a benchmark name is unknown.
    pub fn run(&self, spec: &RunSpec) -> RunOutcome {
        SimSession::new().run(spec)
    }

    /// Runs many specs on a pool of worker threads fed from a shared work
    /// queue, streaming each [`RunOutcome`] into `sink` as it completes.
    ///
    /// Every worker owns one [`SimSession`], so consecutive specs with the
    /// same machine configuration reuse a simulator instead of building one
    /// per run — the dominant setup cost of the paper-scale sweeps. The
    /// sink receives `(spec_index, outcome)` pairs in *completion* order
    /// (not spec order) under an internal lock; outcomes are identical to
    /// sequential fresh-simulator runs, so consumers that aggregate
    /// incrementally (the sweep and figure binaries) never materialise the
    /// whole result vector.
    pub fn run_streaming<F>(&self, specs: &[RunSpec], sink: F)
    where
        F: FnMut(usize, RunOutcome) + Send,
    {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        self.run_streaming_with_workers(specs, workers, sink);
    }

    /// [`Runner::run_streaming`] with an explicit worker count instead of
    /// the host's available parallelism. Outcomes are identical for every
    /// `workers >= 1` (each run is an isolated deterministic simulation;
    /// only completion order varies) — the end-to-end suite pins this.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero (with specs pending).
    pub fn run_streaming_with_workers<F>(&self, specs: &[RunSpec], workers: usize, sink: F)
    where
        F: FnMut(usize, RunOutcome) + Send,
    {
        if specs.is_empty() {
            return;
        }
        assert!(workers > 0, "need at least one worker");
        let workers = workers.min(specs.len());
        let next = AtomicUsize::new(0);
        let sink = Mutex::new(sink);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut session = SimSession::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(spec) = specs.get(i) else { break };
                        let outcome = session.run(spec);
                        (*sink.lock().expect("poisoned sink"))(i, outcome);
                    }
                });
            }
        });
    }

    /// Runs many specs in parallel and returns the outcomes in spec order.
    /// A convenience wrapper over [`Runner::run_streaming`] for consumers
    /// that want the whole result vector.
    pub fn run_all(&self, specs: &[RunSpec]) -> Vec<RunOutcome> {
        let mut slots: Vec<Option<RunOutcome>> = specs.iter().map(|_| None).collect();
        self.run_streaming(specs, |i, outcome| slots[i] = Some(outcome));
        slots
            .into_iter()
            .map(|slot| slot.expect("worker pool covered every spec"))
            .collect()
    }

    /// [`Runner::run_all`] with an explicit worker count; results are in
    /// spec order and independent of `workers`.
    pub fn run_all_with_workers(&self, specs: &[RunSpec], workers: usize) -> Vec<RunOutcome> {
        let mut slots: Vec<Option<RunOutcome>> = specs.iter().map(|_| None).collect();
        self.run_streaming_with_workers(specs, workers, |i, outcome| slots[i] = Some(outcome));
        slots
            .into_iter()
            .map(|slot| slot.expect("worker pool covered every spec"))
            .collect()
    }

    /// Single-thread baseline IPC of `bench` on `config` (ICOUNT, full
    /// machine), cached per (bench, complete one-thread machine config).
    pub fn single_ipc(&self, bench: &str, config: &SimConfig, lengths: &RunSpec) -> f64 {
        let mut single = config.clone();
        single.threads = 1;
        let key = BaselineKey {
            bench: bench.to_string(),
            config: single.clone(),
        };
        if let Some(v) = self.baselines.lock().expect("poisoned").get(&key) {
            return *v;
        }
        let mut spec = RunSpec::new(&[bench], PolicyKind::Icount);
        spec.config = single;
        spec.prewarm_insts = lengths.prewarm_insts;
        spec.warmup_cycles = lengths.warmup_cycles;
        spec.measure_cycles = lengths.measure_cycles;
        let ipc = self.run(&spec).throughput();
        self.baselines.lock().expect("poisoned").insert(key, ipc);
        ipc
    }

    /// Single-thread baselines for every benchmark of a workload.
    pub fn single_ipcs(
        &self,
        workload: &Workload,
        config: &SimConfig,
        lengths: &RunSpec,
    ) -> Vec<f64> {
        workload
            .benchmarks
            .iter()
            .map(|b| self.single_ipc(b, config, lengths))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_sim::policy::Policy as _;

    fn tiny(benches: &[&str], policy: PolicyKind) -> RunSpec {
        let mut s = RunSpec::new(benches, policy);
        s.prewarm_insts = 20_000;
        s.warmup_cycles = 2_000;
        s.measure_cycles = 10_000;
        s
    }

    #[test]
    fn policy_kinds_build_and_name() {
        for k in [
            PolicyKind::RoundRobin,
            PolicyKind::Icount,
            PolicyKind::Stall,
            PolicyKind::Flush,
            PolicyKind::FlushPlusPlus,
            PolicyKind::DataGating,
            PolicyKind::PredictiveDataGating,
            PolicyKind::Sra,
            PolicyKind::Dcra(DcraConfig::default()),
        ] {
            assert_eq!(k.build().name(), k.name());
        }
    }

    #[test]
    fn canonical_names_round_trip() {
        for name in [
            "RR", "ICOUNT", "STALL", "FLUSH", "FLUSH++", "DG", "PDG", "SRA", "DCRA",
        ] {
            let kind = PolicyKind::from_name(name)
                .unwrap_or_else(|| panic!("canonical policy {name} must parse"));
            assert_eq!(kind.name(), name, "name ↔ kind round trip");
        }
        assert!(PolicyKind::from_name("NOPE").is_none());
    }

    #[test]
    fn shell_friendly_flushpp_aliases() {
        for alias in ["FLUSHPP", "FLUSH_PP", "flushpp", "flush_pp", "FLUSH++"] {
            assert_eq!(
                PolicyKind::from_name(alias),
                Some(PolicyKind::FlushPlusPlus),
                "{alias} should parse as FLUSH++"
            );
        }
    }

    #[test]
    #[should_panic(expected = "invalid run spec configuration")]
    fn session_rejects_oversized_thread_configs() {
        // Release builds must refuse >MAX_THREADS configs with a clear
        // error: the ready-key packing (`seq << 3 | tid`) assumes tid < 8
        // and only debug-asserts it on the hot path.
        let mut spec = tiny(&["gzip", "mcf"], PolicyKind::Icount);
        spec.config.threads = smt_isa::ThreadId::MAX_THREADS + 1;
        spec.config.phys_regs = u32::MAX;
        let _ = SimSession::new().run(&spec);
    }

    #[test]
    #[should_panic(expected = "invalid run spec configuration")]
    fn session_rejects_zero_sized_queues() {
        let mut spec = tiny(&["gzip"], PolicyKind::Icount);
        spec.config.fetch_queue = 0;
        let _ = SimSession::new().run(&spec);
    }

    #[test]
    fn run_produces_progress() {
        let r = Runner::new();
        let out = r.run(&tiny(&["gzip", "twolf"], PolicyKind::Icount));
        assert!(out.throughput() > 0.1);
        assert_eq!(out.mem.len(), 2);
    }

    #[test]
    fn run_all_matches_individual_runs() {
        let r = Runner::new();
        let specs = vec![
            tiny(&["gzip"], PolicyKind::Icount),
            tiny(&["twolf"], PolicyKind::Dcra(DcraConfig::default())),
        ];
        let batch = r.run_all(&specs);
        let solo0 = r.run(&specs[0]);
        let solo1 = r.run(&specs[1]);
        assert_eq!(
            batch[0].result, solo0.result,
            "parallel run must be deterministic"
        );
        assert_eq!(batch[1].result, solo1.result);
    }

    #[test]
    fn session_reuse_is_bit_identical_to_fresh_runs() {
        // One session runs a mixed queue of same-config specs back to
        // back; every outcome must match a fresh one-shot session.
        let specs = [
            tiny(&["gzip", "mcf"], PolicyKind::Icount),
            tiny(&["art", "gcc"], PolicyKind::Dcra(DcraConfig::default())),
            tiny(&["twolf", "swim"], PolicyKind::Flush),
        ];
        let mut session = SimSession::new();
        for spec in &specs {
            let reused = session.run(spec);
            let fresh = SimSession::new().run(spec);
            assert_eq!(reused.result, fresh.result, "session reuse drifted");
            assert_eq!(reused.mem, fresh.mem);
        }
    }

    #[test]
    fn run_streaming_covers_every_spec_incrementally() {
        let r = Runner::new();
        let specs = vec![
            tiny(&["gzip"], PolicyKind::Icount),
            tiny(&["mcf"], PolicyKind::Stall),
            tiny(&["art"], PolicyKind::Flush),
        ];
        let mut seen = vec![false; specs.len()];
        let mut outcomes: Vec<Option<RunOutcome>> = specs.iter().map(|_| None).collect();
        r.run_streaming(&specs, |i, out| {
            seen[i] = true;
            outcomes[i] = Some(out);
        });
        assert!(seen.iter().all(|&s| s), "every spec must reach the sink");
        let batch = r.run_all(&specs);
        for (streamed, batched) in outcomes.iter().zip(&batch) {
            assert_eq!(streamed.as_ref().expect("seen").result, batched.result);
        }
    }

    #[test]
    fn baseline_cache_hits() {
        let r = Runner::new();
        let lengths = tiny(&["gzip"], PolicyKind::Icount);
        let cfg = SimConfig::baseline(1);
        let a = r.single_ipc("gzip", &cfg, &lengths);
        let b = r.single_ipc("gzip", &cfg, &lengths);
        assert_eq!(a, b);
        assert!(a > 0.5);
    }

    #[test]
    fn baseline_cache_distinguishes_rob_and_cache_geometry() {
        // Regression: the old string key hashed only registers, IQ size
        // and memory latencies, so a tiny-ROB config collided with the
        // baseline config and returned its cached (wrong) IPC.
        let r = Runner::new();
        let lengths = tiny(&["gzip"], PolicyKind::Icount);
        let full = SimConfig::baseline(1);
        let ipc_full = r.single_ipc("gzip", &full, &lengths);
        let mut small_rob = full.clone();
        small_rob.rob_entries = 16;
        let ipc_small = r.single_ipc("gzip", &small_rob, &lengths);
        assert!(
            ipc_small < ipc_full,
            "16-entry ROB ({ipc_small}) must underperform the 512-entry baseline ({ipc_full})"
        );
        let mut small_l2 = full.clone();
        small_l2.mem.l2.size_bytes = 16 * 1024;
        let ipc_small_l2 = r.single_ipc("gzip", &small_l2, &lengths);
        assert_ne!(
            ipc_full, ipc_small_l2,
            "cache geometry must be part of the baseline key"
        );
    }

    #[test]
    fn baseline_cache_ignores_requesting_thread_count() {
        // Baselines always run one thread; a 2-thread and a 4-thread sweep
        // over the same machine shape share the cache entry.
        let r = Runner::new();
        let lengths = tiny(&["gzip"], PolicyKind::Icount);
        let a = r.single_ipc("gzip", &SimConfig::baseline(2), &lengths);
        let b = r.single_ipc("gzip", &SimConfig::baseline(4), &lengths);
        assert_eq!(a, b);
    }
}
