//! Simulation runner: builds simulators from declarative specs, runs them
//! (in parallel across OS threads) and caches single-thread baselines for
//! the Hmean metric.

use dcra::{Dcra, DcraConfig, SharingConfig};
use smt_isa::{PerResource, ThreadId};
use smt_policies as pol;
use smt_sim::policy::Policy;
use smt_sim::{SimConfig, SimResult, Simulator};
use smt_workloads::{spec, Workload};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Which policy to run. A declarative, `Clone`able stand-in for
/// `Box<dyn Policy>` so run specs can be sent across threads.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicyKind {
    /// ROUND-ROBIN fetch.
    RoundRobin,
    /// ICOUNT fetch (Tullsen et al.).
    Icount,
    /// STALL (ICOUNT + stall on detected L2 miss).
    Stall,
    /// FLUSH (ICOUNT + flush on detected L2 miss).
    Flush,
    /// FLUSH++ (adaptive STALL/FLUSH).
    FlushPlusPlus,
    /// Data Gating (stall on pending L1 data miss).
    DataGating,
    /// Predictive Data Gating.
    PredictiveDataGating,
    /// Static even partitioning of all controlled resources.
    Sra,
    /// Static partitioning with explicit per-resource caps (Figure 2).
    SraCapped(PerResource<Option<u32>>),
    /// The paper's proposal, with its sharing-factor configuration.
    Dcra(DcraConfig),
}

impl PolicyKind {
    /// The paper's name for this policy.
    pub fn name(&self) -> &'static str {
        match self {
            PolicyKind::RoundRobin => "RR",
            PolicyKind::Icount => "ICOUNT",
            PolicyKind::Stall => "STALL",
            PolicyKind::Flush => "FLUSH",
            PolicyKind::FlushPlusPlus => "FLUSH++",
            PolicyKind::DataGating => "DG",
            PolicyKind::PredictiveDataGating => "PDG",
            PolicyKind::Sra | PolicyKind::SraCapped(_) => "SRA",
            PolicyKind::Dcra(_) => "DCRA",
        }
    }

    /// The inverse of [`PolicyKind::name`] for the nine canonical
    /// policies (case-insensitive). `DCRA` maps to the default
    /// configuration; the capped-SRA and tuned-DCRA variants have no
    /// name of their own.
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name.to_ascii_uppercase().as_str() {
            "RR" => PolicyKind::RoundRobin,
            "ICOUNT" => PolicyKind::Icount,
            "STALL" => PolicyKind::Stall,
            "FLUSH" => PolicyKind::Flush,
            "FLUSH++" => PolicyKind::FlushPlusPlus,
            "DG" => PolicyKind::DataGating,
            "PDG" => PolicyKind::PredictiveDataGating,
            "SRA" => PolicyKind::Sra,
            "DCRA" => PolicyKind::Dcra(DcraConfig::default()),
            _ => return None,
        })
    }

    /// DCRA with the sharing factors tuned for `latency` (Section 5.3).
    pub fn dcra_for_latency(latency: u32) -> Self {
        PolicyKind::Dcra(DcraConfig {
            sharing: SharingConfig::for_memory_latency(latency),
            ..DcraConfig::default()
        })
    }

    /// Instantiates the policy.
    pub fn build(&self) -> Box<dyn Policy> {
        match self {
            PolicyKind::RoundRobin => Box::new(smt_sim::policy::RoundRobin::default()),
            PolicyKind::Icount => Box::new(pol::Icount),
            PolicyKind::Stall => Box::new(pol::Stall),
            PolicyKind::Flush => Box::new(pol::Flush),
            PolicyKind::FlushPlusPlus => Box::new(pol::FlushPlusPlus::default()),
            PolicyKind::DataGating => Box::new(pol::DataGating),
            PolicyKind::PredictiveDataGating => Box::new(pol::PredictiveDataGating::default()),
            PolicyKind::Sra => Box::new(pol::StaticAllocation::new()),
            PolicyKind::SraCapped(caps) => Box::new(pol::StaticAllocation::with_caps(*caps)),
            PolicyKind::Dcra(cfg) => Box::new(Dcra::new(*cfg)),
        }
    }
}

/// One simulation to run.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Benchmark names, one per hardware thread.
    pub benches: Vec<String>,
    /// Policy to arbitrate them.
    pub policy: PolicyKind,
    /// Machine configuration (threads must equal `benches.len()`).
    pub config: SimConfig,
    /// Random seed for the trace generators.
    pub seed: u64,
    /// Functional cache warm-up (instructions per thread).
    pub prewarm_insts: u64,
    /// Timed warm-up cycles (discarded).
    pub warmup_cycles: u64,
    /// Measured cycles.
    pub measure_cycles: u64,
}

impl RunSpec {
    /// Standard measurement lengths: 400k-instruction functional warm-up,
    /// 30k-cycle timed warm-up, 250k measured cycles.
    pub fn new(benches: &[&str], policy: PolicyKind) -> Self {
        let mut config = SimConfig::baseline(benches.len());
        config.threads = benches.len();
        RunSpec {
            benches: benches.iter().map(|b| b.to_string()).collect(),
            policy,
            config,
            seed: 42,
            prewarm_insts: 400_000,
            warmup_cycles: 30_000,
            measure_cycles: 250_000,
        }
    }

    /// Builds a spec for the benchmarks of a Table-4 workload.
    pub fn for_workload(workload: &Workload, policy: PolicyKind) -> Self {
        let names: Vec<&str> = workload.benchmarks.iter().map(|s| s.as_str()).collect();
        RunSpec::new(&names, policy)
    }

    /// Replaces the machine configuration (keeps `threads` consistent).
    pub fn with_config(mut self, mut config: SimConfig) -> Self {
        config.threads = self.benches.len();
        self.config = config;
        self
    }
}

/// Result of a run, with the memory statistics snapshot the experiments
/// need in addition to the pipeline statistics.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Pipeline-side result (IPCs, fetch counts, MLP, ...).
    pub result: SimResult,
    /// Per-thread memory statistics (L1/L2 miss rates).
    pub mem: Vec<smt_mem::ThreadMemStats>,
}

impl RunOutcome {
    /// Convenience: per-thread IPCs.
    pub fn ipcs(&self) -> Vec<f64> {
        self.result.ipcs()
    }

    /// Convenience: IPC throughput.
    pub fn throughput(&self) -> f64 {
        self.result.throughput()
    }
}

/// Executes run specs and caches single-thread baseline IPCs.
///
/// # Examples
///
/// ```
/// use smt_experiments::{PolicyKind, Runner, RunSpec};
///
/// let runner = Runner::new();
/// let mut spec = RunSpec::new(&["gzip"], PolicyKind::Icount);
/// spec.prewarm_insts = 10_000; // tiny run for the example
/// spec.warmup_cycles = 1_000;
/// spec.measure_cycles = 5_000;
/// let out = runner.run(&spec);
/// assert!(out.throughput() > 0.0);
/// ```
#[derive(Debug, Default)]
pub struct Runner {
    baselines: Mutex<HashMap<String, f64>>,
}

impl Runner {
    /// Creates a runner with an empty baseline cache.
    pub fn new() -> Self {
        Runner::default()
    }

    /// Runs one spec to completion.
    ///
    /// # Panics
    ///
    /// Panics if a benchmark name is unknown.
    pub fn run(&self, spec: &RunSpec) -> RunOutcome {
        let profiles: Vec<_> = spec
            .benches
            .iter()
            .map(|b| spec::profile(b).unwrap_or_else(|| panic!("unknown benchmark {b}")))
            .collect();
        let mut sim = Simulator::new(
            spec.config.clone(),
            &profiles,
            spec.policy.build(),
            spec.seed,
        );
        sim.prewarm(spec.prewarm_insts);
        sim.run_cycles(spec.warmup_cycles);
        sim.reset_stats();
        sim.run_cycles(spec.measure_cycles);
        let mem = (0..spec.benches.len())
            .map(|i| sim.memory().thread_stats(ThreadId::new(i)))
            .collect();
        RunOutcome {
            result: sim.result(),
            mem,
        }
    }

    /// Runs many specs in parallel on a pool of worker threads fed from a
    /// shared work queue (an atomic next-spec index). Unlike chunked
    /// spawn-join, a straggling simulation never barriers the rest of its
    /// chunk: every finished worker immediately claims the next spec.
    /// Results are in spec order and identical to sequential runs (each
    /// simulation is seeded and self-contained).
    pub fn run_all(&self, specs: &[RunSpec]) -> Vec<RunOutcome> {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(specs.len().max(1));
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<RunOutcome>>> =
            (0..specs.len()).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(spec) = specs.get(i) else { break };
                    let outcome = self.run(spec);
                    *slots[i].lock().expect("poisoned result slot") = Some(outcome);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("poisoned result slot")
                    .expect("worker pool covered every spec")
            })
            .collect()
    }

    /// Single-thread baseline IPC of `bench` on `config` (ICOUNT, full
    /// machine), cached per (bench, machine shape).
    pub fn single_ipc(&self, bench: &str, config: &SimConfig, lengths: &RunSpec) -> f64 {
        let key = format!(
            "{bench}|{}|{}|{}|{}",
            config.phys_regs, config.iq_entries, config.mem.memory_latency, config.mem.l2.latency
        );
        if let Some(v) = self.baselines.lock().expect("poisoned").get(&key) {
            return *v;
        }
        let mut spec = RunSpec::new(&[bench], PolicyKind::Icount);
        spec.config = {
            let mut c = config.clone();
            c.threads = 1;
            c
        };
        spec.prewarm_insts = lengths.prewarm_insts;
        spec.warmup_cycles = lengths.warmup_cycles;
        spec.measure_cycles = lengths.measure_cycles;
        let ipc = self.run(&spec).throughput();
        self.baselines.lock().expect("poisoned").insert(key, ipc);
        ipc
    }

    /// Single-thread baselines for every benchmark of a workload.
    pub fn single_ipcs(
        &self,
        workload: &Workload,
        config: &SimConfig,
        lengths: &RunSpec,
    ) -> Vec<f64> {
        workload
            .benchmarks
            .iter()
            .map(|b| self.single_ipc(b, config, lengths))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(benches: &[&str], policy: PolicyKind) -> RunSpec {
        let mut s = RunSpec::new(benches, policy);
        s.prewarm_insts = 20_000;
        s.warmup_cycles = 2_000;
        s.measure_cycles = 10_000;
        s
    }

    #[test]
    fn policy_kinds_build_and_name() {
        for k in [
            PolicyKind::RoundRobin,
            PolicyKind::Icount,
            PolicyKind::Stall,
            PolicyKind::Flush,
            PolicyKind::FlushPlusPlus,
            PolicyKind::DataGating,
            PolicyKind::PredictiveDataGating,
            PolicyKind::Sra,
            PolicyKind::Dcra(DcraConfig::default()),
        ] {
            assert_eq!(k.build().name(), k.name());
        }
    }

    #[test]
    fn run_produces_progress() {
        let r = Runner::new();
        let out = r.run(&tiny(&["gzip", "twolf"], PolicyKind::Icount));
        assert!(out.throughput() > 0.1);
        assert_eq!(out.mem.len(), 2);
    }

    #[test]
    fn run_all_matches_individual_runs() {
        let r = Runner::new();
        let specs = vec![
            tiny(&["gzip"], PolicyKind::Icount),
            tiny(&["twolf"], PolicyKind::Dcra(DcraConfig::default())),
        ];
        let batch = r.run_all(&specs);
        let solo0 = r.run(&specs[0]);
        let solo1 = r.run(&specs[1]);
        assert_eq!(
            batch[0].result, solo0.result,
            "parallel run must be deterministic"
        );
        assert_eq!(batch[1].result, solo1.result);
    }

    #[test]
    fn baseline_cache_hits() {
        let r = Runner::new();
        let lengths = tiny(&["gzip"], PolicyKind::Icount);
        let cfg = SimConfig::baseline(1);
        let a = r.single_ipc("gzip", &cfg, &lengths);
        let b = r.single_ipc("gzip", &cfg, &lengths);
        assert_eq!(a, b);
        assert!(a > 0.5);
    }
}
