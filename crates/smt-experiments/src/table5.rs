//! Paper Table 5: how often the two threads of 2-thread workloads are in
//! the same or different phases (slow/slow, fast/slow, fast/fast).
//!
//! The phase signal is the paper's own criterion: a thread is *slow* while
//! it has pending L1 data misses (Section 3.1.1).

use crate::fault::RunError;
use crate::tables::TextTable;
use smt_isa::ThreadId;
use smt_sim::{SimConfig, Simulator};
use smt_workloads::{spec, workloads_of, WorkloadType};

/// Phase-combination shares for one workload class, in percent.
#[derive(Debug, Clone, Copy)]
pub struct PhaseDistribution {
    /// Both threads slow.
    pub slow_slow: f64,
    /// One slow, one fast.
    pub mixed: f64,
    /// Both fast.
    pub fast_fast: f64,
}

/// Paper Table 5 values (percent) for comparison.
pub const PAPER: [(WorkloadType, PhaseDistribution); 3] = [
    (
        WorkloadType::Ilp,
        PhaseDistribution {
            slow_slow: 7.8,
            mixed: 41.4,
            fast_fast: 50.8,
        },
    ),
    (
        WorkloadType::Mix,
        PhaseDistribution {
            slow_slow: 25.6,
            mixed: 63.2,
            fast_fast: 11.2,
        },
    ),
    (
        WorkloadType::Mem,
        PhaseDistribution {
            slow_slow: 85.0,
            mixed: 14.7,
            fast_fast: 0.3,
        },
    ),
];

/// Samples the phase combination every cycle for all four groups of each
/// 2-thread workload class.
///
/// # Errors
///
/// [`RunError::UnknownBenchmark`] if a Table-4 workload names a benchmark
/// missing from the registry — typed like every other driver since PR 7,
/// instead of panicking mid-sweep.
pub fn run(cycles_per_workload: u64) -> Result<Vec<(WorkloadType, PhaseDistribution)>, RunError> {
    let mut rows = Vec::with_capacity(WorkloadType::ALL.len());
    for &kind in WorkloadType::ALL.iter() {
        let mut counts = [0u64; 3];
        for w in workloads_of(kind, 2) {
            let profiles = w
                .benchmarks
                .iter()
                .map(|b| {
                    spec::profile(b).ok_or_else(|| RunError::UnknownBenchmark { bench: b.clone() })
                })
                .collect::<Result<Vec<_>, RunError>>()?;
            let mut sim =
                Simulator::new(SimConfig::baseline(2), &profiles, smt_policies::Icount, 42);
            sim.prewarm(300_000);
            sim.run_cycles(20_000);
            for _ in 0..cycles_per_workload {
                sim.step();
                let slow0 = sim.thread_l1d_pending(ThreadId::new(0)) > 0;
                let slow1 = sim.thread_l1d_pending(ThreadId::new(1)) > 0;
                let idx = match (slow0, slow1) {
                    (true, true) => 0,
                    (false, false) => 2,
                    _ => 1,
                };
                counts[idx] += 1;
            }
        }
        let total: u64 = counts.iter().sum();
        let pct = |c: u64| 100.0 * c as f64 / total.max(1) as f64;
        rows.push((
            kind,
            PhaseDistribution {
                slow_slow: pct(counts[0]),
                mixed: pct(counts[1]),
                fast_fast: pct(counts[2]),
            },
        ));
    }
    Ok(rows)
}

/// The paper's Table-5 distribution for one workload class, if the paper
/// reports it (the paper covers exactly ILP/MIX/MEM).
pub fn paper_row(kind: WorkloadType) -> Option<PhaseDistribution> {
    PAPER.iter().find(|(k, _)| *k == kind).map(|(_, p)| *p)
}

/// Formats measured-vs-paper distributions. A class the paper does not
/// report renders its paper columns as explicit "—" markers instead of
/// dropping the measured row or dying on the lookup.
pub fn report(rows: &[(WorkloadType, PhaseDistribution)]) -> TextTable {
    let mut t = TextTable::new(&[
        "workload", "SS ours", "SS paper", "SF ours", "SF paper", "FF ours", "FF paper",
    ]);
    for (kind, d) in rows {
        let fmt_paper = |f: fn(&PhaseDistribution) -> f64| {
            paper_row(*kind)
                .map(|p| format!("{:.1}", f(&p)))
                .unwrap_or_else(|| "—".to_string())
        };
        t.row_owned(vec![
            kind.to_string(),
            format!("{:.1}", d.slow_slow),
            fmt_paper(|p| p.slow_slow),
            format!("{:.1}", d.mixed),
            fmt_paper(|p| p.mixed),
            format!("{:.1}", d.fast_fast),
            fmt_paper(|p| p.fast_fast),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Short sampling run: the qualitative ordering of Table 5 must hold —
    /// MEM workloads spend the most time slow-slow, ILP the least.
    #[test]
    fn phase_ordering_matches_paper() {
        let rows = run(15_000).expect("registry benchmarks");
        let get = |k: WorkloadType| {
            rows.iter()
                .find(|(kind, _)| *kind == k)
                .unwrap_or_else(|| panic!("run() must cover {k}"))
                .1
        };
        let ilp = get(WorkloadType::Ilp);
        let mem = get(WorkloadType::Mem);
        assert!(
            mem.slow_slow > ilp.slow_slow,
            "MEM SS ({:.1}) must exceed ILP SS ({:.1})",
            mem.slow_slow,
            ilp.slow_slow
        );
        assert!(
            ilp.fast_fast > mem.fast_fast,
            "ILP FF ({:.1}) must exceed MEM FF ({:.1})",
            ilp.fast_fast,
            mem.fast_fast
        );
        for (_, d) in &rows {
            let sum = d.slow_slow + d.mixed + d.fast_fast;
            assert!((sum - 100.0).abs() < 1e-6, "shares must sum to 100");
        }
    }
}
