//! Paper Figure 2: average single-thread IPC as the share of one resource
//! class shrinks, with a perfect data L1.
//!
//! The paper's setup: 160 rename registers, 32-entry issue queues, perfect
//! DL1; each benchmark runs alone but may only use X% of one resource class
//! (12.5%..100%). The result motivates DCRA: threads without misses reach
//! ~90% of full speed with only ~37.5% of the resources.

use crate::fault::RunError;
use crate::runner::{PolicyKind, RunSpec, Runner};
use crate::tables::TextTable;
use smt_isa::{PerResource, ResourceKind};
use smt_sim::SimConfig;
use smt_workloads::spec;

/// The resource shares the paper sweeps (fractions of the total).
pub const FRACTIONS: [f64; 8] = [0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1.0];

/// Result: for each resource class, the average relative IPC at each
/// fraction (1.0 = full-resource speed).
#[derive(Debug, Clone)]
pub struct Fig2Result {
    /// Swept resource.
    pub resource: ResourceKind,
    /// `(fraction, average relative IPC)` series.
    pub series: Vec<(f64, f64)>,
}

/// The machine of the Figure-2 experiment: baseline with 32-entry queues,
/// 160 rename registers (192 physical at 1 thread) and a perfect DL1.
pub fn fig2_config() -> SimConfig {
    let mut c = SimConfig::baseline(1);
    c.iq_entries = 32;
    c.phys_regs = 160 + c.arch_regs_per_thread;
    c.mem.perfect_dl1 = true;
    c
}

fn benches_for(resource: ResourceKind) -> Vec<&'static str> {
    // The paper averages FP resources over FP benchmarks only (footnote 1).
    // For the integer resources we use a representative half of the suite
    // (4 MEM + 4 ILP) — the sweep is 8 fractions x benchmarks x 5
    // resources and the average is insensitive to the exact subset.
    if resource.is_fp() {
        spec::names()
            .into_iter()
            .filter(|n| spec::profile(n).map(|p| p.mix.uses_fp()).unwrap_or(false))
            .collect()
    } else {
        vec![
            "mcf", "art", "twolf", "equake", "gzip", "gcc", "gap", "crafty",
        ]
    }
}

/// Runs the sweep for every resource class. `measure_cycles` trades
/// precision for time (the paper's full sweep is hundreds of runs).
/// Fails on the first run error (the specs are built from the trusted
/// registry, so only a broken machine configuration can do that).
pub fn run(runner: &Runner, measure_cycles: u64) -> Result<Vec<Fig2Result>, RunError> {
    let config = fig2_config();
    let mut results = Vec::new();
    for resource in ResourceKind::ALL {
        let benches = benches_for(resource);
        // Full-speed baselines per benchmark.
        let mut specs: Vec<RunSpec> = Vec::new();
        for frac in FRACTIONS {
            for b in &benches {
                let total = config.resource_totals()[resource];
                let cap = ((f64::from(total) * frac).round() as u32).max(1);
                let mut caps = PerResource::<Option<u32>>::default();
                caps[resource] = Some(cap);
                let mut s =
                    RunSpec::new(&[b], PolicyKind::SraCapped(caps)).with_config(config.clone());
                s.measure_cycles = measure_cycles;
                s.prewarm_insts = 150_000;
                s.warmup_cycles = 10_000;
                specs.push(s);
            }
        }
        let outs = runner.run_all(&specs)?;
        let per_frac = benches.len();
        let full_speed: Vec<f64> = outs[outs.len() - per_frac..]
            .iter()
            .map(|o| o.throughput())
            .collect();
        let series = FRACTIONS
            .iter()
            .enumerate()
            .map(|(fi, &frac)| {
                let rel: f64 = outs[fi * per_frac..(fi + 1) * per_frac]
                    .iter()
                    .zip(&full_speed)
                    .map(|(o, &full)| {
                        if full > 0.0 {
                            o.throughput() / full
                        } else {
                            0.0
                        }
                    })
                    .sum::<f64>()
                    / per_frac as f64;
                (frac, rel)
            })
            .collect();
        results.push(Fig2Result { resource, series });
    }
    Ok(results)
}

/// Formats the sweep like the paper's figure (rows = % resources, columns =
/// resource class).
pub fn report(results: &[Fig2Result]) -> TextTable {
    let mut header = vec!["% of resource".to_string()];
    header.extend(results.iter().map(|r| r.resource.to_string()));
    let headers: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut t = TextTable::new(&headers);
    for (i, &frac) in FRACTIONS.iter().enumerate() {
        let mut row = vec![format!("{:.1}", frac * 100.0)];
        for r in results {
            row.push(format!("{:.3}", r.series[i].1));
        }
        t.row_owned(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_matches_paper_setup() {
        let c = fig2_config();
        assert_eq!(c.iq_entries, 32);
        assert_eq!(c.rename_pool(), 160);
        assert!(c.mem.perfect_dl1);
    }

    #[test]
    fn fp_sweeps_use_fp_benchmarks_only() {
        let b = benches_for(ResourceKind::FpQueue);
        assert!(b.contains(&"swim"));
        assert!(!b.contains(&"gzip"));
        let ints = benches_for(ResourceKind::IntQueue);
        assert_eq!(ints.len(), 8);
    }

    /// Tiny-scale behavioural check: a thread with 12.5% of the LS queue
    /// must be slower than with 100%, and 100% equals itself.
    #[test]
    fn shrinking_a_resource_costs_ipc() {
        let runner = Runner::new();
        let config = fig2_config();
        let make = |cap: Option<u32>| {
            let mut caps = PerResource::<Option<u32>>::default();
            caps[ResourceKind::LsQueue] = cap.map(|c| c.max(1));
            let mut s =
                RunSpec::new(&["gzip"], PolicyKind::SraCapped(caps)).with_config(config.clone());
            s.prewarm_insts = 50_000;
            s.warmup_cycles = 5_000;
            s.measure_cycles = 40_000;
            s
        };
        let small = runner.run(&make(Some(4))).expect("valid spec").throughput();
        let full = runner
            .run(&make(Some(32)))
            .expect("valid spec")
            .throughput();
        assert!(
            small < full,
            "4-entry LSQ ({small:.2}) should be slower than 32-entry ({full:.2})"
        );
    }
}
