//! Paper Table 3: per-benchmark L2 miss rates and the MEM/ILP split
//! (the calibration target of the synthetic workload substrate).

use crate::fault::RunError;
use crate::runner::{PolicyKind, RunSpec, Runner};
use crate::tables::TextTable;
use smt_workloads::spec;

/// One benchmark's calibration outcome.
#[derive(Debug, Clone)]
pub struct BenchCalibration {
    /// Benchmark name.
    pub name: String,
    /// Measured single-thread IPC.
    pub ipc: f64,
    /// Measured L1 data miss rate (fraction).
    pub l1_rate: f64,
    /// Measured L2 miss rate (fraction of L2 accesses).
    pub l2_rate: f64,
    /// The paper's Table-3 L2 miss rate (percent).
    pub paper_l2_pct: f64,
    /// MEM by the paper's criterion (paper value ≥ 1%).
    pub paper_mem: bool,
    /// MEM by our measurement (≥ 1%).
    pub measured_mem: bool,
}

/// Runs every benchmark single-threaded and measures its cache behaviour.
/// Uses longer runs than the policy experiments so the L2-resident working
/// sets reach steady state.
pub fn run(runner: &Runner) -> Result<Vec<BenchCalibration>, RunError> {
    let specs: Vec<RunSpec> = spec::names()
        .iter()
        .map(|name| {
            let mut s = RunSpec::new(&[name], PolicyKind::Icount);
            s.prewarm_insts = 600_000;
            s.warmup_cycles = 50_000;
            s.measure_cycles = 400_000;
            s
        })
        .collect();
    let outs = runner.run_all(&specs)?;
    Ok(spec::names()
        .iter()
        .zip(outs)
        .map(|(name, out)| {
            let m = out.mem.first().copied().unwrap_or_default();
            let paper = spec::paper_l2_miss_pct(name).unwrap_or(0.0);
            BenchCalibration {
                name: name.to_string(),
                ipc: out.throughput(),
                l1_rate: m.l1_miss_rate(),
                l2_rate: m.l2_miss_rate(),
                paper_l2_pct: paper,
                paper_mem: paper >= 1.0,
                measured_mem: m.l2_miss_rate() * 100.0 >= 1.0,
            }
        })
        .collect())
}

/// Formats the calibration as paper-vs-measured.
pub fn report(rows: &[BenchCalibration]) -> TextTable {
    let mut t = TextTable::new(&[
        "bench",
        "type",
        "IPC",
        "L1 miss%",
        "L2 miss% (ours)",
        "L2 miss% (paper)",
        "class ok",
    ]);
    for r in rows {
        t.row_owned(vec![
            r.name.clone(),
            if r.paper_mem { "MEM" } else { "ILP" }.to_string(),
            format!("{:.2}", r.ipc),
            format!("{:.1}", r.l1_rate * 100.0),
            format!("{:.1}", r.l2_rate * 100.0),
            format!("{:.1}", r.paper_l2_pct),
            if r.paper_mem == r.measured_mem {
                "yes"
            } else {
                "NO"
            }
            .to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Shortened calibration smoke test: the headline MEM benchmark and an
    /// ILP benchmark must land on the right side of the 1% line.
    #[test]
    fn mcf_is_mem_gzip_is_ilp() {
        let runner = Runner::new();
        let mut mcf = RunSpec::new(&["mcf"], PolicyKind::Icount);
        mcf.prewarm_insts = 300_000;
        mcf.warmup_cycles = 20_000;
        mcf.measure_cycles = 150_000;
        let out = runner.run(&mcf).expect("known bench");
        assert!(
            out.mem[0].l2_miss_rate() > 0.01,
            "mcf L2 miss rate {:.3} should exceed 1%",
            out.mem[0].l2_miss_rate()
        );

        let mut gz = RunSpec::new(&["gzip"], PolicyKind::Icount);
        gz.prewarm_insts = 300_000;
        gz.warmup_cycles = 20_000;
        gz.measure_cycles = 150_000;
        let out = runner.run(&gz).expect("known bench");
        assert!(
            out.mem[0].l2_miss_rate() < 0.01,
            "gzip L2 miss rate {:.3} should be below 1%",
            out.mem[0].l2_miss_rate()
        );
    }
}
