//! Paper Figure 5: DCRA vs the fetch policies ICOUNT, DG and FLUSH++ —
//! (a) raw IPC throughput per workload class, (b) Hmean improvement of
//! DCRA over each policy.

use crate::fault::RunError;
use crate::runner::{PolicyKind, Runner};
use crate::sweep::{sweep_lengths, sweep_policy, PolicySweep};
use crate::tables::{f2, pct, TextTable};
use smt_metrics::improvement_pct;
use smt_sim::SimConfig;

/// All four sweeps of the comparison.
#[derive(Debug, Clone)]
pub struct Fig5Result {
    /// ICOUNT sweep.
    pub icount: PolicySweep,
    /// DG sweep.
    pub dg: PolicySweep,
    /// FLUSH++ sweep.
    pub flushpp: PolicySweep,
    /// DCRA sweep.
    pub dcra: PolicySweep,
}

impl Fig5Result {
    /// The baseline sweeps DCRA is compared against.
    pub fn baselines(&self) -> [&PolicySweep; 3] {
        [&self.icount, &self.dg, &self.flushpp]
    }

    /// Average Hmean improvement of DCRA over `baseline`
    /// (paper: ICOUNT +18%, DG +41%, FLUSH++ +4%).
    pub fn avg_hmean_improvement(&self, baseline: &PolicySweep) -> f64 {
        improvement_pct(self.dcra.average().hmean, baseline.average().hmean)
    }

    /// Average throughput improvement of DCRA over `baseline`
    /// (paper: ICOUNT +24%, DG +30%, FLUSH++ +1%).
    pub fn avg_throughput_improvement(&self, baseline: &PolicySweep) -> f64 {
        improvement_pct(
            self.dcra.average().throughput,
            baseline.average().throughput,
        )
    }
}

/// Runs the four policies over the full Table-4 workload set.
pub fn run(runner: &Runner) -> Result<Fig5Result, RunError> {
    let config = SimConfig::baseline(2);
    let lengths = sweep_lengths();
    Ok(Fig5Result {
        icount: sweep_policy(runner, &PolicyKind::Icount, &config, &lengths)?,
        dg: sweep_policy(runner, &PolicyKind::DataGating, &config, &lengths)?,
        flushpp: sweep_policy(runner, &PolicyKind::FlushPlusPlus, &config, &lengths)?,
        dcra: sweep_policy(
            runner,
            &PolicyKind::dcra_for_latency(300),
            &config,
            &lengths,
        )?,
    })
}

/// Figure 5(a): IPC throughput per class and policy.
pub fn report_throughput(result: &Fig5Result) -> TextTable {
    let mut t = TextTable::new(&["class", "ICOUNT", "DG", "FLUSH++", "DCRA"]);
    for (threads, kind, d) in &result.dcra.classes {
        t.row_owned(vec![
            format!("{kind}{threads}"),
            f2(result.icount.class(*threads, *kind).throughput),
            f2(result.dg.class(*threads, *kind).throughput),
            f2(result.flushpp.class(*threads, *kind).throughput),
            f2(d.throughput),
        ]);
    }
    t
}

/// Figure 5(b): Hmean improvement of DCRA over each fetch policy per class.
pub fn report_hmean(result: &Fig5Result) -> TextTable {
    let mut t = TextTable::new(&["class", "vs ICOUNT", "vs DG", "vs FLUSH++"]);
    for (threads, kind, d) in &result.dcra.classes {
        t.row_owned(vec![
            format!("{kind}{threads}"),
            pct(improvement_pct(
                d.hmean,
                result.icount.class(*threads, *kind).hmean,
            )),
            pct(improvement_pct(
                d.hmean,
                result.dg.class(*threads, *kind).hmean,
            )),
            pct(improvement_pct(
                d.hmean,
                result.flushpp.class(*threads, *kind).hmean,
            )),
        ]);
    }
    t.row_owned(vec![
        "avg".to_string(),
        pct(result.avg_hmean_improvement(&result.icount)),
        pct(result.avg_hmean_improvement(&result.dg)),
        pct(result.avg_hmean_improvement(&result.flushpp)),
    ]);
    t
}
