//! Experiment drivers reproducing every table and figure of the paper's
//! evaluation (Section 5), plus the calibration tables of Section 4.
//!
//! Each paper artefact has a module with a `run(...)` entry point returning
//! a structured result and a formatted text table; the `bin/` targets print
//! them. `EXPERIMENTS.md` records paper-vs-measured values.
//!
//! | Module | Paper artefact |
//! |--------|----------------|
//! | [`fig2`] | Fig. 2 — single-thread speed vs resource share (perfect DL1) |
//! | [`table1`] | Table 1 — pre-computed DCRA allocations |
//! | [`table3`] | Table 3 — per-benchmark L2 miss rates (calibration) |
//! | `table4` (bin) | Table 4 — the 36 multiprogrammed workloads |
//! | [`table5`] | Table 5 — phase distribution of 2-thread workloads |
//! | [`fig4`] | Fig. 4 — DCRA vs static allocation (throughput/Hmean) |
//! | [`fig5`] | Fig. 5 — DCRA vs ICOUNT/DG/FLUSH++ |
//! | [`fig6`] | Fig. 6 — register-file size sensitivity |
//! | [`fig7`] | Fig. 7 — memory-latency sensitivity |
//! | [`extra`] | §5.2 — front-end activity and memory parallelism |
//! | [`ablation`] | design-choice ablations (activity window, sharing factor, DCRA-DC, ROM implementation) |
//! | [`partitioning`] | §5.1 partial static partitioning vs dynamic allocation |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod chaos;
pub mod extra;
pub mod fault;
pub mod fig2;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod partitioning;
pub mod runner;
pub mod scenarios;
pub mod sweep;
pub mod table1;
pub mod table3;
pub mod table5;
pub mod tables;

pub use fault::{EngineOptions, EngineReport, InjectedFault, RetryPolicy, RunError};
pub use runner::{PolicyKind, RunOutcome, RunSpec, RunStats, Runner, SimSession};
