//! Fault-domain vocabulary for the experiment engine: the typed error a
//! single run can die with, the retry/backoff policy for transient
//! failures, and the per-engine options (budgets, admission control) the
//! isolated work queue enforces.
//!
//! The design goal is the property the paper assumes of real SMT
//! hardware: a misbehaving workload degrades *its own* results, never the
//! machine running the other threads. Every failure mode of a run —
//! panicking policy code, invalid machine configuration, unknown
//! benchmark, livelock, cycle-budget exhaustion, queue rejection — maps
//! to one [`RunError`] variant carried in a
//! [`RunOutcome::Failed`](crate::runner::RunOutcome::Failed), and sibling
//! runs in the same sweep are unaffected.

use smt_sim::watch::BudgetBreach;
use smt_sim::RunBudget;
use std::time::Duration;

/// Why a single run failed. Clonable and comparable so sweep reports can
/// carry, deduplicate and assert on failures.
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// A benchmark name resolved to no registry profile (and the spec
    /// carried no profile overrides).
    UnknownBenchmark {
        /// The unresolvable benchmark name.
        bench: String,
    },
    /// The spec's machine configuration failed
    /// [`SimConfig::validate`](smt_sim::SimConfig::validate), or its
    /// profile overrides did not cover every thread.
    InvalidSpec {
        /// The validation message.
        message: String,
    },
    /// Policy or simulator code panicked mid-run. The worker's simulator
    /// is discarded (its state may be arbitrarily corrupt); the panic is
    /// contained to this run.
    Panicked {
        /// The panic payload, if it was a string.
        message: String,
    },
    /// The run advanced a full livelock window without committing a
    /// single instruction (see
    /// [`RunBudget::livelock_window`]).
    Livelock {
        /// The configured window.
        window: u64,
        /// Cycle at which the breach was observed.
        at_cycle: u64,
        /// Last checkpoint with visible commit progress.
        last_progress_cycle: u64,
        /// Committed instructions at the breach.
        committed: u64,
    },
    /// The run hit its hard cycle cap (see [`RunBudget::max_cycles`]).
    CycleBudget {
        /// The configured cap.
        limit: u64,
        /// Committed instructions when the cap was hit.
        committed: u64,
    },
    /// The work queue was full: admission control rejected the run before
    /// it ever executed (see [`EngineOptions::queue_capacity`]).
    QueueFull {
        /// The configured capacity.
        capacity: usize,
        /// The depth the submission would have required.
        depth: usize,
    },
}

impl RunError {
    /// `true` for failures worth retrying: the failure may not reproduce
    /// on a fresh simulator (panics — which can be environmental or
    /// injected). Deterministic failures (invalid specs, unknown
    /// benchmarks, budget breaches, queue rejection) would fail
    /// identically on every attempt and are never retried.
    pub fn is_transient(&self) -> bool {
        matches!(self, RunError::Panicked { .. })
    }

    pub(crate) fn from_breach(breach: BudgetBreach) -> Self {
        match breach {
            BudgetBreach::CycleCap {
                limit, committed, ..
            } => RunError::CycleBudget { limit, committed },
            BudgetBreach::Livelock {
                window,
                at_cycle,
                last_progress_cycle,
                committed,
            } => RunError::Livelock {
                window,
                at_cycle,
                last_progress_cycle,
                committed,
            },
        }
    }
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::UnknownBenchmark { bench } => write!(f, "unknown benchmark `{bench}`"),
            RunError::InvalidSpec { message } => {
                write!(f, "invalid run spec configuration: {message}")
            }
            RunError::Panicked { message } => write!(f, "run panicked: {message}"),
            RunError::Livelock {
                window,
                at_cycle,
                last_progress_cycle,
                committed,
            } => write!(
                f,
                "livelock: no commit progress for {window} cycles (at cycle \
                 {at_cycle}, last progress checkpoint {last_progress_cycle}, \
                 {committed} committed)"
            ),
            RunError::CycleBudget { limit, committed } => write!(
                f,
                "cycle budget exhausted: limit {limit}, {committed} committed"
            ),
            RunError::QueueFull { capacity, depth } => write!(
                f,
                "work queue full: capacity {capacity}, submission depth {depth}"
            ),
        }
    }
}

impl std::error::Error for RunError {}

/// Bounded retry-with-backoff for transient run failures.
///
/// Attempts are deterministic: the retried run replays the same spec and
/// seed on a fresh simulator, so a successful retry is bit-identical to a
/// first-attempt success (pinned by the retry-determinism test in the
/// golden suite). Backoff is exponential from `base_backoff`, capped at
/// `max_backoff`; the default base is zero so tests never sleep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per run, including the first (minimum 1).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub base_backoff: Duration,
    /// Upper bound on any single backoff sleep.
    pub max_backoff: Duration,
}

impl RetryPolicy {
    /// No retries: one attempt, fail fast. The engine default.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        }
    }

    /// Up to `attempts` attempts with no backoff sleeps — deterministic
    /// wall-clock behaviour for tests and soak harnesses.
    pub fn immediate(attempts: u32) -> Self {
        RetryPolicy {
            max_attempts: attempts.max(1),
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        }
    }

    /// The backoff to sleep before retry number `retry` (1-based: the
    /// sleep before the second attempt is `backoff_for(1)`). Exponential
    /// doubling from `base_backoff`, saturating at `max_backoff`.
    pub fn backoff_for(&self, retry: u32) -> Duration {
        if self.base_backoff.is_zero() {
            return Duration::ZERO;
        }
        let factor = 1u32 << retry.saturating_sub(1).min(16);
        self.base_backoff
            .saturating_mul(factor)
            .min(self.max_backoff)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::none()
    }
}

/// Options for the fault-isolated work queue
/// ([`Runner::run_isolated`](crate::runner::Runner::run_isolated)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineOptions {
    /// Default per-run budget for specs that carry none of their own
    /// ([`RunSpec::budget`](crate::runner::RunSpec::budget) overrides).
    pub budget: RunBudget,
    /// Retry policy for transient failures.
    pub retry: RetryPolicy,
    /// Admission control: maximum queue depth. Submissions beyond this
    /// are rejected up front with [`RunError::QueueFull`] instead of
    /// executing (`None` = unbounded).
    pub queue_capacity: Option<usize>,
}

/// What the isolated engine observed while draining one queue — the
/// sweep-level fault report.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineReport {
    /// Runs that completed and delivered statistics.
    pub completed: usize,
    /// Runs that failed with a typed [`RunError`] (including rejections).
    pub failed: usize,
    /// Spec indices rejected by admission control (a subset of `failed`).
    pub rejected: usize,
    /// Spec indices whose *sink callback* panicked. The outcome of such a
    /// run is lost to the consumer, but the panic was contained: sibling
    /// runs kept draining the queue and the shared sink lock was recovered
    /// rather than poisoned. Sorted ascending.
    pub sink_panics: Vec<usize>,
}

/// A deterministic fault to inject into a run — the hook the chaos
/// harness (see [`crate::chaos`]) uses to make runs fail on purpose.
/// Carried on [`RunSpec::fault`](crate::runner::RunSpec::fault); `None`
/// everywhere outside fault-injection tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// Wrap the run's policy so it panics once the simulation reaches
    /// `at_cycle` — but only while the attempt number is below
    /// `fail_attempts`, so a transient fault (`fail_attempts: 1`) panics
    /// on the first attempt and completes cleanly on the retry.
    PanicAtCycle {
        /// Cycle at (or after) which the wrapped policy panics.
        at_cycle: u64,
        /// Number of leading attempts that panic; later attempts run the
        /// unwrapped policy.
        fail_attempts: u32,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_panics_are_transient() {
        assert!(RunError::Panicked {
            message: "boom".into()
        }
        .is_transient());
        for err in [
            RunError::UnknownBenchmark { bench: "x".into() },
            RunError::InvalidSpec {
                message: "bad".into(),
            },
            RunError::Livelock {
                window: 8,
                at_cycle: 8,
                last_progress_cycle: 0,
                committed: 0,
            },
            RunError::CycleBudget {
                limit: 100,
                committed: 5,
            },
            RunError::QueueFull {
                capacity: 4,
                depth: 9,
            },
        ] {
            assert!(!err.is_transient(), "{err} must not be retried");
            assert!(!format!("{err}").is_empty());
        }
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let r = RetryPolicy {
            max_attempts: 5,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(35),
        };
        assert_eq!(r.backoff_for(1), Duration::from_millis(10));
        assert_eq!(r.backoff_for(2), Duration::from_millis(20));
        assert_eq!(r.backoff_for(3), Duration::from_millis(35), "capped");
        assert_eq!(RetryPolicy::none().backoff_for(1), Duration::ZERO);
        assert_eq!(RetryPolicy::immediate(3).backoff_for(2), Duration::ZERO);
    }

    #[test]
    fn immediate_clamps_to_one_attempt() {
        assert_eq!(RetryPolicy::immediate(0).max_attempts, 1);
    }
}
