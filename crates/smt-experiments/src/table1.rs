//! Paper Table 1: pre-computed DCRA allocation values for a 32-entry
//! resource on a 4-thread processor.

use crate::tables::TextTable;
use dcra::{allocation_table, SharingFactor, TableEntry};

/// The rows the paper prints in Table 1 (FA, SA, E_slow), in its order.
pub const PAPER_ROWS: [(u32, u32, u32); 10] = [
    (0, 1, 32),
    (1, 1, 24),
    (0, 2, 16),
    (2, 1, 18),
    (1, 2, 14),
    (0, 3, 11),
    (3, 1, 14),
    (2, 2, 12),
    (1, 3, 10),
    (0, 4, 8),
];

/// Regenerates Table 1 from the sharing model.
pub fn run() -> Vec<TableEntry> {
    allocation_table(32, 4, SharingFactor::Inverse)
}

/// The regenerated `E_slow` for one `(FA, SA)` row, or `None` when the
/// allocation table has no such row (a sharing-model regression).
pub fn e_slow_for(table: &[TableEntry], fa: u32, sa: u32) -> Option<u32> {
    table
        .iter()
        .find(|r| r.fast_active == fa && r.slow_active == sa)
        .map(|r| r.e_slow)
}

/// Formats the regenerated table alongside the paper's values. A paper
/// row the regenerated table does not cover renders as an explicit "—"
/// marker instead of a fabricated zero, so a sharing-model regression is
/// visible in the report rather than disguised as an allocation of 0.
pub fn report() -> TextTable {
    let table = run();
    let mut t = TextTable::new(&["entry", "FA", "SA", "E_slow (ours)", "E_slow (paper)"]);
    for (i, &(fa, sa, paper)) in PAPER_ROWS.iter().enumerate() {
        let ours = e_slow_for(&table, fa, sa)
            .map(|e| e.to_string())
            .unwrap_or_else(|| "—".to_string());
        t.row_owned(vec![
            (i + 1).to_string(),
            fa.to_string(),
            sa.to_string(),
            ours,
            paper.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regenerated_table_matches_paper_exactly() {
        let table = run();
        for &(fa, sa, expect) in &PAPER_ROWS {
            let e_slow =
                e_slow_for(&table, fa, sa).unwrap_or_else(|| panic!("missing row FA={fa} SA={sa}"));
            assert_eq!(e_slow, expect, "FA={fa} SA={sa}");
        }
    }

    #[test]
    fn report_has_ten_rows() {
        assert_eq!(report().len(), 10);
    }

    #[test]
    fn absent_rows_render_as_markers_not_zeros() {
        assert_eq!(e_slow_for(&run(), 99, 99), None, "no such (FA, SA) row");
    }
}
