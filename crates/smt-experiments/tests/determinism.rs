//! Golden-value determinism regression: every canonical policy, run for a
//! fixed cycle count at a fixed seed, must reproduce the exact simulation
//! output captured before the event-driven wakeup rewrite of the core.
//!
//! The wakeup scoreboard, the zero-allocation cycle loop, the
//! enum-dispatched `AnyPolicy` layer and the session-reusing runner are
//! pure performance work — they must change *speed*, never *behaviour*.
//! These summaries pin down committed/fetched/squashed counts, miss
//! counters, MLP accounting, per-thread blocking counters and the derived
//! IPC for all nine policies, so any semantic drift in the core fails
//! loudly. `PolicyKind::build` now yields statically-dispatched
//! [`AnyPolicy`] values, so passing these goldens is also the proof that
//! devirtualisation left every policy bit-identical; the session tests
//! below pin the same property for the reset-reuse path.
//!
//! To regenerate after an *intentional* model change, run with
//! `BLESS_GOLDENS=1 cargo test -p smt-experiments --test determinism -- --nocapture`
//! and paste the printed table over `GOLDEN`.

use smt_experiments::{PolicyKind, RunSpec, Runner, SimSession};
use smt_sim::policy::AnyPolicy;
use smt_sim::{SimConfig, Simulator};
use smt_workloads::spec;

const CYCLES: u64 = 50_000;
const SEED: u64 = 42;
const BENCHES: [&str; 4] = ["gzip", "mcf", "art", "gcc"];

/// The nine canonical policies of the paper's evaluation.
fn canonical_policies() -> Vec<PolicyKind> {
    [
        "RR", "ICOUNT", "STALL", "FLUSH", "FLUSH++", "DG", "PDG", "SRA", "DCRA",
    ]
    .iter()
    .map(|n| PolicyKind::from_name(n).expect("canonical policy"))
    .collect()
}

/// One-line digest of a run's full `SimResult`, stable across platforms
/// (integer counters plus a fixed-precision IPC).
fn summary(kind: &PolicyKind) -> String {
    let profiles: Vec<_> = BENCHES
        .iter()
        .map(|b| spec::profile(b).expect("known benchmark"))
        .collect();
    let mut sim = Simulator::new(
        SimConfig::baseline(BENCHES.len()),
        &profiles,
        kind.build(),
        SEED,
    );
    sim.run_cycles(CYCLES);
    let r = sim.result();
    let per = |f: &dyn Fn(&smt_sim::ThreadStats) -> u64| {
        r.threads
            .iter()
            .map(|t| f(t).to_string())
            .collect::<Vec<_>>()
            .join("/")
    };
    format!(
        "{} committed={} fetched={} squashed={} mispred={} loads={} l1d={} l2={} \
         gated={} mlp={}:{} blocked={}:{}:{}:{} ipc={:.6}",
        kind.name(),
        per(&|t| t.committed),
        per(&|t| t.fetched),
        per(&|t| t.squashed),
        per(&|t| t.mispredicts),
        per(&|t| t.loads),
        per(&|t| t.l1d_misses),
        per(&|t| t.l2_misses),
        per(&|t| t.gated_cycles),
        per(&|t| t.mlp_sum),
        per(&|t| t.mlp_cycles),
        per(&|t| t.blocked_rob),
        per(&|t| t.blocked_iq),
        per(&|t| t.blocked_regs),
        per(&|t| t.blocked_policy),
        r.throughput(),
    )
}

/// Captured on the pre-rewrite scan-based core (seed 42, 50k cycles,
/// gzip+mcf+art+gcc on the baseline 4-thread machine).
const GOLDEN: [&str; 9] = [
    "RR committed=9761/4647/6802/5056 fetched=16017/10948/11526/8729 squashed=6240/6178/4458/3673 mispred=619/539/275/462 loads=2613/1351/2080/1408 l1d=280/333/515/168 l2=192/245/281/126 gated=0/0/0/0 mlp=79608/106520/115409/59706:29750/40994/37288/25329 blocked=0/0/0/0:7355/8672/6143/7085:2323/1918/1844/1466:0/0/0/0 ipc=0.525320",
    "ICOUNT committed=13360/4552/7479/7959 fetched=22033/10729/12274/14382 squashed=8653/6085/4715/6236 mispred=793/581/296/628 loads=3594/1298/2320/2213 l1d=308/326/566/200 l2=191/239/298/143 gated=0/0/0/0 mlp=80892/105173/118143/64212:29311/41434/37791/27349 blocked=0/0/0/0:5909/7358/5098/4152:1857/1905/2062/925:0/0/0/0 ipc=0.667000",
    "STALL committed=9188/2788/3885/8168 fetched=14988/6336/5625/14380 squashed=5735/3513/1715/6144 mispred=575/404/134/593 loads=2404/766/1184/2224 l1d=259/248/326/199 l2=180/206/226/146 gated=95/642/1925/216 mlp=75271/89383/98547/67511:29969/38968/35773/29248 blocked=0/0/0/0:927/656/189/574:0/0/0/0:0/0/0/0 ipc=0.480580",
    "FLUSH committed=9260/2913/4204/8021 fetched=18236/10851/9693/15337 squashed=8975/7910/5488/7289 mispred=645/482/187/556 loads=2835/1011/1728/2387 l1d=270/257/356/195 l2=183/210/232/138 gated=56/84/77/59 mlp=76322/92770/100721/64521:29765/39066/37170/30232 blocked=0/0/0/0:5/44/6/75:0/0/0/0:0/0/0/0 ipc=0.487960",
    "FLUSH++ committed=9397/2843/4141/7959 fetched=17900/10229/8873/15472 squashed=8502/7385/4731/7512 mispred=624/489/171/566 loads=2803/983/1651/2361 l1d=288/249/340/188 l2=196/203/232/136 gated=82/86/241/56 mlp=78712/90919/100070/63240:30526/39004/37368/29397 blocked=0/0/0/0:17/16/0/6:0/0/0/0:0/0/0/0 ipc=0.486800",
    "DG committed=4397/1492/2389/4915 fetched=7373/2536/3021/8321 squashed=2918/1025/632/3406 mispred=366/202/79/401 loads=1160/405/707/1346 l1d=160/170/235/151 l2=138/154/193/122 gated=13987/19437/16669/8090 mlp=59385/69506/82858/59706:31046/36667/33950/28476 blocked=0/0/0/0:0/0/0/0:0/0/0/0:0/0/0/0 ipc=0.263860",
    "PDG committed=2293/1190/2044/3674 fetched=3693/1815/2363/5921 squashed=1400/618/319/2247 mispred=239/153/69/325 loads=621/310/588/1012 l1d=156/150/215/143 l2=137/138/181/125 gated=17756/21679/19702/11652 mlp=57780/61953/78748/58743:30368/34348/34022/29101 blocked=0/0/0/0:0/0/0/0:0/0/0/0:0/0/0/0 ipc=0.184020",
    "SRA committed=15715/3183/6520/8201 fetched=24849/6909/10773/14336 squashed=9048/3678/4128/6077 mispred=808/424/267/605 loads=4146/889/2011/2243 l1d=339/271/500/198 l2=201/216/282/149 gated=0/0/0/0 mlp=80913/96589/111378/68093:29813/41782/36297/29265 blocked=0/0/0/0:146/141/172/168:0/0/0/0:7389/14135/7837/4931 ipc=0.672380",
    "DCRA committed=15715/3376/7347/8806 fetched=24936/7712/12074/15856 squashed=9131/4264/4607/7031 mispred=828/476/293/688 loads=4172/979/2284/2407 l1d=340/300/574/212 l2=203/239/302/151 gated=5841/10511/5432/3588 mlp=81051/99608/117593/69657:29843/41331/37845/29358 blocked=0/0/0/0:817/412/369/666:45/0/79/7:0/0/0/0 ipc=0.704880",
];

/// The same goldens must hold when the nine policies run through the
/// boxed escape hatch — `AnyPolicy::Boxed` is dynamic dispatch over the
/// identical policy state, so static vs dynamic dispatch is observable
/// only in speed.
#[test]
fn boxed_escape_hatch_matches_goldens_for_spot_checks() {
    for (name, golden) in [("ICOUNT", GOLDEN[1]), ("DCRA", GOLDEN[8])] {
        let kind = PolicyKind::from_name(name).expect("canonical policy");
        let profiles: Vec<_> = BENCHES
            .iter()
            .map(|b| spec::profile(b).expect("known benchmark"))
            .collect();
        let boxed = AnyPolicy::Boxed(Box::new(kind.build()));
        let mut sim = Simulator::new(SimConfig::baseline(BENCHES.len()), &profiles, boxed, SEED);
        sim.run_cycles(CYCLES);
        let r = sim.result();
        let golden_ipc: f64 = golden
            .rsplit("ipc=")
            .next()
            .expect("golden has ipc")
            .parse()
            .expect("golden ipc parses");
        assert!(
            (r.throughput() - golden_ipc).abs() < 5e-7,
            "{name} through the boxed escape hatch drifted: {} vs {golden_ipc}",
            r.throughput()
        );
    }
}

/// Session reuse (`run_all`/`run_streaming` with per-worker `SimSession`s)
/// must equal fresh-`Simulator` sequential runs outcome for outcome.
#[test]
fn session_runner_matches_fresh_sequential_runs() {
    let specs: Vec<RunSpec> = ["ICOUNT", "FLUSH", "SRA", "DCRA"]
        .iter()
        .map(|n| {
            let mut s = RunSpec::new(
                &["gzip", "mcf"],
                PolicyKind::from_name(n).expect("canonical policy"),
            );
            s.prewarm_insts = 30_000;
            s.warmup_cycles = 2_000;
            s.measure_cycles = 15_000;
            s
        })
        .collect();

    // Reference: a fresh simulator per spec, sequentially.
    let fresh: Vec<_> = specs
        .iter()
        .map(|spec| {
            let profiles: Vec<_> = spec
                .benches
                .iter()
                .map(|b| spec::profile(b).expect("known benchmark"))
                .collect();
            let mut sim = Simulator::new(
                spec.config.clone(),
                &profiles,
                spec.policy.build(),
                spec.seed,
            );
            sim.prewarm(spec.prewarm_insts);
            sim.run_cycles(spec.warmup_cycles);
            sim.reset_stats();
            sim.run_cycles(spec.measure_cycles);
            sim.result()
        })
        .collect();

    // One session running the whole queue back to back.
    let mut session = SimSession::new();
    for (spec, want) in specs.iter().zip(&fresh) {
        let got = session.run(spec).expect("known bench");
        assert_eq!(
            &got.result, want,
            "session reuse drifted on {}",
            want.policy
        );
    }

    // The parallel work-queue paths (per-worker sessions).
    let runner = Runner::new();
    let all = runner.run_all(&specs).expect("known benches");
    for (out, want) in all.iter().zip(&fresh) {
        assert_eq!(&out.result, want, "run_all drifted on {}", want.policy);
    }
    let mut streamed: Vec<Option<smt_experiments::RunOutcome>> =
        specs.iter().map(|_| None).collect();
    runner.run_streaming(&specs, |i, out| streamed[i] = Some(out));
    for (out, want) in streamed.iter().zip(&fresh) {
        let stats = out
            .as_ref()
            .expect("sink covered every spec")
            .stats()
            .expect("run completed");
        assert_eq!(
            &stats.result, want,
            "run_streaming drifted on {}",
            want.policy
        );
    }
}

/// Retry determinism: a run that panics on its first attempt and is
/// retried must end bit-identical to a run that never faulted. The retry
/// path rebuilds the worker's `SimSession` from scratch after the caught
/// panic, so any state leak from the poisoned attempt would show up here
/// as golden-level drift.
#[test]
fn retried_runs_are_bit_identical_to_first_attempt_runs() {
    use smt_experiments::chaos::silence_chaos_panics;
    use smt_experiments::{EngineOptions, InjectedFault, RetryPolicy, RunOutcome};
    silence_chaos_panics();

    let mut clean = RunSpec::new(&["gzip", "mcf"], PolicyKind::dcra_for_latency(300));
    clean.prewarm_insts = 30_000;
    clean.warmup_cycles = 2_000;
    clean.measure_cycles = 15_000;
    let mut faulty = clean.clone();
    faulty.fault = Some(InjectedFault::PanicAtCycle {
        at_cycle: 500,
        fail_attempts: 1,
    });

    let runner = Runner::new();
    let reference = runner.run(&clean).expect("known bench");

    let opts = EngineOptions {
        retry: RetryPolicy::immediate(2),
        ..EngineOptions::default()
    };
    let outcomes = std::sync::Mutex::new(vec![None; 1]);
    let report = runner.run_isolated(std::slice::from_ref(&faulty), 1, &opts, |i, out| {
        outcomes.lock().unwrap()[i] = Some(out);
    });
    assert_eq!(report.completed, 1, "retried run must complete");
    let outcome = outcomes.lock().unwrap()[0].take().expect("sink delivered");
    match outcome {
        RunOutcome::Completed { stats, attempts } => {
            assert_eq!(attempts, 2, "first attempt must have panicked");
            assert_eq!(
                stats, reference,
                "retried run drifted from the fault-free run"
            );
        }
        RunOutcome::Failed { error, .. } => panic!("retry did not recover: {error}"),
    }
}

#[test]
fn simulation_output_matches_pre_rewrite_goldens() {
    let bless = std::env::var_os("BLESS_GOLDENS").is_some();
    let mut failures = Vec::new();
    for (kind, golden) in canonical_policies().iter().zip(GOLDEN) {
        let actual = summary(kind);
        if bless {
            println!("    \"{actual}\",");
        } else if actual != golden {
            failures.push(format!("golden : {golden}\nactual : {actual}"));
        }
    }
    assert!(
        failures.is_empty(),
        "simulation output drifted from the pre-rewrite goldens \
         (BLESS_GOLDENS=1 to regenerate after an intentional model change):\n{}",
        failures.join("\n---\n")
    );
}

/// Scenario smoke for CI's `cargo test scenario` filter: the adversarial
/// family must flow through the same golden determinism machinery — two
/// generations of the family swept back to back through a shared session
/// pool give identical results, and a regeneration from the same seed is
/// indistinguishable from the first.
#[test]
fn scenario_adversarial_family_is_deterministic_through_the_runner() {
    use smt_experiments::scenarios::{policy_for_target, sweep_family, ScenarioLengths};
    use smt_workloads::{FamilySpec, PolicyTarget, ScenarioFamily};
    let runner = Runner::new();
    let lengths = ScenarioLengths {
        prewarm_insts: 40_000,
        warmup_cycles: 3_000,
        measure_cycles: 20_000,
    };
    for target in [PolicyTarget::Flush, PolicyTarget::Dcra] {
        let spec = FamilySpec::adversarial(target, 3);
        let policy = policy_for_target(target);
        let a = sweep_family(
            &runner,
            &ScenarioFamily::generate(&spec, SEED).unwrap(),
            &policy,
            lengths,
        );
        let b = sweep_family(
            &runner,
            &ScenarioFamily::generate(&spec, SEED).unwrap(),
            &policy,
            lengths,
        );
        assert_eq!(
            a, b,
            "{}: adversarial sweep must be reproducible",
            spec.name
        );
        assert!(a.all_finite(), "{}: non-finite metric", spec.name);
    }
}

/// Scenario smoke: generated (non-registry) profiles must take the exact
/// same session-reuse path as built-in benchmarks — a `RunSpec::for_mix`
/// run through a reused `SimSession` equals a fresh-`Simulator` run.
#[test]
fn scenario_mix_session_reuse_matches_fresh_simulator() {
    use smt_workloads::{FamilySpec, PolicyTarget, ScenarioFamily};
    let family =
        ScenarioFamily::generate(&FamilySpec::adversarial(PolicyTarget::Icount, 2), SEED).unwrap();
    let mut session = SimSession::new();
    for mix in family.mixes() {
        let mut spec = RunSpec::for_mix(mix, PolicyKind::Icount);
        spec.prewarm_insts = 30_000;
        spec.warmup_cycles = 2_000;
        spec.measure_cycles = 15_000;
        let profiles: Vec<_> = mix.profiles.iter().collect();
        let mut sim = Simulator::new(
            spec.config.clone(),
            &profiles,
            spec.policy.build(),
            spec.seed,
        );
        sim.prewarm(spec.prewarm_insts);
        sim.run_cycles(spec.warmup_cycles);
        sim.reset_stats();
        sim.run_cycles(spec.measure_cycles);
        let fresh = sim.result();
        // First run primes the session; second proves reset-reuse clean.
        session.run(&spec).expect("valid mix");
        let reused = session.run(&spec).expect("valid mix");
        assert_eq!(reused.result, fresh, "{}: session reuse drifted", mix.id);
    }
}
