//! DCRA-DC: DCRA with degenerate-case detection — the extension the paper
//! sketches as future work in Sections 5.2 and 5.3.
//!
//! The paper observes that mcf-like threads are *degenerate*: giving them
//! extra entries does raise their number of overlapping misses, "however,
//! this increase is hardly visible in the overall processor performance
//! due to the extremely low baseline performance, and comes at the expense
//! of slightly decreased performance of other threads". DCRA-DC detects
//! such threads at run time and stops lending to them: a degenerate slow
//! thread is entitled to its even share only (`C = 0` for it), while
//! ordinary slow threads keep borrowing as usual.
//!
//! Detection: over fixed windows, a thread that was slow for most of the
//! window *and* committed almost nothing is marked degenerate for the next
//! window. The classification is continuously re-evaluated, like every
//! other classification in DCRA.

use crate::classify::{ActivityTracker, ThreadPhase};
use crate::policy::DcraConfig;
use crate::sharing::{slow_share, SharingFactor};
use smt_isa::{PerResource, QueueKind, RegClass, ResourceKind, ThreadId};
use smt_policy_core::{CycleView, Policy};

/// Configuration of the degenerate-case detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegenerateConfig {
    /// Re-evaluation window in cycles.
    pub window: u64,
    /// A thread slow for more than this fraction of the window is a
    /// candidate.
    pub slow_fraction: f64,
    /// Candidates whose window IPC is below this threshold are degenerate.
    pub ipc_threshold: f64,
}

impl Default for DegenerateConfig {
    fn default() -> Self {
        DegenerateConfig {
            window: 8192,
            slow_fraction: 0.8,
            ipc_threshold: 0.1,
        }
    }
}

/// DCRA with degenerate-thread detection (the paper's future-work
/// extension).
///
/// # Examples
///
/// ```
/// use dcra::DcraDc;
/// use smt_policy_core::Policy;
///
/// assert_eq!(DcraDc::default().name(), "DCRA-DC");
/// ```
#[derive(Debug, Clone)]
pub struct DcraDc {
    config: DcraConfig,
    detector: DegenerateConfig,
    activity: Option<ActivityTracker>,
    limits: PerResource<Option<u32>>,
    gated: Vec<bool>,
    phases: Vec<ThreadPhase>,
    degenerate: Vec<bool>,
    // Window bookkeeping.
    window_start: u64,
    slow_cycles: Vec<u64>,
    committed_base: Vec<u64>,
}

impl Default for DcraDc {
    fn default() -> Self {
        DcraDc::new(DcraConfig::default(), DegenerateConfig::default())
    }
}

impl DcraDc {
    /// Creates the policy.
    pub fn new(config: DcraConfig, detector: DegenerateConfig) -> Self {
        DcraDc {
            config,
            detector,
            activity: None,
            limits: PerResource::default(),
            gated: Vec::new(),
            phases: Vec::new(),
            degenerate: Vec::new(),
            window_start: 0,
            slow_cycles: Vec::new(),
            committed_base: Vec::new(),
        }
    }

    /// `true` if thread `t` is currently classified degenerate.
    pub fn is_degenerate(&self, t: ThreadId) -> bool {
        self.degenerate.get(t.index()).copied().unwrap_or(false)
    }

    fn roll_window(&mut self, view: &CycleView) {
        let n = view.thread_count();
        let committed = view.committed_counts();
        if self.slow_cycles.len() != n {
            self.slow_cycles = vec![0; n];
            self.committed_base = committed.to_vec();
            self.degenerate = vec![false; n];
            self.window_start = view.now;
            return;
        }
        for (i, &l1p) in view.l1d_pendings().iter().enumerate() {
            if l1p > 0 {
                self.slow_cycles[i] += 1;
            }
        }
        let elapsed = view.now.saturating_sub(self.window_start);
        if elapsed < self.detector.window {
            return;
        }
        for (i, &now_committed) in committed.iter().enumerate().take(n) {
            let slow_frac = self.slow_cycles[i] as f64 / elapsed as f64;
            // Counters can rewind when the simulator resets statistics
            // between warm-up and measurement.
            let done = now_committed.saturating_sub(self.committed_base[i]);
            let ipc = done as f64 / elapsed as f64;
            self.degenerate[i] =
                slow_frac >= self.detector.slow_fraction && ipc < self.detector.ipc_threshold;
            self.slow_cycles[i] = 0;
            self.committed_base[i] = now_committed;
        }
        self.window_start = view.now;
    }
}

impl Policy for DcraDc {
    fn name(&self) -> &str {
        "DCRA-DC"
    }

    fn begin_cycle(&mut self, view: &CycleView) {
        let n = view.thread_count();
        self.roll_window(view);
        let init = self.config.activity_init;
        self.activity
            .get_or_insert_with(|| ActivityTracker::new(n, init))
            .tick();

        self.phases.clear();
        self.phases.extend(
            view.l1d_pendings()
                .iter()
                .map(|&c| ThreadPhase::from_pending_misses(c)),
        );
        self.gated.clear();
        self.gated.resize(n, false);
        let activity = self.activity.as_ref().expect("initialised above");
        let usages = view.usages();

        for kind in ResourceKind::ALL {
            let mut fa = 0u32;
            let mut sa = 0u32;
            for i in 0..n {
                if !activity.is_active(ThreadId::new(i), kind) {
                    continue;
                }
                match self.phases[i] {
                    ThreadPhase::Fast => fa += 1,
                    ThreadPhase::Slow => sa += 1,
                }
            }
            if sa == 0 {
                self.limits[kind] = None;
                continue;
            }
            let factor = if kind.is_queue() {
                self.config.sharing.queue_factor
            } else {
                self.config.sharing.reg_factor
            };
            let e_slow = slow_share(view.totals[kind], fa, sa, factor);
            // Degenerate threads are held to the even share of the active
            // threads: they stop borrowing, ordinary slow threads keep the
            // full entitlement.
            let e_even = slow_share(view.totals[kind], fa, sa, SharingFactor::Zero);
            self.limits[kind] = Some(e_slow);
            for (i, usage) in usages.iter().enumerate().take(n) {
                if self.phases[i] != ThreadPhase::Slow
                    || !activity.is_active(ThreadId::new(i), kind)
                {
                    continue;
                }
                let cap = if self.degenerate[i] { e_even } else { e_slow };
                if usage[kind] >= cap {
                    self.gated[i] = true;
                }
            }
        }
    }

    fn fetch_order(&mut self, view: &CycleView, order: &mut Vec<ThreadId>) {
        // ICOUNT fetch priority (gating is separate, via `fetch_gate`).
        smt_policies::icount_order_into(view, order);
    }

    fn fetch_gate(&mut self, t: ThreadId, _view: &CycleView) -> bool {
        !self.gated.get(t.index()).copied().unwrap_or(false)
    }

    fn wants_progress_counters(&self) -> bool {
        true // the degeneracy windows read per-thread committed counts
    }

    fn on_dispatch(&mut self, t: ThreadId, queue: QueueKind, dest: Option<RegClass>) {
        let activity = self
            .activity
            .as_mut()
            .expect("on_dispatch before begin_cycle");
        activity.on_alloc(t, queue.resource());
        if let Some(d) = dest {
            activity.on_alloc(t, d.resource());
        }
    }

    // `on_idle_cycles`/`wants_fast_forward` stay at their declining
    // defaults on purpose: DCRA-DC accumulates `slow_cycles` every cycle a
    // thread has a pending L1 miss *and* rolls a degeneracy-detection
    // window on cycle boundaries; replaying both on top of the decay cap
    // buys little for a diagnostic policy, so it keeps stepping — correct,
    // just not accelerated, and (because the capability hint is false) it
    // never pays for an idle-deadline computation it would discard.
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_policy_core::ThreadView;

    fn view(now: u64, specs: &[(u32, u64)]) -> CycleView {
        // (l1d_pending, committed)
        let threads: Vec<ThreadView> = specs
            .iter()
            .map(|&(l1p, committed)| ThreadView {
                l1d_pending: l1p,
                committed,
                ..ThreadView::default()
            })
            .collect();
        CycleView::new(now, PerResource::filled(32), &threads)
    }

    #[test]
    fn detects_chronically_slow_unproductive_thread() {
        let mut p = DcraDc::default();
        let w = DegenerateConfig::default().window;
        // Thread 0: always slow, never commits. Thread 1: fast, commits.
        p.begin_cycle(&view(0, &[(1, 0), (0, 0)]));
        for now in 1..=w + 1 {
            p.begin_cycle(&view(now, &[(1, 10), (0, now * 2)]));
        }
        assert!(p.is_degenerate(ThreadId::new(0)));
        assert!(!p.is_degenerate(ThreadId::new(1)));
    }

    #[test]
    fn productive_slow_thread_is_not_degenerate() {
        let mut p = DcraDc::default();
        let w = DegenerateConfig::default().window;
        // Slow but committing at IPC 0.5.
        p.begin_cycle(&view(0, &[(1, 0)]));
        for now in 1..=w + 1 {
            p.begin_cycle(&view(now, &[(1, now / 2)]));
        }
        assert!(!p.is_degenerate(ThreadId::new(0)));
    }

    #[test]
    fn degenerate_thread_loses_its_borrowed_share() {
        let mut p = DcraDc::default();
        let w = DegenerateConfig::default().window;
        // Make thread 0 degenerate.
        p.begin_cycle(&view(0, &[(1, 0), (0, 0)]));
        for now in 1..=w + 1 {
            p.begin_cycle(&view(now, &[(1, 0), (0, now * 2)]));
        }
        assert!(p.is_degenerate(ThreadId::new(0)));
        // Usage 17 with 1 fast + 1 slow active: even share = 16, borrowed
        // share (1/(A+4) at 2 active) = 16·(1+1/6) ≈ 19. A degenerate
        // thread at usage 17 must be gated; an ordinary one must not.
        let mut v = view(w + 2, &[(1, 0), (0, 0)]);
        v.set_thread(
            0,
            &ThreadView {
                l1d_pending: 1,
                usage: PerResource::filled(17),
                ..ThreadView::default()
            },
        );
        p.begin_cycle(&v);
        assert!(
            !p.fetch_gate(ThreadId::new(0), &v),
            "degenerate thread gated at even share"
        );

        let mut fresh = DcraDc::default();
        fresh.begin_cycle(&v);
        assert!(
            fresh.fetch_gate(ThreadId::new(0), &v),
            "non-degenerate thread keeps its borrowed share"
        );
    }

    #[test]
    fn classification_recovers() {
        let mut p = DcraDc::default();
        let w = DegenerateConfig::default().window;
        p.begin_cycle(&view(0, &[(1, 0)]));
        for now in 1..=w + 1 {
            p.begin_cycle(&view(now, &[(1, 0)]));
        }
        assert!(p.is_degenerate(ThreadId::new(0)));
        // Next window: the thread commits briskly again.
        let base = w + 1;
        for now in base + 1..=base + w + 1 {
            p.begin_cycle(&view(now, &[(1, now * 2)]));
        }
        assert!(!p.is_degenerate(ThreadId::new(0)), "degeneracy must decay");
    }
}
