//! **DCRA — Dynamically Controlled Resource Allocation** for SMT
//! processors, the contribution of Cazorla, Ramirez, Valero & Fernández
//! (MICRO-37, 2004).
//!
//! DCRA is an *allocation* policy: instead of inferring resource abuse from
//! indirect indicators and stalling/flushing threads (as fetch policies
//! do), it directly monitors per-thread resource usage and computes, every
//! cycle, how many entries of each shared resource every thread is entitled
//! to:
//!
//! 1. **Thread phase classification** (§3.1.1): a thread with pending L1
//!    data misses is *slow* (it will hold resources for a long time and
//!    needs more of them to expose memory parallelism); otherwise it is
//!    *fast* (it can run on a small, rapidly-cycling set of entries).
//! 2. **Resource usage classification** (§3.1.2): a thread that has not
//!    used a floating-point resource for 256 cycles is *inactive* for it
//!    and donates its entire share.
//! 3. **Sharing model** (§3.2): each slow-active thread may occupy
//!    `E_slow = R/(FA+SA) · (1 + C·FA)` entries of resource `R`, borrowing
//!    from the fast threads via the sharing factor `C`.
//! 4. **Enforcement** (§3.4): a slow thread exceeding its allocation is
//!    fetch-stalled until it drains below it; fast threads are
//!    unrestricted.
//!
//! # Examples
//!
//! ```
//! use dcra::Dcra;
//! use smt_sim::{SimConfig, Simulator};
//! use smt_workloads::spec;
//!
//! let profiles = [spec::profile("gzip").unwrap(), spec::profile("mcf").unwrap()];
//! let mut sim = Simulator::new(SimConfig::baseline(2), &profiles,
//!                              Dcra::default(), 1);
//! sim.run_cycles(10_000);
//! assert_eq!(sim.policy_name(), "DCRA");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod classify;
mod degenerate;
mod policy;
mod sharing;
mod table_policy;

pub use classify::{ActivityTracker, ThreadPhase};
pub use degenerate::{DcraDc, DegenerateConfig};
pub use policy::{Dcra, DcraConfig};
pub use sharing::{allocation_table, slow_share, SharingConfig, SharingFactor, TableEntry};
pub use table_policy::{AllocationRom, TableDcra};
