//! The DCRA policy: classification + sharing model + enforcement.

use crate::classify::{ActivityTracker, ThreadPhase};
use crate::sharing::{slow_share, SharingConfig};
use serde::{Deserialize, Serialize};
use smt_isa::{PerResource, QueueKind, RegClass, ResourceKind, ThreadId};
use smt_policy_core::{CycleView, Policy};

/// Configuration of the DCRA policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DcraConfig {
    /// Sharing factors for queues and registers (tune with
    /// [`SharingConfig::for_memory_latency`] when sweeping latency).
    pub sharing: SharingConfig,
    /// Activity-counter reset value (paper: 256).
    pub activity_init: u32,
}

impl Default for DcraConfig {
    fn default() -> Self {
        DcraConfig {
            sharing: SharingConfig::default(),
            activity_init: ActivityTracker::DEFAULT_INIT,
        }
    }
}

/// Dynamically Controlled Resource Allocation (the paper's proposal).
///
/// Every cycle DCRA re-classifies each thread as fast/slow (pending L1 data
/// misses) and active/inactive per resource (activity counters), evaluates
/// the sharing model for each of the five controlled resources, and
/// fetch-stalls any slow-active thread whose usage meets or exceeds its
/// entitlement. Fetch priority among unstalled threads is ICOUNT.
///
/// # Examples
///
/// ```
/// use dcra::{Dcra, DcraConfig, SharingConfig};
///
/// // Baseline DCRA for the 300-cycle machine:
/// let policy = Dcra::default();
/// // DCRA tuned for a 500-cycle memory (Section 5.3):
/// let tuned = Dcra::new(DcraConfig {
///     sharing: SharingConfig::for_memory_latency(500),
///     ..DcraConfig::default()
/// });
/// # let _ = (policy, tuned);
/// ```
#[derive(Debug, Clone)]
pub struct Dcra {
    config: DcraConfig,
    activity: Option<ActivityTracker>,
    /// Per-resource `E_slow` computed this cycle (`None` = unlimited).
    limits: PerResource<Option<u32>>,
    /// Threads gated this cycle.
    gated: Vec<bool>,
    /// Phase of each thread this cycle (exposed for the Table-5 study).
    phases: Vec<ThreadPhase>,
    /// Memoization of the sharing-model evaluation: the limits (and the
    /// slow-active membership below) only depend on the phase vector and
    /// the per-resource active sets, so they are recomputed only when one
    /// of those inputs changed since the previous cycle.
    limits_valid: bool,
    /// An activity flag flipped since the limits were last computed.
    activity_dirty: bool,
    /// Resource totals the limits were last computed against (constant
    /// within one simulator run, but the public API allows differently
    /// shaped views cycle to cycle).
    last_totals: PerResource<u32>,
    /// Bitmask (over thread ids) of slow-active threads per resource, from
    /// the last limits recompute — the enforcement sweep walks only these.
    slow_active: PerResource<u8>,
}

impl Default for Dcra {
    fn default() -> Self {
        Dcra::new(DcraConfig::default())
    }
}

impl Dcra {
    /// Creates the policy with the given configuration.
    pub fn new(config: DcraConfig) -> Self {
        Dcra {
            config,
            activity: None,
            limits: PerResource::default(),
            gated: Vec::new(),
            phases: Vec::new(),
            limits_valid: false,
            activity_dirty: false,
            last_totals: PerResource::default(),
            slow_active: PerResource::default(),
        }
    }

    /// The per-resource slow-thread entitlements computed in the last
    /// cycle (`None` where no limit applies).
    pub fn current_limits(&self) -> &PerResource<Option<u32>> {
        &self.limits
    }

    /// The phase assigned to thread `t` in the last cycle.
    pub fn phase_of(&self, t: ThreadId) -> Option<ThreadPhase> {
        self.phases.get(t.index()).copied()
    }

    /// `true` if thread `t` was fetch-gated in the last cycle.
    pub fn is_gated(&self, t: ThreadId) -> bool {
        self.gated.get(t.index()).copied().unwrap_or(false)
    }

    fn activity(&mut self, threads: usize) -> &mut ActivityTracker {
        let init = self.config.activity_init;
        self.activity
            .get_or_insert_with(|| ActivityTracker::new(threads, init))
    }
}

impl Policy for Dcra {
    fn name(&self) -> &str {
        "DCRA"
    }

    fn begin_cycle(&mut self, view: &CycleView) {
        let n = view.thread_count();
        self.activity_dirty |= self.activity(n).tick();

        // Re-classify phases from the pending-miss lane, noting whether
        // anything actually changed since the previous cycle.
        let l1d = view.l1d_pendings();
        let mut phases_changed = self.phases.len() != n;
        if phases_changed {
            self.phases.clear();
            self.phases
                .extend(l1d.iter().map(|&c| ThreadPhase::from_pending_misses(c)));
        } else {
            for (p, &c) in self.phases.iter_mut().zip(l1d) {
                let fresh = ThreadPhase::from_pending_misses(c);
                phases_changed |= *p != fresh;
                *p = fresh;
            }
        }

        // The sharing model is a pure function of (phases, active sets,
        // totals); skip its evaluation on the (common) cycles where no
        // input moved and reuse the memoized limits and slow-active sets.
        if phases_changed
            || self.activity_dirty
            || !self.limits_valid
            || self.last_totals != view.totals
        {
            let activity = self.activity.as_ref().expect("initialised above");
            for kind in ResourceKind::ALL {
                // Count fast-active and slow-active threads for this
                // resource, remembering who the slow-active ones are.
                let mut fa = 0u32;
                let mut sa = 0u32;
                let mut slow_mask = 0u8;
                for i in 0..n {
                    if !activity.is_active(ThreadId::new(i), kind) {
                        continue;
                    }
                    match self.phases[i] {
                        ThreadPhase::Fast => fa += 1,
                        ThreadPhase::Slow => {
                            sa += 1;
                            slow_mask |= 1 << i;
                        }
                    }
                }
                self.slow_active[kind] = slow_mask;
                if sa == 0 {
                    self.limits[kind] = None;
                    continue;
                }
                let factor = if kind.is_queue() {
                    self.config.sharing.queue_factor
                } else {
                    self.config.sharing.reg_factor
                };
                self.limits[kind] = Some(slow_share(view.totals[kind], fa, sa, factor));
            }
            self.limits_valid = true;
            self.activity_dirty = false;
            self.last_totals = view.totals;
        }

        // Enforcement every cycle (usage moves constantly): gate
        // slow-active threads at/above their share.
        self.gated.clear();
        self.gated.resize(n, false);
        let usages = view.usages();
        for kind in ResourceKind::ALL {
            let Some(e_slow) = self.limits[kind] else {
                continue;
            };
            let mut mask = self.slow_active[kind];
            while mask != 0 {
                let i = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                if usages[i][kind] >= e_slow {
                    self.gated[i] = true;
                }
            }
        }
    }

    fn fetch_order(&mut self, view: &CycleView, order: &mut Vec<ThreadId>) {
        // ICOUNT fetch priority (gating is separate, via `fetch_gate`).
        smt_policies::icount_order_into(view, order);
    }

    fn fetch_gate(&mut self, t: ThreadId, _view: &CycleView) -> bool {
        !self.is_gated(t)
    }

    fn on_dispatch(&mut self, t: ThreadId, queue: QueueKind, dest: Option<RegClass>) {
        let activity = self
            .activity
            .as_mut()
            .expect("on_dispatch before begin_cycle");
        self.activity_dirty |= activity.on_alloc(t, queue.resource());
        if let Some(d) = dest {
            self.activity_dirty |= activity.on_alloc(t, d.resource());
        }
    }

    fn on_idle_cycles(&mut self, n: u64, _view: &CycleView) -> u64 {
        // The only per-cycle state is the activity decay. Phases and usage
        // are frozen on idle cycles, so the gated set — and therefore every
        // fetch_gate answer — can only change when a decaying FP counter
        // flips a thread inactive; `idle_replay` caps the span just short
        // of the first flip.
        match self.activity.as_mut() {
            Some(activity) => activity.idle_replay(n),
            // No cycle has run yet; nothing is decaying to replay.
            None => 0,
        }
    }

    fn wants_fast_forward(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_policy_core::ThreadView;

    /// One thread's test fixture: (icount, l1d_pending, usage overrides).
    type ThreadSpec<'a> = (u32, u32, &'a [(ResourceKind, u32)]);

    fn view(specs: &[ThreadSpec]) -> CycleView {
        let threads: Vec<ThreadView> = specs
            .iter()
            .map(|(ic, l1p, usages)| {
                let mut tv = ThreadView {
                    icount: *ic,
                    l1d_pending: *l1p,
                    ..ThreadView::default()
                };
                for (k, v) in usages.iter() {
                    tv.usage[*k] = *v;
                }
                tv
            })
            .collect();
        CycleView::new(0, PerResource::filled(32), &threads)
    }

    fn inverse_dcra() -> Dcra {
        Dcra::new(DcraConfig {
            sharing: SharingConfig {
                queue_factor: crate::SharingFactor::Inverse,
                reg_factor: crate::SharingFactor::Inverse,
            },
            ..DcraConfig::default()
        })
    }

    #[test]
    fn slow_thread_over_share_is_gated() {
        let mut d = inverse_dcra();
        // 2 threads: T0 slow holding 24 LSQ entries, T1 fast.
        // E_slow = 32/2 * (1 + 1/2) = 24 -> usage 24 >= 24: gated.
        let v = view(&[(10, 1, &[(ResourceKind::LsQueue, 24)]), (10, 0, &[])]);
        d.begin_cycle(&v);
        assert_eq!(d.current_limits()[ResourceKind::LsQueue], Some(24));
        assert!(d.is_gated(ThreadId::new(0)));
        assert!(!d.is_gated(ThreadId::new(1)));
        assert!(!d.fetch_gate(ThreadId::new(0), &v));
        assert!(d.fetch_gate(ThreadId::new(1), &v));
    }

    #[test]
    fn slow_thread_below_share_is_not_gated() {
        let mut d = inverse_dcra();
        let v = view(&[(10, 1, &[(ResourceKind::LsQueue, 23)]), (10, 0, &[])]);
        d.begin_cycle(&v);
        assert!(!d.is_gated(ThreadId::new(0)));
    }

    #[test]
    fn fast_threads_are_never_gated() {
        let mut d = inverse_dcra();
        // T0 fast but hogging the queue: DCRA leaves fast threads alone.
        let v = view(&[(10, 0, &[(ResourceKind::IntQueue, 32)]), (10, 1, &[])]);
        d.begin_cycle(&v);
        assert!(!d.is_gated(ThreadId::new(0)));
    }

    #[test]
    fn no_slow_threads_means_no_limits() {
        let mut d = inverse_dcra();
        let v = view(&[(10, 0, &[]), (10, 0, &[])]);
        d.begin_cycle(&v);
        for kind in ResourceKind::ALL {
            assert_eq!(d.current_limits()[kind], None);
        }
    }

    #[test]
    fn inactive_fp_threads_donate_their_share() {
        let mut d = inverse_dcra();
        // Let thread 1's FP activity decay to zero (integer thread), with
        // thread 0 slow and FP-active via dispatches.
        let v = view(&[(10, 1, &[]), (10, 0, &[])]);
        for _ in 0..300 {
            d.begin_cycle(&v);
            d.on_dispatch(ThreadId::new(0), QueueKind::Fp, Some(RegClass::Fp));
        }
        // FP queue: only T0 active (SA=1, FA=0) -> full 32 entries.
        assert_eq!(d.current_limits()[ResourceKind::FpQueue], Some(32));
        // LSQ: both active (always-active resource), SA=1 FA=1 -> 24.
        assert_eq!(d.current_limits()[ResourceKind::LsQueue], Some(24));
    }

    #[test]
    fn phases_tracked_per_thread() {
        let mut d = Dcra::default();
        let v = view(&[(0, 2, &[]), (0, 0, &[])]);
        d.begin_cycle(&v);
        assert_eq!(d.phase_of(ThreadId::new(0)), Some(ThreadPhase::Slow));
        assert_eq!(d.phase_of(ThreadId::new(1)), Some(ThreadPhase::Fast));
    }

    #[test]
    fn fetch_order_is_icount() {
        let mut d = Dcra::default();
        let v = view(&[(9, 0, &[]), (3, 0, &[]), (6, 0, &[])]);
        let mut buf = Vec::new();
        d.fetch_order(&v, &mut buf);
        let order: Vec<usize> = buf.iter().map(|t| t.index()).collect();
        assert_eq!(order, vec![1, 2, 0]);
    }
}
