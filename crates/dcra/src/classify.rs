//! Thread phase and resource-activity classification (paper Section 3.1).

use smt_isa::{PerResource, ResourceKind, ThreadId};

/// Execution-phase classification of a thread (Section 3.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ThreadPhase {
    /// No pending L1 data misses: the thread exploits ILP on a small,
    /// rapidly recycling set of resources.
    Fast,
    /// At least one pending L1 data miss: the thread will hold resources
    /// for a long time and benefits from extra entries (memory
    /// parallelism).
    Slow,
}

impl ThreadPhase {
    /// Classifies from the pending L1 data-miss counter.
    #[inline]
    pub fn from_pending_misses(l1d_pending: u32) -> Self {
        if l1d_pending > 0 {
            ThreadPhase::Slow
        } else {
            ThreadPhase::Fast
        }
    }
}

/// Per-thread, per-resource activity counters (Section 3.1.2).
///
/// Every time a thread allocates an entry of a resource the counter resets
/// to its initial value (256 in the paper); it decrements every cycle the
/// resource goes unused. At zero the thread is *inactive* for that resource
/// and its share is redistributed. The paper tracks activity only for the
/// FP resources (an integer program never uses the FP queue or registers);
/// integer and load/store resources are considered always active, which
/// this implementation mirrors.
///
/// # Examples
///
/// ```
/// use dcra::ActivityTracker;
/// use smt_isa::{ResourceKind, ThreadId};
///
/// let mut a = ActivityTracker::new(2, 4); // tiny window for the example
/// let t = ThreadId::new(0);
/// assert!(a.is_active(t, ResourceKind::FpQueue));
/// for _ in 0..4 { a.tick(); }
/// assert!(!a.is_active(t, ResourceKind::FpQueue)); // decayed
/// a.on_alloc(t, ResourceKind::FpQueue);
/// assert!(a.is_active(t, ResourceKind::FpQueue));  // reset on use
/// ```
#[derive(Debug, Clone)]
pub struct ActivityTracker {
    counters: Vec<PerResource<u32>>,
    init: u32,
}

impl ActivityTracker {
    /// The paper's initial/reset counter value (Section 3.4, chosen from a
    /// 64–8192 sweep).
    pub const DEFAULT_INIT: u32 = 256;

    /// Creates a tracker for `threads` contexts with the given reset value.
    /// All threads start *active* for every resource.
    pub fn new(threads: usize, init: u32) -> Self {
        ActivityTracker {
            counters: vec![PerResource::filled(init); threads],
            init,
        }
    }

    /// Advances one cycle: decrements every FP-resource counter. Returns
    /// `true` if any thread's active flag flipped (a counter reached zero
    /// this cycle) — the signal memoizing policies invalidate on.
    pub fn tick(&mut self) -> bool {
        let mut flipped = false;
        for c in &mut self.counters {
            for kind in ResourceKind::ALL {
                if kind.is_fp() {
                    if c[kind] == 1 {
                        flipped = true;
                    }
                    c[kind] = c[kind].saturating_sub(1);
                }
            }
        }
        flipped
    }

    /// Number of [`ActivityTracker::tick`] calls that can elapse before
    /// any thread's active flag flips (the tick on which some positive FP
    /// counter reaches zero), or `None` when every FP counter is already
    /// zero — without an allocation no flip can ever happen.
    ///
    /// Used by the fast-forward path: `tick_many(k)` with
    /// `k < ticks_until_flip()` is guaranteed flip-free, so the active
    /// sets (and every decision derived from them) stay frozen across the
    /// replayed cycles.
    pub fn ticks_until_flip(&self) -> Option<u32> {
        self.counters
            .iter()
            .flat_map(|c| {
                ResourceKind::ALL
                    .iter()
                    .filter(|k| k.is_fp())
                    .map(|&k| c[k])
            })
            .filter(|&v| v > 0)
            .min()
    }

    /// Advances `n` cycles at once: decrements every FP-resource counter
    /// by `n` (saturating). Returns `true` if any active flag flipped —
    /// equivalent to OR-ing the results of `n` consecutive
    /// [`ActivityTracker::tick`] calls.
    pub fn tick_many(&mut self, n: u64) -> bool {
        let step = u32::try_from(n).unwrap_or(u32::MAX);
        let mut flipped = false;
        for c in &mut self.counters {
            for kind in ResourceKind::ALL {
                if kind.is_fp() {
                    if c[kind] > 0 && c[kind] <= step {
                        flipped = true;
                    }
                    c[kind] = c[kind].saturating_sub(step);
                }
            }
        }
        flipped
    }

    /// Fast-forward replay: applies up to `n` idle cycles' worth of decay
    /// and returns how many were applied — capped one tick *before* the
    /// next activity flip, so the active sets (and every decision derived
    /// from them) are provably unchanged across the replayed span. The
    /// flip cycle itself must be stepped normally (`tick` inside
    /// `begin_cycle`), where the policy recomputes its sharing model.
    /// Shared by both DCRA variants' `Policy::on_idle_cycles`.
    pub fn idle_replay(&mut self, n: u64) -> u64 {
        let k = match self.ticks_until_flip() {
            Some(m) => n.min(u64::from(m) - 1),
            None => n, // all counters at rest: decay is a no-op
        };
        if k > 0 {
            let flipped = self.tick_many(k);
            debug_assert!(!flipped, "idle replay must stop before a flip");
        }
        k
    }

    /// Resets the counter of `kind` for thread `t` (the thread allocated an
    /// entry this cycle). Returns `true` if the thread's active flag for
    /// `kind` flipped from inactive to active.
    pub fn on_alloc(&mut self, t: ThreadId, kind: ResourceKind) -> bool {
        let c = &mut self.counters[t.index()][kind];
        let flipped = kind.is_fp() && *c == 0;
        *c = self.init;
        flipped
    }

    /// `true` if thread `t` currently competes for `kind`. Non-FP resources
    /// are always active.
    pub fn is_active(&self, t: ThreadId, kind: ResourceKind) -> bool {
        !kind.is_fp() || self.counters[t.index()][kind] > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_follows_pending_counter() {
        assert_eq!(ThreadPhase::from_pending_misses(0), ThreadPhase::Fast);
        assert_eq!(ThreadPhase::from_pending_misses(1), ThreadPhase::Slow);
        assert_eq!(ThreadPhase::from_pending_misses(7), ThreadPhase::Slow);
    }

    #[test]
    fn non_fp_resources_always_active() {
        let mut a = ActivityTracker::new(1, 2);
        for _ in 0..100 {
            a.tick();
        }
        let t = ThreadId::new(0);
        assert!(a.is_active(t, ResourceKind::IntQueue));
        assert!(a.is_active(t, ResourceKind::LsQueue));
        assert!(a.is_active(t, ResourceKind::IntRegs));
        assert!(!a.is_active(t, ResourceKind::FpQueue));
        assert!(!a.is_active(t, ResourceKind::FpRegs));
    }

    #[test]
    fn fp_activity_decays_and_resets() {
        let mut a = ActivityTracker::new(2, 3);
        let (t0, t1) = (ThreadId::new(0), ThreadId::new(1));
        a.tick();
        a.tick();
        // t0 keeps using the FP queue; t1 does not.
        a.on_alloc(t0, ResourceKind::FpQueue);
        a.tick();
        assert!(a.is_active(t0, ResourceKind::FpQueue));
        assert!(!a.is_active(t1, ResourceKind::FpQueue));
        // FP regs decay independently of the FP queue.
        assert!(!a.is_active(t0, ResourceKind::FpRegs));
    }

    #[test]
    fn tick_many_matches_repeated_ticks() {
        let t0 = ThreadId::new(0);
        for n in [0u64, 1, 2, 3, 5, 100] {
            let mut a = ActivityTracker::new(2, 4);
            let mut b = ActivityTracker::new(2, 4);
            a.on_alloc(t0, ResourceKind::FpQueue);
            b.on_alloc(t0, ResourceKind::FpQueue);
            let mut flipped_stepped = false;
            for _ in 0..n {
                flipped_stepped |= a.tick();
            }
            let flipped_batched = b.tick_many(n);
            assert_eq!(flipped_stepped, flipped_batched, "flip signal at n={n}");
            for tid in 0..2 {
                for kind in ResourceKind::ALL {
                    assert_eq!(
                        a.is_active(ThreadId::new(tid), kind),
                        b.is_active(ThreadId::new(tid), kind),
                        "active flag drifted at n={n}"
                    );
                }
            }
        }
    }

    #[test]
    fn ticks_until_flip_is_the_min_positive_counter() {
        let mut a = ActivityTracker::new(2, 5);
        assert_eq!(a.ticks_until_flip(), Some(5));
        a.tick();
        a.tick();
        assert_eq!(a.ticks_until_flip(), Some(3));
        // One thread re-arms a counter; the minimum stays with the other.
        a.on_alloc(ThreadId::new(0), ResourceKind::FpQueue);
        assert_eq!(a.ticks_until_flip(), Some(3));
        // Decay everything to zero: no flip can ever happen again.
        a.tick_many(10);
        assert_eq!(a.ticks_until_flip(), None);
    }

    #[test]
    fn counters_saturate_at_zero() {
        let mut a = ActivityTracker::new(1, 1);
        for _ in 0..10 {
            a.tick();
        }
        assert!(!a.is_active(ThreadId::new(0), ResourceKind::FpQueue));
    }

    #[test]
    fn default_init_matches_paper() {
        assert_eq!(ActivityTracker::DEFAULT_INIT, 256);
    }
}
