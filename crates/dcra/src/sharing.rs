//! The DCRA sharing model (paper Section 3.2).

use serde::{Deserialize, Serialize};

/// The sharing factor `C`: how much of their share fast threads lend to
/// each slow thread.
///
/// The paper tunes `C` to the memory latency (Section 5.3): at short
/// latencies slow threads release resources quickly, so lending can be
/// generous (`1/A`); at the baseline 300-cycle latency `1/(A+4)` works
/// best; at 500 cycles the issue queues should not be lent at all (`0`)
/// while registers still use `1/(A+4)`. (`A` is the number of active
/// threads competing for the resource, per the paper's re-definition of
/// `C = 1/(FA+SA)` in Section 3.2.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SharingFactor {
    /// `C = 1/A` — generous lending (best at low memory latency; also the
    /// factor behind the paper's Table 1).
    Inverse,
    /// `C = 1/(A+4)` — moderate lending (best at 300-cycle latency).
    InversePlus4,
    /// `C = 0` — no lending: slow threads get exactly the even share.
    Zero,
}

impl SharingFactor {
    /// The numeric value of `C` for `active` competing threads.
    pub fn value(self, active: u32) -> f64 {
        match self {
            SharingFactor::Inverse => {
                if active == 0 {
                    0.0
                } else {
                    1.0 / f64::from(active)
                }
            }
            SharingFactor::InversePlus4 => 1.0 / f64::from(active + 4),
            SharingFactor::Zero => 0.0,
        }
    }
}

/// Per-resource-class sharing factors.
///
/// The paper uses one circuit for the issue queues and one for the
/// registers (Section 3.4) and gives them different factors at high
/// latency (Section 5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SharingConfig {
    /// Factor applied to the three issue queues.
    pub queue_factor: SharingFactor,
    /// Factor applied to the two rename-register pools.
    pub reg_factor: SharingFactor,
}

impl SharingConfig {
    /// The factors the paper found best for a given main-memory latency
    /// (Section 5.3): 100 cycles → `1/A`; 300 cycles → `1/(A+4)`;
    /// 500 cycles and beyond → queues `0`, registers `1/(A+4)`.
    pub fn for_memory_latency(latency: u32) -> Self {
        if latency <= 150 {
            SharingConfig {
                queue_factor: SharingFactor::Inverse,
                reg_factor: SharingFactor::Inverse,
            }
        } else if latency <= 400 {
            SharingConfig {
                queue_factor: SharingFactor::InversePlus4,
                reg_factor: SharingFactor::InversePlus4,
            }
        } else {
            SharingConfig {
                queue_factor: SharingFactor::Zero,
                reg_factor: SharingFactor::InversePlus4,
            }
        }
    }
}

impl Default for SharingConfig {
    /// Factors for the baseline 300-cycle memory.
    fn default() -> Self {
        SharingConfig::for_memory_latency(300)
    }
}

/// Entries of a resource that each **slow active** thread may allocate
/// (paper equation 3):
///
/// `E_slow = R/(FA+SA) · (1 + C·FA)`
///
/// where `R = total`, `FA`/`SA` are the fast-active and slow-active thread
/// counts for this resource. Inactive threads do not compete; fast threads
/// are left unrestricted and use whatever the slow threads leave them.
///
/// Returns `total` when no thread is active or no thread is slow (no limit
/// needs enforcing).
///
/// # Examples
///
/// ```
/// use dcra::{slow_share, SharingFactor};
///
/// // Paper Table 1, entry 7: 32 entries, 3 fast + 1 slow, C = 1/A.
/// assert_eq!(slow_share(32, 3, 1, SharingFactor::Inverse), 14);
/// ```
pub fn slow_share(total: u32, fast_active: u32, slow_active: u32, factor: SharingFactor) -> u32 {
    let active = fast_active + slow_active;
    if active == 0 || slow_active == 0 {
        return total;
    }
    let c = factor.value(active);
    let share = f64::from(total) / f64::from(active) * (1.0 + c * f64::from(fast_active));
    (share.round() as u32).min(total)
}

/// One row of a pre-computed allocation table (the paper's Table 1 and the
/// read-only-table implementation of Section 3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableEntry {
    /// Fast-active thread count.
    pub fast_active: u32,
    /// Slow-active thread count.
    pub slow_active: u32,
    /// Entries each slow-active thread may allocate.
    pub e_slow: u32,
}

/// The full pre-computed allocation table for a resource with `total`
/// entries on a `threads`-context machine: one row per `(FA, SA)` with
/// `SA ≥ 1` and `FA + SA ≤ threads`, in the paper's Table-1 order
/// (ascending `FA + SA`, then ascending `FA`... descending? — Table 1
/// orders by total active then by `SA`; we order rows exactly like the
/// paper: by `FA+SA`, then descending `SA`).
pub fn allocation_table(total: u32, threads: u32, factor: SharingFactor) -> Vec<TableEntry> {
    let mut rows = Vec::new();
    for active in 1..=threads {
        for sa in (1..=active).rev() {
            let fa = active - sa;
            rows.push(TableEntry {
                fast_active: fa,
                slow_active: sa,
                e_slow: slow_share(total, fa, sa, factor),
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Table 1 verbatim: (entry, FA, SA, E_slow) for a
    /// 32-entry resource on a 4-thread processor.
    const PAPER_TABLE1: &[(u32, u32, u32)] = &[
        (0, 1, 32),
        (1, 1, 24),
        (0, 2, 16),
        (2, 1, 18),
        (1, 2, 14),
        (0, 3, 11),
        (3, 1, 14),
        (2, 2, 12),
        (1, 3, 10),
        (0, 4, 8),
    ];

    #[test]
    fn reproduces_paper_table1() {
        for &(fa, sa, expect) in PAPER_TABLE1 {
            assert_eq!(
                slow_share(32, fa, sa, SharingFactor::Inverse),
                expect,
                "FA={fa} SA={sa}"
            );
        }
    }

    #[test]
    fn allocation_table_has_paper_rows() {
        let table = allocation_table(32, 4, SharingFactor::Inverse);
        assert_eq!(table.len(), 10, "4-context machine has 10 (FA,SA) rows");
        for &(fa, sa, expect) in PAPER_TABLE1 {
            let row = table
                .iter()
                .find(|r| r.fast_active == fa && r.slow_active == sa)
                .expect("row missing");
            assert_eq!(row.e_slow, expect, "FA={fa} SA={sa}");
        }
    }

    #[test]
    fn no_slow_threads_means_no_limit() {
        assert_eq!(slow_share(80, 3, 0, SharingFactor::Inverse), 80);
        assert_eq!(slow_share(80, 0, 0, SharingFactor::Inverse), 80);
    }

    #[test]
    fn zero_factor_gives_even_share() {
        assert_eq!(slow_share(80, 2, 2, SharingFactor::Zero), 20);
        assert_eq!(slow_share(80, 3, 1, SharingFactor::Zero), 20);
    }

    #[test]
    fn share_never_exceeds_total() {
        for factor in [
            SharingFactor::Inverse,
            SharingFactor::InversePlus4,
            SharingFactor::Zero,
        ] {
            for fa in 0..=4 {
                for sa in 0..=4 {
                    let s = slow_share(32, fa, sa, factor);
                    assert!(s <= 32, "share {s} > total (FA={fa},SA={sa})");
                }
            }
        }
    }

    #[test]
    fn more_fast_threads_lend_more() {
        // With one slow thread, its share grows with the number of fast
        // threads lending to it... per share of the *smaller pool*. What
        // must hold: the slow share always exceeds the even split.
        for fa in 1..=3u32 {
            let even = 32 / (fa + 1);
            let s = slow_share(32, fa, 1, SharingFactor::Inverse);
            assert!(s > even, "FA={fa}: {s} ≤ even share {even}");
        }
    }

    #[test]
    fn latency_presets_match_section_5_3() {
        let low = SharingConfig::for_memory_latency(100);
        assert_eq!(low.queue_factor, SharingFactor::Inverse);
        let base = SharingConfig::for_memory_latency(300);
        assert_eq!(base.queue_factor, SharingFactor::InversePlus4);
        assert_eq!(base.reg_factor, SharingFactor::InversePlus4);
        let high = SharingConfig::for_memory_latency(500);
        assert_eq!(high.queue_factor, SharingFactor::Zero);
        assert_eq!(high.reg_factor, SharingFactor::InversePlus4);
        assert_eq!(SharingConfig::default(), base);
    }

    #[test]
    fn factor_values() {
        assert_eq!(SharingFactor::Inverse.value(2), 0.5);
        assert_eq!(SharingFactor::InversePlus4.value(2), 1.0 / 6.0);
        assert_eq!(SharingFactor::Zero.value(2), 0.0);
        assert_eq!(SharingFactor::Inverse.value(0), 0.0);
    }
}
